"""Compatibility shim: lets ``pip install -e .`` work on environments
whose pip/setuptools cannot build PEP-660 editable wheels (no `wheel`
package, offline).  Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
