"""The paper's Section 7 "further optimizations", implemented and measured.

1. **M2L+L2L kernel fusion** — "the M2L and L2L stages could be fused to
   prevent 1 read and 1 write ... of the L data" (Section 5.3).
2. **Operator symmetries** — "exploiting additional symmetries of the
   operators M2L, S2T, M2M, and S2M to further reduce memory
   requirements" (Section 7): storage saved by the S2T reversal, the
   M2M child mirror, the L2T/L2L transposes, and M2L persymmetry.
3. **Reduced-order transforms** — "FFTs that produce less accurate
   results are then potentially faster by 1.5x" (Section 6.3.4): the
   error model picks Q for a tolerance and we measure the FMM-stage
   speedup (simulated) and the delivered accuracy (real numerics).
"""

import numpy as np
import pytest

from repro.bench.figures import emit
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_relative_error
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.fmm.symmetry import operator_storage_savings
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink
from repro.model.error import choose_q, predicted_error
from repro.util.prng import random_signal
from repro.util.table import Table


def test_ext_m2l_l2l_fusion(benchmark):
    geom = FmmGeometry.create(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2)
    spec = dual_p100_nvlink()

    def run():
        cl_s = VirtualCluster(spec, execute=False)
        DistributedFMM(geom, cl_s).run(staged=True)
        cl_f = VirtualCluster(spec, execute=False)
        DistributedFMM(geom, cl_f, fuse_m2l_l2l=True).run(staged=True)
        return (cl_s.wall_time(), cl_s.ledger.total("mops"),
                cl_f.wall_time(), cl_f.ledger.total("mops"))

    t_s, m_s, t_f, m_f = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_fusion",
        f"FMM stage N=2^27 cfg: split {t_s*1e3:.2f} ms / {m_s/2**30:.2f} GiB moved; "
        f"fused M2L+L2L {t_f*1e3:.2f} ms / {m_f/2**30:.2f} GiB moved "
        f"({100*(m_s-m_f)/m_s:.1f}% fewer memory ops)",
    )
    assert t_f <= t_s
    assert m_f < m_s


def test_ext_operator_symmetries(benchmark):
    s = benchmark.pedantic(
        lambda: operator_storage_savings(P=256, ML=64, Q=16, levels=10),
        rounds=1, iterations=1,
    )
    t = Table(["symmetry", "bytes saved"], title="Operator storage savings (Fig-2 config)")
    t.add_row(["S2T reversal (p <-> P-p)", f"{s['s2t']/2**20:.2f} MiB"])
    t.add_row(["M2M child mirror + L2L transpose", f"{s['m2m_l2l']/1024:.2f} KiB"])
    t.add_row(["L2T = S2M^T", f"{s['l2t']/1024:.2f} KiB"])
    t.add_row(["M2L persymmetry", f"{s['m2l']/2**20:.2f} MiB"])
    t.add_row(["total fraction", f"{100*s['total_fraction']:.1f}%"])
    emit("ext_symmetries", t.render())
    assert s["total_fraction"] > 0.3


def test_ext_reduced_q(benchmark):
    spec = dual_p100_nvlink()
    N, P, ML, B, G = 1 << 24, 1 << 9, 64, 3, 2

    def run():
        rows = {}
        for tol in (1e-14, 1e-10, 1e-6, 1e-3):
            Q = choose_q(tol)
            geom = FmmGeometry.create(M=N // P, P=P, ML=ML, B=B, Q=Q, G=G)
            cl = VirtualCluster(spec, execute=False)
            DistributedFMM(geom, cl).run(staged=True)
            plan = FmmFftPlan.create(N=1 << 12, P=16, ML=16, B=2, Q=Q)
            err = fmmfft_relative_error(random_signal(1 << 12, seed=1), plan)
            rows[tol] = dict(Q=Q, fmm_ms=cl.wall_time() * 1e3, err=err,
                             pred=predicted_error(Q))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["tolerance", "chosen Q", "FMM stage [ms]", "measured err", "predicted err"],
              title="Reduced-order transforms (Section 6.3.4)")
    for tol, r in rows.items():
        t.add_row([f"{tol:g}", r["Q"], r["fmm_ms"], f"{r['err']:.2e}", f"{r['pred']:.2e}"])
    emit("ext_reduced_q", t.render())

    for tol, r in rows.items():
        assert r["err"] < tol
    # the paper's "potentially faster by 1.5x" claim for loose tolerances
    speedup = rows[1e-14]["fmm_ms"] / rows[1e-3]["fmm_ms"]
    assert 1.15 < speedup < 2.5
