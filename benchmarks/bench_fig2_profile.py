"""Figure 2: execution profiles of the 1D FFT vs the FMM-FFT.

N = 2^27, double-complex, 2xP100/NVLink, FMM-FFT parameters
P = 256, M_L = 64, B = 3, Q = 16.  The paper's nvprof timelines show the
1D FFT "severely communication bound" (three yellow all-to-all phases
with overlapped compute) while the FMM-FFT front-loads a large compute
block (the FMMs, 255 of size 524k, ~32 ms, 35 kernel launches) followed
by the single-transpose 2D FFT.

We regenerate both timelines from the simulator's ledger and assert the
quantitative claims: the launch inventory is exactly 35, the FMM-stage
time lands in the paper's band, and the baseline is comm-dominated.
"""

import pytest

from repro.bench.data import PAPER_FIG2
from repro.bench.figures import emit
from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink


def _run_profiles():
    cfg = PAPER_FIG2
    # baseline
    cl_b = VirtualCluster(dual_p100_nvlink(), execute=False)
    Distributed1DFFT(cfg["N"], cl_b, dtype=cfg["dtype"]).run()
    # FMM-FFT
    plan = FmmFftPlan.create(
        N=cfg["N"], P=cfg["P"], ML=cfg["ML"], B=cfg["B"], Q=cfg["Q"],
        G=cfg["G"], dtype=cfg["dtype"], build_operators=False,
    )
    cl_f = VirtualCluster(dual_p100_nvlink(), execute=False)
    FmmFftDistributed(plan, cl_f).run()
    return cl_b, cl_f, plan


def test_fig2_profiles(benchmark):
    cl_b, cl_f, plan = benchmark.pedantic(_run_profiles, rounds=1, iterations=1)

    text = []
    text.append("-- 1D cuFFTXT-style baseline (top panel) --")
    text.append(cl_b.trace().render_profile(width=96, devices=[0]))
    text.append("")
    text.append("-- FMM-FFT (bottom panel) --")
    text.append(cl_f.trace().render_profile(width=96, devices=[0]))
    text.append("")
    text.append(cl_f.trace().stage_summary().render())

    # quantitative claims
    fmm_names = [
        n for n in cl_f.ledger.time_by_name()
        if not n.startswith(("fft2d", "COMM", "relayout"))
    ]
    launches = sum(
        1 for r in cl_f.ledger.records(device=0)
        if r.name in fmm_names and r.kind not in ("comm", "host")
    )
    fmm_time = max(
        max(r.end for r in cl_f.ledger.records(device=g) if r.name in fmm_names)
        for g in range(2)
    )
    text.append("")
    text.append(
        f"claims: FMMs={plan.P - 1} of size {plan.M}x{plan.M} "
        f"(paper: {PAPER_FIG2['fmm_count']} of {PAPER_FIG2['fmm_size']}); "
        f"FMM stage {fmm_time * 1e3:.1f} ms (paper ~{PAPER_FIG2['fmm_time_ms']} ms); "
        f"{launches} kernel launches (paper {PAPER_FIG2['kernel_launches']})"
    )
    emit("fig2_profile", "\n".join(text))

    assert plan.P - 1 == PAPER_FIG2["fmm_count"]
    assert plan.M == PAPER_FIG2["fmm_size"]
    assert launches == PAPER_FIG2["kernel_launches"]
    assert 15e-3 < fmm_time < 60e-3
    # baseline is communication bound; the FMM-FFT is not
    tr_b, tr_f = cl_b.trace(), cl_f.trace()
    assert tr_b.comm_time(0) > tr_b.compute_time(0)
    assert tr_f.compute_time(0) > tr_f.comm_time(0)
    # and the FMM-FFT is faster end to end
    assert cl_f.wall_time() < cl_b.wall_time()
