"""Real host-CPU benchmarks of the library's compute kernels.

Unlike the figure benches (which report *simulated* device time), these
measure the actual NumPy implementations on this machine via
pytest-benchmark — the numbers a developer profiles when optimizing the
substrate (see the HPC guides: measure, don't guess).
"""

import numpy as np
import pytest

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single
from repro.fftcore.stockham import fft_pow2
from repro.fftcore.bluestein import fft_bluestein
from repro.fmm.batched import BatchedFMM
from repro.fmm.plan import FmmOperators
from repro.util.prng import random_signal


@pytest.fixture(scope="module")
def signal_2_16():
    return random_signal(1 << 16, seed=0)


def test_host_stockham_2_16(benchmark, signal_2_16):
    out = benchmark(fft_pow2, signal_2_16)
    assert out.shape == signal_2_16.shape


def test_host_stockham_radix2_2_16(benchmark, signal_2_16):
    out = benchmark(lambda: fft_pow2(signal_2_16, radix=2))
    assert out.shape == signal_2_16.shape


def test_host_bluestein_60000(benchmark):
    x = random_signal(60000, seed=1)
    out = benchmark(fft_bluestein, x)
    assert out.shape == x.shape


def test_host_batched_fmm(benchmark, rng_seed=3):
    ops = FmmOperators.create(M=4096, P=16, ML=64, B=3, Q=16)
    fmm = BatchedFMM(ops)
    rng = np.random.default_rng(rng_seed)
    S = rng.uniform(-1, 1, (16, 4096)) + 1j * rng.uniform(-1, 1, (16, 4096))
    T, r = benchmark(fmm.apply, S)
    assert T.shape == (16, 4096)


def test_host_fmmfft_end_to_end(benchmark):
    plan = FmmFftPlan.create(N=1 << 14, P=16, ML=64, B=3, Q=16)
    x = random_signal(1 << 14, seed=4)
    out = benchmark(lambda: fmmfft_single(x, plan, backend="auto"))
    ref = np.fft.fft(x)
    assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-13


def test_host_numpy_fft_reference(benchmark, signal_2_16):
    """pocketfft on the same input, for context."""
    out = benchmark(np.fft.fft, signal_2_16)
    assert out.shape == signal_2_16.shape
