"""Figure 8: B (base level) dependence of the FMM stage.

N = 2^27, P = 256, M_L = 64, G = 2, double-complex, B swept 3..11.
The paper's point: despite the 2^B(2^B-3) growth of dense base-level
work, performance is flat until B ~ 11 — so B > 2 can be used freely to
trade tree-top latency/communication for dense compute.
"""

import pytest

from repro.bench.figures import emit
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink
from repro.model.flops import fmm_total_flops
from repro.model.roofline import fmm_model_time
from repro.util.table import Table

N, P, ML, Q, G = 1 << 27, 256, 64, 16, 2
BS = list(range(3, 12))


def _sweep():
    spec = dual_p100_nvlink()
    rows = {}
    for B in BS:
        geom = FmmGeometry.create(M=N // P, P=P, ML=ML, B=B, Q=Q, G=G)
        cl = VirtualCluster(spec, execute=False)
        DistributedFMM(geom, cl).run(staged=True)
        rows[B] = dict(
            gflops=fmm_total_flops(geom, "complex128") / 1e9,
            model_ms=fmm_model_time(geom, spec, "complex128") * 1e3,
            measured_ms=cl.wall_time() * 1e3,
        )
    return rows


def test_fig8_b_dependence(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["B", "FMM Ops [GFlops]", "FMM Model [msec]", "FMM Measured [msec]"],
        title=f"Figure 8: B dependence (N=2^27, P={P}, ML={ML}, G={G}, cdouble)",
    )
    for B, r in rows.items():
        t.add_row([B, r["gflops"], r["model_ms"], r["measured_ms"]])
    emit("fig8_b_dependence", t.render())

    # flat until the base-level work takes over near B ~ 11
    assert rows[8]["measured_ms"] < 1.25 * rows[3]["measured_ms"]
    assert rows[11]["measured_ms"] > 1.5 * rows[3]["measured_ms"]
    # flops grow monotonically with B at the top end
    assert rows[11]["gflops"] > rows[9]["gflops"] > rows[7]["gflops"]
