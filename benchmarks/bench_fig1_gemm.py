"""Figure 1: GEMM vs BatchedGEMM performance on K40c and P100.

The paper benchmarks cuBLAS GEMM of size N^2 x N x N against
BatchedGEMM of N multiplies of size N x N x N, in single and double
precision, and overlays the Section 5.4 roofline parameters.  We
regenerate the curves from the device model (the BatchedGEMM derate on
K40c and near-parity on P100 are the calibrated facts this figure
established), and additionally benchmark this host's *real* batched
matmul throughput as an honest measured series.
"""

import numpy as np
import pytest

from repro.bench.figures import emit
from repro.machine.roofline import gemm_performance
from repro.machine.spec import K40C, P100
from repro.util.table import Table

SIZES = [32, 64, 128, 192, 256, 384, 512, 768, 1024]


def _model_table() -> str:
    parts = []
    for dev in (K40C, P100):
        t = Table(
            ["N", "SGEMM", "BatchedSGEMM", "DGEMM", "BatchedDGEMM"],
            title=f"Figure 1 ({dev.name}) — modeled GFlop/s "
            f"(gamma_f={dev.gamma_f/1e12:.1f} TF, gamma_d={dev.gamma_d/1e12:.1f} TF, "
            f"beta={dev.beta/1e9:.0f} GB/s)",
        )
        for n in SIZES:
            t.add_row([
                n,
                gemm_performance(dev, n, np.float32) / 1e9,
                gemm_performance(dev, n, np.float32, batched=True) / 1e9,
                gemm_performance(dev, n, np.float64) / 1e9,
                gemm_performance(dev, n, np.float64, batched=True) / 1e9,
            ])
        parts.append(t.render())
    return "\n\n".join(parts)


def test_fig1_gemm_curves(benchmark):
    text = benchmark.pedantic(_model_table, rounds=1, iterations=1)
    emit("fig1_gemm", text)
    # the figure's two qualitative facts
    assert gemm_performance(K40C, 512, np.float32, batched=True) < 0.7 * gemm_performance(
        K40C, 512, np.float32
    )
    assert gemm_performance(P100, 512, np.float32, batched=True) > 0.85 * gemm_performance(
        P100, 512, np.float32
    )


def test_fig1_host_batched_matmul(benchmark):
    """Real measured batched GEMM on this host (NumPy/BLAS), the
    engine's compute substrate."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 128, 128))
    b = rng.standard_normal((64, 128, 128))

    result = benchmark(lambda: a @ b)
    assert result.shape == (64, 128, 128)
