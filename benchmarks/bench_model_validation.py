"""Section 5/6 model-validation artifacts.

Regenerates the paper's quantitative model statements as a table:

- per-stage flop/mop/comm counts (ledger vs closed forms);
- the collected flop expression's agreement with the exact count (and
  hence with Edelman's count at P = G, C = 2, B = 2);
- the FMM intensity ~7.8 flops/byte and 2.7 TF/s roofline on P100 at
  the N = 2^27 configuration;
- the communication reduction "up to 3x";
- the theoretical crossover ratio ~0.031 byte/flop on P100.
"""

import pytest

from repro.bench.data import PAPER_MODEL
from repro.bench.figures import emit
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import P100, dual_p100_nvlink
from repro.model.comm import communication_savings, fmm_comm_bytes
from repro.model.flops import fmm_flops_collected, fmm_stage_flops, fmm_total_flops
from repro.model.mops import fmm_stage_mops, fmm_total_mops
from repro.model.roofline import fmm_intensity
from repro.util.table import Table

N, P_, ML, B, Q, G = 1 << 27, 256, 64, 3, 16, 2


def _validate():
    geom = FmmGeometry.create(M=N // P_, P=P_, ML=ML, B=B, Q=Q, G=G)
    cl = VirtualCluster(dual_p100_nvlink(), execute=False)
    DistributedFMM(geom, cl).run(staged=True)

    model_f = fmm_stage_flops(geom, "complex128")
    model_m = fmm_stage_mops(geom, "complex128")
    ledger_f = cl.ledger.flops_by_name()
    ledger_m = cl.ledger.mops_by_name()

    t = Table(
        ["stage", "model flops", "ledger flops", "model bytes", "ledger bytes"],
        title=f"Ledger vs Section 5 closed forms (per device x G={G})",
    )
    worst = 0.0
    for stage in sorted(model_f):
        lf, lm = ledger_f.get(stage, 0.0) / G, ledger_m.get(stage, 0.0) / G
        t.add_row([stage, f"{model_f[stage]:.4g}", f"{lf:.4g}",
                   f"{model_m[stage]:.4g}", f"{lm:.4g}"])
        worst = max(worst, abs(lf - model_f[stage]) / max(model_f[stage], 1.0))

    intensity = fmm_intensity(geom, "complex128")
    roofline_tf = min(P100.gamma_d, P100.beta * intensity) / 1e12
    savings = communication_savings(N, G, geom)
    collected = fmm_flops_collected(N, P_, ML, Q, G, B)
    exact = fmm_total_flops(geom)
    crossover = P100.beta / min(P100.gamma_d, P100.beta * intensity) * (
        16.0 / (fmm_total_flops(geom) / (N / G))
    )

    summary = Table(["quantity", "ours", "paper"], title="Model headline quantities")
    summary.add_row(["FMM intensity [flop/byte, cdouble]", intensity,
                     PAPER_MODEL["fmm_intensity_double"]])
    summary.add_row(["FMM roofline [TF/s, P100 cdouble]", roofline_tf,
                     PAPER_MODEL["fmm_roofline_tflops_p100"]])
    summary.add_row(["comm reduction vs 1D FFT", savings, PAPER_MODEL["comm_reduction"]])
    summary.add_row(["collected/exact flop ratio", collected / exact, 1.0])

    return t.render() + "\n\n" + summary.render(), worst, intensity, roofline_tf, savings


def test_model_validation(benchmark):
    text, worst, intensity, roofline_tf, savings = benchmark.pedantic(
        _validate, rounds=1, iterations=1
    )
    emit("model_validation", text)
    assert worst < 1e-9, "ledger flops must equal the closed forms"
    assert 5.0 < intensity < 12.0         # paper: 7.8
    assert 1.8 < roofline_tf < 4.0        # paper: 2.7
    assert 2.5 < savings < 3.01           # paper: "up to 3x"
