"""Multi-node projection — the paper's Section 7 outlook, quantified.

"Extending the results to multiple nodes is necessary ... the
performance on multiple nodes is very likely to improve relative
performance and energy efficiency due to higher internode communication
costs."

We sweep 1/2/4/8 nodes of 4 NVLink-connected P100s joined by a
10 GB/s-class fabric.  The transpose-bound 1D FFT collapses onto the
NICs while the FMM-FFT (one all-to-all instead of three, and
compute-hidden halos) approaches the 3x communication-reduction
ceiling.
"""

import pytest

from repro.bench.figures import emit
from repro.machine.multinode import multinode_p100
from repro.model.search import find_fastest
from repro.util.table import Table

N = 1 << 26


def _sweep():
    rows = {}
    for nodes in (1, 2, 4, 8):
        spec = multinode_p100(nodes, gpus_per_node=4)
        r = find_fastest(N, spec)
        rows[nodes] = dict(
            name=spec.name,
            G=spec.num_devices,
            a2a_gbs=spec.alltoall_bandwidth() / 1e9,
            fmmfft_ms=r.fmmfft_time * 1e3,
            baseline_ms=r.baseline_time * 1e3,
            speedup=r.speedup,
        )
    return rows


def test_multinode_projection(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["nodes", "system", "G", "a2a inj [GB/s]", "FMM-FFT [ms]",
         "1D FFT [ms]", "speedup"],
        title=f"Multi-node projection, N = 2^26 cdouble (Section 7 outlook)",
    )
    for nodes, r in rows.items():
        t.add_row([nodes, r["name"], r["G"], r["a2a_gbs"],
                   r["fmmfft_ms"], r["baseline_ms"], r["speedup"]])
    emit("multinode_projection", t.render())

    # the paper's prediction: relative performance improves across nodes
    assert rows[2]["speedup"] > 1.5 * rows[1]["speedup"]
    assert rows[4]["speedup"] > 2.0
    # and approaches (never exceeds by much) the 3x comm-reduction limit
    for r in rows.values():
        assert r["speedup"] < 3.2
