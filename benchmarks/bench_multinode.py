"""Multi-node crossover benchmark on routed fat-tree fabrics.

The paper's Section 7 outlook, measured instead of projected: sweep
16-256 devices (4 P100s per node on an oversubscribed fat tree) and
record the FMM-FFT vs 1D-FFT crossover curves in two regimes —

- **weak scaling**: N grows with the machine (``2^22`` points per
  device), the production regime where the transpose payload per NIC
  stays constant while its latency/contention share grows;
- **strong scaling**: fixed ``N = 2^26`` spread ever thinner, where
  per-message latency over the routed fabric eventually dominates.

Alongside the curves, recorded to ``benchmarks/out/BENCH_multinode.json``:

- the node-aware ``hier2`` all-to-all/allgather plans are **certified**
  by the static verifier (zero findings) on every swept fabric shape;
- a wall-time comparison of every collective algorithm for the
  transpose payload on one routed testbed; and
- a seeded **whole-node-loss** chaos run through the serving stack —
  requests admitted before the loss complete, later ones are shed with
  every request accounted, and an identically seeded replay is
  **bit-identical** (:meth:`Ledger.fingerprint`).

Run standalone with ``--smoke`` for the CI quick pass.
"""

import json
import sys

from repro import comm
from repro.analysis.plancheck import check_plan
from repro.bench.figures import emit, out_dir
from repro.comm.plans import build_plan
from repro.faults import FaultInjector, node_loss
from repro.machine.cluster import VirtualCluster
from repro.machine.multinode import routed_multinode_p100
from repro.model.search import find_fastest, search_grid
from repro.util.bitmath import ilog2
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    summarize,
    synthetic_workload,
)
from repro.util.table import Table

DTYPE = "complex128"
GPUS_PER_NODE = 4
RADIX = 36
OVERSUBSCRIPTION = 2.0
#: weak scaling: points per device; strong scaling: fixed total size
WEAK_PER_DEVICE = 1 << 22
STRONG_N = 1 << 26
DEVICE_SWEEP = (16, 32, 64, 128, 256)
SMOKE_SWEEP = (16, 64)
#: hier2 certification payload (per-device bytes)
CERT_PAYLOAD = float(1 << 20)
#: the paper's large-N leaf size (Section 6.3), used beyond B = 5
ML_LARGE = 64
#: algorithm-comparison testbed and payload
ALGO_NODES = 4
ALGO_PAYLOAD = float(1 << 22)
ALGORITHMS = ("bulk", "direct", "ring", "bruck", "hier", "hier2")
#: whole-node-loss chaos scenario
CHAOS_SEED = 7
CHAOS_TRANSIENT_RATE = 0.01
LOST_NODE = 1
LOSS_TIME = 15e-3
CHAOS_RATE = 2000.0


def _fabric(nodes):
    return routed_multinode_p100(
        nodes, gpus_per_node=GPUS_PER_NODE, radix=RADIX,
        oversubscription=OVERSUBSCRIPTION)


def _grid(N, G):
    """Admissible FMM-FFT candidates, square-most first, pruned.

    ``search_grid`` honors the paper's ``B <= 5`` sweep, which requires
    ``G | 2^B`` — empty beyond 32 devices.  Past that we take the
    minimal admissible tree split ``B = log2(G)`` over the same
    P x ML space.
    """
    rows = search_grid(N, G, DTYPE)
    if not rows:
        b = ilog2(G)
        P = max(32, 2 * G)
        while N // P >= 32:
            M = N // P
            if ML_LARGE * 4 <= M and b <= ilog2(M // ML_LARGE):
                rows.append(dict(P=P, ML=ML_LARGE, B=b, Q=16))
            P *= 2
        # skinny-most first: on many-node fabrics the all-to-all over P
        # columns dominates, so small P wins — unlike the intra-node
        # square-most preference search_grid encodes
    return rows[:12]


def _scaling(g_list):
    """fmmfft-vs-fft1d times per device count, weak and strong."""
    curves = {"weak": [], "strong": []}
    for G in g_list:
        spec = _fabric(G // GPUS_PER_NODE)
        for regime, N in (("weak", G * WEAK_PER_DEVICE), ("strong", STRONG_N)):
            r = find_fastest(N, spec, dtype=DTYPE, grid=_grid(N, G))
            curves[regime].append({
                "G": G, "nodes": G // GPUS_PER_NODE, "N": N,
                "fmmfft_ms": r.fmmfft_time * 1e3,
                "fft1d_ms": r.baseline_time * 1e3,
                "speedup": r.speedup,
            })
    return curves


def _certify(g_list):
    """hier2 plans through the static verifier on every swept fabric."""
    rows = []
    for G in g_list:
        spec = _fabric(G // GPUS_PER_NODE)
        for kind in ("alltoall", "allgather"):
            plan = build_plan(spec, kind, CERT_PAYLOAD, "hier2",
                              reads=("x",), certify=False)
            cert = check_plan(spec, plan, CERT_PAYLOAD)
            rows.append({
                "G": G, "kind": kind, "algorithm": "hier2",
                "messages": cert.num_messages, "rounds": cert.num_rounds,
                "findings": len(cert.findings), "ok": cert.ok,
            })
    return rows


def _algorithms():
    """Wall time of each collective algorithm for one routed testbed."""
    times = {}
    for algo in ALGORITHMS:
        cl = VirtualCluster(_fabric(ALGO_NODES), execute=False)
        comm.alltoall(cl, ALGO_PAYLOAD, "a2a", algorithm=algo,
                      reads=["x"], writes=["y"])
        cl.barrier()
        times[algo] = cl.wall_time() * 1e3
    return times


def _chaos_injector(spec):
    return FaultInjector(
        spec, seed=CHAOS_SEED, transient_rate=CHAOS_TRANSIENT_RATE,
        scheduled=node_loss(spec, LOST_NODE, LOSS_TIME))


def _chaos_run(spec, requests, faults):
    cl = VirtualCluster(spec, execute=False, faults=faults)
    sched = ServeScheduler(
        cl, Batcher(PlanCache(spec), max_batch=8),
        queue=AdmissionQueue(capacity=4096),
        max_inflight=2, retry_budget=2,
    )
    sched.run(requests)
    cl.sanitize()
    return cl, sched


def _chaos(num_requests):
    """Serve through a whole-node failure; prove the replay gate."""
    spec = routed_multinode_p100(2, gpus_per_node=GPUS_PER_NODE, radix=4)
    requests = synthetic_workload(num_requests, rate=CHAOS_RATE, seed=11)
    cl, sched = _chaos_run(spec, requests, _chaos_injector(spec))
    rep = summarize(sched)
    cl2, _ = _chaos_run(spec, requests, _chaos_injector(spec))
    return {
        "system": spec.name, "num_requests": num_requests,
        "lost_node": LOST_NODE, "loss_time": LOSS_TIME,
        "chaos_seed": CHAOS_SEED,
        "report": json.loads(rep.to_json()),
        "replay_identical":
            cl.ledger.fingerprint() == cl2.ledger.fingerprint(),
    }


def _collect(smoke=False):
    g_list = SMOKE_SWEEP if smoke else DEVICE_SWEEP
    return {
        "dtype": DTYPE, "gpus_per_node": GPUS_PER_NODE,
        "radix": RADIX, "oversubscription": OVERSUBSCRIPTION,
        "device_sweep": list(g_list),
        "scaling": _scaling(g_list),
        "hier2_certification": _certify(g_list),
        "algorithm_times_ms": _algorithms(),
        "node_loss_chaos": _chaos(8 if smoke else 32),
    }


def _render(payload):
    blocks = []
    for regime, rows in payload["scaling"].items():
        t = Table(
            ["G", "nodes", "N", "FMM-FFT [ms]", "1D FFT [ms]", "speedup"],
            title=f"{regime} scaling, fat-tree r{payload['radix']} "
                  f"o{payload['oversubscription']:g} ({payload['dtype']})",
        )
        for r in rows:
            t.add_row([r["G"], r["nodes"], r["N"],
                       f"{r['fmmfft_ms']:.2f}", f"{r['fft1d_ms']:.2f}",
                       f"{r['speedup']:.2f}"])
        blocks.append(t.render())
    ct = Table(["G", "kind", "msgs", "rounds", "verdict"],
               title="hier2 static certification")
    for r in payload["hier2_certification"]:
        ct.add_row([r["G"], r["kind"], r["messages"], r["rounds"],
                    "certified" if r["ok"] else f"{r['findings']} finding(s)"])
    blocks.append(ct.render())
    at = Table(["algorithm", "alltoall [ms]"],
               title=f"collective algorithms, {ALGO_NODES * GPUS_PER_NODE} "
                     f"devices, {ALGO_PAYLOAD / 2**20:.0f} MiB/device")
    for algo, ms in payload["algorithm_times_ms"].items():
        at.add_row([algo, f"{ms:.3f}"])
    blocks.append(at.render())
    ch = payload["node_loss_chaos"]
    rep = ch["report"]
    blocks.append(
        f"node-loss chaos on {ch['system']}: node {ch['lost_node']} lost at "
        f"{ch['loss_time'] * 1e3:g} ms -> {rep['completed']} completed, "
        f"{sum(rep['shed'].values()) + sum(rep['retry_shed'].values())} "
        f"shed of {ch['num_requests']}; replay bit-identical: "
        f"{ch['replay_identical']}")
    return "\n\n".join(blocks)


def _check(payload):
    # every hier2 plan certifies with zero findings
    for r in payload["hier2_certification"]:
        assert r["ok"], r
    # weak scaling: the FMM-FFT stays past the crossover on every
    # routed machine when the per-device payload is held fixed
    weak = payload["scaling"]["weak"]
    for r in weak:
        assert 1.0 < r["speedup"] < 3.5, r
    # strong scaling: clearly ahead on mid-size machines, but spreading
    # a fixed N ever thinner turns latency-dominated — the advantage at
    # the largest machine sits below the curve's peak (the crossover
    # bends back)
    strong = payload["scaling"]["strong"]
    peak = max(r["speedup"] for r in strong)
    assert peak > 1.5, strong
    assert strong[-1]["speedup"] < peak, strong
    for r in strong:
        assert 0.4 < r["speedup"] < 3.5, r
    # node-aware hier2 beats the flat bulk model on a routed fabric
    times = payload["algorithm_times_ms"]
    assert times["hier2"] < times["direct"], times
    ch = payload["node_loss_chaos"]
    rep = ch["report"]
    assert ch["replay_identical"], ch
    assert rep["fault_events"] >= GPUS_PER_NODE, rep
    assert rep["completed"] > 0, rep
    shed = sum(rep["shed"].values()) + sum(rep["retry_shed"].values())
    assert rep["completed"] + shed == ch["num_requests"], rep


def _emit(payload):
    emit("multinode_crossover", _render(payload))
    path = out_dir() / "BENCH_multinode.json"
    path.write_text(json.dumps(payload, indent=1))
    return path


def test_multinode_crossover(benchmark):
    """Benchmark the routed-fabric sweep and validate the claims."""
    payload = benchmark.pedantic(lambda: _collect(smoke=True),
                                 rounds=1, iterations=1)
    _emit(payload)
    _check(payload)


def main(argv):
    """Standalone entry: ``--smoke`` runs the reduced sweep for CI."""
    payload = _collect(smoke="--smoke" in argv)
    path = _emit(payload)
    _check(payload)
    print(_render(payload))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
