"""Figure 9: Q (expansion order) dependence — cost (top) and accuracy
(bottom).

Top: flop count and model time vs Q at N = 2^28, P = 128, M_L = 64,
B = 3, G = 2 (weak dependence).

Bottom: measured relative l2 error of the full double-complex FMM-FFT
vs Q, input components uniform in [-1, 1].  The paper observes the
odd-even staircase Edelman reported, a floor near machine precision,
and no improvement above Q ~ 18.  The error measurement runs the *real*
numerics (at a feasible N — the error is N-insensitive by construction
of the kernels).
"""

import numpy as np
import pytest

from repro.bench.figures import emit
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_relative_error
from repro.fmm.plan import FmmGeometry
from repro.machine.spec import dual_p100_nvlink
from repro.model.flops import fmm_total_flops
from repro.model.roofline import fmm_model_time
from repro.util.prng import random_signal
from repro.util.table import Table

QS = list(range(2, 25, 2))


def _cost_sweep():
    spec = dual_p100_nvlink()
    N, P, ML, B, G = 1 << 28, 128, 64, 3, 2
    rows = {}
    for Q in QS:
        geom = FmmGeometry.create(M=N // P, P=P, ML=ML, B=B, Q=Q, G=G)
        rows[Q] = dict(
            gflops=fmm_total_flops(geom, "complex128") / 1e9,
            model_ms=fmm_model_time(geom, spec, "complex128") * 1e3,
        )
    return rows


def _error_sweep():
    N, P, ML, B = 1 << 13, 16, 16, 3
    x = random_signal(N, "complex128", seed=99)
    errs = {}
    for Q in range(2, 25):
        plan = FmmFftPlan.create(N=N, P=P, ML=ML, B=B, Q=Q)
        errs[Q] = fmmfft_relative_error(x, plan)
    return errs


def test_fig9_top_cost(benchmark):
    rows = benchmark.pedantic(_cost_sweep, rounds=1, iterations=1)
    t = Table(
        ["Q", "FMM Ops [GFlops]", "FMM Model [msec]"],
        title="Figure 9 (top): Q dependence of cost (N=2^28, P=128, ML=64, B=3, G=2)",
    )
    for Q, r in rows.items():
        t.add_row([Q, r["gflops"], r["model_ms"]])
    emit("fig9_q_cost", t.render())
    # weak dependence: 3x range of Q < 2.5x range of time
    assert rows[24]["model_ms"] < 2.5 * rows[8]["model_ms"]


def test_fig9_bottom_accuracy(benchmark):
    errs = benchmark.pedantic(_error_sweep, rounds=1, iterations=1)
    t = Table(
        ["Q", "relative l2 error"],
        title="Figure 9 (bottom): Q dependence of FMM-FFT accuracy (cdouble)",
    )
    for Q, e in errs.items():
        t.add_row([Q, f"{e:.3e}"])
    emit("fig9_q_accuracy", t.render())

    # geometric convergence until the machine-precision floor
    assert errs[4] < errs[2]
    assert errs[8] < 1e-3 * errs[2]
    assert errs[16] < 1e-2 * errs[8]
    assert errs[18] < 1e-12
    # no improvement above Q ~ 18 (Section 6.3.4)
    floor = errs[18]
    for Q in (20, 22, 24):
        assert errs[Q] < 50 * floor
        assert errs[Q] > floor * 1e-2
    # the odd-even behaviour: an odd order rarely beats the next even one
    evens_beat_odds = sum(1 for Q in range(3, 15, 2) if errs[Q + 1] < errs[Q])
    assert evens_beat_odds >= 3
