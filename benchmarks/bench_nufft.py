"""NUFFT (the P = 1 lineage): accuracy and complexity checks.

Not a paper figure — the paper's Section 2 credits Dutt-Rokhlin as the
FMM-FFT's ancestor — but the reproduction includes the ancestor, so we
bench it: accuracy vs Q (the "error a priori" knob shared with the
FMM-FFT) and the O(n log n + m) scaling against the O(n m) direct sum.
"""

import time

import numpy as np
import pytest

from repro.bench.figures import emit
from repro.nufft import nudft2_direct, nufft2
from repro.nufft.nonuniform_fmm import NonuniformPeriodicFMM
from repro.util.table import Table


def test_nufft_accuracy_vs_q(benchmark):
    rng = np.random.default_rng(3)
    n, m = 512, 1200
    c = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    x = rng.uniform(0, 1, m)
    ref = nudft2_direct(c, x)

    def sweep():
        return {Q: float(np.linalg.norm(nufft2(c, x, Q=Q) - ref) / np.linalg.norm(ref))
                for Q in (4, 8, 12, 16, 20)}

    errs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = Table(["Q", "relative l2 error"], title="NUFFT-2 accuracy vs expansion order")
    for Q, e in errs.items():
        t.add_row([Q, f"{e:.2e}"])
    emit("nufft_accuracy", t.render())
    assert errs[8] < 3e-3 * errs[4]
    assert errs[16] < 1e-12


def test_nufft_scaling(benchmark):
    """FMM evaluation cost grows ~linearly in points; dense grows
    quadratically.  Measured on this host."""
    rng = np.random.default_rng(4)

    def measure(n):
        src = rng.uniform(0, 1, n)
        tgt = rng.uniform(0, 1, n)
        import math

        L = max(3, int(math.log2(n)) - 5)
        fmm = NonuniformPeriodicFMM(src, tgt, L=L, B=3 if L >= 3 else 2, Q=12)
        w = rng.standard_normal(n)
        t0 = time.perf_counter()
        fmm.apply(w)
        return time.perf_counter() - t0

    def sweep():
        return {n: measure(n) for n in (1000, 4000, 16000)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = Table(["points", "FMM apply [ms]"], title="Nonuniform FMM scaling (host)")
    for n, v in times.items():
        t.add_row([n, v * 1e3])
    emit("nufft_scaling", t.render())
    # 16x the points should cost far less than 256x (the dense ratio)
    assert times[16000] < 64 * times[1000]


def test_nufft2_host_throughput(benchmark):
    rng = np.random.default_rng(5)
    n, m = 1024, 5000
    c = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    x = rng.uniform(0, 1, m)
    out = benchmark(lambda: nufft2(c, x, Q=12))
    assert out.shape == (m,)
