"""Figure 4: fraction of FMM time spent in each kernel class vs N.

2xP100, double-complex, fastest configuration per N.  The paper's
observation: at small N (latency-bound, L = B favored) M2L-B and S2T do
the work; at large N, BatchedGEMM and S2T dominate and M2L-B is
negligible — "a significant divergence from most FMM studies".
"""

import pytest

from repro.bench.figures import emit
from repro.core.plan import FmmFftPlan
from repro.fmm.distributed import DistributedFMM
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink
from repro.model.search import find_fastest
from repro.util.table import Table

QS = list(range(12, 28, 2))

KERNEL_CLASSES = ("M2L-B", "M2L-ell", "S2T", "B-GEMM", "GEMV")


def _classify(name: str) -> str | None:
    if name == "M2L-B":
        return "M2L-B"
    if name.startswith("M2L-"):
        return "M2L-ell"
    if name == "S2T":
        return "S2T"
    if name in ("S2M", "L2T") or name.startswith(("M2M", "L2L")):
        return "B-GEMM"
    if name == "REDUCE":
        return "GEMV"
    return None


def fmm_time_fractions(q: int, spec) -> dict[str, float]:
    r = find_fastest(1 << q, spec)
    plan = FmmFftPlan.create(
        N=1 << q, G=spec.num_devices, build_operators=False, **r.params
    )
    cl = VirtualCluster(spec, execute=False)
    DistributedFMM(plan.geometry, cl).run(staged=True)
    acc = {k: 0.0 for k in KERNEL_CLASSES}
    for name, t in cl.ledger.time_by_name().items():
        cls = _classify(name)
        if cls is not None:
            acc[cls] += t
    total = sum(acc.values())
    return {k: v / total for k, v in acc.items()}


def _sweep():
    spec = dual_p100_nvlink()
    return {q: fmm_time_fractions(q, spec) for q in QS}


def test_fig4_kernel_fractions(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["log2N"] + list(KERNEL_CLASSES),
        title="Figure 4: fraction of FMM time per kernel (2xP100, cdouble)",
    )
    for q, frac in rows.items():
        t.add_row([q] + [frac[k] for k in KERNEL_CLASSES])
    emit("fig4_kernel_fractions", t.render())

    large = rows[max(rows)]
    # "the M2L-B stage is negligible and the time is dominated by
    #  BatchedGEMM and the S2T stage" for large N
    assert large["M2L-B"] < 0.1
    assert large["B-GEMM"] + large["S2T"] > 0.6
    # sanity: fractions form a distribution
    for frac in rows.values():
        assert sum(frac.values()) == pytest.approx(1.0)
