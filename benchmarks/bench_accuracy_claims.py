"""Section 6.1 accuracy claims.

"All reported results achieve less than 4e-7 relative l2 error in
single-complex precision and 2e-14 relative l2 error in double-complex
precision."  We reproduce the measurement with real numerics across a
spread of sizes and parameter sets (inputs uniform in [-1, 1], as in
Section 6.3.4), using the statically-tuned orders Q = 16 (double) and
Q = 8 (single).
"""

import numpy as np
import pytest

from repro.bench.data import PAPER_ACCURACY
from repro.bench.figures import emit
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_relative_error
from repro.util.prng import random_signal
from repro.util.table import Table

CONFIGS = [
    # (N, P, ML, B)
    (1 << 12, 32, 16, 2),
    (1 << 13, 32, 16, 3),
    (1 << 14, 64, 32, 2),
    (1 << 15, 64, 64, 3),
    (1 << 16, 64, 64, 3),
    (1 << 17, 128, 64, 3),
]


def _measure():
    rows = []
    for (N, P, ML, B) in CONFIGS:
        x64 = random_signal(N, "complex128", seed=N)
        plan64 = FmmFftPlan.create(N=N, P=P, ML=ML, B=B, Q=16)
        e64 = fmmfft_relative_error(x64, plan64)
        x32 = random_signal(N, "complex64", seed=N)
        plan32 = FmmFftPlan.create(N=N, P=P, ML=ML, B=B, Q=8, dtype="complex64")
        e32 = fmmfft_relative_error(x32, plan32)
        rows.append((N, P, ML, B, e32, e64))
    return rows


def test_accuracy_claims(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    t = Table(
        ["N", "P", "ML", "B", "csingle err (Q=8)", "cdouble err (Q=16)"],
        title="Section 6.1 accuracy claims (paper: < 4e-7 single, < 2e-14 double)",
    )
    for (N, P, ML, B, e32, e64) in rows:
        t.add_row([N, P, ML, B, f"{e32:.3e}", f"{e64:.3e}"])
    emit("accuracy_claims", t.render())

    for (N, P, ML, B, e32, e64) in rows:
        assert e32 < PAPER_ACCURACY["single_complex"], (N, e32)
        # allow a 2.5x cushion on the double bound: the paper reports its
        # fastest configs, this sweep includes stressed corners
        assert e64 < 2.5 * PAPER_ACCURACY["double_complex"], (N, e64)
