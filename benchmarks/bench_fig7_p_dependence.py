"""Figure 7: P dependence of the FMM stage and the 2D FFT.

N = 2^27, M_L = 64, B = 3, G = 2, double-complex, P swept 2^2..2^18.
The paper's observations: FMM flops/time are nearly flat in P (doubling
P doubles per-contraction work but removes one tree level); the 2D FFT
degrades ~3x at extreme aspect ratios (and cuFFTXT rejects dimensions
< 32); so moderate/large P is favored in practice.
"""

import pytest

from repro.bench.figures import emit
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink
from repro.model.flops import fmm_total_flops
from repro.model.roofline import fmm_model_time
from repro.model.search import simulate_fft2d
from repro.util.table import Table

N, ML, B, Q, G = 1 << 27, 64, 3, 16, 2
PS = [1 << k for k in range(2, 19, 2)]


def _sweep():
    spec = dual_p100_nvlink()
    rows = {}
    for P in PS:
        M = N // P
        if M // ML < (1 << B):      # tree must reach the base level
            continue
        geom = FmmGeometry.create(M=M, P=P, ML=ML, B=B, Q=Q, G=G)
        cl = VirtualCluster(spec, execute=False)
        DistributedFMM(geom, cl).run(staged=True)
        rows[P] = dict(
            gflops=fmm_total_flops(geom, "complex128") / 1e9,
            model_ms=fmm_model_time(geom, spec, "complex128") * 1e3,
            measured_ms=cl.wall_time() * 1e3,
            fft2d_ms=simulate_fft2d(N, P, spec, "complex128") * 1e3,
        )
    return rows


def test_fig7_p_dependence(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["P", "FMM Ops [GFlops]", "FMM Model [msec]", "FMM Measured [msec]", "2DFFT [msec]"],
        title=f"Figure 7: P dependence (N=2^27, ML={ML}, B={B}, G={G}, cdouble)",
    )
    for P, r in rows.items():
        t.add_row([P, r["gflops"], r["model_ms"], r["measured_ms"], r["fft2d_ms"]])
    emit("fig7_p_dependence", t.render())

    ps = sorted(rows)
    mid = [p for p in ps if 64 <= p <= 1 << 14]
    # FMM time is stable across the mid range (paper: "performance is
    # stable as P increases")
    mids = [rows[p]["measured_ms"] for p in mid]
    assert max(mids) / min(mids) < 1.5
    # 2D FFT degrades at the extreme-aspect ends (paper: ~3x)
    best2d = min(rows[p]["fft2d_ms"] for p in ps)
    assert rows[ps[0]]["fft2d_ms"] > 2.0 * best2d
    # FMM flop count varies weakly with P
    gf = [rows[p]["gflops"] for p in mid]
    assert max(gf) / min(gf) < 1.3
