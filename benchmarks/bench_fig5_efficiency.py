"""Figure 5: per-stage efficiency against the roofline model.

Efficiency of a stage = roofline minimum wall time (Eq. 3, no latency,
no derates) / simulated "measured" time.  The paper finds: BatchedGEMM
most efficient and critical at large N; M2L-ell and S2T around 60%
(hand-written CUDA vs assembly); M2L-B consistently least efficient but
negligible at large N; the whole FMM-FFT ~90% of peak when the measured
2D FFT is taken as 100% efficient.
"""

import pytest

from repro.bench.data import PAPER_MODEL
from repro.bench.figures import emit
from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.fmm.distributed import DistributedFMM
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink
from repro.model.roofline import fmm_model_time, fmm_stage_times
from repro.model.search import find_fastest, simulate_fft2d
from repro.util.table import Table

QS = [16, 18, 20, 22, 24, 26]

GROUPS = ("M2L-B", "M2L-ell", "S2T", "B-GEMM")


def _group(name: str) -> str | None:
    if name == "M2L-B":
        return "M2L-B"
    if name.startswith("M2L-"):
        return "M2L-ell"
    if name == "S2T":
        return "S2T"
    if name in ("S2M", "L2T") or name.startswith(("M2M", "L2L")):
        return "B-GEMM"
    return None


def _efficiencies(q: int, spec) -> dict[str, float]:
    r = find_fastest(1 << q, spec)
    plan = FmmFftPlan.create(
        N=1 << q, G=spec.num_devices, build_operators=False, **r.params
    )
    geom = plan.geometry
    # simulated (measured) per-stage times, device 0
    cl = VirtualCluster(spec, execute=False)
    DistributedFMM(geom, cl).run(staged=True)
    measured: dict[str, float] = {g: 0.0 for g in GROUPS}
    for name, t in cl.ledger.time_by_name().items():
        g = _group(name)
        if g is not None:
            measured[g] += t / spec.num_devices
    model: dict[str, float] = {g: 0.0 for g in GROUPS}
    for name, t in fmm_stage_times(geom, spec).items():
        g = _group(name)
        if g is not None:
            model[g] += t
    eff = {g: (model[g] / measured[g] if measured[g] else float("nan")) for g in GROUPS}
    # whole-FMM and whole-FMM-FFT efficiency
    fmm_measured = sum(measured.values())
    eff["FMM"] = fmm_model_time(geom, spec) / max(fmm_measured, 1e-30)
    t2d = simulate_fft2d(1 << q, r.params["P"], spec)
    cl2 = VirtualCluster(spec, execute=False)
    FmmFftDistributed(plan, cl2).run()
    eff["FMM-FFT"] = (fmm_model_time(geom, spec) + t2d) / cl2.wall_time()
    return eff


def test_fig5_efficiency(benchmark):
    spec = dual_p100_nvlink()
    rows = benchmark.pedantic(
        lambda: {q: _efficiencies(q, spec) for q in QS}, rounds=1, iterations=1
    )
    cols = list(GROUPS) + ["FMM", "FMM-FFT"]
    t = Table(["log2N"] + cols,
              title="Figure 5: achieved fraction of roofline model time (2xP100, cdouble)")
    for q, eff in rows.items():
        t.add_row([q] + [eff[c] for c in cols])
    emit("fig5_efficiency", t.render())

    large = rows[max(rows)]
    # B-GEMM the most efficient stage at large N
    valid = [large[g] for g in GROUPS if large[g] == large[g]]
    assert large["B-GEMM"] == max(valid)
    # custom kernels near their 60% derate
    assert 0.4 < large["S2T"] < 0.75
    assert 0.4 < large["M2L-ell"] < 0.75
    # overall FMM-FFT efficiency near the paper's ~90%
    assert large["FMM-FFT"] > 0.7
    # efficiencies are true fractions (nan = stage absent: L == B configs)
    for eff in rows.values():
        for c in cols:
            assert not eff[c] <= 0.0
            assert not eff[c] > 1.01
