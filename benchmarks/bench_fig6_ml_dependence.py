"""Figure 6: M_L dependence of the FMM stage.

N = 2^27, P = 256, B = 3, G = 2, double-complex, M_L swept 2^0..2^10.
The paper's point: the flop count is minimized near M_L ~ 32 (the value
[8, 15] tuned for), but *performance* is optimized at larger M_L (they
use 64) because the S2T stage's computational intensity grows with M_L
— flop counts are not proportional to time.
"""

import pytest

from repro.bench.figures import emit
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink
from repro.model.flops import fmm_total_flops
from repro.model.roofline import fmm_model_time
from repro.util.table import Table

N, P, B, Q, G = 1 << 27, 256, 3, 16, 2
MLS = [1 << k for k in range(0, 11)]


def _sweep():
    spec = dual_p100_nvlink()
    rows = {}
    for ML in MLS:
        geom = FmmGeometry.create(M=N // P, P=P, ML=ML, B=B, Q=Q, G=G)
        cl = VirtualCluster(spec, execute=False)
        DistributedFMM(geom, cl).run(staged=True)
        rows[ML] = dict(
            gflops=fmm_total_flops(geom, "complex128") / 1e9,
            model_ms=fmm_model_time(geom, spec, "complex128") * 1e3,
            measured_ms=cl.wall_time() * 1e3,
        )
    return rows


def test_fig6_ml_dependence(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["ML", "FMM Ops [GFlops]", "FMM Model [msec]", "FMM Measured [msec]"],
        title=f"Figure 6: ML dependence (N=2^27, P={P}, B={B}, G={G}, cdouble)",
    )
    for ML, r in rows.items():
        t.add_row([ML, r["gflops"], r["model_ms"], r["measured_ms"]])
    emit("fig6_ml_dependence", t.render())

    flop_opt = min(rows, key=lambda ml: rows[ml]["gflops"])
    time_opt = min(rows, key=lambda ml: rows[ml]["measured_ms"])
    # flop-count optimum near 32, performance optimum higher (paper: 64)
    assert flop_opt in (16, 32)
    assert time_opt >= flop_opt
    assert time_opt in (32, 64, 128)
    # the curve is U-shaped: both extremes are bad
    assert rows[1]["measured_ms"] > 2 * rows[time_opt]["measured_ms"]
    assert rows[1024]["measured_ms"] > 2 * rows[time_opt]["measured_ms"]
    # model tracks measured within the derate envelope at the optimum
    r = rows[time_opt]
    assert 0.4 < r["model_ms"] / r["measured_ms"] <= 1.0
