"""Ablations of the paper's design choices (DESIGN.md section 4).

1. **B > 2 vs B = 2** — the paper's generalization trades tree-top
   latency/communication for a dense base-level M2L (Sections 4.7, 6.3.3).
2. **Fused POST + 2D FFT callback vs unfused** — Algorithm 1 lines
   15-16's memory-round-trip saving.
3. **Chunk-pipelined vs blocking transposes** — cuFFTXT-style overlap
   in the six-step baseline.
4. **P > G generalization** — large P keeps level-3-BLAS shapes without
   hurting the FMM (Section 6.3.2).
5. **On-the-fly operators vs streamed operators** — the Section 5.3
   memory trade-off for S2T/M2L.
"""

import pytest

from repro.bench.figures import emit
from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dgx1_p100, dual_p100_nvlink
from repro.model.mops import fmm_stage_mops
from repro.util.table import Table
from repro.util.validation import real_dtype_for, c_factor


def _fmm_time(spec, **geom_kw) -> float:
    geom = FmmGeometry.create(**geom_kw)
    cl = VirtualCluster(spec, execute=False)
    DistributedFMM(geom, cl).run(staged=True)
    return cl.wall_time()


def test_ablation_base_level(benchmark):
    """B sweep at small N on 8 GPUs: a deeper base avoids the
    latency-dominated top of the tree."""
    spec = dgx1_p100()
    N, P = 1 << 16, 32

    def run():
        out = {}
        for B in (3, 4, 5):
            out[B] = _fmm_time(spec, M=N // P, P=P, ML=16, B=B, Q=16, G=8)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["B", "FMM time [us]"], title="Ablation: base level at small N (8xP100)")
    for B, v in times.items():
        t.add_row([B, v * 1e6])
    emit("ablation_base_level", t.render())
    # deeper base (fewer hierarchical levels + latencies) wins at small N
    assert times[5] < times[3]


def test_ablation_fused_post(benchmark):
    spec = dual_p100_nvlink()
    plan = FmmFftPlan.create(N=1 << 26, P=1 << 9, ML=64, B=3, Q=16, G=2,
                             build_operators=False)

    def run():
        cl_f = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl_f, fuse_post=True).run()
        cl_u = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl_u, fuse_post=False).run()
        return cl_f.wall_time(), cl_u.wall_time()

    t_f, t_u = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_fused_post",
        f"fused POST+2DFFT: {t_f*1e3:.2f} ms; unfused: {t_u*1e3:.2f} ms; "
        f"saving {100*(t_u-t_f)/t_u:.1f}% (one round trip of T)",
    )
    assert t_f < t_u


def test_ablation_transpose_pipelining(benchmark):
    spec = dual_p100_nvlink()
    N = 1 << 26

    def run():
        cl_p = VirtualCluster(spec, execute=False)
        Distributed1DFFT(N, cl_p, chunks=8).run()
        cl_b = VirtualCluster(spec, execute=False)
        Distributed1DFFT(N, cl_b, chunks=1).run()
        return cl_p.wall_time(), cl_b.wall_time()

    t_p, t_b = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_pipelining",
        f"pipelined transposes: {t_p*1e3:.2f} ms; blocking: {t_b*1e3:.2f} ms",
    )
    assert t_p < t_b


def test_ablation_p_greater_than_g(benchmark):
    """P >> G leaves FMM time nearly unchanged — the generalization that
    enables level-3 BLAS shapes."""
    spec = dual_p100_nvlink()
    N = 1 << 24

    def run():
        return {
            P: _fmm_time(spec, M=N // P, P=P, ML=64, B=3, Q=16, G=2)
            for P in (4, 64, 1024, 16384)
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["P", "FMM time [ms]"], title="Ablation: P > G generalization (N=2^24)")
    for P, v in times.items():
        t.add_row([P, v * 1e3])
    emit("ablation_p_gt_g", t.render())
    vals = list(times.values())
    assert max(vals) / min(vals) < 1.6


def test_ablation_onthefly_operators(benchmark):
    """Streaming the S2T/M2L operator entries from memory instead of
    generating them on the fly adds the paper's P*ML and P*Q^2 traffic
    terms (Section 5.3) — quantified via the mop model."""
    geom = FmmGeometry.create(M=1 << 19, P=256, ML=64, B=3, Q=16, G=2)
    dtype = "complex128"

    def run():
        onfly = fmm_stage_mops(geom, dtype)
        rsize = real_dtype_for(dtype).itemsize
        t = geom.tree
        streamed = dict(onfly)
        # S2T operator: (P-1) x ML x 3ML reals read once per application
        streamed["S2T"] += (geom.P - 1) * geom.ML * 3 * geom.ML * rsize
        for ell in t.levels_m2l():
            streamed[f"M2L-{ell}"] += (geom.P - 1) * 6 * geom.Q**2 * rsize
        streamed["M2L-B"] += (geom.P - 1) * ((1 << t.B) - 3) * geom.Q**2 * rsize
        return sum(onfly.values()), sum(streamed.values())

    m_fly, m_str = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_onthefly",
        f"FMM memory traffic per device: on-the-fly {m_fly/2**20:.1f} MiB, "
        f"streamed operators {m_str/2**20:.1f} MiB "
        f"(+{100*(m_str-m_fly)/m_fly:.1f}%)",
    )
    assert m_str > m_fly
