"""Figure 3: speedup of the FMM-FFT over the 1D FFT, all six panels.

For each system ({2xK40c, 2xP100, 8xP100}) and precision
({single,double}-complex), and for each N, the paper reports the fastest
FMM-FFT found by searching the parameter space, normalized to the 1D
cuFFTXT time, alongside the roofline-model bound (red) and the 2D-FFT
budget (black).  We regenerate all of it from the simulator + search,
printing the paper's bar labels next to ours.

Expected shape (asserted): speedup > 1 everywhere; largest gains on
8xP100 at large N (~1.9-2.1x); 2xK40c decaying to ~1.05-1.1 at large N.
"""

import pytest

from repro.bench.data import PAPER_FIG3
from repro.bench.figures import emit, fastest_config_sweep
from repro.fmm.plan import FmmGeometry
from repro.machine.spec import preset
from repro.model.roofline import fmmfft_model_time
from repro.model.search import simulate_fft2d
from repro.util.table import Table
from repro.util.asciiplot import ascii_series

PANELS = [
    ("2xK40c", "complex64", range(12, 28)),
    ("2xK40c", "complex128", range(12, 28)),
    ("2xP100", "complex64", range(12, 29)),
    ("2xP100", "complex128", range(12, 28)),
    ("8xP100", "complex64", range(14, 30)),
    ("8xP100", "complex128", range(14, 29)),
]


def _panel(sysname: str, dtype: str, qs) -> tuple[str, dict]:
    spec = preset(sysname)
    sweep = fastest_config_sweep(spec, list(qs), dtype=dtype)
    t = Table(
        ["log2N", "measured", "paper", "model", "2D-FFT budget", "fastest params"],
        title=f"Figure 3 panel: {dtype}, {spec.name} (speedup over 1D FFT)",
    )
    series = {"measured": [], "paper": [], "model": []}
    for q, row in sweep.items():
        p = row["params"]
        geom = FmmGeometry.create(
            M=(1 << q) // p["P"], P=p["P"], ML=p["ML"], B=p["B"], Q=p["Q"],
            G=spec.num_devices,
        )
        t2d = simulate_fft2d(1 << q, p["P"], spec, dtype=dtype)
        model_speedup = row["baseline_time"] / fmmfft_model_time(
            geom, spec, dtype, fft2d_time=t2d
        )
        budget_speedup = row["baseline_time"] / t2d
        paper = PAPER_FIG3.get((sysname, dtype), {}).get(q)
        t.add_row([
            q, row["speedup"], paper if paper is not None else "-",
            model_speedup, budget_speedup,
            f"P={p['P']},ML={p['ML']},B={p['B']},Q={p['Q']}",
        ])
        series["measured"].append(row["speedup"])
        series["paper"].append(paper if paper is not None else float("nan"))
        series["model"].append(model_speedup)
    chart = ascii_series(list(qs), series, height=10)
    return t.render() + "\n" + chart, sweep


@pytest.mark.parametrize("sysname,dtype,qs", PANELS, ids=[f"{s}-{d}" for s, d, _ in PANELS])
def test_fig3_panel(benchmark, sysname, dtype, qs):
    text, sweep = benchmark.pedantic(
        _panel, args=(sysname, dtype, qs), rounds=1, iterations=1
    )
    emit(f"fig3_{sysname}_{dtype}", text)

    speeds = {q: row["speedup"] for q, row in sweep.items()}
    assert all(s > 0.95 for s in speeds.values()), "FMM-FFT should not lose badly"
    large = max(speeds)
    if sysname == "8xP100":
        assert speeds[large] > 1.6, "8xP100 large-N gain band (paper ~1.9-2.1)"
    if sysname == "2xP100":
        assert 1.1 < speeds[large] < 1.6, "2xP100 large-N gain band (paper ~1.3)"
    if sysname == "2xK40c":
        assert 1.0 < speeds[large] < 1.3, "2xK40c large-N gain band (paper ~1.05)"
