"""Observability bench: wall time, exposed comm, critical path per testbed.

Runs the FMM-FFT and the six-step baseline on every simulated testbed
and records the observability scalars (wall time, exposed-comm seconds,
comm-hidden fraction, critical-path length/op-count) to
``BENCH_obs.json`` plus a text artifact for the report.  This is the
perf-trajectory record: CI uploads the JSON per commit so regressions
in overlap or critical-path length are visible across history.
"""

import json

import pytest

from repro.bench.figures import emit, out_dir
from repro.obs.bench import collect_obs_bench, render_bench, write_bench_json


def _collect():
    return collect_obs_bench(N=1 << 20)


def test_obs_metrics(benchmark):
    payload = benchmark.pedantic(_collect, rounds=1, iterations=1)

    emit("obs_metrics", render_bench(payload))
    path = out_dir() / "BENCH_obs.json"
    path.write_text(json.dumps(payload, indent=1))

    for system, row in payload["testbeds"].items():
        for pipe in ("fft1d", "fmmfft"):
            m = row[pipe]
            # the critical path bounds (and here, defines) the wall time
            assert m["critical_path_length"] == pytest.approx(
                m["wall_time"], abs=1e-9
            ), (system, pipe)
            assert 0.0 <= m["overlap_fraction"] <= 1.0
            assert m["exposed_comm"] >= 0.0
        # the FMM-FFT hides a larger comm fraction than the baseline at
        # this size and wins end to end (the paper's headline claim)
        assert row["speedup"] > 1.0, system
