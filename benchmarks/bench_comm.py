"""Comm-algorithm bench: plan model sweep + simulated pipeline wall times.

For each simulated testbed (single-node NVLink boxes and a multi-node
machine) this benchmark sweeps the :mod:`repro.comm` cost model over a
range of collective payloads, records every algorithm's predicted time
and the model-chosen winner, then cross-checks the model with *actual*
simulated pipeline runs: the 8-device FMM-FFT and the 1D baseline under
``bulk`` vs ``auto`` collectives.  Artifacts go to
``benchmarks/out/BENCH_comm.json`` (uploaded per commit by the CI comm
job) plus a text table for the report.
"""

import json

import pytest

from repro.bench.figures import emit, out_dir
from repro.comm import algorithm_table, choose_algorithm
from repro.core.api import default_params
from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.multinode import multinode_p100
from repro.machine.spec import preset
from repro.util.table import Table, format_bytes, format_time

_N = 1 << 20


def _specs():
    return {
        "2xP100": preset("2xP100"),
        "8xP100": preset("8xP100"),
        "2n x 4xP100": multinode_p100(2, gpus_per_node=4),
    }


def _pipeline_times(spec):
    """Simulated wall times for fmmfft and fft1d under bulk vs auto."""
    rows = {}
    for pipe in ("fmmfft", "fft1d"):
        rows[pipe] = {}
        for algo in ("bulk", "auto"):
            cl = VirtualCluster(spec, execute=False)
            if pipe == "fmmfft":
                plan = FmmFftPlan.create(
                    N=_N, G=spec.num_devices, dtype="complex128",
                    build_operators=False, **default_params(_N),
                )
                FmmFftDistributed(plan, cl, comm_algorithm=algo).run()
            else:
                Distributed1DFFT(_N, cl, dtype="complex128",
                                 comm_algorithm=algo).run()
            rows[pipe][algo] = cl.wall_time()
    return rows


def _collect():
    payload = {"N": _N, "testbeds": {}}
    for label, spec in _specs().items():
        payload["testbeds"][label] = {
            "G": spec.num_devices,
            "model_table": algorithm_table(spec),
            "pipelines": _pipeline_times(spec),
        }
    return payload


def _render(payload):
    parts = []
    for label, row in payload["testbeds"].items():
        t = Table(["kind", "payload/dev", "bulk", "best algo", "best", "vs bulk"],
                  title=f"Comm model sweep, {label} (G={row['G']})")
        for r in row["model_table"]:
            t.add_row([r["kind"], format_bytes(r["payload_bytes"]),
                       format_time(r["bulk"]), r["best"],
                       format_time(r["predictions"].get(r["best"], r["bulk"])),
                       f"{r['speedup_vs_bulk']:.2f}x"])
        parts.append(t.render())
        p = row["pipelines"]
        parts.append(
            f"{label}: fmmfft bulk {format_time(p['fmmfft']['bulk'])} -> "
            f"auto {format_time(p['fmmfft']['auto'])}; "
            f"fft1d bulk {format_time(p['fft1d']['bulk'])} -> "
            f"auto {format_time(p['fft1d']['auto'])}"
        )
    return "\n\n".join(parts)


def test_comm_algorithms(benchmark):
    """Benchmark the comm model sweep and validate its headline claims."""
    payload = benchmark.pedantic(_collect, rounds=1, iterations=1)

    emit("comm_algorithms", _render(payload))
    path = out_dir() / "BENCH_comm.json"
    path.write_text(json.dumps(payload, indent=1))

    for label, row in payload["testbeds"].items():
        spec = _specs()[label]
        for r in row["model_table"]:
            # the winner really is the argmin of the recorded predictions
            best = min(r["predictions"], key=r["predictions"].get)
            assert r["predictions"][r["best"]] == pytest.approx(
                r["predictions"][best]
            ), (label, r)
            assert r["speedup_vs_bulk"] == pytest.approx(
                r["bulk"] / r["predictions"][r["best"]]
            ), (label, r)
            # and choose_algorithm agrees with the table
            assert choose_algorithm(
                spec, r["kind"], r["payload_bytes"]
            ) == r["best"], (label, r)
        # small collectives dodge the bulk barrier + overhead by a wide
        # margin on every topology (the point of the message plans)
        small = [r for r in row["model_table"] if r["payload_bytes"] <= 32768]
        assert small and all(r["speedup_vs_bulk"] > 1.5 for r in small), label
        # the headline: auto strictly beats bulk end to end on the dgx1 box
        p = row["pipelines"]
        if label == "8xP100":
            assert p["fmmfft"]["auto"] < p["fmmfft"]["bulk"]
            assert p["fft1d"]["auto"] < p["fft1d"]["bulk"]
