"""Serving benchmark: batching + wisdom vs one-shot cold planning.

Drives the same synthetic open-loop workload (Poisson arrivals, 3:2:1
size mix of 2^16/2^17/2^18) through four service configurations on the
8-device DGX-1 testbed:

- ``unbatched_cold``  — no batching, no plan cache, no wisdom: every
  request re-runs the autotune search and rebuilds its plan (the
  "re-plan per request" strawman the service exists to kill);
- ``unbatched_warm``  — per-request execution but warm wisdom/plans;
- ``batched_cold``    — continuous batching, caches start empty;
- ``batched_warm``    — continuous batching over warm wisdom/plans.

It also sweeps throughput vs offered load for the batched-warm service,
measures the live-telemetry overhead (scheduler host wall time with the
:class:`~repro.obs.telemetry.MetricsRegistry` enabled vs disabled —
the registry must stay a rounding error against the event loop),
measures the IR-replay payoff (per-batch host wall time replaying
compiled :mod:`repro.ir` graphs vs re-interpreting every batch), and
records everything to ``benchmarks/out/BENCH_serve.json``.  The
headline assertions: batched-warm throughput is at least 2x the
one-shot cold arm, the warm arms perform **zero** autotune searches,
the warm plan-cache hit rate is 100%, warm replayed batches cost at
least 2x less host time per batch than interpreted ones, and the
interleaved schedules pass the hazard sanitizer.  Run standalone with
``--smoke`` for the CI quick pass.
"""

import json
import sys
import time

from repro.bench.figures import emit, out_dir
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import preset
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    Wisdom,
    summarize,
    synthetic_workload,
)
from repro.util.table import Table

SYSTEM = "8xP100"
DTYPE = "complex128"
#: effectively-saturating offered load: arrivals outpace any service
SATURATING_RATE = 1e5


def _run_arm(spec, requests, cache, batching, max_inflight, capacity=4096):
    """One service configuration over one request trace -> ServeReport."""
    cl = VirtualCluster(spec, execute=False)
    sched = ServeScheduler(
        cl,
        Batcher(cache, max_batch=8, batching=batching),
        queue=AdmissionQueue(capacity=capacity),
        max_inflight=max_inflight,
    )
    sched.run(requests)
    cl.sanitize()  # interleaved batches must be provably hazard-free
    return summarize(sched)


def _warm_cache(spec, requests):
    """A cache pre-warmed for every size in the trace, counters zeroed."""
    cache = PlanCache(spec, wisdom=Wisdom())
    for n in sorted({r.N for r in requests}):
        cache.plan_for(n, DTYPE)
    cache.plan_hits = cache.plan_misses = 0
    cache.wisdom_hits = cache.wisdom_misses = cache.searches = 0
    return cache


def _telemetry_overhead(spec, requests, repeats=7):
    """Host wall time of the serve loop with telemetry on vs off.

    Both arms run the identical batched-warm schedule; the "off" arm
    passes a disabled :class:`MetricsRegistry`, whose series lookups
    return shared no-op objects.  Host drift (CPU frequency, noisy
    neighbors) dwarfs the effect on a single timing, so the arms run
    as back-to-back *pairs* and ``overhead_frac`` is the **median of
    the paired ratios** — drift cancels within a pair, the median
    rejects outlier pairs.  CI tracks it against the <3% target.
    """
    import statistics

    from repro.obs.telemetry import MetricsRegistry

    def _once(registry):
        cache = _warm_cache(spec, requests)
        cl = VirtualCluster(spec, execute=False)
        sched = ServeScheduler(
            cl, Batcher(cache, max_batch=8),
            queue=AdmissionQueue(capacity=4096),
            max_inflight=2, telemetry=registry,
        )
        t0 = time.perf_counter()
        sched.run(requests)
        return time.perf_counter() - t0

    on = off = float("inf")
    fracs = []
    for _ in range(repeats):
        a = _once(MetricsRegistry())
        b = _once(MetricsRegistry(enabled=False))
        on, off = min(on, a), min(off, b)
        fracs.append((a - b) / b)
    return {
        "enabled_s": on,
        "disabled_s": off,
        "overhead_frac": statistics.median(fracs),
        "target_frac": 0.03,
    }


def _replay_overhead(spec, requests, repeats=7):
    """Per-batch host wall time: interpreted re-issue vs IR graph replay.

    Both arms serve the identical warm trace.  The replay arm first
    runs a priming pass so every batch configuration's op graph is
    captured, certified, and stored in the cache's graph tier; the
    timed pass then replays every batch (the simulated schedule is
    bit-identical either way — only host work changes).  Both arms run
    with telemetry disabled: the registry's cost is common to both
    paths and is tracked separately by :func:`_telemetry_overhead`.
    Pairing and the median-of-ratios follow that function: drift
    cancels within a back-to-back pair, the median rejects outliers.
    """
    import statistics

    from repro.obs.telemetry import MetricsRegistry

    def _once(replay):
        cache = _warm_cache(spec, requests)
        if replay:  # prime the graph tier outside the timed window
            ServeScheduler(
                VirtualCluster(spec, execute=False),
                Batcher(cache, max_batch=8),
                queue=AdmissionQueue(capacity=4096),
                max_inflight=2, replay=True,
            ).run(requests)
        cl = VirtualCluster(spec, execute=False)
        sched = ServeScheduler(
            cl, Batcher(cache, max_batch=8),
            queue=AdmissionQueue(capacity=4096),
            max_inflight=2, replay=replay,
            telemetry=MetricsRegistry(enabled=False),
        )
        t0 = time.perf_counter()
        sched.run(requests)
        dt = time.perf_counter() - t0
        assert sched.batches, "trace produced no batches"
        if replay:
            assert sched.replayed_batches == len(sched.batches), (
                sched.replayed_batches, len(sched.batches))
        return dt / len(sched.batches)

    interp = repl = float("inf")
    speedups = []
    for _ in range(repeats):
        a = _once(False)
        b = _once(True)
        interp, repl = min(interp, a), min(repl, b)
        speedups.append(a / b)
    return {
        "interpreted_per_run_s": interp,
        "replayed_per_run_s": repl,
        "speedup": statistics.median(speedups),
        "target_speedup": 2.0,
    }


def _collect(num_requests, sweep_rates):
    spec = preset(SYSTEM)
    requests = synthetic_workload(num_requests, rate=SATURATING_RATE, seed=11)
    arms = {
        "unbatched_cold": _run_arm(
            spec, requests,
            PlanCache(spec, capacity=0, remember=False),
            batching=False, max_inflight=1,
        ),
        "unbatched_warm": _run_arm(
            spec, requests, _warm_cache(spec, requests),
            batching=False, max_inflight=1,
        ),
        "batched_cold": _run_arm(
            spec, requests, PlanCache(spec, wisdom=Wisdom()),
            batching=True, max_inflight=2,
        ),
        "batched_warm": _run_arm(
            spec, requests, _warm_cache(spec, requests),
            batching=True, max_inflight=2,
        ),
    }
    sweep = []
    for rate in sweep_rates:
        reqs = synthetic_workload(num_requests, rate=rate, seed=11)
        rep = _run_arm(spec, reqs, _warm_cache(spec, reqs),
                       batching=True, max_inflight=2)
        sweep.append({"offered_rate": rate, "throughput": rep.throughput,
                      "p99_latency": rep.latency["p99"],
                      "mean_batch_size": rep.mean_batch_size})
    return {
        "system": SYSTEM, "dtype": DTYPE, "num_requests": num_requests,
        "arms": {name: json.loads(rep.to_json()) for name, rep in arms.items()},
        "sweep": sweep,
        "speedup_batched_warm_vs_cold": (
            arms["batched_warm"].throughput / arms["unbatched_cold"].throughput
        ),
        "telemetry_overhead": _telemetry_overhead(spec, requests),
        "replay": _replay_overhead(spec, requests),
    }


def _render(payload):
    t = Table(
        ["arm", "throughput [req/s]", "p50 [ms]", "p99 [ms]",
         "mean batch", "searches"],
        title=f"Serving arms, {payload['system']} "
              f"({payload['num_requests']} requests, saturating load)",
    )
    for name, rep in payload["arms"].items():
        t.add_row([
            name, f"{rep['throughput']:.1f}",
            f"{rep['latency']['p50'] * 1e3:.3f}",
            f"{rep['latency']['p99'] * 1e3:.3f}",
            f"{rep['mean_batch_size']:.2f}", rep["searches"],
        ])
    s = Table(["offered [req/s]", "served [req/s]", "p99 [ms]", "mean batch"],
              title="Throughput vs offered load (batched, warm)")
    for row in payload["sweep"]:
        s.add_row([f"{row['offered_rate']:.0f}", f"{row['throughput']:.1f}",
                   f"{row['p99_latency'] * 1e3:.3f}",
                   f"{row['mean_batch_size']:.2f}"])
    headline = (f"batched-warm vs one-shot-cold throughput: "
                f"{payload['speedup_batched_warm_vs_cold']:.1f}x")
    ov = payload["telemetry_overhead"]
    telem = (f"telemetry overhead: {ov['overhead_frac'] * 100:.2f}% of "
             f"scheduler wall time (target < {ov['target_frac'] * 100:.0f}%)")
    rp = payload["replay"]
    replay = (f"IR replay: {rp['replayed_per_run_s'] * 1e6:.0f} us/batch vs "
              f"{rp['interpreted_per_run_s'] * 1e6:.0f} us/batch interpreted "
              f"({rp['speedup']:.1f}x less host work, target >= "
              f"{rp['target_speedup']:.0f}x)")
    return "\n\n".join([t.render(), s.render(), headline, telem, replay])


def _check(payload):
    arms = payload["arms"]
    # the acceptance headline: >= 2x over re-plan-per-request serving
    assert payload["speedup_batched_warm_vs_cold"] >= 2.0, payload
    # warm starts perform zero autotune searches and never miss the cache
    for arm in ("unbatched_warm", "batched_warm"):
        assert arms[arm]["searches"] == 0, arm
        assert arms[arm]["wisdom_misses"] == 0, arm
        assert arms[arm]["plan_hit_rate"] == 1.0, arm
    # the cold one-shot arm searches on every single request
    assert arms["unbatched_cold"]["searches"] == payload["num_requests"]
    # batching actually coalesces under saturating load
    assert arms["batched_warm"]["mean_batch_size"] > 1.5, arms["batched_warm"]
    # batching helps even among warm arms (launch/collective amortization)
    assert (arms["batched_warm"]["throughput"]
            > arms["unbatched_warm"]["throughput"])
    # nothing was shed (the queue was sized for the trace)
    for name, rep in arms.items():
        assert sum(rep["shed"].values()) == 0, name
    # offered-load sweep: served rate tracks offered load until saturation
    sweep = payload["sweep"]
    assert all(s["throughput"] > 0 for s in sweep)
    # live telemetry must be a rounding error against the event loop.
    # 3% is the tracked target; the hard gate is looser because CI
    # hosts are noisy and the absolute times are small.
    ov = payload["telemetry_overhead"]
    assert ov["enabled_s"] > 0 and ov["disabled_s"] > 0, ov
    assert ov["overhead_frac"] < 0.25, ov
    # warm replayed batches must beat interpreted re-issue by >= 2x on
    # per-batch host time -- the compiled-replay acceptance headline
    rp = payload["replay"]
    assert rp["interpreted_per_run_s"] > 0 and rp["replayed_per_run_s"] > 0, rp
    assert rp["speedup"] >= rp["target_speedup"], rp


def _emit(payload):
    emit("serve_throughput", _render(payload))
    path = out_dir() / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=1))
    return path


def test_serve_throughput(benchmark):
    """Benchmark the four serving arms and validate the headline claims."""
    payload = benchmark.pedantic(
        lambda: _collect(32, [500.0, 2000.0, 8000.0, 32000.0]),
        rounds=1, iterations=1,
    )
    _emit(payload)
    _check(payload)


def main(argv):
    """Standalone entry: ``--smoke`` runs a reduced trace for CI."""
    smoke = "--smoke" in argv
    if smoke:
        payload = _collect(12, [2000.0, 20000.0])
    else:
        payload = _collect(32, [500.0, 2000.0, 8000.0, 32000.0])
    path = _emit(payload)
    _check(payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
