"""Energy projection — the efficiency angle the paper motivates.

The introduction cites the harmonious energy efficiency of
compressed/dense algorithms [17]; the conclusion predicts multi-node
energy wins.  We price the simulated ledgers of both pipelines with the
Pascal-era energy model: the FMM-FFT spends *more* arithmetic energy
but saves communication and (via shorter wall time) idle energy, so its
energy win tracks interconnect weakness — modest at 2 GPUs, clear at 8,
large across nodes.
"""

import pytest

from repro.bench.figures import emit
from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.multinode import multinode_p100
from repro.machine.spec import dgx1_p100, dual_p100_nvlink
from repro.model.energy import energy_ratio, run_energy
from repro.util.table import Table

N = 1 << 26

SYSTEMS = [
    ("2xP100", dual_p100_nvlink),
    ("8xP100", dgx1_p100),
    ("2 nodes x 4 P100", lambda: multinode_p100(2, 4)),
    ("4 nodes x 4 P100", lambda: multinode_p100(4, 4)),
]


def _measure():
    rows = []
    for label, make in SYSTEMS:
        spec = make()
        cl_b = VirtualCluster(spec, execute=False)
        Distributed1DFFT(N, cl_b).run()
        e_b = run_energy(cl_b)
        G = spec.num_devices
        B = max(3, G.bit_length() - 1)  # need G | 2^B
        plan = FmmFftPlan.create(N=N, P=1 << 9, ML=64, B=B, Q=16,
                                 G=G, build_operators=False)
        cl_f = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl_f).run()
        e_f = run_energy(cl_f)
        rows.append((label, e_b, e_f, energy_ratio(e_b, e_f)))
    return rows


def test_energy_projection(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    t = Table(
        ["system", "1D FFT [J]", "FMM-FFT [J]", "FMM comm [J]", "1D comm [J]",
         "energy ratio"],
        title=f"Energy projection, N = 2^26 cdouble",
    )
    for label, e_b, e_f, ratio in rows:
        t.add_row([label, e_b.total, e_f.total, e_f.communication,
                   e_b.communication, ratio])
    emit("energy_projection", t.render())

    by_label = {r[0]: r for r in rows}
    # FMM-FFT always moves far fewer joules over the wire
    for label, e_b, e_f, _ in rows:
        assert e_f.communication < 0.6 * e_b.communication, label
    # the energy win grows with interconnect weakness
    assert by_label["8xP100"][3] > by_label["2xP100"][3]
    assert by_label["2 nodes x 4 P100"][3] > by_label["8xP100"][3]
    assert by_label["2 nodes x 4 P100"][3] > 1.5
