"""Fault-injection benchmark: graceful degradation vs a fault-free twin.

Drives the same synthetic open-loop workload through the serving stack
twice on the 8-device DGX-1 testbed:

- ``fault_free`` — no injector attached: the seed behaviour every other
  benchmark measures;
- ``chaos``      — a seeded chaos scenario (2% per-attempt transient
  message failures plus one random straggler window) with comm-layer
  retries and service-level re-enqueue/shed under deadline targets.

The headline assertions, recorded to ``benchmarks/out/BENCH_faults.json``:

- the chaos run is **replay-deterministic** — two identically seeded
  runs produce bit-identical ledgers (:meth:`Ledger.fingerprint`);
- a **zero-fault injector is invisible** — attaching an injector with
  no scheduled faults and zero transient rate leaves the ledger
  bit-identical to the no-injector seed run;
- every admitted request either completes or is accounted shed
  (``completed + shed + retry_shed == requests``);
- chaos **numerics match** the fault-free twin — with payloads and
  host-side outputs enabled, every request served under chaos produces
  exactly the fault-free output vector (retries re-run schedules, they
  never corrupt data);
- the retried chaos schedule passes the hazard sanitizer; and
- exposed retry time and per-class deadline-miss rates are reported
  against the fault-free baseline.

Run standalone with ``--smoke`` for the CI quick pass.
"""

import json
import sys

import numpy as np

from repro.bench.figures import emit, out_dir
from repro.faults import FaultInjector, seeded_chaos
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import preset
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    summarize,
    synthetic_workload,
)
from repro.util.table import Table

SYSTEM = "8xP100"
DTYPE = "complex128"
RATE = 2000.0
FAULT_SEED = 7
TRANSIENT_RATE = 0.02
STRAGGLERS = 1
#: numerics-twin transform size (small: payloads are materialized)
NUMERICS_N = 1 << 12


def _injector(spec):
    """The benchmark's chaos scenario — a pure function of its seed."""
    return seeded_chaos(spec, seed=FAULT_SEED, transient_rate=TRANSIENT_RATE,
                        stragglers=STRAGGLERS)


def _run(spec, requests, faults=None, compute_outputs=False):
    """One serve run -> (cluster, scheduler); sanitizes the schedule."""
    cache = PlanCache(spec, autotune=not compute_outputs,
                      build_operators=compute_outputs)
    cl = VirtualCluster(spec, execute=False, faults=faults)
    sched = ServeScheduler(
        cl, Batcher(cache, max_batch=8),
        queue=AdmissionQueue(capacity=4096),
        max_inflight=2, retry_budget=2,
        compute_outputs=compute_outputs,
    )
    sched.run(requests)
    cl.sanitize()  # retried schedules must stay provably hazard-free
    return cl, sched


def _miss_rate(rep):
    total = sum(rep.deadline_misses.values())
    return total / rep.completed if rep.completed else 0.0


def _collect(num_requests):
    spec = preset(SYSTEM)
    requests = synthetic_workload(num_requests, rate=RATE, seed=11)

    cl_base, sched_base = _run(spec, requests)
    rep_base = summarize(sched_base)

    cl_chaos, sched_chaos = _run(spec, requests, faults=_injector(spec))
    rep_chaos = summarize(sched_chaos)

    # replay determinism: an identically seeded chaos run, from scratch
    cl_replay, _ = _run(spec, requests, faults=_injector(spec))
    replay_ok = cl_chaos.ledger.fingerprint() == cl_replay.ledger.fingerprint()

    # a do-nothing injector must not perturb a single ledger record
    cl_zero, _ = _run(spec, requests, faults=FaultInjector(spec))
    zero_fault_ok = cl_zero.ledger.fingerprint() == cl_base.ledger.fingerprint()

    # numerics twin: payload workload served under chaos produces the
    # exact fault-free outputs (retries re-run, they never corrupt)
    nreqs = synthetic_workload(min(num_requests, 8), rate=RATE,
                               sizes={NUMERICS_N: 1.0}, seed=13,
                               with_payloads=True)
    _, s_nbase = _run(spec, nreqs, compute_outputs=True)
    _, s_nchaos = _run(spec, nreqs, faults=_injector(spec),
                       compute_outputs=True)
    numerics_ok = (
        set(s_nchaos.outputs) == set(s_nbase.outputs)
        and all(np.array_equal(s_nchaos.outputs[rid], s_nbase.outputs[rid])
                for rid in s_nchaos.outputs)
    )

    return {
        "system": SYSTEM, "dtype": DTYPE, "num_requests": num_requests,
        "offered_rate": RATE,
        "chaos_scenario": {
            "fault_seed": FAULT_SEED, "transient_rate": TRANSIENT_RATE,
            "stragglers": STRAGGLERS,
            "fault_events": rep_chaos.fault_events,
        },
        "arms": {
            "fault_free": json.loads(rep_base.to_json()),
            "chaos": json.loads(rep_chaos.to_json()),
        },
        "replay_deterministic": replay_ok,
        "zero_fault_bit_identical": zero_fault_ok,
        "numerics_identical": numerics_ok,
        "numerics_requests": len(s_nchaos.outputs),
        "exposed_retry_time": rep_chaos.retry_time,
        "deadline_miss_rate": {
            "fault_free": _miss_rate(rep_base),
            "chaos": _miss_rate(rep_chaos),
        },
    }


def _render(payload):
    t = Table(
        ["arm", "completed", "shed", "p99 [ms]", "deadline misses",
         "retries", "retry shed", "exposed retry [ms]"],
        title=f"Serving under faults, {payload['system']} "
              f"({payload['num_requests']} requests at "
              f"{payload['offered_rate']:.0f} req/s)",
    )
    for name, rep in payload["arms"].items():
        t.add_row([
            name, rep["completed"],
            sum(rep["shed"].values()) + sum(rep["retry_shed"].values()),
            f"{rep['latency']['p99'] * 1e3:.3f}",
            sum(rep["deadline_misses"].values()),
            sum(rep["retried"].values()),
            sum(rep["retry_shed"].values()),
            f"{rep['retry_time'] * 1e3:.3f}",
        ])
    sc = payload["chaos_scenario"]
    lines = [
        t.render(),
        f"chaos scenario: seed {sc['fault_seed']}, transient rate "
        f"{sc['transient_rate']:g}, {sc['stragglers']} straggler(s), "
        f"{sc['fault_events']} fault events",
        f"replay deterministic: {payload['replay_deterministic']}",
        f"zero-fault bit-identical: {payload['zero_fault_bit_identical']}",
        f"numerics identical under chaos: {payload['numerics_identical']} "
        f"({payload['numerics_requests']} payload requests)",
    ]
    return "\n\n".join(lines)


def _check(payload):
    # seeded chaos must replay bit-identically, and a do-nothing
    # injector must be invisible to the ledger
    assert payload["replay_deterministic"], payload
    assert payload["zero_fault_bit_identical"], payload
    # retries re-run schedules; they never corrupt outputs
    assert payload["numerics_identical"], payload
    assert payload["numerics_requests"] > 0, payload
    base, chaos = payload["arms"]["fault_free"], payload["arms"]["chaos"]
    # the fault-free arm must look exactly like a fault-free arm
    assert base["fault_events"] == 0 and base["failed_batches"] == 0, base
    assert base["retry_time"] == 0.0, base
    assert sum(base["retried"].values()) == 0, base
    # the chaos scenario actually injected something
    assert chaos["fault_events"] > 0, chaos
    # every request is accounted for: completed, shed at admission, or
    # shed on retry
    for rep in (base, chaos):
        assert (rep["completed"] + sum(rep["shed"].values())
                + sum(rep["retry_shed"].values())
                == payload["num_requests"]), rep


def _emit(payload):
    emit("faults_degradation", _render(payload))
    path = out_dir() / "BENCH_faults.json"
    path.write_text(json.dumps(payload, indent=1))
    return path


def test_fault_degradation(benchmark):
    """Benchmark the chaos vs fault-free arms and validate the claims."""
    payload = benchmark.pedantic(lambda: _collect(32), rounds=1, iterations=1)
    _emit(payload)
    _check(payload)


def main(argv):
    """Standalone entry: ``--smoke`` runs a reduced trace for CI."""
    payload = _collect(12 if "--smoke" in argv else 32)
    path = _emit(payload)
    _check(payload)
    print(_render(payload))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
