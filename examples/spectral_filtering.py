"""Spectral denoising with the FMM-FFT: recover tones buried in noise.

A synthetic "sensor capture": three known-amplitude tones plus strong
white noise.  We transform with the FMM-FFT, keep only bins whose power
exceeds a threshold, invert, and measure how much of each tone survives
— the bread-and-butter FFT workload the paper's introduction motivates
(large 1D transforms on accelerator nodes).
"""

import numpy as np

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single


def main() -> None:
    N = 1 << 14
    rng = np.random.default_rng(7)
    t = np.arange(N) / N

    tones = [(200, 1.0), (1723, 0.6), (5001, 0.35)]
    clean = sum(a * np.exp(2j * np.pi * k * t) for k, a in tones)
    noise = 0.8 * (rng.standard_normal(N) + 1j * rng.standard_normal(N))
    x = clean + noise
    snr_in = 10 * np.log10(np.mean(np.abs(clean) ** 2) / np.mean(np.abs(noise) ** 2))

    plan = FmmFftPlan.create(N=N, P=64, ML=32, B=3, Q=16)
    X = fmmfft_single(x, plan)

    # threshold: keep bins 6x above the median magnitude
    mag = np.abs(X)
    keep = mag > 6.0 * np.median(mag)
    X_filt = np.where(keep, X, 0.0)
    y = np.conj(fmmfft_single(np.conj(X_filt), plan)) / N

    resid = y - clean
    snr_out = 10 * np.log10(
        np.mean(np.abs(clean) ** 2) / max(np.mean(np.abs(resid) ** 2), 1e-30)
    )

    print(f"Spectral denoise, N=2^14, {len(tones)} tones in white noise")
    print(f"  plan: {plan.describe()}")
    print(f"  kept {keep.sum()} of {N} bins")
    print(f"  input SNR {snr_in:5.1f} dB -> output SNR {snr_out:5.1f} dB")
    for k, a in tones:
        rec = abs(X_filt[k]) / N
        print(f"  tone k={k:5d}: true amplitude {a:.3f}, recovered {rec:.3f}")
        assert keep[k], "every injected tone must survive the threshold"
        assert abs(rec - a) < 0.1
    assert snr_out > snr_in + 10, "filtering should win >10 dB"
    print("  OK")


if __name__ == "__main__":
    main()
