"""Spectral time stepping: the free Schrödinger equation via FMM-FFT.

    i u_t = -u_xx   on [0, 1) periodic

The propagator is diagonal in Fourier space:
``u(t) = ifft( exp(-i (2 pi k)^2 t) * fft(u0) )`` — one forward and one
inverse transform per step, both through the FMM-FFT here
(`fmmfft` / `ifmmfft`).  We march a Gaussian wave packet with momentum
k0 for several steps and check:

1. agreement with the exact single-shot spectral solution (computed
   once with numpy.fft as an independent oracle) — i.e. error does not
   accumulate across 2 x steps FMM-FFT applications;
2. unitarity (the l2 norm is conserved to roundoff);
3. the physics: the packet centre moves at the group velocity ``2 k0``
   and the packet disperses (its width grows).
"""

import numpy as np

from repro import fmmfft, ifmmfft


def packet_stats(x: np.ndarray, u: np.ndarray) -> tuple[float, float]:
    """(circular mean position, angular spread) of |u|^2."""
    p = np.abs(u) ** 2
    p = p / p.sum()
    z = (p * np.exp(2j * np.pi * x)).sum()
    centre = (np.angle(z) / (2 * np.pi)) % 1.0
    spread = 1.0 - abs(z)  # grows as the packet disperses
    return centre, spread


def main() -> None:
    N = 1 << 12
    x = np.arange(N) / N
    x0, k0, a = 0.3, 2 * np.pi * 40, 1e-4
    # periodic distance to x0 keeps the envelope smooth across the seam
    dist = np.minimum((x - x0) % 1.0, (x0 - x) % 1.0)
    u0 = np.exp(-dist ** 2 / (4 * a)) * np.exp(1j * k0 * (x - x0))

    k = np.fft.fftfreq(N, d=1.0 / N)
    t_final, steps = 2e-5, 8
    phase_step = np.exp(-1j * (2 * np.pi * k) ** 2 * (t_final / steps))

    u = u0.astype(np.complex128)
    c0, s0 = packet_stats(x, u)
    for _ in range(steps):
        u = ifmmfft(phase_step * fmmfft(u))

    # exact single-shot spectral solution (independent oracle)
    ref = np.fft.ifft(np.exp(-1j * (2 * np.pi * k) ** 2 * t_final) * np.fft.fft(u0))
    err = np.linalg.norm(u - ref) / np.linalg.norm(ref)
    drift = abs(np.linalg.norm(u) - np.linalg.norm(u0)) / np.linalg.norm(u0)
    c1, s1 = packet_stats(x, u)

    print("Free Schrodinger propagation via FMM-FFT")
    print(f"  N = 2^12 grid, {steps} spectral steps to t = {t_final:g}")
    print(f"  error vs exact spectral solution after {2 * steps} FMM-FFTs: {err:.3e}")
    print(f"  norm drift (unitarity): {drift:.3e}")
    expect = (x0 + 2 * k0 * t_final) % 1.0
    print(f"  packet centre {c0:.4f} -> {c1:.4f} "
          f"(group-velocity prediction {expect:.4f})")
    print(f"  packet spread {s0:.5f} -> {s1:.5f} (dispersion)")
    assert err < 1e-11, "FMM-FFT round trips must not accumulate error"
    assert drift < 1e-12, "spectral stepping must be unitary"
    assert abs(c1 - expect) < 5e-3, "centre must move at the group velocity"
    assert s1 > s0, "a free packet must disperse"
    print("  OK")


if __name__ == "__main__":
    main()
