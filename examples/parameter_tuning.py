"""Parameter tuning walkthrough: pick (P, M_L, B, Q) for a target size.

Shows the workflow a user of this library (or of the paper's code)
follows: enumerate the admissible grid, let the simulator/roofline rank
it, inspect the winner's per-stage breakdown, and sanity-check accuracy
at the chosen Q with real numerics at a reduced size.
"""

import numpy as np

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_relative_error
from repro.machine.spec import preset
from repro.model.roofline import fmm_stage_times
from repro.model.search import find_fastest, search_grid
from repro.util.prng import random_signal
from repro.util.table import Table


def main() -> None:
    N = 1 << 24
    spec = preset("2xP100")

    grid = search_grid(N, spec.num_devices)
    print(f"Target: N = 2^24 double-complex on {spec.name}")
    print(f"Admissible candidates: {len(grid)}")

    result = find_fastest(N, spec)
    p = result.params
    print(f"\nFastest configuration: P={p['P']}, ML={p['ML']}, B={p['B']}, Q={p['Q']}")
    print(f"  FMM-FFT {result.fmmfft_time*1e3:.2f} ms vs 1D FFT "
          f"{result.baseline_time*1e3:.2f} ms -> {result.speedup:.2f}x")

    plan = FmmFftPlan.create(N=N, G=spec.num_devices, build_operators=False, **p)
    times = fmm_stage_times(plan.geometry, spec)
    t = Table(["stage", "model time [us]"], title="\nPer-stage roofline breakdown")
    for name, v in sorted(times.items(), key=lambda kv: -kv[1])[:8]:
        t.add_row([name, v * 1e6])
    print(t.render())

    # accuracy spot-check at the chosen Q (error is size-insensitive)
    small = FmmFftPlan.create(N=1 << 13, P=16, ML=p["ML"] // 2 or 16, B=3, Q=p["Q"])
    x = random_signal(1 << 13, seed=0)
    err = fmmfft_relative_error(x, small)
    print(f"\nAccuracy at Q={p['Q']} (real numerics, N=2^13): {err:.2e}")
    assert err < 1e-13


if __name__ == "__main__":
    main()
