"""Multi-GPU scaling study: FMM-FFT vs the six-step 1D FFT, G = 1..8.

Reproduces the paper's core systems argument on simulated P100 nodes:
the FMM stage scales almost perfectly with devices (it only exchanges
halos), while the transpose-bound baseline depends entirely on the
interconnect.  The FMM-FFT's advantage is therefore largest where the
network is weakest — the 8-GPU DGX-1 hybrid cube-mesh, where 3 of every
7 peers fall back to PCIe — and smallest (even negative) where it is
strongest: a single device (nothing to communicate) or the
fully-connected 4-GPU quad.

Per-G parameters come from the same search the paper uses for Figure 3.
Timing-only mode makes the N = 2^26 sweep instant; numerics for these
exact pipelines are validated in the test suite.
"""

from repro.fmm.distributed import DistributedFMM
from repro.fmm.plan import FmmGeometry
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.model.search import find_fastest, simulate_fft1d, simulate_fmmfft
from repro.util.table import Table


def fmm_stage_time(N: int, params: dict, G: int) -> float:
    """Simulated time of the FMM stage alone (no 2D FFT)."""
    spec = p100_nvlink_node(G)
    geom = FmmGeometry.create(
        M=N // params["P"], P=params["P"], ML=params["ML"], B=params["B"],
        Q=params["Q"], G=G,
    )
    cl = VirtualCluster(spec, execute=False)
    DistributedFMM(geom, cl).run(staged=True)
    return cl.wall_time()


def main() -> None:
    N = 1 << 26
    t = Table(
        ["G", "system", "FMM-FFT [ms]", "1D FFT [ms]", "speedup",
         "FMM stage [ms]", "FMM scaling eff."],
        title="Scaling study, N = 2^26 double-complex on simulated P100 nodes",
    )
    fmm1 = None
    for G in (1, 2, 4, 8):
        spec = p100_nvlink_node(G)
        r = find_fastest(N, spec)
        t_fmm_stage = fmm_stage_time(N, r.params, G)
        if G == 1:
            fmm1 = t_fmm_stage
        t.add_row([
            G, spec.name, r.fmmfft_time * 1e3, r.baseline_time * 1e3,
            r.speedup, t_fmm_stage * 1e3, fmm1 / (G * t_fmm_stage),
        ])
    print(t.render())
    print()
    print("Notes:")
    print(" * The FMM *stage* scales near-perfectly (last column) — it only")
    print("   exchanges halos and one small base-level gather (Section 5.2).")
    print(" * End-to-end speedup vs the 1D FFT tracks interconnect weakness:")
    print("   biggest on the 8-GPU hybrid cube-mesh (PCIe fallbacks), smaller")
    print("   on the fully-connected quad, and < 1 on a single device where")
    print("   there is no communication to avoid.")


if __name__ == "__main__":
    main()
