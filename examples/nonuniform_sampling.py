"""Nonequispaced FFTs: evaluate a spectrum at jittered sample points.

The FMM-FFT's ancestor (Dutt-Rokhlin, "Edelman's formulation with
P = 1" — paper Section 2) solves the classic instrumentation problem:
a band-limited signal must be evaluated (type 2) or acquired (type 1
adjoint) at *nonuniform* times.  This example:

1. builds a band-limited spectrum;
2. evaluates it at 3000 jittered sample times with `nufft2` and checks
   against the O(nm) direct sum;
3. applies the adjoint (`nufft1_adjoint`) and verifies the inner-product
   identity <A c, w> = <c, A* w> to machine precision;
4. shows the accuracy-vs-order trade (the "error a priori" knob).
"""

import numpy as np

from repro.nufft import nudft2_direct, nufft1_adjoint, nufft2
from repro.nufft.transforms import nudft1_direct


def main() -> None:
    rng = np.random.default_rng(11)
    n, m = 512, 3000

    # band-limited spectrum, k = -n/2 .. n/2 - 1
    c = np.zeros(n, dtype=np.complex128)
    band = slice(n // 2 - 40, n // 2 + 40)
    c[band] = rng.standard_normal(80) + 1j * rng.standard_normal(80)

    # jittered sampling: nominal uniform clock with 30% period jitter
    x = (np.arange(m) / m + rng.uniform(-0.3, 0.3, m) / m) % 1.0

    f = nufft2(c, x)
    ref = nudft2_direct(c, x)
    err2 = np.linalg.norm(f - ref) / np.linalg.norm(ref)
    print(f"type-2 NUFFT: n={n} coefficients -> m={m} jittered samples")
    print(f"  relative l2 error vs direct sum: {err2:.2e}")
    assert err2 < 1e-12

    w = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    g = nufft1_adjoint(w, x, n)
    err1 = np.linalg.norm(g - nudft1_direct(w, x, n)) / np.linalg.norm(g)
    print(f"type-1 (adjoint): m={m} samples -> n={n} coefficients")
    print(f"  relative l2 error vs direct sum: {err1:.2e}")
    assert err1 < 1e-12

    lhs = np.vdot(w, f)
    rhs = np.vdot(g, c)
    print(f"  adjoint identity |<Ac,w> - <c,A*w>| / |<Ac,w>| = "
          f"{abs(lhs - rhs) / abs(lhs):.2e}")

    print("\naccuracy a priori via the expansion order Q:")
    for Q in (6, 10, 16):
        fq = nufft2(c, x, Q=Q)
        print(f"  Q={Q:2d}: error {np.linalg.norm(fq - ref) / np.linalg.norm(ref):.2e}")
    print("OK")


if __name__ == "__main__":
    main()
