"""Quickstart: compute an FFT with the FMM-FFT and verify it.

Run:  python examples/quickstart.py

Covers the three levels of the API:
1. one-call `fmmfft` (auto parameters, single device);
2. an explicit `FmmFftPlan` (the paper's parameters, full control);
3. a distributed run on a simulated 2xP100 node, with the simulated
   timeline profile printed — the Figure 2 view.
"""

import numpy as np

from repro import FmmFftDistributed, FmmFftPlan, VirtualCluster, fmmfft, preset
from repro.core.baseline import baseline_1d_fft
from repro.util.prng import random_signal


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One call.
    # ------------------------------------------------------------------
    N = 1 << 14
    x = random_signal(N, "complex128", seed=0)
    X = fmmfft(x)
    err = np.linalg.norm(X - np.fft.fft(x)) / np.linalg.norm(np.fft.fft(x))
    print(f"[1] fmmfft(x) for N=2^14: relative l2 error vs numpy = {err:.2e}")

    # ------------------------------------------------------------------
    # 2. Explicit plan: the paper's Figure 2 parameter style.
    # ------------------------------------------------------------------
    plan = FmmFftPlan.create(N=N, P=64, ML=16, B=3, Q=16)
    print(f"[2] plan: {plan.describe()}")
    from repro.core.single import fmmfft_single

    X2 = fmmfft_single(x, plan)
    print(f"    error with explicit plan = "
          f"{np.linalg.norm(X2 - np.fft.fft(x)) / np.linalg.norm(X2):.2e}")

    # ------------------------------------------------------------------
    # 3. Distributed on a simulated 2xP100 node, vs the 1D baseline.
    # ------------------------------------------------------------------
    plan2 = plan.with_devices(2)
    cl = VirtualCluster(preset("2xP100"))
    X3 = FmmFftDistributed(plan2, cl, backend="numpy").run(x)
    t_fmm = cl.wall_time()
    assert np.allclose(X3, X, atol=1e-8)

    cl_b = VirtualCluster(preset("2xP100"))
    _, t_base = baseline_1d_fft(N, cl_b, x, backend="numpy")
    print(f"[3] simulated 2xP100: FMM-FFT {t_fmm*1e3:.3f} ms vs "
          f"1D FFT {t_base*1e3:.3f} ms -> speedup {t_base/t_fmm:.2f}x")
    print()
    print(cl.trace().render_profile(width=90, devices=[0]))


if __name__ == "__main__":
    main()
