"""Spectral solution of the 1D periodic Poisson equation via the FMM-FFT.

    -u''(x) = f(x)  on [0, 1) periodic,  with zero-mean f

The classic FFT application: transform f, divide by (2 pi k)^2, invert.
The forward transform here is the FMM-FFT; the inverse uses the
conjugation identity ifft(X) = conj(fmmfft(conj(X))) / N, so the whole
solve exercises only this library's transform.

We manufacture a solution u*(x) = sin(2 pi x) + 0.3 cos(8 pi x) +
a narrow periodic Gaussian, take f = -u*'' spectrally, solve, and report
the max error against u*.
"""

import numpy as np

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single


def fmm_ifft(X: np.ndarray, plan: FmmFftPlan) -> np.ndarray:
    """Inverse transform via conjugation through the forward FMM-FFT."""
    return np.conj(fmmfft_single(np.conj(X), plan)) / plan.N


def solve_poisson(f: np.ndarray, plan: FmmFftPlan) -> np.ndarray:
    """Solve -u'' = f with periodic BCs and zero-mean u."""
    N = plan.N
    F = fmmfft_single(f.astype(np.complex128), plan)
    k = np.fft.fftfreq(N, d=1.0 / N)  # integer wavenumbers
    lam = (2.0 * np.pi * k) ** 2
    U = np.zeros_like(F)
    nz = lam != 0
    U[nz] = F[nz] / lam[nz]
    return fmm_ifft(U, plan).real


def main() -> None:
    N = 1 << 13
    plan = FmmFftPlan.create(N=N, P=32, ML=32, B=3, Q=16)
    x = np.arange(N) / N

    u_star = (
        np.sin(2 * np.pi * x)
        + 0.3 * np.cos(8 * np.pi * x)
        + np.exp(-0.5 * ((x - 0.5) / 0.02) ** 2)
    )
    u_star -= u_star.mean()

    # manufacture f = -u'' spectrally (exact for this band-limited-ish u)
    k = np.fft.fftfreq(N, d=1.0 / N)
    lam = (2.0 * np.pi * k) ** 2
    f = np.fft.ifft(lam * np.fft.fft(u_star)).real

    u = solve_poisson(f, plan)
    err = np.abs(u - u_star).max()
    print(f"Poisson solve on N=2^13 periodic grid via FMM-FFT")
    print(f"  plan: {plan.describe()}")
    print(f"  max |u - u*| = {err:.3e}")
    assert err < 1e-10, "spectral Poisson solve should be exact to roundoff"

    # residual check: -u'' vs f
    U = np.fft.fft(u)
    res = np.fft.ifft(lam * U).real - f
    print(f"  max PDE residual = {np.abs(res).max():.3e}")
    print("  OK")


if __name__ == "__main__":
    main()
