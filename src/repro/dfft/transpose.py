"""The distributed transpose: one personalized all-to-all.

Device g holds rows ``[g*r, (g+1)*r)`` of an ``R x C`` matrix; after the
transpose, device h holds rows ``[h*c, (h+1)*c)`` of the ``C x R``
transposed matrix.  Device g therefore sends sub-block
``A_g[:, h*c:(h+1)*c]`` to every h != g — exactly ``(G-1)/G`` of its
local data — and locally reorders its diagonal sub-block.

Chunking: the all-to-all can be issued in ``chunks`` pieces, each gated
on a caller-supplied event (typically the completion of the local FFT
that produced those rows).  This is how the six-step baseline reproduces
cuFFTXT's comm/compute overlap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import comm
from repro.dfft.layout import BlockRows
from repro.machine.cluster import VirtualCluster
from repro.machine.stream import Event
from repro.util.validation import ParameterError


def _move_blocks(cl: VirtualCluster, src_key: str, dst_key: str, layout: BlockRows) -> None:
    """Perform the real data movement of the transpose (all at once)."""
    G = cl.G
    c = layout.cols_local
    srcs = [
        np.asarray(cl.dev(g)[src_key]).reshape(layout.rows_local, layout.cols)
        for g in range(G)
    ]
    for h in range(G):
        # rows h*c..(h+1)*c of the transposed matrix = cols h*c.. of A
        cols = [srcs[g][:, h * c : (h + 1) * c] for g in range(G)]
        block = np.vstack(cols)  # (rows, cols_local)
        cl.dev(h)[dst_key] = np.ascontiguousarray(block.T)  # (cols_local, rows)


def distributed_transpose(
    cl: VirtualCluster,
    src_key: str,
    dst_key: str,
    layout: BlockRows,
    dtype,
    name: str = "transpose",
    after_chunks: Sequence[Sequence[Event]] | None = None,
    chunks: int = 1,
    algorithm: str = "bulk",
    batch: int = 1,
) -> list[Event]:
    """Transpose a block-row distributed matrix; returns per-device events.

    Parameters
    ----------
    cl:
        The cluster (must have ``G == layout.G``).
    src_key, dst_key:
        Device buffer names; ``dst_key`` receives the transposed local
        block of shape ``(cols_local, rows)``.
    layout:
        The source layout.
    dtype:
        Element dtype (for byte accounting).
    name:
        Ledger stage name.
    after_chunks:
        Optional per-chunk event dependencies, ``len == chunks``; chunk
        ``i`` starts only after ``after_chunks[i]``.
    chunks:
        Number of all-to-all pieces to pipeline.
    algorithm:
        Collective algorithm (see :mod:`repro.comm`): ``"bulk"`` is the
        legacy flat model, ``"auto"`` picks the cheapest message plan
        for this topology and payload.
    batch:
        Stacked-problem count (timing-only): scales the bytes moved by
        the all-to-all and the local reorder, one collective either way.
    """
    if cl.G != layout.G:
        raise ParameterError(f"cluster G={cl.G} != layout G={layout.G}")
    if chunks < 1:
        raise ParameterError(f"chunks must be >= 1, got {chunks}")
    if batch < 1:
        raise ParameterError(f"batch must be >= 1, got {batch}")
    if after_chunks is not None and len(after_chunks) != chunks:
        raise ParameterError(
            f"after_chunks has {len(after_chunks)} entries for {chunks} chunks"
        )
    itemsize = np.dtype(dtype).itemsize
    sent = layout.alltoall_bytes_sent(itemsize) * batch

    # Real data moves once, with the first op issued (orchestration is
    # sequential, so the data is complete by the time any fn runs).
    # Chunk i moves row-chunk i of the source into transposed slot i of
    # the destination; distinct chunks are disjoint sub-resources, which
    # is what lets them pipeline against the producing FFTs.
    def fn(c: VirtualCluster) -> None:
        _move_blocks(c, src_key, dst_key, layout)

    events = comm.alltoall(
        cl, sent, name,
        fn=fn,
        reads=[src_key],
        writes=[dst_key],
        algorithm=algorithm,
        chunks=chunks,
        after_chunks=after_chunks,
    )
    # Local diagonal sub-block still needs an on-device reorder
    # (read + write of local_bytes / G); on G == 1 this is the whole
    # transpose and carries the full local cost.
    local_bytes = layout.local_bytes(itemsize) * batch
    reorder = 2.0 * (local_bytes if cl.G == 1 else local_bytes / cl.G)
    out: list[Event] = []
    for g in range(cl.G):
        ev = cl.launch(
            g, name=f"{name}.reorder", kind="copy", flops=0.0, mops=reorder,
            dtype=dtype, stream="compute", after=[events[min(g, len(events) - 1)]],
            reads=[src_key, dst_key], writes=[dst_key],
        )
        out.append(ev)
    return out
