"""Distributed real-input 1D FFT (the C = 1 case, end to end).

Section 5.1's ``C`` factor says real input costs half a complex
transform.  At the distributed level the classic two-for-one trick
realizes it:

1. pack ``z[k] = x[2k] + i x[2k+1]`` — *local* on block-distributed
   data (each device's contiguous chunk packs independently);
2. one distributed **complex** FFT of length N/2 (half the transposes'
   bytes, half the flops);
3. untangle ``X_k = E_k + w^k O_k`` where E/O need ``Z_k`` and
   ``conj(Z_{N/2-k})`` — a single **pairwise mirror exchange** (device g
   swaps its block, reversed, with device G-1-g; G/2 concurrent
   transfers, *not* an all-to-all), then local arithmetic.

Returns the ``N/2 + 1`` non-redundant bins, ``numpy.fft.rfft``
conventions.
"""

from __future__ import annotations

import numpy as np

from repro import comm
from repro.dfft.fft1d import Distributed1DFFT
from repro.fftcore.twiddle import twiddles
from repro.machine.cluster import VirtualCluster
from repro.machine.stream import Event
from repro.util.bitmath import is_pow2
from repro.util.validation import ParameterError, check_multiple, check_pow2


class DistributedRealFFT:
    """Plan for a distributed real-to-complex FFT of length N.

    Parameters
    ----------
    N:
        Input length (power of two, >= 4, with ``2 G | N``).
    cluster:
        The machine to run on.
    dtype:
        Real input precision: 'float32' or 'float64'.
    chunks, backend:
        Passed through to the inner complex FFT.
    comm_algorithm:
        Collective algorithm for the inner FFT's transposes (see
        :mod:`repro.comm`); the mirror exchange itself is already a
        per-message plan.
    """

    def __init__(
        self,
        N: int,
        cluster: VirtualCluster,
        dtype="float64",
        chunks: int = 4,
        backend: str = "auto",
        comm_algorithm: str = "bulk",
    ):
        check_pow2("N", N)
        if N < 4:
            raise ParameterError(f"N must be >= 4, got {N}")
        dt = np.dtype(dtype)
        if dt.kind != "f":
            raise ParameterError(f"dtype must be real, got {dt!r}")
        check_multiple("N", N, 2 * cluster.G, "2G")
        self.N = N
        self.cl = cluster
        self.rdtype = dt
        self.cdtype = np.dtype(np.complex64 if dt == np.float32 else np.complex128)
        self.inner = Distributed1DFFT(
            N // 2, cluster, dtype=self.cdtype, chunks=chunks, backend=backend,
            comm_algorithm=comm_algorithm,
        )

    # -- staging ----------------------------------------------------------

    def _pack(self, x: np.ndarray) -> np.ndarray:
        """Two-for-one pack ``z[k] = x[2k] + i x[2k+1]`` (host-side)."""
        x = np.asarray(x, dtype=self.rdtype)
        if x.shape != (self.N,):
            raise ParameterError(f"input must have shape ({self.N},), got {x.shape}")
        return (x[0::2] + 1j * x[1::2]).astype(self.cdtype)

    def _untangle(self, Z: np.ndarray) -> np.ndarray:
        """Split the packed spectrum into the N/2 + 1 real-input bins."""
        h = self.N // 2
        Z = np.asarray(Z).reshape(h)
        idx = (-np.arange(h)) % h
        Zc = np.conj(Z[idx])
        E = 0.5 * (Z + Zc)
        O = -0.5j * (Z - Zc)
        w = twiddles(self.N, -1, self.cdtype)[:h]
        out = np.empty(h + 1, dtype=self.cdtype)
        out[:h] = E + w * O
        out[h] = (E[0] - O[0]).real
        return out

    def stage_in(self, x: np.ndarray, key: str = "drfft") -> None:
        """Pack the real input and scatter it (the IR ``stage_in`` hook)."""
        self.inner.stage_in(self._pack(x), key)

    def finalize(self, key: str = "drfft") -> np.ndarray:
        """Gather the packed spectrum and untangle it (IR ``finalize``)."""
        return self._untangle(self.inner.gather(key))

    def run(self, x: np.ndarray | None = None, key: str = "drfft") -> np.ndarray | None:
        """Execute; returns the N/2 + 1 rfft bins (gathered) or None."""
        cl, N, G = self.cl, self.N, self.cl.G
        h = N // 2
        blk = h // G  # Z bins per device

        # -- (1) pack (local) + (2) half-size complex distributed FFT -----
        if cl.execute:
            if x is None:
                raise ParameterError("execute-mode cluster requires input data")
            z = self._pack(x)
        else:
            z = None
        # charge the pack pass (read x, write z) on each device; the inner
        # FFT's opening all-to-all must wait on it (it reads ``key``)
        itemr = self.rdtype.itemsize
        with cl.region("rfft"), cl.region("pack"):
            ev_pack = [
                cl.launch(g, "rfft.pack", "copy", flops=0.0,
                          mops=(N / G) * itemr + blk * 2 * itemr,
                          dtype=self.rdtype,
                          reads=[f"{key}.x"], writes=[key])
                for g in range(G)
            ]
        with cl.region("rfft"):
            Zfull = self.inner.run(z, key=key, after=ev_pack)

        # -- (3) mirror exchange + untangle, pipelined in chunks ------------
        # Each untangle chunk needs only its own slice of the mirror
        # block, so chunk j's arithmetic overlaps chunk j+1's transfer —
        # the same comm/compute overlap the transposes use, now with the
        # dependency edges declared so the sanitizer can certify it.
        itemc = self.cdtype.itemsize
        C = self.inner.chunks
        last: list[Event | None] = [None] * G
        for j in range(C):
            part = f"#m{j}" if C > 1 else ""
            ev_mirror: list[Event | None] = [None] * G
            with cl.region("rfft"), cl.region("mirror"):
                for g in range(G):
                    # device g needs Z_{h-k} for its k-range: held by the
                    # mirror device; the returned event is the *receive*
                    # completion on that device
                    mirror = (G - 1 - g) if G > 1 else 0
                    ev_mirror[mirror] = comm.sendrecv(
                        cl, g, mirror, blk * itemc / C, "rfft.mirror",
                        reads=[key], writes=[f"{key}.mirror{part}"],
                    )
            with cl.region("rfft"), cl.region("untangle"):
                last = [
                    cl.launch(g, "rfft.untangle", "custom",
                              flops=10.0 * blk / C, mops=3 * blk * itemc / C,
                              dtype=self.cdtype,
                              after=[ev_mirror[g]] if ev_mirror[g] is not None else (),
                              reads=[key, f"{key}.mirror{part}"],
                              writes=[f"{key}.out{part}"])
                    for g in range(G)
                ]
        evs = last
        cl.barrier()

        if not cl.execute:
            return None
        return self._untangle(np.asarray(Zfull).reshape(h))
