"""Slab and pencil decompositions for distributed 3D FFTs.

Multi-node machines change which decomposition wins (Section 7: the
relative cost of inter-node communication grows, so communication
*structure* dominates):

``slab``
    Device ``g`` owns ``Nx/G`` x-planes.  One local 2D FFT over (y, z),
    one *global* all-to-all to bring x-lines local, one local 1D FFT
    over x.  A single collective over all G devices — on a routed
    fabric it is exactly the node-aware ``hier2`` plan's home turf.
``pencil``
    Devices form a ``Gr x Gc`` grid; device ``(r, c)`` owns the z-pencil
    ``x in r, y in c``.  Three local 1D FFT passes separated by *two*
    subgroup exchanges: within row groups (z <-> y) and within column
    groups (y <-> x).  Each exchange is ``Gc`` (resp. ``Gr``)
    independent all-to-alls running concurrently — issued through
    :func:`repro.comm.grouped_alltoall` so their shared-NIC/uplink
    contention is priced, not ignored.  With ``Gc = gpus_per_node`` the
    row exchanges stay entirely on NVLink and only the column exchange
    crosses the fabric.

Both run real NumPy data in execute mode (verified against the
reference transform) and as pure cost models in timing-only mode.
"""

from __future__ import annotations

import numpy as np

from repro import comm
from repro.dfft.layout import BlockRows
from repro.dfft.transpose import distributed_transpose
from repro.fftcore.flops import fft_flops, fft_mops, fft_small_n_efficiency
from repro.fftcore.plan import LocalFFTPlan
from repro.machine.cluster import VirtualCluster
from repro.util.bitmath import ilog2, is_pow2
from repro.util.validation import ParameterError, check_multiple, check_pow2

DECOMPOSITIONS = ("slab", "pencil")


def default_grid(G: int) -> tuple[int, int]:
    """Near-square ``(Gr, Gc)`` process grid with ``Gr * Gc == G``."""
    if not is_pow2(G):
        raise ParameterError(
            f"default_grid needs a power-of-two G, got {G}; pass grid=")
    q = ilog2(G)
    gr = 1 << (q // 2)
    return gr, G // gr


class Distributed3DFFT:
    """Plan for a distributed 3D FFT over an ``Nx x Ny x Nz`` grid.

    Parameters
    ----------
    nx, ny, nz:
        Grid dimensions (powers of two).
    cluster:
        The :class:`VirtualCluster` to run on.
    dtype:
        complex64 or complex128.
    decomposition:
        ``"slab"`` or ``"pencil"``.
    grid:
        Pencil process grid ``(Gr, Gc)``; defaults to the near-square
        split.  Ignored for slabs.
    backend:
        Local FFT backend.
    comm_algorithm:
        Collective algorithm for the slab's global all-to-all (see
        :mod:`repro.comm`); the pencil subgroup exchanges are issued as
        merged pairwise rounds and take no algorithm knob.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        nz: int,
        cluster: VirtualCluster,
        dtype="complex128",
        decomposition: str = "slab",
        grid: tuple[int, int] | None = None,
        backend: str = "auto",
        comm_algorithm: str = "bulk",
    ):
        check_pow2("nx", nx)
        check_pow2("ny", ny)
        check_pow2("nz", nz)
        if decomposition not in DECOMPOSITIONS:
            raise ParameterError(
                f"unknown decomposition {decomposition!r}; "
                f"choose from {DECOMPOSITIONS}")
        dt = np.dtype(dtype)
        if dt.kind != "c":
            raise ParameterError(f"dtype must be complex, got {dt!r}")
        G = cluster.G
        self.nx, self.ny, self.nz = nx, ny, nz
        self.cl = cluster
        self.dtype = dt
        self.decomposition = decomposition
        self.comm_algorithm = comm_algorithm
        if decomposition == "slab":
            check_multiple("nx", nx, G, "G")
            check_multiple("ny*nz", ny * nz, G, "G")
            self.grid = None
        else:
            gr, gc = default_grid(G) if grid is None else grid
            if gr * gc != G:
                raise ParameterError(
                    f"grid {gr}x{gc} does not tile G={G} devices")
            check_multiple("nx", nx, gr, "Gr")
            check_multiple("ny", ny, gc, "Gc")
            check_multiple("ny", ny, gr, "Gr")
            check_multiple("nz", nz, gc, "Gc")
            self.grid = (gr, gc)
        self._plan_x = LocalFFTPlan(nx, dtype=dt, backend=backend)
        self._plan_y = LocalFFTPlan(ny, dtype=dt, backend=backend)
        self._plan_z = LocalFFTPlan(nz, dtype=dt, backend=backend)

    # -- staging ----------------------------------------------------------

    def _row_groups(self) -> list[list[int]]:
        gr, gc = self.grid
        return [[r * gc + c for c in range(gc)] for r in range(gr)]

    def _col_groups(self) -> list[list[int]]:
        gr, gc = self.grid
        return [[r * gc + c for r in range(gr)] for c in range(gc)]

    def stage_in(self, a: np.ndarray, key: str = "dfft3") -> None:
        """Scatter the global cube into per-device blocks (host-side)."""
        cl = self.cl
        a = np.asarray(a, dtype=self.dtype).reshape(self.nx, self.ny, self.nz)
        if self.decomposition == "slab":
            nxl = self.nx // cl.G
            for g in range(cl.G):
                cl.dev(g)[key] = np.ascontiguousarray(
                    a[g * nxl:(g + 1) * nxl])
            return
        gr, gc = self.grid
        nxr, nyc = self.nx // gr, self.ny // gc
        for r in range(gr):
            for c in range(gc):
                cl.dev(r * gc + c)[key] = np.ascontiguousarray(
                    a[r * nxr:(r + 1) * nxr, c * nyc:(c + 1) * nyc, :])

    def gather(self, key: str = "dfft3") -> np.ndarray:
        """Reassemble the transformed cube from device blocks."""
        cl, nx, ny, nz = self.cl, self.nx, self.ny, self.nz
        if self.decomposition == "slab":
            # device g holds rows [g*rl, (g+1)*rl) of the (ny*nz, nx)
            # transposed matrix
            rl = (ny * nz) // cl.G
            flat = np.vstack([
                np.asarray(cl.dev(g)[key]).reshape(rl, nx)
                for g in range(cl.G)
            ])
            return np.ascontiguousarray(flat.T).reshape(nx, ny, nz)
        gr, gc = self.grid
        nyr, nzc = ny // gr, nz // gc
        out = np.empty((nx, ny, nz), dtype=self.dtype)
        for r in range(gr):
            for c in range(gc):
                blk = np.asarray(cl.dev(r * gc + c)[key])
                out[:, r * nyr:(r + 1) * nyr, c * nzc:(c + 1) * nzc] = (
                    blk.reshape(nx, nyr, nzc))
        return out

    # -- execution --------------------------------------------------------

    def run(self, a: np.ndarray | None = None,
            key: str = "dfft3") -> np.ndarray | None:
        """Execute the 3D FFT; returns the transformed cube or None."""
        cl = self.cl
        if cl.execute:
            if a is None:
                raise ParameterError("execute-mode cluster requires input data")
            self.stage_in(a, key)
        with cl.region("fft3d"):
            if self.decomposition == "slab":
                self._run_slab(key)
            else:
                self._run_pencil(key)
        cl.barrier()
        if cl.execute:
            return self.gather(key)
        return None

    def _fft_pass(self, name: str, n: int, batch: float, after, fn, key: str):
        """One local FFT pass on every device; returns per-device events."""
        cl = self.cl
        flops = fft_flops(n, batch=batch)
        mops = fft_mops(n, batch=batch, itemsize=self.dtype.itemsize) \
            / fft_small_n_efficiency(n)
        evs = []
        for g in range(cl.G):
            dep = [after[g]] if after and after[g] is not None else ()
            evs.append(cl.launch(
                g, name=name, kind="fft", flops=flops, mops=mops,
                dtype=self.dtype, stream="compute", after=dep,
                fn=fn if g == 0 else None, reads=[key], writes=[key]))
        return evs

    def _run_slab(self, key: str) -> None:
        cl, nx, ny, nz = self.cl, self.nx, self.ny, self.nz
        G = cl.G
        nxl = nx // G
        lay = BlockRows(rows=nx, cols=ny * nz, G=G)
        if not cl.execute:
            for g in range(G):
                cl.dev(g).alloc(key, lay.local_shape(), self.dtype)

        def fft_yz(c: VirtualCluster) -> None:
            for g in range(G):
                blk = np.asarray(c.dev(g)[key]).reshape(nxl, ny, nz)
                blk = self._plan_y.forward(blk, axis=1)
                c.dev(g)[key] = self._plan_z.forward(blk, axis=2)

        with cl.region("fftYZ"):
            # two stacked 1D passes priced as one launch
            flops = fft_flops(ny, batch=nxl * nz) + fft_flops(nz, batch=nxl * ny)
            mops = (fft_mops(ny, batch=nxl * nz, itemsize=self.dtype.itemsize)
                    / fft_small_n_efficiency(ny)
                    + fft_mops(nz, batch=nxl * ny, itemsize=self.dtype.itemsize)
                    / fft_small_n_efficiency(nz))
            evs = []
            for g in range(G):
                evs.append(cl.launch(
                    g, name="fft3d.yz", kind="fft", flops=flops, mops=mops,
                    dtype=self.dtype, stream="compute",
                    fn=fft_yz if g == 0 else None, reads=[key], writes=[key]))

        with cl.region("transpose"):
            evs2 = distributed_transpose(
                cl, key, key, lay, self.dtype, name="fft3d.transpose",
                after_chunks=[evs], chunks=1,
                algorithm=self.comm_algorithm)

        rl = (ny * nz) // G

        def fft_x(c: VirtualCluster) -> None:
            for g in range(G):
                blk = np.asarray(c.dev(g)[key]).reshape(rl, nx)
                c.dev(g)[key] = self._plan_x.forward(blk, axis=1)

        with cl.region("fftX"):
            self._fft_pass("fft3d.x", nx, float(rl), evs2, fft_x, key)

    def _exchange(self, name: str, groups, frac_kept: float, fn, after,
                  key: str, stage: int):
        """One subgroup exchange; returns per-device events.

        Message reads/writes use sibling sub-parts of ``key`` so the
        concurrent messages of a round never alias while whole-buffer
        FFT passes still conflict with (and are ordered against) them.
        """
        cl = self.cl
        local_bytes = self._pencil_local_bytes()
        sent = local_bytes * (1.0 - frac_kept)
        evs = comm.grouped_alltoall(
            cl, sent, name, groups=groups, after=after, fn=fn,
            reads=[f"{key}#pack{stage}"], writes=[f"{key}#x{stage}"])
        out = []
        for g in range(cl.G):
            out.append(cl.launch(
                g, name=f"{name}.reorder", kind="copy", flops=0.0,
                mops=2.0 * local_bytes, dtype=self.dtype, stream="compute",
                after=[evs[g]], reads=[key], writes=[key]))
        return out

    def _pencil_local_bytes(self) -> float:
        gr, gc = self.grid
        return (self.nx * self.ny * self.nz / (gr * gc)) \
            * self.dtype.itemsize

    def _run_pencil(self, key: str) -> None:
        cl, nx, ny, nz = self.cl, self.nx, self.ny, self.nz
        gr, gc = self.grid
        nxr, nyc, nyr, nzc = nx // gr, ny // gc, ny // gr, nz // gc
        if not cl.execute:
            for g in range(cl.G):
                cl.dev(g).alloc(key, (nxr, nyc, nz), self.dtype)

        def fft_z(c: VirtualCluster) -> None:
            for g in range(c.G):
                blk = np.asarray(c.dev(g)[key]).reshape(nxr, nyc, nz)
                c.dev(g)[key] = self._plan_z.forward(blk, axis=2)

        with cl.region("fftZ"):
            evs = self._fft_pass("fft3d.z", nz, float(nxr * nyc), None,
                                 fft_z, key)

        row_groups = self._row_groups()

        def move_rows(c: VirtualCluster) -> None:
            # within each row group: split z over members, join y
            for members in row_groups:
                blks = [np.asarray(c.dev(g)[key]).reshape(nxr, nyc, nz)
                        for g in members]
                for ci, g in enumerate(members):
                    c.dev(g)[key] = np.concatenate(
                        [b[:, :, ci * nzc:(ci + 1) * nzc] for b in blks],
                        axis=1)

        with cl.region("rowX"):
            evs = self._exchange("fft3d.rowx", row_groups, 1.0 / gc,
                                 move_rows, evs, key, 1)

        def fft_y(c: VirtualCluster) -> None:
            for g in range(c.G):
                blk = np.asarray(c.dev(g)[key]).reshape(nxr, ny, nzc)
                c.dev(g)[key] = self._plan_y.forward(blk, axis=1)

        with cl.region("fftY"):
            evs = self._fft_pass("fft3d.y", ny, float(nxr * nzc), evs,
                                 fft_y, key)

        col_groups = self._col_groups()

        def move_cols(c: VirtualCluster) -> None:
            # within each column group: split y over members, join x
            for members in col_groups:
                blks = [np.asarray(c.dev(g)[key]).reshape(nxr, ny, nzc)
                        for g in members]
                for ri, g in enumerate(members):
                    c.dev(g)[key] = np.concatenate(
                        [b[:, ri * nyr:(ri + 1) * nyr, :] for b in blks],
                        axis=0)

        with cl.region("colX"):
            evs = self._exchange("fft3d.colx", col_groups, 1.0 / gr,
                                 move_cols, evs, key, 2)

        def fft_x(c: VirtualCluster) -> None:
            for g in range(c.G):
                blk = np.asarray(c.dev(g)[key]).reshape(nx, nyr, nzc)
                c.dev(g)[key] = self._plan_x.forward(blk, axis=0)

        with cl.region("fftX"):
            self._fft_pass("fft3d.x", nx, float(nyr * nzc), evs, fft_x, key)
