"""The six-step distributed in-order 1D FFT — the paper's baseline.

This is the radix-P split of Section 3 (Van Loan's factorization)::

    F_N = Pi_{M,P} (I_M (x) F_P) Pi_{P,M} T_{P,M} (I_P (x) F_M) Pi_{M,P}

implemented, as all industry-standard distributed libraries implement it,
with **three** all-to-all transposes:

1. transpose P-major -> M-major          (all-to-all #1)
2. P local FFTs of size M
3. twiddle ``w[p,m] = omega_N^(p m)``    (fused as a load callback of 5)
4. transpose M-major -> P-major          (all-to-all #2)
5. M local FFTs of size P
6. transpose P-major -> M-major          (all-to-all #3)

Local FFT chunks are pipelined against their transpose chunks — the
overlap cuFFTXT achieves in Figure 2 (top) — so wall time degenerates to
roughly the three all-to-alls for large N, which is precisely the
communication-bound behaviour the FMM-FFT attacks.
"""

from __future__ import annotations

import numpy as np

from repro.dfft.layout import BlockRows
from repro.dfft.transpose import distributed_transpose
from repro.fftcore.flops import fft_flops, fft_mops, fft_small_n_efficiency
from repro.fftcore.plan import LocalFFTPlan
from repro.machine.cluster import VirtualCluster
from repro.machine.stream import Event
from repro.util.bitmath import ilog2, is_pow2
from repro.util.validation import ParameterError, check_multiple, check_pow2


class Distributed1DFFT:
    """Plan for an in-order distributed 1D FFT of size ``N = M * P``.

    Parameters
    ----------
    N:
        Transform size (power of two).
    cluster:
        The :class:`VirtualCluster` to run on.
    dtype:
        complex64 or complex128.
    M, P:
        Optional explicit split; defaults to the near-square split
        ``M = 2^ceil(q/2)`` that vendor libraries prefer.
    chunks:
        Pipeline depth for FFT/transpose overlap.
    backend:
        Local FFT backend ('auto' = our Stockham, 'numpy' = pocketfft
        oracle/fast path).
    comm_algorithm:
        Collective algorithm for the three transposes (see
        :mod:`repro.comm`); ``"bulk"`` is the legacy flat model.
    """

    def __init__(
        self,
        N: int,
        cluster: VirtualCluster,
        dtype="complex128",
        M: int | None = None,
        P: int | None = None,
        chunks: int = 4,
        backend: str = "auto",
        comm_algorithm: str = "bulk",
    ):
        check_pow2("N", N)
        q = ilog2(N)
        if M is None and P is None:
            M = 1 << ((q + 1) // 2)
            P = N // M
        elif M is None:
            M = N // P
        elif P is None:
            P = N // M
        if M * P != N:
            raise ParameterError(f"M*P = {M}*{P} != N = {N}")
        check_pow2("M", M)
        check_pow2("P", P)
        G = cluster.G
        check_multiple("M", M, G, "G")
        check_multiple("P", P, G, "G")
        dt = np.dtype(dtype)
        if dt.kind != "c":
            raise ParameterError(f"dtype must be complex, got {dt!r}")
        self.N, self.M, self.P = N, M, P
        self.cl = cluster
        self.dtype = dt
        # cuFFT-style heuristic: don't chunk tiny local problems (launch
        # overhead would dominate any overlap win)
        if N // G < (1 << 16):
            chunks = 1
        self.chunks = max(1, min(chunks, M // G, P // G))
        self.backend = backend
        self.comm_algorithm = comm_algorithm
        self._plan_M = LocalFFTPlan(M, dtype=dt, backend=backend)
        self._plan_P = LocalFFTPlan(P, dtype=dt, backend=backend)

    # -- helpers ---------------------------------------------------------

    def _chunked_row_fft(
        self,
        key: str,
        layout: BlockRows,
        plan: LocalFFTPlan,
        name: str,
        after: list[Event],
        twiddle: bool = False,
    ) -> list[list[Event]]:
        """Batch row FFTs on every device, issued in ``self.chunks`` pieces.

        Returns per-chunk event lists (``chunks`` lists of G events) so a
        following transpose can pipeline.  The optional twiddle is fused
        as a load callback (charged as extra flops, no extra memory
        pass), matching cuFFTXT's callback facility.
        """
        cl = self.cl
        n = plan.n
        rows_local = layout.rows_local
        itemsize = self.dtype.itemsize

        def data_fn(c: VirtualCluster) -> None:
            for g in range(cl.G):
                a = np.asarray(c.dev(g)[key]).reshape(rows_local, layout.cols)
                if twiddle:
                    a = a * self._twiddle_block(g, rows_local, layout.cols)
                c.dev(g)[key] = plan.forward(a, axis=1)

        per_chunk: list[list[Event]] = []
        rows_chunk = rows_local / self.chunks
        flops = fft_flops(n, batch=rows_chunk)
        # small-n batched transforms run below peak bandwidth; charge the
        # inefficiency as effective extra traffic
        mops = fft_mops(n, batch=rows_chunk, itemsize=itemsize) / fft_small_n_efficiency(n)
        if twiddle:
            flops += 6.0 * n * rows_chunk  # complex multiply per element
        for i in range(self.chunks):
            # chunk i transforms row-chunk i in place: a disjoint
            # sub-resource, so later chunks overlap the transpose of
            # earlier ones without aliasing
            bufs = [key] if self.chunks == 1 else [f"{key}#r{i}"]
            evs = []
            for g in range(cl.G):
                ev = cl.launch(
                    g, name=name, kind="fft", flops=flops, mops=mops,
                    dtype=self.dtype, stream="compute",
                    after=[after[g]] if i == 0 and after else (),
                    fn=data_fn if (i == 0 and g == 0) else None,
                    reads=bufs, writes=bufs,
                )
                evs.append(ev)
            per_chunk.append(evs)
        return per_chunk

    def _twiddle_block(self, g: int, rows_local: int, cols: int) -> np.ndarray:
        """Twiddle ``omega_N^(p m)`` for device g's (P/G, M) block.

        After transpose #1 the local block is ``Y[p, m]`` with p in
        device g's row block; the diagonal ``T_{P,M}`` entry at global
        vector position ``m + p M`` is ``omega_N^(m p)``.
        """
        p0 = g * rows_local
        p = np.arange(p0, p0 + rows_local, dtype=np.float64)[:, None]
        m = np.arange(cols, dtype=np.float64)[None, :]
        return np.exp(-2j * np.pi * (p * m) / self.N).astype(self.dtype)

    # -- staging ----------------------------------------------------------

    def stage_in(self, x: np.ndarray, key: str = "dfft1") -> None:
        """Scatter the global input vector into per-device blocks.

        Host-side data motion with no schedule footprint; the replay
        executor calls it before each execute-mode replay (the IR's
        ``stage_in`` hook) exactly as :meth:`run` does on capture.
        """
        cl, G = self.cl, self.cl.G
        x = np.asarray(x, dtype=self.dtype)
        if x.shape != (self.N,):
            raise ParameterError(f"input must have shape ({self.N},), got {x.shape}")
        lay_mp = BlockRows(rows=self.M, cols=self.P, G=G)
        blocks = lay_mp.scatter(x)
        for g in range(G):
            cl.dev(g)[key] = blocks[g]

    def gather(self, key: str = "dfft1") -> np.ndarray:
        """Concatenate the per-device output blocks into the spectrum.

        The inverse host-side motion of :meth:`stage_in`; doubles as the
        IR ``finalize`` hook.
        """
        cl, G = self.cl, self.cl.G
        return np.concatenate(
            [np.asarray(cl.dev(g)[key]).ravel() for g in range(G)]
        )

    # -- execution --------------------------------------------------------

    def run(
        self,
        x: np.ndarray | None = None,
        key: str = "dfft1",
        after: list[Event] | None = None,
    ) -> np.ndarray | None:
        """Execute the six-step pipeline.

        Parameters
        ----------
        x:
            Global input vector of length N (execute mode); None in
            timing-only mode.
        key:
            Device buffer name prefix.
        after:
            Optional per-device events gating the first transpose — the
            producer that filled ``key`` (e.g. the real-FFT pack stage).
            Without this the opening all-to-all would race the producer.

        Returns
        -------
        The in-order DFT of ``x`` (gathered), or None in timing-only mode.
        """
        cl, M, P, G = self.cl, self.M, self.P, self.cl.G
        lay_mp = BlockRows(rows=M, cols=P, G=G)  # X0[m, p] = x[p + m P]
        lay_pm = lay_mp.transposed()

        if cl.execute:
            if x is None:
                raise ParameterError("execute-mode cluster requires input data")
            self.stage_in(x, key)
        else:
            for g in range(G):
                cl.dev(g).alloc(key, lay_mp.local_shape(), self.dtype)

        with cl.region("fft1d"):
            # (1) transpose #1: P-major -> M-major (gated on the producer of
            # ``key`` when there is one; no compute to overlap either way)
            with cl.region("transpose1"):
                evs = distributed_transpose(
                    cl, key, key, lay_mp, self.dtype, name="transpose1", chunks=1,
                    after_chunks=[after] if after is not None else None,
                    algorithm=self.comm_algorithm,
                )
            # (2) P local FFTs of size M, chunked
            with cl.region("fftM"):
                chunk_evs = self._chunked_row_fft(
                    key, lay_pm, self._plan_M, "fftM", after=evs
                )
            # (4) transpose #2, pipelined against (2)
            with cl.region("transpose2"):
                evs = distributed_transpose(
                    cl, key, key, lay_pm, self.dtype, name="transpose2",
                    after_chunks=chunk_evs, chunks=self.chunks,
                    algorithm=self.comm_algorithm,
                )
            # (3)+(5) twiddle fused into M local FFTs of size P, chunked
            with cl.region("fftP"):
                chunk_evs = self._chunked_row_fft(
                    key, lay_mp, self._plan_P, "fftP", after=evs, twiddle=True
                )
            # (6) transpose #3, pipelined against (5)
            with cl.region("transpose3"):
                evs = distributed_transpose(
                    cl, key, key, lay_mp, self.dtype, name="transpose3",
                    after_chunks=chunk_evs, chunks=self.chunks,
                    algorithm=self.comm_algorithm,
                )
            cl.barrier()
        if cl.execute:
            return self.gather(key)
        return None
