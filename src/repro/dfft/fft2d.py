"""Distributed M x P 2D FFT — a single all-to-all.

Steps (2)-(4) of the FMM-FFT (Section 3) are "precisely a distributed 2D
FFT of size M x P"::

    input  A[m, p] (m-block rows)   -- p-major vector t[p + m P]
    (a) M local FFTs of size P along p    (optionally with a fused load
        callback: the FMM-FFT's POST stage, Algorithm 1 lines 15-16)
    (b) transpose, the ONE all-to-all, pipelined against (a)
    (c) P local FFTs of size M along m
    output B[p, m] (p-block rows)   -- natural-order vector X[m + p M]

Compared to the six-step 1D FFT this saves two of the three transposes,
which is why "distributed 2D FFTs often achieve nearly 3x performance of
distributed 1D FFTs" (Section 6.1) — the black budget bar of Figure 3.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dfft.layout import BlockRows
from repro.dfft.transpose import distributed_transpose
from repro.fftcore.flops import fft_flops, fft_mops, fft_small_n_efficiency
from repro.fftcore.plan import LocalFFTPlan
from repro.machine.cluster import VirtualCluster
from repro.machine.stream import Event
from repro.util.validation import ParameterError, check_multiple, check_pow2


class Distributed2DFFT:
    """Plan for a distributed 2D FFT over an M x P grid.

    Parameters
    ----------
    M, P:
        Grid dimensions; the transform is applied along both.
    cluster:
        The :class:`VirtualCluster` to run on.
    dtype:
        complex64 or complex128.
    chunks:
        Pipeline depth for overlap of (a) with (b).
    backend:
        Local FFT backend.
    fuse_load:
        When a ``load_callback`` is supplied, True fuses it into the
        first FFT (no extra memory round trip); False charges a separate
        elementwise kernel — the ablation of the paper's callback
        optimization.
    comm_algorithm:
        Collective algorithm for the transpose (see :mod:`repro.comm`):
        ``"bulk"`` is the legacy flat model, ``"auto"`` the selector.
    batch:
        Stacked-problem count (timing-only cost model): per-stage data
        flops, memory traffic, and transpose bytes scale by ``batch``
        while the launch and collective counts stay fixed — how the
        serve batcher amortizes fixed costs over coalesced requests.
    """

    def __init__(
        self,
        M: int,
        P: int,
        cluster: VirtualCluster,
        dtype="complex128",
        chunks: int = 4,
        backend: str = "auto",
        fuse_load: bool = True,
        comm_algorithm: str = "bulk",
        batch: int = 1,
    ):
        check_pow2("M", M)
        check_pow2("P", P)
        G = cluster.G
        check_multiple("M", M, G, "G")
        check_multiple("P", P, G, "G")
        if batch < 1:
            raise ParameterError(f"batch must be >= 1, got {batch}")
        if batch > 1 and cluster.execute:
            raise ParameterError(
                "batch > 1 is a timing-only cost model; execute-mode numerics "
                "run through core.single.fmmfft_batched"
            )
        dt = np.dtype(dtype)
        if dt.kind != "c":
            raise ParameterError(f"dtype must be complex, got {dt!r}")
        # cuFFTXT rejects 2D FFTs with a dimension < 32 (Section 6.3.2);
        # we accept them but the model captures the same degradation.
        self.M, self.P = M, P
        self.cl = cluster
        self.dtype = dt
        if (M // G) * P < (1 << 16):
            chunks = 1
        self.chunks = max(1, min(chunks, M // G, P // G))
        self.backend = backend
        self.fuse_load = fuse_load
        self.comm_algorithm = comm_algorithm
        self.batch = batch
        self._plan_M = LocalFFTPlan(M, dtype=dt, backend=backend)
        self._plan_P = LocalFFTPlan(P, dtype=dt, backend=backend)

    # -- staging ----------------------------------------------------------

    def stage_in(self, a: np.ndarray, key: str = "dfft2") -> None:
        """Scatter the global (M, P) array into per-device row blocks.

        Host-side data motion with no schedule footprint; the replay
        executor calls it before each execute-mode replay (the IR's
        ``stage_in`` hook) exactly as :meth:`run` does on capture.
        """
        cl, M, P, G = self.cl, self.M, self.P, self.cl.G
        a = np.asarray(a, dtype=self.dtype).reshape(M, P)
        lay_mp = BlockRows(rows=M, cols=P, G=G)
        for g, blk in enumerate(lay_mp.scatter(a)):
            cl.dev(g)[key] = blk

    def gather(self, key: str = "dfft2") -> np.ndarray:
        """Stack the per-device output blocks into the (P, M) result.

        The inverse host-side motion of :meth:`stage_in`; doubles as the
        IR ``finalize`` hook.
        """
        cl, M, P, G = self.cl, self.M, self.P, self.cl.G
        rows_local = BlockRows(rows=P, cols=M, G=G).rows_local
        return np.vstack(
            [np.asarray(cl.dev(g)[key]).reshape(rows_local, M) for g in range(G)]
        )

    def run(
        self,
        a: np.ndarray | None = None,
        key: str = "dfft2",
        load_callback: Callable[[np.ndarray, int], np.ndarray] | None = None,
        after: list[Event] | None = None,
        staged: bool = False,
        barrier: bool = True,
    ) -> np.ndarray | None:
        """Execute the 2D FFT.

        Parameters
        ----------
        a:
            Global (M, P) array (execute mode, unless ``staged``).
        key:
            Device buffer name; with ``staged=True`` the input blocks of
            shape (M/G, P) must already be in each device's ``key``
            buffer (how the FMM-FFT hands its T tensor over).
        load_callback:
            ``f(block, g) -> block`` applied to device g's input block
            before the first FFT (the POST stage).  Charged fused or
            unfused per ``fuse_load``.
        after:
            Per-device events the first FFT must wait on.
        staged:
            Input already resident on devices.
        barrier:
            True (default) ends with a cluster-wide barrier.  The serve
            scheduler passes False so the next in-flight batch's comm
            can start under this batch's trailing compute.

        Returns
        -------
        The (P, M) output — i.e. the natural-order vector reshaped — or
        None in timing-only mode.
        """
        cl, M, P, G = self.cl, self.M, self.P, self.cl.G
        k = self.batch
        lay_mp = BlockRows(rows=M, cols=P, G=G)
        itemsize = self.dtype.itemsize
        local_elems = lay_mp.rows_local * P * k

        if cl.execute and not staged:
            if a is None:
                raise ParameterError("execute-mode cluster requires input data")
            self.stage_in(a, key)
        elif not cl.execute and not staged:
            for g in range(G):
                cl.dev(g).alloc(key, lay_mp.local_shape(), self.dtype)

        # Unfused load callback: a separate elementwise pass.
        evs = list(after) if after else [None] * G
        if load_callback is not None and not self.fuse_load:
            new_evs = []
            with cl.region("fft2d"), cl.region("load"):
                for g in range(G):
                    ev = cl.launch(
                        g, name="load", kind="custom",
                        flops=8.0 * local_elems,
                        mops=2.0 * local_elems * itemsize,
                        dtype=self.dtype, stream="compute",
                        after=[evs[g]] if evs[g] is not None else (),
                        fn=(lambda c: self._apply_callback(c, key, load_callback))
                        if g == 0 else None,
                        reads=[key], writes=[key],
                    )
                    new_evs.append(ev)
            evs = new_evs

        # (a) M local FFTs of size P, chunked; fused callback adds flops only.
        def fft_p_fn(c: VirtualCluster) -> None:
            for g in range(G):
                blk = np.asarray(c.dev(g)[key]).reshape(lay_mp.rows_local, P)
                if load_callback is not None and self.fuse_load:
                    blk = load_callback(blk, g)
                c.dev(g)[key] = self._plan_P.forward(blk, axis=1)

        rows_chunk = lay_mp.rows_local / self.chunks * k
        flops = fft_flops(P, batch=rows_chunk)
        if load_callback is not None and self.fuse_load:
            flops += 8.0 * P * rows_chunk
        mops = fft_mops(P, batch=rows_chunk, itemsize=itemsize) / fft_small_n_efficiency(P)
        chunk_evs: list[list[Event]] = []
        with cl.region("fft2d"), cl.region("fftP"):
            for i in range(self.chunks):
                # chunk i owns row-chunk i of ``key``: disjoint from the
                # already-transposing earlier chunks
                bufs = [key] if self.chunks == 1 else [f"{key}#r{i}"]
                es = []
                for g in range(G):
                    ev = cl.launch(
                        g, name="fft2d.P", kind="fft", flops=flops, mops=mops,
                        dtype=self.dtype, stream="compute",
                        after=[evs[g]] if i == 0 and evs[g] is not None else (),
                        fn=fft_p_fn if (i == 0 and g == 0) else None,
                        reads=bufs, writes=bufs,
                    )
                    es.append(ev)
                chunk_evs.append(es)

        # (b) the single all-to-all, pipelined against (a)
        with cl.region("fft2d"), cl.region("transpose"):
            evs2 = distributed_transpose(
                cl, key, key, lay_mp, self.dtype, name="fft2d.transpose",
                after_chunks=chunk_evs, chunks=self.chunks,
                algorithm=self.comm_algorithm, batch=k,
            )

        # (c) P local FFTs of size M
        lay_pm = lay_mp.transposed()

        def fft_m_fn(c: VirtualCluster) -> None:
            for g in range(G):
                blk = np.asarray(c.dev(g)[key]).reshape(lay_pm.rows_local, M)
                c.dev(g)[key] = self._plan_M.forward(blk, axis=1)

        flops_m = fft_flops(M, batch=lay_pm.rows_local * k)
        mops_m = fft_mops(M, batch=lay_pm.rows_local * k, itemsize=itemsize) / fft_small_n_efficiency(M)
        with cl.region("fft2d"), cl.region("fftM"):
            for g in range(G):
                cl.launch(
                    g, name="fft2d.M", kind="fft", flops=flops_m, mops=mops_m,
                    dtype=self.dtype, stream="compute", after=[evs2[g]],
                    fn=fft_m_fn if g == 0 else None,
                    reads=[key], writes=[key],
                )
        if barrier:
            cl.barrier()
        if cl.execute:
            return self.gather(key)
        return None

    @staticmethod
    def _apply_callback(cl: VirtualCluster, key: str, cb) -> None:
        for g in range(cl.G):
            cl.dev(g)[key] = cb(np.asarray(cl.dev(g)[key]), g)
