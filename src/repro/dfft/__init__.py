"""Distributed FFTs on the virtual cluster (the cuFFTXT substitute).

Two pipelines, both built from :mod:`repro.fftcore` local transforms and
:mod:`repro.machine` communication:

- :class:`~repro.dfft.fft1d.Distributed1DFFT` — the industry-standard
  in-order six-step radix-P split with **three** all-to-all transposes
  (the paper's baseline, Section 3).  Transposes are chunk-pipelined
  against local FFT compute, reproducing cuFFTXT's near-perfect overlap
  (Figure 2 top) — and its communication-bound wall time.
- :class:`~repro.dfft.fft2d.Distributed2DFFT` — the M x P 2D FFT with a
  **single** all-to-all, plus cuFFT-style load callbacks used to fuse
  the FMM-FFT's POST stage into the first FFT (Algorithm 1, lines
  15-16).
- :class:`~repro.dfft.decomp.Distributed3DFFT` — slab and pencil
  decompositions of a 3D transform for routed multi-node machines: one
  global all-to-all (slab) vs. two subgroup exchanges on a ``Gr x Gc``
  process grid (pencil).

Both run real NumPy numerics in ``execute=True`` clusters and
shape-determined timing in ``execute=False`` clusters.
"""

from __future__ import annotations

from repro.dfft.layout import BlockRows
from repro.dfft.transpose import distributed_transpose
from repro.dfft.fft1d import Distributed1DFFT
from repro.dfft.fft2d import Distributed2DFFT
from repro.dfft.decomp import Distributed3DFFT, default_grid
from repro.dfft.realfft import DistributedRealFFT

__all__ = [
    "BlockRows",
    "Distributed1DFFT",
    "Distributed2DFFT",
    "Distributed3DFFT",
    "DistributedRealFFT",
    "default_grid",
    "distributed_transpose",
]
