"""Row-block layouts for distributed 2D views of 1D data.

Every stage of the distributed FFTs views the length-N vector as a 2D
array (``rows x cols``, C order) whose *rows* are block-partitioned over
the G devices.  A transpose swaps which index is rows — that is the
all-to-all.  :class:`BlockRows` captures one such view and the local
shapes/sizes it implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import ParameterError, check_multiple, check_positive


@dataclass(frozen=True)
class BlockRows:
    """A ``rows x cols`` matrix with rows block-partitioned over G devices.

    Constraints: ``G | rows`` (every device owns an equal row block) and
    ``G | cols`` (so the transposed layout is also an equal partition).
    """

    rows: int
    cols: int
    G: int

    def __post_init__(self):
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        check_positive("G", self.G)
        check_multiple("rows", self.rows, self.G, "G")
        check_multiple("cols", self.cols, self.G, "G")

    @property
    def rows_local(self) -> int:
        return self.rows // self.G

    @property
    def cols_local(self) -> int:
        return self.cols // self.G

    @property
    def n(self) -> int:
        """Total element count."""
        return self.rows * self.cols

    def row_range(self, g: int) -> tuple[int, int]:
        """Global [start, stop) row indices owned by device g."""
        if not 0 <= g < self.G:
            raise ParameterError(f"device {g} out of range for G={self.G}")
        r = self.rows_local
        return (g * r, (g + 1) * r)

    def local_shape(self, g: int = 0) -> tuple[int, int]:
        """Shape of device g's local block (uniform across devices)."""
        return (self.rows_local, self.cols)

    def local_bytes(self, itemsize: int) -> int:
        """Bytes of one device's local block."""
        return self.rows_local * self.cols * itemsize

    def transposed(self) -> "BlockRows":
        """The layout after a full transpose (cols become rows)."""
        return BlockRows(rows=self.cols, cols=self.rows, G=self.G)

    def alltoall_bytes_sent(self, itemsize: int) -> float:
        """Bytes each device sends during the transposing all-to-all."""
        return self.local_bytes(itemsize) * (self.G - 1) / self.G

    def scatter(self, x: np.ndarray) -> list[np.ndarray]:
        """Split a global (rows, cols) array (or flat vector) into blocks."""
        a = np.asarray(x).reshape(self.rows, self.cols)
        r = self.rows_local
        return [a[g * r : (g + 1) * r].copy() for g in range(self.G)]

    def gather(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Reassemble the global (rows, cols) array from per-device blocks."""
        if len(blocks) != self.G:
            raise ParameterError(f"expected {self.G} blocks, got {len(blocks)}")
        return np.vstack([np.asarray(b).reshape(self.rows_local, self.cols) for b in blocks])
