"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List the simulated testbeds and their interconnect characteristics.
``transform``
    FMM-FFT a synthetic signal and report the error vs the exact FFT.
``search``
    Find the fastest (P, M_L, B, Q) for one size on one system.
``speedup``
    The Figure 3 sweep for one system/precision as a table.
``profile``
    Render the Figure-2-style simulated timeline for a configuration.
``analyze``
    Profile a pipeline and run the hazard sanitizer over its recorded
    schedule (``--sanitize`` raises on any data race or defect;
    ``--json`` writes the shared analysis-findings document).
``verify``
    Statically certify every comm-plan algorithm on every topology
    class — deadlock-freedom, payload conservation, buffer liveness —
    without running the simulator (:mod:`repro.analysis.plancheck`).
    ``--ir`` additionally captures every pipeline's op graph and checks
    it against the plan certificates' preallocation contracts
    (:mod:`repro.ir.prealloc`).
``ir``
    Capture a pipeline into the backend-neutral op-graph IR
    (:mod:`repro.ir`), certify it (hazards + prealloc), fuse its
    elementwise stages, and report graph structure plus the host-side
    capture-vs-replay wall time — the compiled-replay payoff.
``metrics``
    Observability report for a simulated run: per-region rollups, the
    measured-vs-model join, comm/compute overlap and the critical path.
``comm``
    Collective-algorithm cost table for one testbed: per-size predicted
    times for every :mod:`repro.comm` plan, the model-chosen winner,
    and its speedup over the legacy bulk collective.
``model``
    Section 5 model breakdown (per-stage roofline) for a configuration.
``energy``
    Energy projection of FMM-FFT vs the 1D baseline on one system.
``multinode``
    The Section 7 multi-node projection table.
``serve``
    Drive a synthetic open-loop workload through the batching transform
    service (:mod:`repro.serve`): Poisson arrivals, continuous batching,
    plan cache + persistent wisdom, latency percentiles.
``chaos``
    The serve workload under seeded fault injection (:mod:`repro.faults`):
    link flaps/degrades, stragglers, transient message failures.  Reports
    retry/shed accounting and can assert replay determinism
    (``--replay-check``) and hazard freedom (``--sanitize``).
``tune``
    Build/extend a JSON tuning-wisdom file over a range of sizes.
``trace``
    Export a chrome://tracing JSON of a simulated run.
``report``
    Stitch the benchmark artifacts into one markdown report.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_relative_error
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import preset, _PRESETS
from repro.model.error import choose_q
from repro.model.search import find_fastest
from repro.util.prng import random_signal
from repro.util.table import Table, format_bytes, format_time


def _parse_size(s: str) -> int:
    """Accept plain ints or '2^k' / '2**k' forms."""
    s = s.strip()
    for sep in ("^", "**"):
        if sep in s:
            base, exp = s.split(sep)
            return int(base) ** int(exp)
    return int(s)


def cmd_info(args: argparse.Namespace) -> int:
    """List the simulated testbeds."""
    t = Table(["system", "G", "P2P [GB/s]", "all-to-all inj [GB/s]", "collective ovh [us]"],
              title="Simulated testbeds")
    for name in sorted(_PRESETS):
        spec = preset(name)
        t.add_row([
            spec.name, spec.num_devices,
            spec.pair_bandwidth(0, 1) / 1e9,
            spec.alltoall_bandwidth() / 1e9,
            spec.collective_overhead * 1e6,
        ])
    print(t.render())
    return 0


def cmd_transform(args: argparse.Namespace) -> int:
    """FMM-FFT a synthetic signal; exit 1 if tolerance missed."""
    N = _parse_size(args.n)
    Q = args.q if args.q else choose_q(args.tolerance, args.dtype)
    x = random_signal(N, args.dtype, seed=args.seed)
    plan_kw = {}
    if args.p:
        plan_kw["P"] = args.p
    from repro.core.api import default_params

    d = default_params(N)
    d.update(plan_kw)
    d["Q"] = Q
    plan = FmmFftPlan.create(N=N, dtype=args.dtype, **d)
    err = fmmfft_relative_error(x, plan)
    print(f"plan: {plan.describe()}")
    print(f"relative l2 error vs exact FFT: {err:.3e} "
          f"(target {args.tolerance:g}, chosen Q={Q})")
    if args.trace_out:
        # replay the same size on a simulated testbed and export the
        # Perfetto trace of the distributed schedule
        from repro.obs import save_trace

        spec = preset(args.system)
        r = find_fastest(N, spec, dtype=args.dtype)
        tplan = FmmFftPlan.create(N=N, G=spec.num_devices, dtype=args.dtype,
                                  build_operators=False, **r.params)
        cl = VirtualCluster(spec, execute=False)
        FmmFftDistributed(tplan, cl).run()
        save_trace(args.trace_out, cl.ledger, spec)
        print(f"wrote {args.trace_out} ({spec.name} timing replay, "
              f"{len(cl.ledger)} ops)")
    return 0 if err <= args.tolerance else 1


def cmd_search(args: argparse.Namespace) -> int:
    """Find the fastest parameters for one size/system."""
    N = _parse_size(args.n)
    spec = preset(args.system)
    r = find_fastest(N, spec, dtype=args.dtype)
    p = r.params
    print(f"N={N} on {spec.name} ({args.dtype}):")
    print(f"  fastest: P={p['P']}, ML={p['ML']}, B={p['B']}, Q={p['Q']}")
    print(f"  FMM-FFT {format_time(r.fmmfft_time)}  "
          f"1D FFT {format_time(r.baseline_time)}  speedup {r.speedup:.2f}x")
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    """Figure-3-style speedup sweep for one system."""
    spec = preset(args.system)
    t = Table(["log2N", "FMM-FFT", "1D FFT", "speedup"],
              title=f"Speedup sweep, {spec.name}, {args.dtype}")
    for q in range(args.min, args.max + 1):
        r = find_fastest(1 << q, spec, dtype=args.dtype)
        t.add_row([q, format_time(r.fmmfft_time), format_time(r.baseline_time),
                   f"{r.speedup:.2f}"])
    print(t.render())
    return 0


def _run_pipeline(pipeline: str, N: int, spec, dtype: str, comm: str = "bulk"):
    """Run one pipeline timing-only; returns (cluster, geometry, params).

    geometry/params are None for the non-FMM pipelines.  ``comm`` picks
    the collective algorithm (see :mod:`repro.comm`).  Shared by
    ``analyze`` and ``metrics`` so both profile identical schedules.
    """
    cl = VirtualCluster(spec, execute=False)
    geom = params = None
    if pipeline == "fmmfft":
        r = find_fastest(N, spec, dtype=dtype)
        plan = FmmFftPlan.create(N=N, G=spec.num_devices, dtype=dtype,
                                 build_operators=False, **r.params)
        FmmFftDistributed(plan, cl, comm_algorithm=comm).run()
        geom, params = plan.geometry, r.params
    elif pipeline == "fft1d":
        Distributed1DFFT(N, cl, dtype=dtype, comm_algorithm=comm).run()
    elif pipeline == "fft2d":
        from repro.dfft.fft2d import Distributed2DFFT
        from repro.util.bitmath import ilog2

        M = 1 << ((ilog2(N) + 1) // 2)
        Distributed2DFFT(M, N // M, cl, dtype=dtype, comm_algorithm=comm).run()
    else:  # rfft
        from repro.dfft.realfft import DistributedRealFFT

        rdt = "float32" if dtype == "complex64" else "float64"
        DistributedRealFFT(N, cl, dtype=rdt, comm_algorithm=comm).run()
    return cl, geom, params


def cmd_profile(args: argparse.Namespace) -> int:
    """Render the simulated timeline for a configuration."""
    N = _parse_size(args.n)
    spec = preset(args.system)
    pipeline = "fft1d" if args.baseline else "fmmfft"
    cl, _, params = _run_pipeline(pipeline, N, spec, args.dtype)
    if params is not None:
        print(f"params: {params}")
    devices = [int(d) for d in args.devices.split(",")] if args.devices else None
    print(cl.trace().render_profile(width=args.width, devices=devices))
    print()
    print(cl.trace().stage_summary().render())
    if args.trace_out:
        from repro.obs import save_trace

        save_trace(args.trace_out, cl.ledger, spec)
        print(f"wrote {args.trace_out}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Profile a pipeline and run the hazard sanitizer over its schedule."""
    from repro.machine.multinode import multinode_p100

    N = _parse_size(args.n)
    if args.nodes > 1:
        spec = multinode_p100(args.nodes, gpus_per_node=args.gpus_per_node)
    else:
        spec = preset(args.system)
    cl, _, params = _run_pipeline(args.pipeline, N, spec, args.dtype,
                                  comm=args.comm)
    if params is not None:
        print(f"params: {params}")

    print(cl.trace().render_profile(width=args.width))
    print()
    report = cl.trace().hazards()
    print(report.render())
    if args.json:
        from repro.analysis.findings import (finding_context, from_hazards,
                                             write_findings)

        ctx = finding_context(pipeline=args.pipeline, comm=args.comm,
                              n=N, system=spec.name)
        write_findings(args.json, from_hazards(report, context=ctx))
        print(f"findings JSON written to {args.json}")
    if args.sanitize:
        report.raise_if_any()
    return 0 if report.ok else 1


def _verify_ir(N: int, dtype: str, comm: str):
    """Capture every pipeline and check its graph prealloc contract.

    Returns ``(rows, findings)``: one row per pipeline (graph facts +
    verdict) and the :mod:`repro.ir.prealloc` findings, for folding
    into ``repro verify``'s table and findings JSON.
    """
    from repro.ir import capture_pipeline, check_graph_prealloc
    from repro.ir.executor import scratch_replay
    from repro.machine.spec import p100_nvlink_node

    spec8 = preset("8xP100")
    rows, findings = [], []
    from repro.ir import PIPELINE_NAMES

    for name in PIPELINE_NAMES:
        spec = p100_nvlink_node(1) if name == "nufft" else spec8
        cl = VirtualCluster(spec, execute=False)
        graph, _ = capture_pipeline(name, cl, N, dtype=dtype,
                                    comm_algorithm=comm)
        fnd = check_graph_prealloc(graph, spec)
        findings.extend(fnd)
        # the replay-memory assertion: every buffer the replay touches
        # fits the contract the certificates promised
        scratch = scratch_replay(graph, spec)
        scratch.sanitize()
        rows.append({
            "pipeline": name, "G": graph.meta["G"],
            "nodes": len(graph.nodes),
            "records": graph.num_records,
            "comm_calls": len(graph.comm_calls()),
            "peak_live_bytes": (0.0 if graph.prealloc is None
                                else graph.prealloc["peak_live_bytes"]),
            "findings": len(fnd),
            "ok": not fnd,
        })
    return rows, findings


def cmd_verify(args: argparse.Namespace) -> int:
    """Statically certify comm plans over the algorithm x topology matrix."""
    from repro.analysis.findings import write_findings
    from repro.analysis.plancheck import DEFAULT_G_LIST, verify_matrix

    g_list = (tuple(int(g) for g in args.g_list.split(","))
              if args.g_list else DEFAULT_G_LIST)
    payload = float(_parse_size(args.payload))
    rows, findings = verify_matrix(g_list=g_list, payload=payload,
                                   include_degraded=not args.no_degraded)
    t = Table(
        ["spec", "kind", "algorithm", "G", "rounds", "msgs",
         "wire", "peak live/dev", "verdict"],
        title="Static plan verification",
    )
    for r in rows:
        t.add_row([
            r["spec"], r["kind"], r["algorithm"], r["G"],
            r["num_rounds"], r["num_messages"],
            format_bytes(r["wire_bytes"]),
            format_bytes(r["prealloc"].get("peak_live_bytes", 0.0)),
            "certified" if r["ok"] else f"{r['findings']} finding(s)",
        ])
    print(t.render())
    print()
    if args.ir:
        ir_rows, ir_findings = _verify_ir(_parse_size(args.ir_n),
                                          args.dtype, args.comm)
        findings = list(findings) + ir_findings
        it = Table(
            ["pipeline", "G", "nodes", "records", "comm", "peak live/dev",
             "verdict"],
            title=f"IR graph preallocation (N={_parse_size(args.ir_n)})",
        )
        for r in ir_rows:
            it.add_row([
                r["pipeline"], r["G"], r["nodes"], r["records"],
                r["comm_calls"], format_bytes(r["peak_live_bytes"]),
                "certified" if r["ok"] else f"{r['findings']} finding(s)",
            ])
        print(it.render())
        print()
        rows = list(rows) + ir_rows
    if args.json:
        write_findings(args.json, findings)
        print(f"findings JSON written to {args.json}")
    for f in findings[:20]:
        print(f)
    if len(findings) > 20:
        print(f"... {len(findings) - 20} more finding(s)")
    n_ok = sum(1 for r in rows if r["ok"])
    print(f"verify: {n_ok}/{len(rows)} plans certified, "
          f"{len(findings)} finding(s)")
    return 0 if not findings else 1


def cmd_ir(args: argparse.Namespace) -> int:
    """Capture pipelines into the IR and report graph facts + timings."""
    import json as _json
    import time as _time

    from repro.ir import (PIPELINE_NAMES, ReplayExecutor, capture_pipeline,
                          fuse_elementwise)
    from repro.machine.spec import p100_nvlink_node

    N = _parse_size(args.n)
    spec = preset(args.system)
    names = PIPELINE_NAMES if args.pipeline == "all" else (args.pipeline,)
    reps = max(1, args.repeats)
    t = Table(
        ["pipeline", "G", "nodes", "records", "buffers", "comm", "fused",
         "peak live/dev", "capture [ms]", "replay [ms]", "host speedup"],
        title=f"IR capture/replay, {args.system}, N={N}, {args.comm}",
    )
    rows = []
    for name in names:
        # the NUFFT pipeline is single-device by construction
        pspec = (p100_nvlink_node(1)
                 if name == "nufft" and spec.num_devices != 1 else spec)
        cl = VirtualCluster(pspec, execute=False)
        t0 = _time.perf_counter()
        graph, _ = capture_pipeline(name, cl, N, dtype=args.dtype,
                                    comm_algorithm=args.comm)
        graph.certify(pspec)
        capture_s = _time.perf_counter() - t0
        fused = fuse_elementwise(graph, pspec)
        ex = ReplayExecutor(graph, VirtualCluster(pspec, execute=False))
        t0 = _time.perf_counter()
        for _ in range(reps):
            ex.run()
        replay_s = (_time.perf_counter() - t0) / reps
        row = graph.summary()
        row.update(fused_launches=fused.meta["fused"],
                   capture_s=capture_s, replay_s=replay_s,
                   host_speedup=capture_s / max(replay_s, 1e-12))
        rows.append(row)
        t.add_row([
            name, row["G"], row["nodes"], row["records_per_replay"],
            row["buffers"], row["comm_calls"], row["fused_launches"],
            format_bytes(row["peak_live_bytes"] or 0.0),
            f"{capture_s * 1e3:.2f}", f"{replay_s * 1e3:.2f}",
            f"{row['host_speedup']:.1f}x",
        ])
    print(t.render())
    print()
    print(f"ir: {len(rows)} pipeline(s) captured, certified, and replayed "
          f"({reps} replay(s) each); capture includes one interpreted run "
          "+ certification")
    if args.json:
        payload = {"system": args.system, "n": N, "dtype": args.dtype,
                   "comm": args.comm, "repeats": reps, "pipelines": rows}
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=1)
        print(f"graph summaries written to {args.json}")
    return 0


def _run_serve(spec, args: argparse.Namespace):
    """Serve a synthetic workload; returns (cluster, scheduler).

    Shared by ``serve`` and ``metrics --pipeline serve`` so both observe
    identical schedules.
    """
    from repro.serve import (AdmissionQueue, Batcher, PlanCache,
                             ServeScheduler, Wisdom, synthetic_workload)

    sizes = None
    if getattr(args, "sizes", None):
        sizes = {_parse_size(s): 1.0 for s in args.sizes.split(",")}
    wisdom = None
    wisdom_path = getattr(args, "wisdom", None)
    if wisdom_path:
        from pathlib import Path

        if Path(wisdom_path).exists():
            wisdom = Wisdom.load(wisdom_path)
    cache = PlanCache(spec, wisdom=wisdom)
    cl = VirtualCluster(spec, execute=False)
    batcher = Batcher(cache, max_batch=getattr(args, "max_batch", 8),
                      batching=not getattr(args, "no_batching", False))
    sched = ServeScheduler(
        cl, batcher,
        queue=AdmissionQueue(capacity=getattr(args, "queue_capacity", 64)),
        max_inflight=getattr(args, "max_inflight", 2),
    )
    reqs = synthetic_workload(
        getattr(args, "requests", 32), rate=getattr(args, "rate", 2000.0),
        sizes=sizes, dtype=args.dtype, seed=getattr(args, "seed", 0),
    )
    sched.run(reqs)
    return cl, sched


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a synthetic open-loop workload on a simulated testbed."""
    import json
    from pathlib import Path

    from repro.obs import build_trace, prometheus_text
    from repro.serve import merge_serve_track, serve_run_doc, summarize

    spec = preset(args.system)
    cl, sched = _run_serve(spec, args)
    if args.sanitize:
        cl.sanitize()
        print("sanitizer: interleaved schedule certified hazard-free")
    rep = summarize(sched)
    print(f"served {args.requests} requests at {args.rate:g} req/s offered "
          f"on {spec.name} (max batch {args.max_batch}, "
          f"{'' if not args.no_batching else 'no '}batching)")
    print(rep.render())
    if args.wisdom:
        sched.batcher.cache.wisdom.save(args.wisdom)
        print(f"wisdom saved to {args.wisdom} "
              f"({len(sched.batcher.cache.wisdom)} entries)")
    if args.json:
        doc = serve_run_doc(sched, rep)
        Path(args.json).write_text(json.dumps(doc, indent=1, sort_keys=True))
        print(f"wrote {args.json} (serve-run v{doc['version']}: report + "
              f"{len(doc['telemetry']['series'])} telemetry series)")
    if args.prom:
        snap = sched.telemetry.snapshot(time=sched.wall_time)
        Path(args.prom).write_text(prometheus_text(snap))
        print(f"wrote {args.prom} (Prometheus text exposition)")
    if args.trace_out:
        doc = merge_serve_track(build_trace(cl.ledger, spec), sched)
        Path(args.trace_out).write_text(json.dumps(doc))
        print(f"wrote {args.trace_out} ({len(doc['traceEvents'])} events, "
              "serve track included)")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Serve workload under seeded fault injection; graceful degradation."""
    import json
    from pathlib import Path

    from repro.faults import seeded_chaos
    from repro.obs import build_trace, merge_fault_track
    from repro.serve import (AdmissionQueue, Batcher, PlanCache,
                             ServeScheduler, merge_serve_track, serve_run_doc,
                             summarize, synthetic_workload)

    spec = preset(args.system)
    sizes = None
    if args.sizes:
        sizes = {_parse_size(s): 1.0 for s in args.sizes.split(",")}
    reqs = synthetic_workload(args.requests, rate=args.rate, sizes=sizes,
                             dtype=args.dtype, seed=args.seed)

    def run_once():
        """One chaos run from scratch — fresh injector, cluster, caches."""
        inj = seeded_chaos(
            spec, seed=args.fault_seed, transient_rate=args.transient_rate,
            flaps=args.flaps, stragglers=args.stragglers,
            degrades=args.degrades, horizon=args.horizon,
        )
        cl = VirtualCluster(spec, execute=False, faults=inj)
        sched = ServeScheduler(
            cl, Batcher(PlanCache(spec), max_batch=args.max_batch),
            queue=AdmissionQueue(capacity=args.queue_capacity),
            max_inflight=args.max_inflight,
            retry_budget=args.retry_budget,
        )
        sched.run(reqs)
        return cl, sched

    cl, sched = run_once()
    if args.replay_check:
        fp = cl.ledger.fingerprint()
        cl2, _ = run_once()
        if fp != cl2.ledger.fingerprint():
            print("replay check: FAILED — two identically seeded chaos runs "
                  "produced different ledgers")
            return 1
        print(f"replay check: ok (ledger fingerprint {fp[:16]}… twice)")
    if args.sanitize:
        cl.sanitize()
        print("sanitizer: retried chaos schedule certified hazard-free")
    rep = summarize(sched)
    inj = cl.faults
    print(f"chaos: {args.requests} requests at {args.rate:g} req/s on "
          f"{spec.name} (fault seed {args.fault_seed}, transient rate "
          f"{args.transient_rate:g}, {args.stragglers} straggler(s), "
          f"{args.flaps} flap(s), {args.degrades} degrade(s); "
          f"{len(inj.events)} fault events)")
    print(rep.render())
    if args.json:
        doc = serve_run_doc(sched, rep)
        Path(args.json).write_text(json.dumps(doc, indent=1, sort_keys=True))
        print(f"wrote {args.json} (serve-run v{doc['version']}: report + "
              f"{len(doc['telemetry']['series'])} telemetry series)")
    if args.trace_out:
        doc = merge_fault_track(
            merge_serve_track(build_trace(cl.ledger, spec), sched),
            inj.events)
        Path(args.trace_out).write_text(json.dumps(doc))
        print(f"wrote {args.trace_out} ({len(doc['traceEvents'])} events, "
              "serve + fault tracks included)")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """ASCII telemetry dashboard: live serve run or snapshot replay."""
    import json
    from pathlib import Path

    from repro.obs import render_dashboard
    from repro.serve import serve_run_doc

    if args.replay:
        doc = json.loads(Path(args.replay).read_text())
    else:
        spec = preset(args.system)
        _, sched = _run_serve(spec, args)
        doc = serve_run_doc(sched)
    out = render_dashboard(doc)
    print(out)
    if args.out:
        Path(args.out).write_text(out + "\n")
        print(f"wrote {args.out}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Observability report: rollups, model join, overlap, critical path."""
    from repro.obs import compute_metrics, save_trace

    N = _parse_size(args.n)
    spec = preset(args.system)
    serve_report = None
    if args.pipeline == "serve":
        from repro.serve import summarize

        cl, sched = _run_serve(spec, args)
        geom, params = None, None
        serve_report = summarize(sched)
    else:
        cl, geom, params = _run_pipeline(args.pipeline, N, spec, args.dtype,
                                         comm=args.comm)
    rep = compute_metrics(cl.ledger, spec, geom=geom, dtype=args.dtype,
                          comm_log=cl.comm_log)
    if params is not None:
        print(f"params: {params}")
    print(rep.render())
    if serve_report is not None:
        print()
        print("serve latency / throughput")
        print(serve_report.render())
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps(rep.to_json(), indent=1))
        print(f"wrote {args.json}")
    if args.trace_out:
        save_trace(args.trace_out, cl.ledger, spec)
        print(f"wrote {args.trace_out}")
    return 0


def cmd_comm(args: argparse.Namespace) -> int:
    """Collective-algorithm cost table for one testbed."""
    from repro.comm import algorithm_table

    spec = preset(args.testbed)
    rows = algorithm_table(spec)
    algos = sorted({a for r in rows for a in r["predictions"]})
    t = Table(["kind", "payload/dev", "bulk"] + algos + ["best", "vs bulk"],
              title=f"Comm algorithm model, {spec.name} (G={spec.num_devices})")
    for r in rows:
        t.add_row(
            [r["kind"], format_bytes(r["payload_bytes"]),
             format_time(r["bulk"])]
            + [format_time(r["predictions"][a]) for a in algos]
            + [r["best"], f"{r['speedup_vs_bulk']:.2f}x"]
        )
    print(t.render())
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps(rows, indent=1))
        print(f"wrote {args.json}")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    """Print the Section 5 model breakdown."""
    from repro.model.report import render_model_report

    N = _parse_size(args.n)
    spec = preset(args.system)
    r = find_fastest(N, spec, dtype=args.dtype)
    plan = FmmFftPlan.create(N=N, G=spec.num_devices, dtype=args.dtype,
                             build_operators=False, **r.params)
    print(render_model_report(plan.geometry, spec, args.dtype))
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    """Energy projection of FMM-FFT vs the baseline."""
    from repro.model.energy import energy_ratio, run_energy

    N = _parse_size(args.n)
    spec = preset(args.system)
    cl_b = VirtualCluster(spec, execute=False)
    Distributed1DFFT(N, cl_b, dtype=args.dtype).run()
    e_b = run_energy(cl_b)
    r = find_fastest(N, spec, dtype=args.dtype)
    plan = FmmFftPlan.create(N=N, G=spec.num_devices, dtype=args.dtype,
                             build_operators=False, **r.params)
    cl_f = VirtualCluster(spec, execute=False)
    FmmFftDistributed(plan, cl_f).run()
    e_f = run_energy(cl_f)
    t = Table(["pipeline", "compute [J]", "memory [J]", "comm [J]", "idle [J]", "total [J]"],
              title=f"Energy projection, N={N} on {spec.name}")
    for label, e in (("1D FFT", e_b), ("FMM-FFT", e_f)):
        t.add_row([label, e.compute, e.memory, e.communication, e.idle, e.total])
    print(t.render())
    print(f"energy ratio (baseline/FMM-FFT): {energy_ratio(e_b, e_f):.2f}x")
    return 0


def cmd_multinode(args: argparse.Namespace) -> int:
    """Multi-node projection table (flat NICs or a routed fat tree)."""
    from repro.machine.multinode import multinode_p100, routed_multinode_p100

    N = _parse_size(args.n)
    routed = args.radix > 0
    fabric = (f"fat-tree r{args.radix} o{args.oversubscription:g}"
              if routed else "flat NIC")
    t = Table(["nodes", "G", "FMM-FFT", "1D FFT", "speedup"],
              title=f"Multi-node projection, N={N} ({args.dtype}, {fabric})")
    for nodes in (1, 2, 4, 8):
        if routed:
            spec = routed_multinode_p100(
                nodes, gpus_per_node=args.gpus_per_node, radix=args.radix,
                oversubscription=args.oversubscription)
        else:
            spec = multinode_p100(nodes, gpus_per_node=args.gpus_per_node)
        r = find_fastest(N, spec, dtype=args.dtype)
        t.add_row([nodes, spec.num_devices, format_time(r.fmmfft_time),
                   format_time(r.baseline_time), f"{r.speedup:.2f}"])
    print(t.render())
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Build or extend a tuning-wisdom JSON file."""
    from pathlib import Path

    from repro.model.tuning import TuningCache, tuned_params

    spec = preset(args.system)
    path = Path(args.wisdom)
    cache = TuningCache.load(path) if path.exists() else TuningCache()
    for q in range(args.min, args.max + 1):
        p = tuned_params(1 << q, spec, dtype=args.dtype, cache=cache)
        print(f"N=2^{q}: {p}")
    cache.save(path)
    print(f"wisdom saved to {path} ({len(cache)} entries)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Export a chrome://tracing JSON of a simulated run."""
    N = _parse_size(args.n)
    spec = preset(args.system)
    r = find_fastest(N, spec, dtype=args.dtype)
    plan = FmmFftPlan.create(N=N, G=spec.num_devices, dtype=args.dtype,
                             build_operators=False, **r.params)
    cl = VirtualCluster(spec, execute=False)
    FmmFftDistributed(plan, cl).run()
    if args.rich:
        cl.trace().save_perfetto(args.out)
    else:
        cl.trace().save_chrome_trace(args.out)
    print(f"wrote {len(cl.ledger)} events to {args.out} "
          f"(load in chrome://tracing or Perfetto)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Aggregate benchmark artifacts into one markdown report."""
    from repro.bench.report import write_report

    out = write_report(args.out)
    print(f"wrote {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list simulated testbeds").set_defaults(fn=cmd_info)

    tr = sub.add_parser("transform", help="FMM-FFT a synthetic signal")
    tr.add_argument("--n", default="2^14", help="size (e.g. 4096 or 2^20)")
    tr.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    tr.add_argument("--tolerance", type=float, default=1e-12)
    tr.add_argument("--q", type=int, default=0, help="override expansion order")
    tr.add_argument("--p", type=int, default=0, help="override P")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--system", default="2xP100", choices=sorted(_PRESETS),
                    help="testbed for the --trace-out timing replay")
    tr.add_argument("--trace-out", default=None,
                    help="also export a Perfetto trace of the simulated run")
    tr.set_defaults(fn=cmd_transform)

    se = sub.add_parser("search", help="find the fastest parameters")
    se.add_argument("--n", default="2^24")
    se.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    se.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    se.set_defaults(fn=cmd_search)

    sp = sub.add_parser("speedup", help="Figure-3-style sweep")
    sp.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    sp.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    sp.add_argument("--min", type=int, default=14)
    sp.add_argument("--max", type=int, default=24)
    sp.set_defaults(fn=cmd_speedup)

    pr = sub.add_parser("profile", help="Figure-2-style timeline")
    pr.add_argument("--n", default="2^24")
    pr.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    pr.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    pr.add_argument("--baseline", action="store_true",
                    help="profile the six-step 1D FFT instead")
    pr.add_argument("--width", type=int, default=100)
    pr.add_argument("--devices", default=None,
                    help="comma-separated device ids to show (default all)")
    pr.add_argument("--trace-out", default=None,
                    help="also export a Perfetto trace of the run")
    pr.set_defaults(fn=cmd_profile)

    an = sub.add_parser("analyze", help="hazard-sanitize a simulated schedule")
    an.add_argument("--pipeline", default="fmmfft",
                    choices=["fmmfft", "fft1d", "fft2d", "rfft"])
    an.add_argument("--n", default="2^20", help="size (e.g. 4096 or 2^20)")
    an.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    an.add_argument("--nodes", type=int, default=1,
                    help="> 1 analyzes a multi-node machine instead of --system")
    an.add_argument("--gpus-per-node", type=int, default=4)
    an.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    an.add_argument("--width", type=int, default=100)
    an.add_argument("--comm", default="bulk",
                    choices=["bulk", "direct", "ring", "bruck", "hier", "hier2", "auto"],
                    help="collective algorithm (see repro.comm)")
    an.add_argument("--sanitize", action="store_true",
                    help="strict mode: raise HazardError on any finding")
    an.add_argument("--json", metavar="PATH", default=None,
                    help="write the shared analysis-findings JSON to PATH")
    an.set_defaults(fn=cmd_analyze)

    vf = sub.add_parser(
        "verify", help="statically certify comm plans (no simulation)")
    vf.add_argument("--g-list", default=None,
                    help="comma-separated device counts "
                         "(default 2,4,8,16,64,256)")
    vf.add_argument("--payload", default="2^20",
                    help="per-device payload bytes (e.g. 2^20)")
    vf.add_argument("--no-degraded", action="store_true",
                    help="skip the fault-degraded topology views")
    vf.add_argument("--json", metavar="PATH", default=None,
                    help="write the shared analysis-findings JSON to PATH")
    vf.add_argument("--ir", action="store_true",
                    help="also capture every pipeline's op graph and check "
                         "it against the prealloc contracts (repro.ir)")
    vf.add_argument("--ir-n", default="2^12",
                    help="problem size for the --ir captures")
    vf.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"],
                    help="dtype for the --ir captures")
    vf.add_argument("--comm", default="bulk",
                    choices=["bulk", "direct", "ring", "bruck", "hier", "hier2", "auto"],
                    help="collective algorithm for the --ir captures")
    vf.set_defaults(fn=cmd_verify)

    ir = sub.add_parser(
        "ir", help="capture/certify/replay a pipeline's op-graph IR")
    ir.add_argument("--pipeline", default="all",
                    choices=["all", "fft1d", "fft2d", "rfft", "fmm",
                             "fmmfft", "nufft"])
    ir.add_argument("--n", default="2^12", help="size (e.g. 4096 or 2^12)")
    ir.add_argument("--system", default="8xP100", choices=sorted(_PRESETS))
    ir.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    ir.add_argument("--comm", default="bulk",
                    choices=["bulk", "direct", "ring", "bruck", "hier", "hier2", "auto"],
                    help="collective algorithm (see repro.comm)")
    ir.add_argument("--repeats", type=int, default=5,
                    help="replay repetitions for the host-wall timing")
    ir.add_argument("--json", metavar="PATH", default=None,
                    help="write the per-pipeline graph summaries to PATH")
    ir.set_defaults(fn=cmd_ir)

    me = sub.add_parser("metrics", help="observability report for a run")
    me.add_argument("--pipeline", default="fmmfft",
                    choices=["fmmfft", "fft1d", "fft2d", "rfft", "serve"])
    me.add_argument("--n", default="2^20", help="size (e.g. 4096 or 2^20)")
    me.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    me.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    me.add_argument("--comm", default="bulk",
                    choices=["bulk", "direct", "ring", "bruck", "hier", "hier2", "auto"],
                    help="collective algorithm (see repro.comm)")
    me.add_argument("--json", default=None,
                    help="also write the report as JSON to this path")
    me.add_argument("--trace-out", default=None,
                    help="also export a Perfetto trace of the run")
    me.set_defaults(fn=cmd_metrics)

    cm = sub.add_parser("comm", help="collective-algorithm cost table")
    cm.add_argument("--testbed", default="8xP100", choices=sorted(_PRESETS))
    cm.add_argument("--json", default=None,
                    help="also write the table rows as JSON to this path")
    cm.set_defaults(fn=cmd_comm)

    mo = sub.add_parser("model", help="Section 5 model breakdown")
    mo.add_argument("--n", default="2^24")
    mo.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    mo.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    mo.set_defaults(fn=cmd_model)

    en = sub.add_parser("energy", help="energy projection")
    en.add_argument("--n", default="2^24")
    en.add_argument("--system", default="8xP100", choices=sorted(_PRESETS))
    en.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    en.set_defaults(fn=cmd_energy)

    mn = sub.add_parser("multinode", help="multi-node projection")
    mn.add_argument("--n", default="2^24")
    mn.add_argument("--gpus-per-node", type=int, default=4)
    mn.add_argument("--radix", type=int, default=0,
                    help="fat-tree switch radix (0 = flat NIC model)")
    mn.add_argument("--oversubscription", type=float, default=1.0,
                    help="leaf uplink oversubscription factor")
    mn.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    mn.set_defaults(fn=cmd_multinode)

    sv = sub.add_parser("serve", help="batching transform service workload")
    sv.add_argument("--system", default="8xP100", choices=sorted(_PRESETS))
    sv.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    sv.add_argument("--requests", type=int, default=32,
                    help="number of requests in the synthetic trace")
    sv.add_argument("--rate", type=float, default=2000.0,
                    help="offered load [req/s] (Poisson arrivals)")
    sv.add_argument("--sizes", default=None,
                    help="comma-separated size mix (e.g. '2^16,2^18'); "
                         "default 3:2:1 mix of 2^16/2^17/2^18")
    sv.add_argument("--max-batch", type=int, default=8,
                    help="largest coalesced batch")
    sv.add_argument("--no-batching", action="store_true",
                    help="serve one request per execution (baseline)")
    sv.add_argument("--max-inflight", type=int, default=2,
                    help="concurrent in-flight batches on the cluster")
    sv.add_argument("--queue-capacity", type=int, default=64,
                    help="admission queue depth (arrivals beyond it shed)")
    sv.add_argument("--wisdom", default=None,
                    help="persistent wisdom JSON: loaded if present, "
                         "saved after the run (warm starts skip autotuning)")
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--sanitize", action="store_true",
                    help="hazard-sanitize the interleaved schedule")
    sv.add_argument("--json", default=None,
                    help="write the versioned serve-run document (report + "
                         "telemetry snapshot + SLO timeline) to this path")
    sv.add_argument("--prom", default=None,
                    help="write the telemetry snapshot in Prometheus text "
                         "exposition format to this path")
    sv.add_argument("--trace-out", default=None,
                    help="export a Perfetto trace with the serve track")
    sv.set_defaults(fn=cmd_serve)

    ch = sub.add_parser("chaos", help="serve workload under fault injection")
    ch.add_argument("--system", default="8xP100", choices=sorted(_PRESETS))
    ch.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    ch.add_argument("--requests", type=int, default=32,
                    help="number of requests in the synthetic trace")
    ch.add_argument("--rate", type=float, default=2000.0,
                    help="offered load [req/s] (Poisson arrivals)")
    ch.add_argument("--sizes", default=None,
                    help="comma-separated size mix (e.g. '2^16,2^18')")
    ch.add_argument("--max-batch", type=int, default=8)
    ch.add_argument("--max-inflight", type=int, default=2)
    ch.add_argument("--queue-capacity", type=int, default=64)
    ch.add_argument("--seed", type=int, default=0,
                    help="workload seed (arrivals, sizes)")
    ch.add_argument("--fault-seed", type=int, default=0,
                    help="chaos scenario seed (see repro.faults.seeded_chaos)")
    ch.add_argument("--transient-rate", type=float, default=0.02,
                    help="per-attempt transient failure probability")
    ch.add_argument("--flaps", type=int, default=0,
                    help="number of random link-flap windows")
    ch.add_argument("--stragglers", type=int, default=1,
                    help="number of random straggler windows")
    ch.add_argument("--degrades", type=int, default=0,
                    help="number of random link-degrade windows")
    ch.add_argument("--horizon", type=float, default=50e-3,
                    help="chaos scenario horizon [s]")
    ch.add_argument("--retry-budget", type=int, default=2,
                    help="service-level re-enqueues per failed request")
    ch.add_argument("--sanitize", action="store_true",
                    help="hazard-sanitize the retried chaos schedule")
    ch.add_argument("--replay-check", action="store_true",
                    help="run twice and require bit-identical ledgers")
    ch.add_argument("--json", default=None,
                    help="write the versioned serve-run document (report + "
                         "telemetry snapshot + SLO timeline) to this path")
    ch.add_argument("--trace-out", default=None,
                    help="export a Perfetto trace with serve + fault tracks")
    ch.set_defaults(fn=cmd_chaos)

    tp = sub.add_parser("top", help="ASCII telemetry dashboard for serve")
    tp.add_argument("--replay", default=None, metavar="PATH",
                    help="render from a saved serve-run / telemetry-snapshot "
                         "JSON instead of running a workload")
    tp.add_argument("--system", default="8xP100", choices=sorted(_PRESETS))
    tp.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    tp.add_argument("--requests", type=int, default=32)
    tp.add_argument("--rate", type=float, default=2000.0)
    tp.add_argument("--sizes", default=None,
                    help="comma-separated size mix (e.g. '2^16,2^18')")
    tp.add_argument("--max-batch", type=int, default=8)
    tp.add_argument("--max-inflight", type=int, default=2)
    tp.add_argument("--queue-capacity", type=int, default=64)
    tp.add_argument("--seed", type=int, default=0)
    tp.add_argument("--out", default=None,
                    help="also write the rendered dashboard to this path")
    tp.set_defaults(fn=cmd_top)

    tu = sub.add_parser("tune", help="build a tuning-wisdom file")
    tu.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    tu.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    tu.add_argument("--min", type=int, default=14)
    tu.add_argument("--max", type=int, default=20)
    tu.add_argument("--wisdom", default="wisdom.json")
    tu.set_defaults(fn=cmd_tune)

    tc = sub.add_parser("trace", help="export a chrome://tracing JSON")
    tc.add_argument("--n", default="2^24")
    tc.add_argument("--system", default="2xP100", choices=sorted(_PRESETS))
    tc.add_argument("--dtype", default="complex128",
                    choices=["complex64", "complex128"])
    tc.add_argument("--out", default="trace.json")
    tc.add_argument("--rich", action="store_true",
                    help="use the repro.obs exporter (named tracks, flow "
                         "arrows, counters) instead of the flat one")
    tc.set_defaults(fn=cmd_trace)

    rp = sub.add_parser("report", help="aggregate benchmark artifacts")
    rp.add_argument("--out", default="REPORT.md")
    rp.set_defaults(fn=cmd_report)
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
