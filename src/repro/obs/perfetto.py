"""Perfetto / Chrome trace-event export of a simulated run.

Figure 2 of the paper is an nvprof timeline; this module produces the
machine-readable equivalent of that figure from any :class:`Ledger`:
a `Chrome trace-event JSON`_ document that loads directly in
``chrome://tracing`` or https://ui.perfetto.dev.

The trace contains, per the trace-event format:

- one **process per device** and one **track (thread) per engine** —
  ``compute``, ``comm.tx``, ``comm.rx``, plus any custom streams —
  named via ``M`` metadata events;
- one **duration event** (``ph: "X"``) per op.  Point-to-point comm is
  drawn on *both* endpoints: the record on the sender's ``comm.tx``
  track and a mirror on the receiver's ``comm.rx`` track, exactly as
  nvprof shows a copy on both DMA engines;
- **flow events** (``s``/``f``) for every happens-before wait edge, for
  each sendrecv's tx→rx pair, and from the lead device of a collective
  to every other participant — the arrows that make "S2T waited on the
  S halo" visible in the UI;
- **counter tracks** (``ph: "C"``) per device for achieved GFLOP/s,
  memory GB/s, and in-flight comm bytes, computed as exact step
  functions from the op intervals.

.. _Chrome trace-event JSON:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from repro.machine.ledger import Ledger, OpRecord
from repro.machine.spec import ClusterSpec

#: event phases a trace produced here may contain (validation whitelist)
PHASES = ("X", "M", "C", "s", "t", "f")

#: Chrome-trace pid for the fault-injection track; device pids are
#: 0..G-1 and the serve track uses 99, so 98 never collides.
FAULT_PID = 98

#: canonical engine order for track (tid) assignment
_TRACK_ORDER = {"compute": 0, "comm.tx": 1, "comm.rx": 2}


def _track_for(rec: OpRecord) -> tuple[int, str]:
    """(pid, track name) where a record's primary X event is drawn."""
    if rec.kind == "comm":
        return (rec.device, "comm.tx")
    return (rec.device, rec.stream)


def _assign_tids(ledger: Ledger) -> dict[tuple[int, str], int]:
    """Deterministic tid per (device, track): engines first, then name."""
    tracks: set[tuple[int, str]] = set()
    for r in ledger:
        tracks.add(_track_for(r))
        if r.kind == "comm" and r.peer >= 0:
            tracks.add((r.peer, "comm.rx"))
    tids: dict[tuple[int, str], int] = {}
    by_dev: dict[int, list[str]] = defaultdict(list)
    for dev, name in tracks:
        by_dev[dev].append(name)
    for dev in sorted(by_dev):
        names = sorted(by_dev[dev], key=lambda n: (_TRACK_ORDER.get(n, 99), n))
        for i, name in enumerate(names):
            tids[(dev, name)] = i
    return tids


def _op_args(rec: OpRecord) -> dict:
    """The args payload of one op's duration event."""
    args = {
        "uid": rec.uid,
        "kind": rec.kind,
        "region": rec.region,
        "flops": rec.flops,
        "mops": rec.mops,
        "comm_bytes": rec.comm_bytes,
    }
    if rec.duration > 0.0:
        if rec.flops:
            args["gflops"] = rec.flops / rec.duration / 1e9
        if rec.mops:
            args["mem_gbs"] = rec.mops / rec.duration / 1e9
        if rec.comm_bytes:
            args["comm_gbs"] = rec.comm_bytes / rec.duration / 1e9
    return args


def _counter_events(ledger: Ledger) -> list[dict]:
    """Step-function counters per device: GFLOP/s, GB/s, in-flight bytes.

    Each op contributes its average rate over its own interval; the
    counter at any instant is the sum over in-flight ops, emitted as one
    ``C`` sample per change point.  In-flight comm bytes attribute a
    transfer to its sender (collectives to every participant).
    """
    deltas: dict[tuple[int, str], list[tuple[float, float]]] = defaultdict(list)
    for r in ledger:
        if r.duration <= 0.0:
            continue
        if r.kind == "comm":
            deltas[(r.device, "in-flight comm bytes")].append((r.start, r.comm_bytes))
            deltas[(r.device, "in-flight comm bytes")].append((r.end, -r.comm_bytes))
            continue
        if r.flops:
            rate = r.flops / r.duration / 1e9
            deltas[(r.device, "GFLOP/s")].append((r.start, rate))
            deltas[(r.device, "GFLOP/s")].append((r.end, -rate))
        if r.mops:
            rate = r.mops / r.duration / 1e9
            deltas[(r.device, "mem GB/s")].append((r.start, rate))
            deltas[(r.device, "mem GB/s")].append((r.end, -rate))
    events: list[dict] = []
    for (dev, name) in sorted(deltas):
        level = 0.0
        acc: dict[float, float] = defaultdict(float)
        for t, d in deltas[(dev, name)]:
            acc[t] += d
        for t in sorted(acc):
            level += acc[t]
            if abs(level) < 1e-12:
                level = 0.0
            events.append({
                "name": name, "ph": "C", "pid": dev,
                "ts": t * 1e6, "args": {"value": level},
            })
    return events


def build_trace(ledger: Ledger, spec: ClusterSpec | None = None) -> dict:
    """Export a ledger as a complete Chrome trace-event document.

    ``spec`` (optional) names the processes after the device model.
    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``; dump
    with :func:`save_trace` or ``json.dumps``.
    """
    tids = _assign_tids(ledger)
    events: list[dict] = []

    # -- metadata: process/thread names --------------------------------
    devices = sorted({dev for dev, _ in tids})
    dev_label = spec.device.name if spec is not None else "device"
    for dev in devices:
        events.append({
            "name": "process_name", "ph": "M", "pid": dev,
            "args": {"name": f"dev{dev} ({dev_label})"},
        })
    for (dev, track) in sorted(tids):
        events.append({
            "name": "thread_name", "ph": "M", "pid": dev,
            "tid": tids[(dev, track)], "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": dev,
            "tid": tids[(dev, track)],
            "args": {"sort_index": tids[(dev, track)]},
        })

    # -- duration events ------------------------------------------------
    recs = list(ledger)
    by_uid = {r.uid: r for r in recs}
    for r in recs:
        pid, track = _track_for(r)
        events.append({
            "name": r.name, "cat": r.kind, "ph": "X",
            "pid": pid, "tid": tids[(pid, track)],
            "ts": r.start * 1e6, "dur": r.duration * 1e6,
            "args": _op_args(r),
        })
        if r.kind == "comm" and r.peer >= 0:
            # mirror on the receiver's rx engine (nvprof draws both ends)
            events.append({
                "name": r.name, "cat": r.kind, "ph": "X",
                "pid": r.peer, "tid": tids[(r.peer, "comm.rx")],
                "ts": r.start * 1e6, "dur": r.duration * 1e6,
                "args": dict(_op_args(r), rx_of=r.device),
            })

    # -- flow events -----------------------------------------------------
    flow_id = 0

    def _flow(name: str, a_pid: int, a_track: str, a_ts: float,
              b_pid: int, b_track: str, b_ts: float) -> None:
        nonlocal flow_id
        flow_id += 1
        events.append({
            "name": name, "cat": "dep", "ph": "s", "id": flow_id,
            "pid": a_pid, "tid": tids[(a_pid, a_track)], "ts": a_ts * 1e6,
        })
        events.append({
            "name": name, "cat": "dep", "ph": "f", "bp": "e", "id": flow_id,
            "pid": b_pid, "tid": tids[(b_pid, b_track)], "ts": b_ts * 1e6,
        })

    for r in recs:
        pid, track = _track_for(r)
        for w in r.waits:
            p = by_uid.get(w)
            if p is None or p.uid == r.uid:
                continue
            p_pid, p_track = _track_for(p)
            _flow("wait", p_pid, p_track, p.end, pid, track, r.start)
        if r.kind == "comm" and r.peer >= 0:
            _flow("sendrecv", r.device, "comm.tx", r.start,
                  r.peer, "comm.rx", r.end)

    # collectives: link the lead record to every other participant
    groups: dict[tuple[str, float, float], list[OpRecord]] = defaultdict(list)
    for r in recs:
        if r.kind == "comm" and r.peer < 0:
            groups[(r.name, r.start, r.duration)].append(r)
    for key in sorted(groups, key=lambda k: (k[1], k[0])):
        members = sorted(groups[key], key=lambda r: r.uid)
        lead = members[0]
        for other in members[1:]:
            _flow("collective", lead.device, "comm.tx", lead.start,
                  other.device, "comm.tx", other.start)

    events.extend(_counter_events(ledger))
    events.sort(key=lambda e: (e.get("ts", -1.0), e["ph"], e["pid"],
                               e.get("tid", -1), e["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def fault_track_events(events) -> list[dict]:
    """Chrome-trace events for an injector's fault ledger.

    One process (pid :data:`FAULT_PID`) named ``faults`` with a single
    ``injector`` track: each :class:`~repro.faults.FaultEvent` becomes
    an X span over its window (zero-width for point events like
    transients and device loss), carrying the affected device/peer and
    detail in its args.  Splice into a device trace with
    :func:`merge_fault_track`.
    """
    out: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": FAULT_PID,
         "args": {"name": "faults"}},
        {"name": "thread_name", "ph": "M", "pid": FAULT_PID, "tid": 0,
         "args": {"name": "injector"}},
    ]
    for ev in events:
        out.append({
            "name": ev.kind, "cat": "fault", "ph": "X",
            "pid": FAULT_PID, "tid": 0,
            "ts": ev.time * 1e6, "dur": max(0.0, ev.duration) * 1e6,
            "args": {"device": ev.device, "peer": ev.peer,
                     "detail": ev.detail},
        })
    return out


def merge_fault_track(trace: dict, events) -> dict:
    """Splice the fault track into a trace document (returns it)."""
    trace["traceEvents"] = list(trace["traceEvents"]) + fault_track_events(events)
    return trace


def save_trace(path: str | Path, ledger: Ledger,
               spec: ClusterSpec | None = None) -> Path:
    """Write the Perfetto-loadable JSON trace; returns the path."""
    out = Path(path)
    out.write_text(json.dumps(build_trace(ledger, spec), indent=1))
    return out


def validate_trace(doc: object) -> list[str]:
    """Structural validation of a trace document; [] means valid.

    Checks the document shape, per-phase required fields, timestamp
    sanity, and that every flow id pairs exactly one start with one
    finish.  This is what the CI smoke (and the schema tests) run over
    freshly exported traces.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document must be an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    flows: dict[object, list[str]] = defaultdict(list)
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in PHASES:
            problems.append(f"event {i} has unknown phase {ph!r}")
            continue
        for field in ("name", "pid"):
            if field not in ev:
                problems.append(f"event {i} ({ph}) missing {field!r}")
        if ph == "X":
            for field in ("tid", "ts", "dur"):
                if not isinstance(ev.get(field), (int, float)):
                    problems.append(f"event {i} (X) needs numeric {field!r}")
            if isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
                problems.append(f"event {i} (X) has negative duration")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"event {i} (C) needs numeric args")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                problems.append(f"event {i} ({ph}) missing flow id")
            else:
                flows[ev["id"]].append(ph)
        elif ph == "M":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"event {i} (M) missing args")
    for fid, phases in sorted(flows.items(), key=lambda kv: str(kv[0])):
        if phases.count("s") != 1 or phases.count("f") != 1:
            problems.append(
                f"flow {fid} has {phases.count('s')} start(s) and "
                f"{phases.count('f')} finish(es); expected one of each"
            )
    return problems
