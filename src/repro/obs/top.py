"""`repro top` — an ASCII dashboard over the live telemetry registry.

htop for the serve tier: one screenful summarizing a served trace from
its telemetry alone — queue-depth sparklines, per-class latency
quantiles, cache hit rates, comm volume by link class, fault and retry
counters, per-link measured-vs-model calibration, and SLO burn-rate
status.  :func:`render_dashboard` is a pure function of a snapshot (or
serve-run) document, so ``repro top --replay`` of a saved JSON file
renders bit-identically to the live run that produced it — that
property is pinned by the replay acceptance test.

The renderer deliberately consumes the *document*, not a live
:class:`~repro.obs.telemetry.MetricsRegistry`: everything shown here
survives a JSON round-trip, which keeps the dashboard honest about
what the exported telemetry actually contains.
"""

from __future__ import annotations

from repro.obs.telemetry import SCHEMA_KIND, _check_snapshot
from repro.util.asciiplot import sparkline
from repro.util.table import Table, format_bytes, format_time
from repro.util.validation import ParameterError

#: dashboard body width (sparkline columns)
WIDTH = 60


def _split_doc(doc: dict) -> tuple[dict, dict | None, dict | None]:
    """Accept a serve-run doc or a bare snapshot; return its parts.

    Returns ``(snapshot, report_or_None, slo_or_None)``.
    """
    if not isinstance(doc, dict):
        raise ParameterError(f"expected a dict document, got {type(doc).__name__}")
    if doc.get("kind") == SCHEMA_KIND:
        _check_snapshot(doc)
        return doc, None, None
    if doc.get("kind") == "serve-run":
        snap = doc.get("telemetry")
        _check_snapshot(snap if isinstance(snap, dict) else {})
        return snap, doc.get("report"), doc.get("slo")
    raise ParameterError(
        f"unrecognized document kind {doc.get('kind')!r}; expected "
        f"{SCHEMA_KIND!r} or 'serve-run'"
    )


def _rows(snap: dict, name: str) -> list[dict]:
    """All series rows with the given metric name, label-sorted."""
    return [r for r in snap["series"] if r["name"] == name]


def _counter_value(snap: dict, name: str, labels: dict | None = None) -> float:
    """Sum of matching counter rows (0.0 when the series never fired)."""
    total = 0.0
    for r in _rows(snap, name):
        if labels is not None and r["labels"] != labels:
            continue
        total += float(r["value"])
    return total


def _rate(hit: float, miss: float) -> str:
    """Format ``hit/(hit+miss)`` as a percentage, dash when unobserved."""
    total = hit + miss
    if total <= 0:
        return "-"
    return f"{100.0 * hit / total:.1f}%"


def _section(title: str) -> str:
    """A dashboard section rule."""
    return f"--- {title} " + "-" * max(0, WIDTH - len(title) - 5)


def _queue_section(snap: dict) -> list[str]:
    lines = [_section("queue depth")]
    rows = _rows(snap, "serve.queue_depth")
    if not rows:
        lines.append("(no queue samples)")
        return lines
    for r in sorted(rows, key=lambda r: r["labels"].get("class", "")):
        cls = r["labels"].get("class", "?")
        depths = [v for _, v in r["samples"]]
        peak = max(depths) if depths else 0
        lines.append(f"{cls:<12} |{sparkline(depths, WIDTH - 14)}| max {peak:g}")
    return lines


def _latency_section(snap: dict) -> list[str]:
    lines = [_section("latency (telemetry histograms)")]
    rows = _rows(snap, "serve.request_latency")
    if not rows:
        lines.append("(no completions)")
        return lines
    t = Table(["class", "n", "p50", "p95", "p99", "misses", "retries"])
    for r in sorted(rows, key=lambda r: r["labels"].get("class", "")):
        cls = r["labels"].get("class", "?")
        q = r["quantiles"]
        t.add_row([
            cls, r["count"],
            format_time(q["p50"]), format_time(q["p95"]), format_time(q["p99"]),
            int(_counter_value(snap, "serve.deadline_miss", {"class": cls})),
            int(_counter_value(snap, "serve.retry", {"class": cls})),
        ])
    lines.extend(t.render().splitlines())
    batch = _rows(snap, "serve.batch_latency")
    if batch:
        q = batch[0]["quantiles"]
        lines.append(
            f"batch        n={batch[0]['count']}  "
            f"p50 {format_time(q['p50'])}  p95 {format_time(q['p95'])}  "
            f"p99 {format_time(q['p99'])}"
        )
    return lines


def _cache_section(snap: dict) -> list[str]:
    lines = [_section("plan cache")]
    plan_hit = _counter_value(snap, "cache.plan_hit")
    plan_miss = _counter_value(snap, "cache.plan_miss")
    wis_hit = _counter_value(snap, "cache.wisdom_hit")
    wis_miss = _counter_value(snap, "cache.wisdom_miss")
    searches = _counter_value(snap, "cache.search")
    lines.append(
        f"plan hit {_rate(plan_hit, plan_miss):>7}  "
        f"({plan_hit:g}/{plan_hit + plan_miss:g})   "
        f"wisdom hit {_rate(wis_hit, wis_miss):>7}  "
        f"searches {searches:g}"
    )
    return lines


def _comm_section(snap: dict) -> list[str]:
    lines = [_section("comm")]
    byte_rows = _rows(snap, "comm.bytes")
    if byte_rows:
        vol = ", ".join(
            f"{r['labels'].get('link_class', '?')} "
            f"{format_bytes(r['value'])}"
            for r in sorted(byte_rows,
                            key=lambda r: r["labels"].get("link_class", ""))
        )
        lines.append(f"bytes moved  {vol}")
    else:
        lines.append("bytes moved  (none)")
    retry_rows = _rows(snap, "comm.retry")
    retries = ", ".join(
        f"{r['labels'].get('stage', '?')} {r['value']:g}"
        for r in sorted(retry_rows, key=lambda r: r["labels"].get("stage", ""))
    )
    shed = _counter_value(snap, "serve.shed")
    faults = _rows(snap, "faults.events")
    fault_str = ", ".join(
        f"{r['labels'].get('kind', '?')} {r['value']:g}"
        for r in sorted(faults, key=lambda r: r["labels"].get("kind", ""))
    )
    lines.append(f"retries      {retries or '(none)'}   shed {shed:g}")
    lines.append(f"fault events {fault_str or '(none)'}")
    ratio = _rows(snap, "comm.measured_vs_model")
    if ratio:
        t = Table(["link", "n", "ratio p50", "ratio p99", "max"])
        for r in sorted(ratio, key=lambda r: r["labels"].get("link", "")):
            q = r["quantiles"]
            t.add_row([r["labels"].get("link", "?"), r["count"],
                       q["p50"], q["p99"], r["max"]])
        lines.append("measured/model latency per link:")
        lines.extend("  " + ln for ln in t.render().splitlines())
    return lines


def _slo_section(snap: dict, slo: dict | None) -> list[str]:
    lines = [_section("slo burn rate")]
    rows = _rows(snap, "slo.burn_rate")
    if not rows:
        lines.append("(no slo samples)")
        return lines
    by_class: dict[str, dict[str, float]] = {}
    for r in rows:
        cls = r["labels"].get("class", "?")
        by_class.setdefault(cls, {})[r["labels"].get("window", "?")] = r["value"]
    # a class is firing when its trigger count leads its clear count
    for cls in sorted(by_class):
        trig = _counter_value(snap, "slo.alerts", {"class": cls, "kind": "trigger"})
        clear = _counter_value(snap, "slo.alerts", {"class": cls, "kind": "clear"})
        status = "FIRING" if trig > clear else ("ok" if trig == 0.0 else "cleared")
        w = by_class[cls]
        lines.append(
            f"{cls:<12} short {w.get('short', 0.0):6.2f}  "
            f"long {w.get('long', 0.0):6.2f}   [{status}]"
        )
    if slo and slo.get("alerts"):
        lines.append("alert timeline:")
        for a in slo["alerts"]:
            lines.append(
                f"  {format_time(a['time']):>10}  {a['kind']:<7} "
                f"{a['deadline_class']}  "
                f"(short {a['short_burn']:.2f}, long {a['long_burn']:.2f})"
            )
    return lines


def render_dashboard(doc: dict) -> str:
    """Render the full dashboard for a snapshot or serve-run document."""
    snap, report, slo = _split_doc(doc)
    header = f"repro top — telemetry @ t={format_time(snap.get('time', 0.0))}"
    if report is not None:
        header += (
            f"   completed {report['completed']}  "
            f"throughput {report['throughput']:.0f} req/s"
        )
    lines = [header]
    lines.extend(_queue_section(snap))
    lines.extend(_latency_section(snap))
    lines.extend(_cache_section(snap))
    lines.extend(_comm_section(snap))
    lines.extend(_slo_section(snap, slo))
    return "\n".join(lines)
