"""CLI entry: ``python -m repro.obs`` runs the observability bench.

Collects :func:`repro.obs.bench.collect_obs_bench` over the requested
testbeds and writes ``BENCH_obs.json`` — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the bench, print and persist the payload."""
    from repro.cli import _parse_size
    from repro.obs.bench import DEFAULT_SYSTEMS, render_bench, write_bench_json

    p = argparse.ArgumentParser(prog="repro.obs", description=__doc__)
    p.add_argument("--n", default="2^20", help="size (e.g. 4096 or 2^20)")
    p.add_argument("--systems", default=",".join(DEFAULT_SYSTEMS),
                   help="comma-separated preset names")
    p.add_argument("--dtype", default="complex128",
                   choices=["complex64", "complex128"])
    p.add_argument("--out", default=None,
                   help="output path (default benchmarks/out/BENCH_obs.json)")
    args = p.parse_args(argv)

    path = write_bench_json(
        args.out, systems=tuple(args.systems.split(",")),
        N=_parse_size(args.n), dtype=args.dtype,
    )
    print(render_bench(json.loads(path.read_text())))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
