"""Streaming metrics registry: the serve tier's live signal plane.

`ServeReport` and the Perfetto traces are *post-hoc* — computed once
after the scheduler finishes.  This module is the *during-the-run*
counterpart: a process-wide registry of labeled series

- :class:`CounterSeries` — monotone totals (``comm.retry``,
  ``cache.plan_hit``, ``faults.events{kind=...}``);
- :class:`GaugeSeries` — last-value-wins with a bounded sample history
  (``serve.queue_depth{class=...}``);
- :class:`HistogramSeries` — a mergeable streaming quantile sketch
  (``serve.request_latency{class=...}``,
  ``comm.measured_vs_model{link=...}``).

Every observation is stamped with **simulated** time from the
discrete-event clock — never the wall clock — so instrumented runs stay
bit-identical under ``repro chaos --replay-check`` and the
``deterministic-time`` lint rule holds.

Determinism of the sketch is by construction: every histogram shares
one fixed log-spaced bucket grid (:func:`bucket_bounds`), so merging
sketches from different fleet members is integer bucket-count addition
— associative, commutative, and therefore merge-order invariant — and
the nearest-rank quantiles read off the merged counts are replay- and
merge-stable bits.  (The ``sum`` field is a float accumulator and is
*not* reordering-invariant; quantiles are the contract.)

Series may only be constructed through :class:`MetricsRegistry` — the
``telemetry-registry`` lint rule flags direct ``CounterSeries`` /
``GaugeSeries`` / ``HistogramSeries`` constructions outside this module
— so every metric in the process is discoverable from one snapshot.

Exporters: :meth:`MetricsRegistry.snapshot` (shared versioned-JSON
envelope, kind ``telemetry-snapshot``), :func:`diff_snapshots` (the
delta a polling fleet router pays for instead of the full registry),
and :func:`prometheus_text` (Prometheus text exposition format,
validated in CI by ``tools/check_prometheus.py``).
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from pathlib import Path

from repro.util.validation import ParameterError

#: bumped whenever the snapshot envelope changes incompatibly
SCHEMA_VERSION = 1

#: the snapshot envelope's ``kind`` tag
SCHEMA_KIND = "telemetry-snapshot"

#: the diff envelope's ``kind`` tag
DIFF_KIND = "telemetry-diff"

#: smallest finite bucket upper bound (seconds / ratio / bytes — the
#: grid is unit-agnostic)
BUCKET_LO = 1e-7

#: log-spaced buckets per decade (resolution ``10**0.1 ~ 1.26x``)
BUCKETS_PER_DECADE = 10

#: decades covered by the finite grid: [1e-7, 1e3]
BUCKET_DECADES = 10

#: multiplicative width of one bucket — "agreement within bucket
#: resolution" means within this factor
BUCKET_GROWTH = 10.0 ** (1.0 / BUCKETS_PER_DECADE)

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def bucket_bounds() -> list[float]:
    """The shared bucket upper bounds (ascending, finite).

    A pure function of module constants — every histogram in every
    process uses bit-identical boundaries, which is what makes sketch
    merges deterministic.
    """
    n = BUCKET_DECADES * BUCKETS_PER_DECADE
    return [BUCKET_LO * 10.0 ** (i / BUCKETS_PER_DECADE) for i in range(n + 1)]


_BOUNDS = bucket_bounds()


def _bucket_index(value: float) -> int:
    """Index of the bucket holding ``value``.

    Bucket ``i`` (0 < i < len(bounds)) holds ``bounds[i-1] < v <=
    bounds[i]``; bucket 0 is the underflow (``v <= bounds[0]``) and the
    last index (``len(bounds)``) is the overflow.
    """
    return bisect_left(_BOUNDS, value)


def _check_name(name: str) -> None:
    if not name or not all(
        c.islower() or c.isdigit() or c in "._" for c in name
    ) or not name[0].islower():
        raise ParameterError(
            f"metric name must be lowercase dotted ([a-z0-9._]), got {name!r}"
        )


def _label_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    for k, v in labels.items():
        if not isinstance(k, str) or not isinstance(v, str):
            raise ParameterError(f"labels must be str -> str, got {labels!r}")
    return tuple(sorted(labels.items()))


class CounterSeries:
    """A monotone labeled counter (construct via ``registry.counter``)."""

    __slots__ = ("name", "labels", "value", "count", "last_time")

    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.count = 0
        self.last_time = 0.0

    def inc(self, amount: float = 1.0, t: float = 0.0) -> None:
        """Add ``amount`` at simulated time ``t``."""
        if amount < 0.0:
            raise ParameterError(f"counter increments must be >= 0, got {amount!r}")
        self.value += amount
        self.count += 1
        if t > self.last_time:
            self.last_time = t

    def merge(self, other: "CounterSeries") -> None:
        """Fold another member's counter into this one."""
        self.value += other.value
        self.count += other.count
        self.last_time = max(self.last_time, other.last_time)


class GaugeSeries:
    """A last-value gauge with a bounded, deterministically decimated
    sample history (construct via ``registry.gauge``).

    When the history exceeds ``max_samples`` every other sample is
    dropped and the keep-stride doubles — a pure function of the
    arrival sequence, so replays decimate identically.
    """

    __slots__ = ("name", "labels", "value", "last_time", "samples",
                 "max_samples", "_stride", "_seen")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = (), max_samples: int = 2048):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.last_time = 0.0
        #: retained (time, value) history for sparklines / replay
        self.samples: list[tuple[float, float]] = []
        self.max_samples = max_samples
        self._stride = 1
        self._seen = 0

    def set(self, value: float, t: float = 0.0) -> None:
        """Record the gauge's value at simulated time ``t``."""
        self.value = float(value)
        if t >= self.last_time:
            self.last_time = t
        if self._seen % self._stride == 0:
            self.samples.append((t, float(value)))
            if len(self.samples) > self.max_samples:
                self.samples = self.samples[::2]
                self._stride *= 2
        self._seen += 1

    def merge(self, other: "GaugeSeries") -> None:
        """Fold another member's gauge in: latest timestamp wins the
        value; histories concatenate in time order."""
        if other.last_time >= self.last_time:
            self.value = other.value
            self.last_time = other.last_time
        self.samples = sorted(self.samples + other.samples)


class HistogramSeries:
    """A streaming quantile sketch on the shared log-spaced grid
    (construct via ``registry.histogram``).

    Buckets are integer counts on :func:`bucket_bounds`; quantiles are
    nearest-rank reads of the bucket upper bound, so two sketches merged
    in any order report bit-identical p50/p95/p99.
    """

    __slots__ = ("name", "labels", "counts", "count", "sum", "max",
                 "last_time")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        #: sparse bucket index -> integer count
        self.counts: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.last_time = 0.0

    def observe(self, value: float, t: float = 0.0) -> None:
        """Record one observation at simulated time ``t``."""
        if value != value or value < 0.0:
            raise ParameterError(f"histogram values must be >= 0, got {value!r}")
        idx = _bucket_index(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        if t > self.last_time:
            self.last_time = t

    def merge(self, other: "HistogramSeries") -> None:
        """Fold another sketch in (integer addition — order invariant)."""
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.count += other.count
        self.sum += other.sum
        self.max = max(self.max, other.max)
        self.last_time = max(self.last_time, other.last_time)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, reported as its bucket's upper bound.

        Overflow observations report the exact (merge-stable) maximum;
        an empty sketch reports 0.0.  Within :data:`BUCKET_GROWTH` of
        the exact nearest-rank sample value for in-range data.
        """
        if not 0.0 < q <= 1.0:
            raise ParameterError(f"quantile must be in (0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                if idx >= len(_BOUNDS):
                    return self.max
                return _BOUNDS[idx]
        return self.max

    def quantiles(self) -> dict[str, float]:
        """The standard ``{"p50": ..., "p95": ..., "p99": ...}`` read."""
        return {k: self.quantile(q) for k, q in _QUANTILES}

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class _NullSeries:
    """No-op stand-in returned by a disabled registry."""

    kind = "null"

    def inc(self, amount: float = 1.0, t: float = 0.0) -> None:
        """Discard (registry disabled)."""

    def set(self, value: float, t: float = 0.0) -> None:
        """Discard (registry disabled)."""

    def observe(self, value: float, t: float = 0.0) -> None:
        """Discard (registry disabled)."""


_NULL = _NullSeries()


class MetricsRegistry:
    """Process-wide named/labeled series store.

    The sole sanctioned constructor of metric series (lint rule
    ``telemetry-registry``).  ``enabled=False`` turns every accessor
    into a shared no-op — the zero-overhead arm ``bench_serve`` measures
    instrumentation cost against.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._series: dict[tuple, object] = {}
        # names validated once; hot emission paths re-resolve series
        # per event, so re-scanning the name each time is pure waste
        self._checked_names: set[str] = set()

    def __len__(self) -> int:
        return len(self._series)

    def _get(self, cls, name: str, labels: dict | None):
        if not self.enabled:
            return _NULL
        if name not in self._checked_names:
            _check_name(name)
            self._checked_names.add(name)
        lk = _label_key(labels)
        key = (name, lk)
        s = self._series.get(key)
        if s is None:
            s = cls(name, lk)
            self._series[key] = s
        elif not isinstance(s, cls):
            raise ParameterError(
                f"series {name}{dict(lk)} already registered as {s.kind}"
            )
        return s

    def counter(self, name: str, labels: dict | None = None) -> CounterSeries:
        """The counter for (name, labels), created on first use."""
        return self._get(CounterSeries, name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> GaugeSeries:
        """The gauge for (name, labels), created on first use."""
        return self._get(GaugeSeries, name, labels)

    def histogram(self, name: str, labels: dict | None = None) -> HistogramSeries:
        """The histogram for (name, labels), created on first use."""
        return self._get(HistogramSeries, name, labels)

    def get(self, name: str, labels: dict | None = None):
        """Look up an existing series (None when never emitted)."""
        return self._series.get((name, _label_key(labels)))

    def series(self) -> list:
        """All series, sorted by (name, labels) for stable iteration."""
        return [self._series[k] for k in sorted(self._series)]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, series by series.

        Counter and histogram merges are integer/plus merges (order
        invariant); gauges resolve by latest timestamp.  This is the
        fleet-aggregation path: N member registries merged in any order
        produce bit-identical quantiles.
        """
        for key, s in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                cls = type(s)
                mine = cls(s.name, s.labels)
                self._series[key] = mine
            mine.merge(s)

    # -- export --------------------------------------------------------

    def snapshot(self, time: float = 0.0) -> dict:
        """The registry as a versioned JSON-ready document.

        ``time`` is the simulated instant the snapshot represents (the
        scheduler passes its wall time); it orders snapshots for
        :func:`diff_snapshots`.
        """
        rows = []
        for s in self.series():
            row = {"name": s.name, "labels": dict(s.labels),
                   "type": s.kind, "last_time": s.last_time}
            if s.kind == "counter":
                row.update(value=s.value, count=s.count)
            elif s.kind == "gauge":
                row.update(value=s.value,
                           samples=[[t, v] for t, v in s.samples])
            else:
                row.update(count=s.count, sum=s.sum, max=s.max,
                           counts={str(i): n for i, n in
                                   sorted(s.counts.items())},
                           quantiles=s.quantiles())
            rows.append(row)
        return {
            "version": SCHEMA_VERSION,
            "kind": SCHEMA_KIND,
            "time": time,
            "buckets": {"lo": BUCKET_LO,
                        "per_decade": BUCKETS_PER_DECADE,
                        "decades": BUCKET_DECADES},
            "series": rows,
        }

    @classmethod
    def from_snapshot(cls, doc: dict) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot document (replay path)."""
        _check_snapshot(doc)
        reg = cls()
        for row in doc["series"]:
            labels = row["labels"] or None
            if row["type"] == "counter":
                s = reg.counter(row["name"], labels)
                s.value = float(row["value"])
                s.count = int(row["count"])
            elif row["type"] == "gauge":
                s = reg.gauge(row["name"], labels)
                s.value = float(row["value"])
                s.samples = [(float(t), float(v)) for t, v in row["samples"]]
            elif row["type"] == "histogram":
                s = reg.histogram(row["name"], labels)
                s.counts = {int(i): int(n) for i, n in row["counts"].items()}
                s.count = int(row["count"])
                s.sum = float(row["sum"])
                s.max = float(row["max"])
            else:
                raise ParameterError(f"unknown series type {row['type']!r}")
            s.last_time = float(row["last_time"])
        return reg

    def save(self, path: str | Path, time: float = 0.0) -> None:
        """Write the snapshot document to ``path``."""
        Path(path).write_text(json.dumps(self.snapshot(time), indent=1))


def _check_snapshot(doc: dict) -> None:
    if (
        not isinstance(doc, dict)
        or doc.get("version") != SCHEMA_VERSION
        or doc.get("kind") != SCHEMA_KIND
    ):
        raise ParameterError(
            f"not a version-{SCHEMA_VERSION} {SCHEMA_KIND} document"
        )


def load_snapshot(path: str | Path) -> dict:
    """Read back a snapshot document, validating the envelope."""
    doc = json.loads(Path(path).read_text())
    _check_snapshot(doc)
    return doc


def diff_snapshots(new: dict, old: dict) -> dict:
    """The delta from ``old`` to ``new`` (two snapshot documents).

    Counters and histograms report count/value/bucket deltas (series
    with no change are dropped); gauges report their latest value plus
    only the samples newer than ``old``'s time.  ``old`` must precede
    ``new`` from the same registry — a counter regression raises, since
    it means the snapshots were swapped or crossed between runs.
    """
    _check_snapshot(new)
    _check_snapshot(old)
    old_by_key = {(r["name"], tuple(sorted(r["labels"].items()))): r
                  for r in old["series"]}
    rows = []
    for row in new["series"]:
        key = (row["name"], tuple(sorted(row["labels"].items())))
        prev = old_by_key.pop(key, None)
        if row["type"] == "counter":
            pv = prev["value"] if prev else 0.0
            pc = prev["count"] if prev else 0
            if row["value"] < pv or row["count"] < pc:
                raise ParameterError(
                    f"counter {row['name']} regressed across snapshots"
                )
            if row["count"] == pc:
                continue
            rows.append({"name": row["name"], "labels": row["labels"],
                         "type": "counter", "value": row["value"] - pv,
                         "count": row["count"] - pc,
                         "last_time": row["last_time"]})
        elif row["type"] == "gauge":
            cut = old["time"] if prev else -math.inf
            fresh = [sv for sv in row["samples"] if sv[0] > cut]
            if prev and not fresh and row["value"] == prev["value"]:
                continue
            rows.append({"name": row["name"], "labels": row["labels"],
                         "type": "gauge", "value": row["value"],
                         "samples": fresh, "last_time": row["last_time"]})
        else:
            pcounts = ({int(i): n for i, n in prev["counts"].items()}
                       if prev else {})
            pc = prev["count"] if prev else 0
            if row["count"] < pc:
                raise ParameterError(
                    f"histogram {row['name']} regressed across snapshots"
                )
            if row["count"] == pc:
                continue
            delta = {}
            for i, n in row["counts"].items():
                d = int(n) - pcounts.get(int(i), 0)
                if d < 0:
                    raise ParameterError(
                        f"histogram {row['name']} bucket {i} regressed"
                    )
                if d:
                    delta[i] = d
            rows.append({"name": row["name"], "labels": row["labels"],
                         "type": "histogram",
                         "count": row["count"] - pc,
                         "sum": row["sum"] - (prev["sum"] if prev else 0.0),
                         "counts": delta, "last_time": row["last_time"]})
    if old_by_key:
        gone = sorted(k[0] for k in old_by_key)
        raise ParameterError(
            f"series vanished between snapshots (swapped order?): {gone}"
        )
    return {"version": SCHEMA_VERSION, "kind": DIFF_KIND,
            "time": new["time"], "since": old["time"], "series": rows}


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_labels(labels: dict, extra: tuple = ()) -> str:
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\")
                         .replace('"', '\\"').replace("\n", "\\n"))
        for k, v in pairs
    )
    return "{" + body + "}"


def _prom_float(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    return f"{v:.10g}"


def prometheus_text(doc: dict) -> str:
    """Render a snapshot document in Prometheus text exposition format.

    One ``# TYPE`` line per metric name, then its samples; histograms
    expose cumulative ``_bucket{le=...}`` series on the shared bounds
    (buckets below the first and above the last observed index are
    elided, ``+Inf`` always present), plus ``_sum`` and ``_count``.
    ``tools/check_prometheus.py`` validates this output in CI.
    """
    _check_snapshot(doc)
    by_name: dict[str, list[dict]] = {}
    for row in doc["series"]:
        by_name.setdefault(row["name"], []).append(row)
    lines = []
    for name in sorted(by_name):
        rows = by_name[name]
        kind = rows[0]["type"]
        if any(r["type"] != kind for r in rows):
            raise ParameterError(f"metric {name} mixes series types")
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} {kind}")
        for row in rows:
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{pname}{_prom_labels(row['labels'])} "
                    f"{_prom_float(row['value'])}"
                )
                continue
            counts = {int(i): int(n) for i, n in row["counts"].items()}
            cum = 0
            for idx in sorted(counts):
                cum += counts[idx]
                le = (_BOUNDS[idx] if idx < len(_BOUNDS) else math.inf)
                lines.append(
                    f"{pname}_bucket"
                    f"{_prom_labels(row['labels'], (('le', _prom_float(le)),))}"
                    f" {cum}"
                )
            if not counts or max(counts) < len(_BOUNDS):
                lines.append(
                    f"{pname}_bucket"
                    f"{_prom_labels(row['labels'], (('le', '+Inf'),))}"
                    f" {row['count']}"
                )
            lines.append(f"{pname}_sum{_prom_labels(row['labels'])} "
                         f"{_prom_float(row['sum'])}")
            lines.append(f"{pname}_count{_prom_labels(row['labels'])} "
                         f"{row['count']}")
    return "\n".join(lines) + "\n" if lines else ""
