"""Windowed SLO tracking with multi-window burn-rate alerts.

The serve tier's objective is availability against the deadline
targets: the fraction of completed requests in a class that finished
within their target.  :class:`SloTracker` watches that fraction over
two rolling windows of simulated time — the SRE multi-window pattern
(short window for fast detection, long window to reject blips) scaled
from human 5m/1h horizons down to the simulator's millisecond traces —
and converts it to a **burn rate**: the observed miss fraction divided
by the error budget (``1 - objective``).  Burn 1.0 spends the budget
exactly at the objective's pace; a run sustained at burn ≥
``burn_threshold`` in *both* windows trips an alert, which clears when
the short window recovers.

Every :meth:`SloTracker.record` feeds the telemetry registry
(``slo.burn_rate{class=,window=}`` gauges, ``slo.alerts{class=,kind=}``
counters) at the completion's simulated time, and the trigger/clear
timeline lands in :attr:`SloTracker.alerts` — exported to the serve
Perfetto track by :func:`repro.serve.stats.serve_trace_events` and to
the ``serve-run`` JSON document, where the replay-bit-identity
acceptance test pins it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.util.validation import ParameterError


@dataclass(frozen=True)
class SloObjective:
    """Availability objective + alerting windows for one deadline class.

    Attributes
    ----------
    availability:
        Target fraction of completions inside the deadline (error
        budget is ``1 - availability``).
    short_window, long_window:
        Rolling windows in simulated seconds; the long window must not
        be shorter than the short one.
    burn_threshold:
        Burn rate both windows must reach to trigger an alert.
    """

    availability: float = 0.9
    short_window: float = 5e-3
    long_window: float = 25e-3
    burn_threshold: float = 2.0

    def __post_init__(self):
        if not 0.0 < self.availability < 1.0:
            raise ParameterError(
                f"availability must be in (0, 1), got {self.availability!r}"
            )
        if self.short_window <= 0.0 or self.long_window < self.short_window:
            raise ParameterError(
                "windows must satisfy 0 < short <= long, got "
                f"({self.short_window!r}, {self.long_window!r})"
            )
        if self.burn_threshold <= 0.0:
            raise ParameterError(
                f"burn_threshold must be > 0, got {self.burn_threshold!r}"
            )


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate alert transition (trigger or clear)."""

    time: float
    deadline_class: str
    kind: str  # "trigger" | "clear"
    short_burn: float
    long_burn: float


class SloTracker:
    """Rolling per-class availability objectives over a served trace.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.telemetry.MetricsRegistry` burn-rate
        gauges and alert counters are emitted into.
    objectives:
        Per-class :class:`SloObjective`; missing classes get the
        default objective.
    """

    def __init__(self, registry, objectives: dict[str, SloObjective] | None = None):
        # local import: serve.scheduler imports this module, so pulling
        # serve.request at module scope would close an import cycle
        from repro.serve.request import DEADLINE_CLASSES

        self.registry = registry
        self.objectives = {
            cls: (objectives or {}).get(cls, SloObjective())
            for cls in DEADLINE_CLASSES
        }
        #: trigger/clear transitions in completion order
        self.alerts: list[SloAlert] = []
        self._events: dict[str, list[tuple[float, bool]]] = {
            cls: [] for cls in DEADLINE_CLASSES
        }
        self._active: dict[str, bool] = {cls: False for cls in DEADLINE_CLASSES}

    def _burn(self, cls: str, now: float, window: float) -> float:
        obj = self.objectives[cls]
        evs = self._events[cls]
        inside = [ok for t, ok in evs if t > now - window]
        if not inside:
            return 0.0
        miss = sum(1 for ok in inside if not ok) / len(inside)
        return miss / (1.0 - obj.availability)

    def record(self, cls: str, t: float, ok: bool) -> None:
        """Feed one completion: class, simulated finish time, in-SLO?"""
        obj = self.objectives[cls]
        evs = self._events[cls]
        evs.append((t, ok))
        cutoff = t - obj.long_window
        while evs and evs[0][0] <= cutoff:
            evs.pop(0)
        short = self._burn(cls, t, obj.short_window)
        long_ = self._burn(cls, t, obj.long_window)
        reg = self.registry
        reg.gauge("slo.burn_rate", {"class": cls, "window": "short"}).set(short, t=t)
        reg.gauge("slo.burn_rate", {"class": cls, "window": "long"}).set(long_, t=t)
        if not self._active[cls] and (
            short >= obj.burn_threshold and long_ >= obj.burn_threshold
        ):
            self._active[cls] = True
            self.alerts.append(SloAlert(t, cls, "trigger", short, long_))
            reg.counter("slo.alerts", {"class": cls, "kind": "trigger"}).inc(1.0, t=t)
        elif self._active[cls] and short < obj.burn_threshold:
            self._active[cls] = False
            self.alerts.append(SloAlert(t, cls, "clear", short, long_))
            reg.counter("slo.alerts", {"class": cls, "kind": "clear"}).inc(1.0, t=t)

    def active(self, cls: str) -> bool:
        """True while the class's burn-rate alert is firing."""
        return self._active[cls]

    def to_json(self) -> dict:
        """JSON-ready objectives + alert timeline for the serve-run doc."""
        return {
            "objectives": {cls: asdict(o) for cls, o in self.objectives.items()},
            "alerts": [asdict(a) for a in self.alerts],
        }
