"""The hierarchical region API.

Pipelines annotate their phases so every ledger record carries a region
path and metrics roll up by pipeline stage instead of raw kernel name::

    from repro import obs

    with obs.region(cl, "fmmfft/fmm"):
        cl.launch(...)            # record.region == "fmmfft/fmm"

:func:`region` is sugar over :meth:`VirtualCluster.region
<repro.machine.cluster.VirtualCluster.region>`: a ``"/"``-separated
path opens one nested scope per segment, and scopes compose across call
boundaries — a pipeline that annotates itself with ``"fft2d"`` reports
as ``"fmmfft/fft2d"`` when invoked inside the FMM-FFT's ``"fmmfft"``
scope.  Regions are pure telemetry: they never change timing, events,
or hazard analysis.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from typing import Iterator

from repro.machine.cluster import VirtualCluster


@contextmanager
def region(cluster: VirtualCluster, path: str) -> Iterator[VirtualCluster]:
    """Scope ops on ``cluster`` under a (possibly nested) region path."""
    with ExitStack() as stack:
        for segment in path.split("/"):
            stack.enter_context(cluster.region(segment))
        yield cluster
