"""The observability bench harness: the repo's perf trajectory record.

Every optimisation PR needs numbers to prove itself; this module
produces them.  :func:`collect_obs_bench` runs the FMM-FFT and the
six-step baseline on each simulated testbed and reduces the run to the
metrics that matter for the paper's claims: wall time, exposed-comm
seconds, comm-hidden fraction, and critical-path length/op-count.
:func:`write_bench_json` persists the result as ``BENCH_obs.json``
(default: ``benchmarks/out/``), which CI uploads as an artifact so the
trajectory is recorded per commit.

Run standalone::

    python -m repro.obs --n 2^20 --systems 2xP100,8xP100

or through the pytest harness (``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.machine.cluster import VirtualCluster
from repro.machine.spec import preset
from repro.obs.metrics import compute_metrics

#: testbeds benched by default (every preset the paper measures on)
DEFAULT_SYSTEMS = ("2xK40c", "2xP100", "8xP100")


def _reduce(report, launches: int) -> dict:
    """One pipeline's BENCH row: the headline scalars only."""
    return {
        "wall_time": report.wall_time,
        "exposed_comm": report.exposed_comm,
        "overlap_fraction": report.overlap_fraction,
        "critical_path_length": report.path.length,
        "critical_path_ops": len(report.path.ops),
        "launches": launches,
    }


def collect_obs_bench(
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    N: int = 1 << 20,
    dtype: str = "complex128",
) -> dict:
    """Run both pipelines per testbed and collect the BENCH payload."""
    from repro.core.distributed import FmmFftDistributed
    from repro.core.plan import FmmFftPlan
    from repro.dfft.fft1d import Distributed1DFFT
    from repro.model.search import find_fastest

    out: dict = {"N": N, "dtype": dtype, "testbeds": {}}
    for name in systems:
        spec = preset(name)

        cl_b = VirtualCluster(spec, execute=False)
        Distributed1DFFT(N, cl_b, dtype=dtype).run()
        rep_b = compute_metrics(cl_b.ledger, spec, dtype=dtype)

        r = find_fastest(N, spec, dtype=dtype)
        plan = FmmFftPlan.create(N=N, G=spec.num_devices, dtype=dtype,
                                 build_operators=False, **r.params)
        cl_f = VirtualCluster(spec, execute=False)
        FmmFftDistributed(plan, cl_f).run()
        rep_f = compute_metrics(cl_f.ledger, spec, geom=plan.geometry,
                                dtype=dtype)

        out["testbeds"][name] = {
            "params": r.params,
            "fft1d": _reduce(rep_b, cl_b.ledger.launch_count()),
            "fmmfft": _reduce(rep_f, cl_f.ledger.launch_count()),
            "speedup": rep_b.wall_time / rep_f.wall_time
            if rep_f.wall_time > 0 else 0.0,
        }
    return out


def write_bench_json(
    path: str | Path | None = None,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    N: int = 1 << 20,
    dtype: str = "complex128",
) -> Path:
    """Collect and persist BENCH_obs.json; returns the output path."""
    from repro.bench.figures import out_dir

    out = Path(path) if path is not None else out_dir() / "BENCH_obs.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(collect_obs_bench(systems, N, dtype), indent=1))
    return out


def render_bench(payload: dict) -> str:
    """Compact text view of a BENCH payload (for the report artifact)."""
    from repro.util.table import Table, format_time

    t = Table(["system", "pipeline", "wall", "exposed comm", "hidden frac",
               "crit-path ops"],
              title=f"Observability bench, N={payload['N']} ({payload['dtype']})")
    for system, row in payload["testbeds"].items():
        for pipe in ("fft1d", "fmmfft"):
            m = row[pipe]
            t.add_row([system, pipe, format_time(m["wall_time"]),
                       format_time(m["exposed_comm"]),
                       f"{m['overlap_fraction']:.3f}",
                       m["critical_path_ops"]])
    return t.render()
