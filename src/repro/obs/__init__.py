"""Observability: the ledger as first-class telemetry.

The paper's headline evidence is observability — Figure 2 is an nvprof
timeline showing comm hidden under compute, and Section 5's model is
validated by joining per-kernel measurements against closed-form
predictions.  This package gives the simulator the same toolchain:

- :mod:`repro.obs.region` — a hierarchical region API
  (``with obs.region(cl, "fmmfft/fmm"): ...``) threaded through the
  ``dfft``/``fmm``/``core`` pipelines, stamping every
  :class:`~repro.machine.ledger.OpRecord` with a stage path;
- :mod:`repro.obs.perfetto` — Perfetto/Chrome trace-event export: one
  track per (device, engine), flow arrows for wait edges and
  sendrecv/collective pairs, counter tracks for achieved GFLOP/s,
  memory GB/s, and in-flight comm bytes, plus a fault track
  (:func:`~repro.obs.perfetto.fault_track_events`) placing injected
  faults next to the retries they caused;
- :mod:`repro.obs.metrics` — per-stage rollups, the measured-vs-model
  join (Figure 5 efficiencies), the comm measured-vs-plan-model join
  validating :mod:`repro.comm` predictions against the ledger,
  comm/compute overlap and exposed-comm accounting, and critical-path
  extraction with per-op slack over the happens-before graph;
- :mod:`repro.obs.bench` — the ``BENCH_obs.json`` harness recording the
  perf trajectory per testbed.

CLI entry points: ``repro metrics``, ``repro profile --trace-out``,
``repro transform --trace-out``, ``python -m repro.obs``.  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    CommJoin,
    CriticalPath,
    MetricsReport,
    ModelJoin,
    OverlapStats,
    RetryStats,
    StageStat,
    compute_metrics,
    critical_path,
    join_comm_model,
    join_fmm_model,
    overlap_stats,
    overlap_summary,
    retry_stats,
    rollup,
)
from repro.obs.perfetto import (
    build_trace,
    fault_track_events,
    merge_fault_track,
    save_trace,
    validate_trace,
)
from repro.obs.region import region

__all__ = [
    "CommJoin",
    "CriticalPath",
    "MetricsReport",
    "ModelJoin",
    "OverlapStats",
    "RetryStats",
    "StageStat",
    "build_trace",
    "compute_metrics",
    "critical_path",
    "fault_track_events",
    "join_comm_model",
    "join_fmm_model",
    "merge_fault_track",
    "overlap_stats",
    "overlap_summary",
    "region",
    "retry_stats",
    "rollup",
    "save_trace",
    "validate_trace",
]
