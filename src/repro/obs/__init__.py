"""Observability: the ledger as first-class telemetry.

The paper's headline evidence is observability — Figure 2 is an nvprof
timeline showing comm hidden under compute, and Section 5's model is
validated by joining per-kernel measurements against closed-form
predictions.  This package gives the simulator the same toolchain:

- :mod:`repro.obs.region` — a hierarchical region API
  (``with obs.region(cl, "fmmfft/fmm"): ...``) threaded through the
  ``dfft``/``fmm``/``core`` pipelines, stamping every
  :class:`~repro.machine.ledger.OpRecord` with a stage path;
- :mod:`repro.obs.perfetto` — Perfetto/Chrome trace-event export: one
  track per (device, engine), flow arrows for wait edges and
  sendrecv/collective pairs, counter tracks for achieved GFLOP/s,
  memory GB/s, and in-flight comm bytes, plus a fault track
  (:func:`~repro.obs.perfetto.fault_track_events`) placing injected
  faults next to the retries they caused;
- :mod:`repro.obs.metrics` — per-stage rollups, the measured-vs-model
  join (Figure 5 efficiencies), the comm measured-vs-plan-model join
  validating :mod:`repro.comm` predictions against the ledger,
  comm/compute overlap and exposed-comm accounting, and critical-path
  extraction with per-op slack over the happens-before graph;
- :mod:`repro.obs.bench` — the ``BENCH_obs.json`` harness recording the
  perf trajectory per testbed;
- :mod:`repro.obs.telemetry` — the *live* side: a process-wide metrics
  registry (counters, gauges, streaming histograms on a fixed
  log-spaced grid) every serve run emits into, with versioned snapshot
  / diff documents and Prometheus text exposition;
- :mod:`repro.obs.slo` — windowed availability objectives with
  multi-window burn-rate alerting over the registry;
- :mod:`repro.obs.top` — the ``repro top`` ASCII dashboard rendered
  from a snapshot or serve-run document.

CLI entry points: ``repro metrics``, ``repro profile --trace-out``,
``repro transform --trace-out``, ``repro top``, ``python -m repro.obs``.
See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    CommJoin,
    CriticalPath,
    MetricsReport,
    ModelJoin,
    OverlapStats,
    RetryStats,
    StageStat,
    compute_metrics,
    critical_path,
    join_comm_model,
    join_fmm_model,
    overlap_stats,
    overlap_summary,
    retry_stats,
    rollup,
)
from repro.obs.perfetto import (
    build_trace,
    fault_track_events,
    merge_fault_track,
    save_trace,
    validate_trace,
)
from repro.obs.region import region
from repro.obs.slo import SloAlert, SloObjective, SloTracker
from repro.obs.telemetry import (
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricsRegistry,
    bucket_bounds,
    diff_snapshots,
    load_snapshot,
    prometheus_text,
)
from repro.obs.top import render_dashboard

__all__ = [
    "CommJoin",
    "CounterSeries",
    "CriticalPath",
    "GaugeSeries",
    "HistogramSeries",
    "MetricsRegistry",
    "MetricsReport",
    "ModelJoin",
    "OverlapStats",
    "RetryStats",
    "SloAlert",
    "SloObjective",
    "SloTracker",
    "StageStat",
    "bucket_bounds",
    "build_trace",
    "compute_metrics",
    "critical_path",
    "diff_snapshots",
    "fault_track_events",
    "join_comm_model",
    "join_fmm_model",
    "load_snapshot",
    "merge_fault_track",
    "overlap_stats",
    "overlap_summary",
    "prometheus_text",
    "region",
    "render_dashboard",
    "retry_stats",
    "rollup",
    "save_trace",
    "validate_trace",
]
