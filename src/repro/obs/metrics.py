"""The metrics engine: ledger -> quantitative observability.

Four analyses over one recorded run, all pure functions of the
:class:`~repro.machine.ledger.Ledger`:

- :func:`rollup` — per-stage totals (time, launches, flops, bytes, comm
  bytes, achieved GFLOP/s and GB/s), grouped by hierarchical region
  path or by op name;
- :func:`join_fmm_model` — the measured-vs-model join behind Figure 5:
  each FMM stage's simulated time against its Section 5 roofline
  prediction (:func:`repro.model.roofline.fmm_stage_times`), as an
  efficiency ratio;
- :func:`overlap_stats` — per-device comm/compute overlap: how much of
  the comm busy time is hidden under compute (the paper's Figure 2
  claim) and how much is *exposed* (extends the critical path);
- :func:`critical_path` — longest dependent chain through the
  happens-before graph (program order + wait edges, the same graph the
  hazard sanitizer builds), plus per-op slack from a backward pass.

:func:`compute_metrics` bundles all four into a :class:`MetricsReport`
with ``render()`` (the ``repro metrics`` CLI output) and ``to_json()``
(the ``BENCH_obs.json`` payload).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.hazards import happens_before
from repro.machine.ledger import Ledger, OpRecord
from repro.machine.spec import ClusterSpec
from repro.util.table import Table, format_bytes, format_count, format_time


# ---------------------------------------------------------------------------
# per-stage rollups
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StageStat:
    """Aggregated totals for one stage (a region path or an op name)."""

    key: str
    ops: int
    time: float
    flops: float
    mops: float
    comm_bytes: float

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s over the stage's busy time."""
        return self.flops / self.time / 1e9 if self.time > 0 else 0.0

    @property
    def mem_gbs(self) -> float:
        """Achieved memory GB/s over the stage's busy time."""
        return self.mops / self.time / 1e9 if self.time > 0 else 0.0


def rollup(
    ledger: Ledger,
    by: str = "region",
    device: int | None = None,
    depth: int | None = None,
) -> list[StageStat]:
    """Per-stage totals, sorted by descending time.

    Parameters
    ----------
    ledger:
        The recorded run.
    by:
        'region' groups by the hierarchical region path stamped by
        ``cluster.region(...)`` scopes; 'name' groups by op name.
    device:
        Restrict to one device (None sums over all).
    depth:
        With ``by='region'``, truncate paths to this many segments
        (``depth=1`` turns ``"fmmfft/fmm/S2M"`` into ``"fmmfft"``), so
        the same ledger rolls up at any level of the hierarchy.
    """
    if by not in ("region", "name"):
        raise ValueError(f"rollup key must be 'region' or 'name', got {by!r}")
    acc: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0, 0.0, 0.0])
    for r in ledger.records(device=device):
        key = r.region if by == "region" else r.name
        if by == "region":
            if not key:
                key = "(unregioned)"
            elif depth is not None:
                key = "/".join(key.split("/")[:depth])
        a = acc[key]
        a[0] += 1
        a[1] += r.duration
        a[2] += r.flops
        a[3] += r.mops
        a[4] += r.comm_bytes
    stats = [
        StageStat(key=k, ops=int(a[0]), time=a[1], flops=a[2],
                  mops=a[3], comm_bytes=a[4])
        for k, a in acc.items()
    ]
    stats.sort(key=lambda s: (-s.time, s.key))
    return stats


# ---------------------------------------------------------------------------
# measured vs Section-5 model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ModelJoin:
    """One FMM stage's measured time against its roofline prediction."""

    stage: str
    measured: float
    model: float

    @property
    def efficiency(self) -> float:
        """Fraction of the idealized roofline achieved (Figure 5)."""
        return self.model / self.measured if self.measured > 0 else 0.0


def join_fmm_model(
    ledger: Ledger,
    geom,
    spec: ClusterSpec,
    dtype="complex128",
    device: int = 0,
) -> list[ModelJoin]:
    """Join per-stage measured times with the Section 5 predictions.

    Stage names in the ledger ('S2M', 'M2L-3', ...) are exactly the keys
    of :func:`repro.model.roofline.fmm_stage_times`, so the join is by
    name on one device (stages replicate across devices with identical
    cost).  Stages the model does not predict (comm, transposes, fused
    variants) are simply absent — the rollup still accounts their time.
    """
    from repro.model.roofline import fmm_stage_times

    model = fmm_stage_times(geom, spec, dtype)
    measured = ledger.time_by_name(device=device)
    out = [
        ModelJoin(stage=name, measured=measured[name], model=model[name])
        for name in sorted(model)
        if name in measured and measured[name] > 0
    ]
    out.sort(key=lambda j: -j.measured)
    return out


# ---------------------------------------------------------------------------
# measured vs comm plan model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CommJoin:
    """One collective's measured comm time against its plan prediction.

    ``measured`` is the per-device average busy time of the stage's comm
    records (ledger durations divided by G for collectives/halos, raw
    for p2p — matching the per-device convention of the predictions);
    ``model`` is the :func:`repro.comm.tuning.predict_time` total over
    the logged calls.  For ``bulk`` the two agree exactly (the flat
    model *is* the charged duration); for message plans the ratio is a
    balance diagnostic — below 1.0 when devices idle between rounds of
    the plan's critical path, above 1.0 when queueing stretched rounds.
    """

    name: str
    kind: str
    algorithm: str
    calls: int
    payload: float
    measured: float
    model: float

    @property
    def ratio(self) -> float:
        """measured / model; 1.0 when both are zero (degenerate calls)."""
        if self.model > 0:
            return self.measured / self.model
        return 1.0 if self.measured == 0 else float("inf")


def join_comm_model(
    ledger: Ledger,
    comm_log: list[dict],
    num_devices: int,
) -> list[CommJoin]:
    """Join the cluster's ``comm_log`` against the ledger's comm records.

    Groups log entries by (stage name, kind, algorithm), sums their
    predictions, and compares with the summed durations of the comm
    records carrying that stage name — the measured-vs-model validation
    for the :mod:`repro.comm` cost model.
    """
    if not comm_log:
        return []
    groups: dict[tuple, list[float]] = {}
    for e in comm_log:
        k = (e["name"], e["kind"], e["algorithm"])
        g = groups.setdefault(k, [0, 0.0, 0.0])
        g[0] += 1
        g[1] += e["payload"]
        g[2] += e["predicted"]
    dur_by_name: dict[str, float] = defaultdict(float)
    for r in ledger:
        if r.kind == "comm":
            dur_by_name[r.name] += r.duration
    out = []
    for (name, kind, algo), (calls, payload, model) in groups.items():
        measured = dur_by_name.get(name, 0.0)
        if kind in ("alltoall", "allgather", "halo"):
            measured /= max(num_devices, 1)
        out.append(CommJoin(name=name, kind=kind, algorithm=algo,
                            calls=int(calls), payload=payload,
                            measured=measured, model=model))
    out.sort(key=lambda j: -j.measured)
    return out


# ---------------------------------------------------------------------------
# retry accounting
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryStats:
    """Time and attempts charged to timed-out ``!fail`` comm records.

    The comm layer names every failed attempt ``<stage>!fail``, so
    retry cost is recoverable from the ledger alone.  ``attempts``
    counts failed attempts (a failed bulk collective's G coherent
    records count once); ``retry_time`` is their total duration — the
    simulated time the run spent discovering failures, before backoff.
    """

    attempts: int
    retry_time: float
    by_name: dict[str, float]


def retry_stats(ledger: Ledger) -> RetryStats:
    """Fold a ledger's ``!fail`` records into a :class:`RetryStats`."""
    attempts, total = 0, 0.0
    by_name: dict[str, float] = defaultdict(float)
    seen: set = set()
    for r in ledger:
        if r.kind != "comm" or not r.name.endswith("!fail"):
            continue
        if r.peer < 0:
            key = (r.name, r.start, r.duration)
            if key in seen:
                continue
            seen.add(key)
        attempts += 1
        total += r.duration
        by_name[r.name] += r.duration
    return RetryStats(attempts=attempts, retry_time=total,
                      by_name=dict(by_name))


# ---------------------------------------------------------------------------
# comm/compute overlap
# ---------------------------------------------------------------------------

def _union_measure(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of intervals."""
    return sum(b - a for a, b in _union(intervals))


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge intervals into a sorted disjoint union."""
    out: list[tuple[float, float]] = []
    for a, b in sorted(i for i in intervals if i[1] > i[0]):
        if out and a <= out[-1][1]:
            if b > out[-1][1]:
                out[-1] = (out[-1][0], b)
        else:
            out.append((a, b))
    return out


def _intersect_measure(
    xs: list[tuple[float, float]], ys: list[tuple[float, float]]
) -> float:
    """Total length of the intersection of two disjoint sorted unions."""
    total, i, j = 0.0, 0, 0
    while i < len(xs) and j < len(ys):
        lo = max(xs[i][0], ys[j][0])
        hi = min(xs[i][1], ys[j][1])
        if hi > lo:
            total += hi - lo
        if xs[i][1] <= ys[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclass(frozen=True)
class OverlapStats:
    """Comm/compute overlap accounting for one device (or all).

    ``comm_busy`` is the *union* of this device's comm intervals (as
    sender or receiver), ``overlap`` the part of it covered by compute,
    ``exposed`` the part that is not — the comm time that actually
    extends the timeline, the quantity the FMM-FFT exists to shrink.
    """

    device: int            # -1 = aggregated over all devices
    comm_busy: float
    compute_busy: float
    overlap: float

    @property
    def exposed(self) -> float:
        return self.comm_busy - self.overlap

    @property
    def overlap_fraction(self) -> float:
        """Hidden fraction of comm busy time; 0.0 when there is no comm."""
        return self.overlap / self.comm_busy if self.comm_busy > 0 else 0.0


def overlap_stats(ledger: Ledger, device: int) -> OverlapStats:
    """Overlap accounting for one device.

    A comm record occupies its sender (``device``) and, for p2p, its
    receiver (``peer``); compute is every positive-duration non-comm,
    non-host op on the device.
    """
    comm, compute = [], []
    for r in ledger:
        if r.duration <= 0.0:
            continue
        if r.kind == "comm":
            if r.device == device or r.peer == device:
                comm.append(r.interval())
        elif r.kind != "host" and r.device == device:
            compute.append(r.interval())
    cu, xu = _union(comm), _union(compute)
    return OverlapStats(
        device=device,
        comm_busy=sum(b - a for a, b in cu),
        compute_busy=sum(b - a for a, b in xu),
        overlap=_intersect_measure(cu, xu),
    )


def overlap_summary(ledger: Ledger, num_devices: int) -> list[OverlapStats]:
    """Per-device stats plus a device=-1 aggregate (summed busy times)."""
    per_dev = [overlap_stats(ledger, g) for g in range(num_devices)]
    agg = OverlapStats(
        device=-1,
        comm_busy=sum(s.comm_busy for s in per_dev),
        compute_busy=sum(s.compute_busy for s in per_dev),
        overlap=sum(s.overlap for s in per_dev),
    )
    return per_dev + [agg]


# ---------------------------------------------------------------------------
# critical path + slack
# ---------------------------------------------------------------------------

@dataclass
class CriticalPath:
    """The longest dependent chain of a recorded run.

    ``ops`` runs first-to-last; ``length`` is terminal end minus chain
    start, which for a complete run equals the simulated wall time.
    ``slack`` maps each op uid to how far it could finish later without
    delaying the run's final completion, given the recorded dependency
    edges (program order + waits; barrier-induced orderings are not in
    the ledger, so slack is an upper bound there).  Critical ops have
    slack 0; ``idle`` is the total gap time inside the chain (an op
    starting later than its binding predecessor finished, e.g. across a
    barrier).
    """

    ops: list[OpRecord] = field(default_factory=list)
    length: float = 0.0
    idle: float = 0.0
    slack: dict[int, float] = field(default_factory=dict)

    def stage_times(self) -> dict[str, float]:
        """Time on the critical path per op name."""
        acc: dict[str, float] = defaultdict(float)
        for r in self.ops:
            acc[r.name] += r.duration
        return dict(acc)


def critical_path(ledger: Ledger) -> CriticalPath:
    """Extract the critical path and per-op slack of one run.

    Uses the same happens-before edges as the hazard sanitizer.  The
    path is found by walking back from the op with the latest end,
    always following the predecessor that finished last; slack comes
    from a backward (latest-finish) pass over the DAG.
    """
    recs = list(ledger)
    if not recs:
        return CriticalPath()
    by_uid = {r.uid: r for r in recs}
    preds: dict[int, list[int]] = defaultdict(list)
    succs: dict[int, list[int]] = defaultdict(list)
    for a, b in happens_before(ledger):
        preds[b].append(a)
        succs[a].append(b)

    # walk back from the global terminal
    terminal = max(recs, key=lambda r: (r.end, r.uid))
    chain = [terminal]
    idle = 0.0
    cur = terminal
    while preds[cur.uid]:
        pred = max((by_uid[u] for u in preds[cur.uid] if u in by_uid),
                   key=lambda r: (r.end, r.uid), default=None)
        if pred is None:
            break
        if cur.start > pred.end:
            idle += cur.start - pred.end
        chain.append(pred)
        cur = pred
    chain.reverse()

    # backward latest-finish pass (uids are issue-ordered; reverse is a
    # valid reverse-topological order since every edge points forward)
    end_of_run = max(r.end for r in recs)
    latest_finish: dict[int, float] = {}
    for r in reversed(recs):
        ss = succs[r.uid]
        if not ss:
            lf = end_of_run
        else:
            lf = min(latest_finish[s] - by_uid[s].duration for s in ss)
        latest_finish[r.uid] = lf
    span = max(abs(end_of_run), 1.0)
    slack = {}
    for r in recs:
        s = latest_finish[r.uid] - r.end
        slack[r.uid] = 0.0 if abs(s) < 1e-12 * span else s
    return CriticalPath(
        ops=chain,
        length=terminal.end - chain[0].start,
        idle=idle,
        slack=slack,
    )


# ---------------------------------------------------------------------------
# the bundled report
# ---------------------------------------------------------------------------

@dataclass
class MetricsReport:
    """Everything ``repro metrics`` reports for one run."""

    wall_time: float
    stages: list[StageStat]
    names: list[StageStat]
    model: list[ModelJoin]
    overlap: list[OverlapStats]
    path: CriticalPath
    comm: list[CommJoin] = field(default_factory=list)
    retry: RetryStats | None = None

    @property
    def exposed_comm(self) -> float:
        """Aggregate exposed-comm seconds (device -1 row)."""
        return self.overlap[-1].exposed

    @property
    def overlap_fraction(self) -> float:
        return self.overlap[-1].overlap_fraction

    def render(self) -> str:
        """Human-readable report (tables + summary lines)."""
        parts: list[str] = []
        t = Table(["region", "ops", "time", "flops", "mem bytes",
                   "comm bytes", "GFLOP/s", "GB/s"],
                  title="Per-stage rollup (by region)")
        for s in self.stages:
            t.add_row([s.key, s.ops, format_time(s.time),
                       format_count(s.flops), format_bytes(s.mops),
                       format_bytes(s.comm_bytes),
                       f"{s.gflops:.1f}", f"{s.mem_gbs:.1f}"])
        parts.append(t.render())
        if self.model:
            t = Table(["stage", "measured", "model (Sec. 5)", "efficiency"],
                      title="Measured vs Section-5 roofline (per device)")
            for j in self.model:
                t.add_row([j.stage, format_time(j.measured),
                           format_time(j.model), f"{j.efficiency:.2f}"])
            parts.append(t.render())
        if self.comm:
            t = Table(["collective", "kind", "algorithm", "calls", "payload",
                       "measured", "model", "ratio"],
                      title="Comm measured vs plan model (per device)")
            for c in self.comm:
                t.add_row([c.name, c.kind, c.algorithm, c.calls,
                           format_bytes(c.payload), format_time(c.measured),
                           format_time(c.model), f"{c.ratio:.2f}"])
            parts.append(t.render())
        t = Table(["device", "comm busy", "compute busy", "overlapped",
                   "exposed", "hidden frac"],
                  title="Comm/compute overlap")
        for s in self.overlap:
            t.add_row(["all" if s.device < 0 else f"dev{s.device}",
                       format_time(s.comm_busy), format_time(s.compute_busy),
                       format_time(s.overlap), format_time(s.exposed),
                       f"{s.overlap_fraction:.3f}"])
        parts.append(t.render())
        if self.retry is not None and self.retry.attempts > 0:
            top = sorted(self.retry.by_name.items(), key=lambda kv: -kv[1])[:4]
            parts.append(
                f"comm retries: {self.retry.attempts} failed attempts, "
                f"{format_time(self.retry.retry_time)} in timeouts ("
                + ", ".join(f"{n} {format_time(tm)}" for n, tm in top) + ")"
            )
        n_critical = sum(1 for v in self.path.slack.values() if v == 0.0)
        parts.append(
            f"critical path: {len(self.path.ops)} ops, "
            f"length {format_time(self.path.length)} "
            f"(wall {format_time(self.wall_time)}, "
            f"idle on path {format_time(self.path.idle)}); "
            f"{n_critical}/{len(self.path.slack)} ops have zero slack"
        )
        top = sorted(self.path.stage_times().items(), key=lambda kv: -kv[1])[:6]
        parts.append(
            "critical-path time by stage: "
            + ", ".join(f"{name} {format_time(tm)}" for name, tm in top)
        )
        return "\n\n".join(parts)

    def to_json(self) -> dict:
        """Machine-readable payload (the BENCH/--json schema)."""
        return {
            "wall_time": self.wall_time,
            "exposed_comm": self.exposed_comm,
            "overlap_fraction": self.overlap_fraction,
            "retry_attempts": (self.retry.attempts
                               if self.retry is not None else 0),
            "retry_time": (self.retry.retry_time
                           if self.retry is not None else 0.0),
            "critical_path_length": self.path.length,
            "critical_path_ops": len(self.path.ops),
            "critical_path_idle": self.path.idle,
            "stages": [
                {"region": s.key, "ops": s.ops, "time": s.time,
                 "flops": s.flops, "mops": s.mops,
                 "comm_bytes": s.comm_bytes, "gflops": s.gflops,
                 "mem_gbs": s.mem_gbs}
                for s in self.stages
            ],
            "model_join": [
                {"stage": j.stage, "measured": j.measured, "model": j.model,
                 "efficiency": j.efficiency}
                for j in self.model
            ],
            "comm_join": [
                {"name": c.name, "kind": c.kind, "algorithm": c.algorithm,
                 "calls": c.calls, "payload": c.payload,
                 "measured": c.measured, "model": c.model, "ratio": c.ratio}
                for c in self.comm
            ],
            "overlap": [
                {"device": s.device, "comm_busy": s.comm_busy,
                 "compute_busy": s.compute_busy, "overlap": s.overlap,
                 "exposed": s.exposed,
                 "overlap_fraction": s.overlap_fraction}
                for s in self.overlap
            ],
        }


def compute_metrics(
    ledger: Ledger,
    spec: ClusterSpec,
    geom=None,
    dtype="complex128",
    comm_log=None,
) -> MetricsReport:
    """Run every analysis over one ledger.

    ``geom`` (an :class:`~repro.fmm.plan.FmmGeometry`) enables the
    Section-5 model join; without it the report simply omits that table
    (baseline FFT pipelines have no FMM stages to predict).  ``comm_log``
    (the cluster's :mod:`repro.comm` call log) enables the comm
    measured-vs-plan-model table the same way.
    """
    start, end = ledger.span()
    return MetricsReport(
        wall_time=end - start,
        stages=rollup(ledger, by="region"),
        names=rollup(ledger, by="name"),
        model=join_fmm_model(ledger, geom, spec, dtype) if geom is not None else [],
        overlap=overlap_summary(ledger, spec.num_devices),
        path=critical_path(ledger),
        comm=join_comm_model(ledger, comm_log, spec.num_devices)
        if comm_log else [],
        retry=retry_stats(ledger),
    )
