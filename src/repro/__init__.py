"""repro: a full reproduction of "Low Communication FMM-Accelerated FFT
on GPUs" (Cris Cecka, SC '17).

The package provides, from scratch:

- the **FMM-FFT** itself (:mod:`repro.core`) — the single-all-to-all
  factorization ``F_N = F_{M,P} H^_{M,P}`` with every FMM stage a
  batched dense tensor contraction;
- the **periodic 1D interpolative FMM** substrate (:mod:`repro.fmm`);
- a **local FFT engine** (:mod:`repro.fftcore`: Stockham + Bluestein);
- a **distributed FFT library** (:mod:`repro.dfft`) with the six-step
  three-transpose baseline and the single-transpose 2D FFT;
- a **virtual multi-GPU cluster** (:mod:`repro.machine`) that executes
  real NumPy numerics while simulating K40c/P100-class timing via the
  paper's roofline model, streams, and interconnect topologies;
- the **Section 5 performance model** (:mod:`repro.model`) and the
  parameter search behind the paper's Figure 3.

Quick start::

    import numpy as np
    from repro import fmmfft

    x = np.random.default_rng(0).uniform(-1, 1, 4096).astype(np.complex128)
    X = fmmfft(x)                 # == np.fft.fft(x) to ~1e-14
"""

from __future__ import annotations

from repro.core.api import fmmfft, fourier_transform, ifmmfft
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single
from repro.core.distributed import FmmFftDistributed
from repro.core.baseline import baseline_1d_fft
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import preset

__version__ = "1.0.0"

__all__ = [
    "FmmFftDistributed",
    "FmmFftPlan",
    "VirtualCluster",
    "__version__",
    "baseline_1d_fft",
    "fmmfft",
    "fmmfft_single",
    "fourier_transform",
    "ifmmfft",
    "preset",
]
