"""Device, link, and cluster specifications.

The numbers here are the paper's *achieved* (not datasheet) architecture
parameters:

========  ==========  ==========  ============  ==================
device    gamma_f     gamma_d     beta (mem)    P2P (achieved)
========  ==========  ==========  ============  ==================
K40c      2.8 TF/s    1.2 TF/s    100 GB/s      13.2 GB/s (PCIe)
P100      10  TF/s    5   TF/s    360 GB/s      36 GB/s (NVLink)
========  ==========  ==========  ============  ==================

(Section 5.4 and the opening of Section 6.)  Latency constants are not
printed in the paper; they are calibrated so that, as in Section 6.1,
distributed FFTs become latency/synchronization bound for N <~ 2^21.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import networkx as nx
import numpy as np

from repro.machine import routing, topology as topo
from repro.util.validation import ParameterError, check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """A single accelerator's practical performance envelope.

    Attributes
    ----------
    name:
        Human-readable device name.
    gamma_f, gamma_d:
        Practical peak single/double-precision throughput, flop/s.
    beta:
        Practical device memory bandwidth, byte/s.
    launch_latency:
        Fixed per-kernel-launch overhead, seconds.
    batched_gemm_derate:
        Fraction of gamma that BatchedGEMM achieves relative to plain
        GEMM (Figure 1 shows a visible deficit on K40c/cuBLAS 8.0 and
        near-parity on P100).
    custom_kernel_derate:
        Fraction of the roofline that hand-written CUDA kernels (S2T,
        M2L) achieve; the paper reports ~60% (Section 6.2, citing [1]).
    """

    name: str
    gamma_f: float
    gamma_d: float
    beta: float
    launch_latency: float = 8e-6
    batched_gemm_derate: float = 0.95
    custom_kernel_derate: float = 0.60

    def __post_init__(self):
        for attr in ("gamma_f", "gamma_d", "beta", "launch_latency"):
            check_positive(attr, getattr(self, attr))
        for attr in ("batched_gemm_derate", "custom_kernel_derate"):
            v = getattr(self, attr)
            if not 0.0 < v <= 1.0:
                raise ParameterError(f"{attr} must be in (0, 1], got {v!r}")

    def gamma(self, dtype) -> float:
        """Peak flop rate for the given dtype's precision."""
        dt = np.dtype(dtype)
        if dt in (np.float32, np.complex64):
            return self.gamma_f
        if dt in (np.float64, np.complex128):
            return self.gamma_d
        raise ParameterError(f"unsupported dtype {dt!r}")


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect link.

    Attributes
    ----------
    bandwidth:
        Achieved unidirectional P2P bandwidth, byte/s.
    latency:
        Per-message overhead (software + wire), seconds.
    """

    bandwidth: float
    latency: float = 10e-6

    def __post_init__(self):
        check_positive("bandwidth", self.bandwidth)
        check_positive("latency", self.latency)


@dataclass(frozen=True)
class ClusterSpec:
    """A node: G identical devices plus an interconnect graph.

    Attributes
    ----------
    device:
        The per-device spec (devices are homogeneous, as in the paper).
    num_devices:
        G.
    graph:
        networkx graph over device ids 0..G-1; edges carry a 'link'
        attribute (:class:`LinkSpec`).  Missing edges are routed via
        shortest paths (relayed transfers share link capacity).
    name:
        Label used in benchmark output, e.g. ``"2xP100, NVLINK"``.
    """

    device: DeviceSpec
    num_devices: int
    graph: nx.Graph
    name: str
    #: Host-side synchronization cost of a collective (all-to-all /
    #: allgather): plan coordination + stream syncs across all devices.
    #: Asynchronous P2P copies (halos) don't pay this — which is why the
    #: FMM-FFT, with one collective instead of three, wins at small N
    #: ("fewer synchronizations", Section 6.1).
    collective_overhead: float = 30e-6

    def __post_init__(self):
        check_positive("num_devices", self.num_devices)
        if set(self.graph.nodes) != set(range(self.num_devices)):
            raise ParameterError(
                f"graph nodes {sorted(self.graph.nodes)} must be 0..{self.num_devices - 1}"
            )
        if (
            self.num_devices > 1
            and not nx.is_connected(self.graph)
            and self.graph.graph.get("fallback_link") is None
        ):
            # disconnected islands are fine when a fallback path (PCIe,
            # NIC) joins them; otherwise the graph is misbuilt
            raise ParameterError("interconnect graph must be connected")
        # an incomplete node_of would silently misclassify inter-node
        # pairs (None == None) — reject it before any message is priced
        routing.validate_node_cover(self.graph)

    def link(self, a: int, b: int) -> LinkSpec:
        """The direct link between devices ``a`` and ``b`` (must exist)."""
        if not self.graph.has_edge(a, b):
            raise ParameterError(f"no direct link between device {a} and {b}")
        return self.graph.edges[a, b]["link"]

    def pair_bandwidth(self, a: int, b: int) -> float:
        """Effective P2P bandwidth a->b, shortest-path routed."""
        return topo.pair_bandwidth(self.graph, a, b)

    def alltoall_bandwidth(self) -> float:
        """Effective per-device all-to-all injection bandwidth (byte/s)."""
        return topo.alltoall_effective_bandwidth(self.graph)

    def comm_latency(self) -> float:
        """Representative per-message latency (worst routed path)."""
        if self.num_devices == 1:
            return 0.0
        return topo.diameter_latency(self.graph)


#: Tesla K40c with the paper's achieved parameters.
K40C = DeviceSpec(
    name="K40c",
    gamma_f=2.8e12,
    gamma_d=1.2e12,
    beta=100e9,
    launch_latency=8e-6,
    batched_gemm_derate=0.55,  # Fig 1(a): cuBLAS 8.0 batched deficit on K40
    custom_kernel_derate=0.60,
)

#: Tesla P100 (SXM2) with the paper's achieved parameters.
P100 = DeviceSpec(
    name="P100",
    gamma_f=10e12,
    gamma_d=5e12,
    beta=360e9,
    launch_latency=8e-6,
    batched_gemm_derate=0.92,  # Fig 1(b): batched tracks GEMM closely
    custom_kernel_derate=0.60,
)

#: Achieved P2P bandwidths from Section 6's opening paragraph.
PCIE_K40_LINK = LinkSpec(bandwidth=13.2e9, latency=12e-6)
NVLINK_P100_LINK = LinkSpec(bandwidth=36e9, latency=8e-6)


def dual_k40c_pcie() -> ClusterSpec:
    """2x K40c over a PCIe switch (achieved 13.2 GB/s P2P)."""
    return ClusterSpec(
        device=K40C,
        num_devices=2,
        graph=topo.fully_connected(2, PCIE_K40_LINK),
        name="2xK40c, PCIe",
        collective_overhead=200e-6,  # PCIe collectives stage through host
    )


def dual_p100_nvlink() -> ClusterSpec:
    """2x P100 directly connected with NVLink (achieved 36 GB/s P2P)."""
    return ClusterSpec(
        device=P100,
        num_devices=2,
        graph=topo.fully_connected(2, NVLINK_P100_LINK),
        name="2xP100, NVLINK",
        collective_overhead=60e-6,
    )


def dgx1_p100() -> ClusterSpec:
    """8x P100 in the DGX-1 hybrid cube-mesh NVLink topology.

    Only 4 of the 7 peer GPUs are NVLink-adjacent; the rest are reached
    via two-hop routes that share link capacity, which is what makes the
    all-to-all scale "more poorly" at G=8 (Section 6.1) and widens the
    FMM-FFT's win to ~2.1x.
    """
    return ClusterSpec(
        device=P100,
        num_devices=8,
        graph=topo.dgx1_hybrid_cube_mesh(NVLINK_P100_LINK),
        name="8xP100, NVLINK",
        collective_overhead=240e-6,  # coordination scales with G
    )


def p100_nvlink_node(G: int) -> ClusterSpec:
    """A P100 node with G in {1, 2, 4, 8} (scaling studies)."""
    if G == 1:
        return ClusterSpec(
            device=P100, num_devices=1, graph=topo.fully_connected(1, NVLINK_P100_LINK),
            name="1xP100",
        )
    if G == 2:
        return dual_p100_nvlink()
    if G == 4:
        return ClusterSpec(
            device=P100,
            num_devices=4,
            graph=topo.nvlink_quad(NVLINK_P100_LINK),
            name="4xP100, NVLINK",
            collective_overhead=120e-6,
        )
    if G == 8:
        return dgx1_p100()
    raise ParameterError(f"p100_nvlink_node supports G in 1/2/4/8, got {G}")


_PRESETS = {
    "2xK40c": dual_k40c_pcie,
    "2xP100": dual_p100_nvlink,
    "8xP100": dgx1_p100,
}


def preset(name: str) -> ClusterSpec:
    """Look up a named testbed: '2xK40c', '2xP100', or '8xP100'."""
    try:
        return _PRESETS[name]()
    except KeyError:
        raise ParameterError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None


def scaled(spec: ClusterSpec, **kwargs) -> ClusterSpec:
    """Return a copy of ``spec`` with device fields overridden (ablations)."""
    return replace(spec, device=replace(spec.device, **kwargs))


def spec_fingerprint(spec: ClusterSpec) -> str:
    """Stable hash of everything about a machine that affects tuning.

    Device envelope, device count, every link's bandwidth/latency, the
    fallback path, the node partition, and the collective overhead —
    but *not* the display name, so a renamed but physically identical
    node reuses its wisdom.  Link values enter the hash, so a degraded
    topology (a fault injector's ``degraded_spec``) fingerprints
    differently from the healthy machine — parameters autotuned while
    links were throttled can never poison the healthy machine's wisdom,
    and vice versa.  The same key scopes the static plan verifier's
    verdict cache (:mod:`repro.analysis.plancheck`).
    """
    dev = spec.device
    fb = spec.graph.graph.get("fallback_link")
    node_of = spec.graph.graph.get("node_of")
    fab = routing.fabric_of(spec.graph)
    doc = {
        "device": [dev.name, dev.gamma_f, dev.gamma_d, dev.beta,
                   dev.launch_latency, dev.batched_gemm_derate,
                   dev.custom_kernel_derate],
        "G": spec.num_devices,
        "edges": sorted(
            (min(a, b), max(a, b), d["link"].bandwidth, d["link"].latency)
            for a, b, d in spec.graph.edges(data=True)
        ),
        "fallback": None if fb is None else [fb.bandwidth, fb.latency],
        "node_of": (None if node_of is None
                    else sorted((int(g), int(n)) for g, n in node_of.items())),
        "mpi_latency": routing.mpi_latency(spec.graph),
        "fabric": (None if fab is None
                   else [fab.nic.bandwidth, fab.nic.latency, fab.radix,
                         fab.oversubscription, fab.switch_latency]),
        "collective_overhead": spec.collective_overhead,
    }
    blob = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]
