"""Virtual multi-GPU cluster: the hardware substrate of the reproduction.

The paper measures on 2xK40c (PCIe) and 2x/8xP100 (NVLink DGX-1).  This
package replaces that hardware with an event-driven simulator:

- :mod:`repro.machine.spec` — device/link/cluster specifications with the
  paper's *achieved* architecture parameters (Section 5.4 / Section 6).
- :mod:`repro.machine.topology` — networkx interconnect graphs (PCIe
  switch, NVLink pair, DGX-1 hybrid cube-mesh) and an all-to-all
  effective-bandwidth analysis based on shortest-path link loading.
- :mod:`repro.machine.routing` / :mod:`multinode` — routed multi-node
  fabrics: NVLink islands joined by a two-level fat tree
  (:class:`~repro.machine.routing.Fabric`) with per-hop latency and
  per-interface (NIC / leaf-uplink) contention.
- :mod:`repro.machine.roofline` — per-op cost via the paper's Eq. (3),
  ``T = W / min(gamma, beta * W / D)``, plus the GEMM/BatchedGEMM
  performance curves of Figure 1.
- :mod:`repro.machine.stream` / :mod:`device` / :mod:`cluster` — CUDA-like
  streams and events, per-device memory, and the
  :class:`~repro.machine.cluster.VirtualCluster` execution engine that
  runs *real NumPy computations* while accumulating *simulated time*.
- :mod:`repro.machine.ledger` / :mod:`trace` — per-op records, aggregate
  summaries, and nvprof-style ASCII profiles (Figure 2).

Every distributed algorithm in the library is written against this
engine, in the same structure (stages, streams, halos, all-to-alls) as
the paper's CUDA implementation.
"""

from __future__ import annotations

from repro.machine.spec import (
    DeviceSpec,
    LinkSpec,
    ClusterSpec,
    K40C,
    P100,
    dual_k40c_pcie,
    dual_p100_nvlink,
    p100_nvlink_node,
    dgx1_p100,
    preset,
)
from repro.machine.cluster import VirtualCluster
from repro.machine.stream import Event, Stream
from repro.machine.ledger import Ledger, OpRecord
from repro.machine.trace import ExecutionTrace
from repro.machine.roofline import op_time, gemm_performance
from repro.machine.topology import alltoall_effective_bandwidth
from repro.machine.routing import Fabric, route_hops, trace_route
from repro.machine.multinode import multinode_p100, routed_multinode_p100

__all__ = [
    "ClusterSpec",
    "DeviceSpec",
    "Event",
    "ExecutionTrace",
    "Fabric",
    "K40C",
    "Ledger",
    "LinkSpec",
    "OpRecord",
    "P100",
    "Stream",
    "VirtualCluster",
    "alltoall_effective_bandwidth",
    "dgx1_p100",
    "dual_k40c_pcie",
    "dual_p100_nvlink",
    "gemm_performance",
    "multinode_p100",
    "op_time",
    "p100_nvlink_node",
    "preset",
    "route_hops",
    "routed_multinode_p100",
    "trace_route",
]
