"""Interconnect topology graphs and all-to-all bandwidth analysis.

Devices are nodes; NVLink/PCIe links are edges carrying a
:class:`~repro.machine.spec.LinkSpec`.  Links are full duplex and each
connected pair owns its edge exclusively (NVLink point-to-point), so a
device can drive all of its links simultaneously.

Pairs *without* a direct edge cannot do NVLink P2P at all — on the real
DGX-1 (P100) such traffic falls back to the shared PCIe/QPI path.  The
graph stores that fallback as ``graph.graph['fallback_link']``; each
device serializes all of its fallback traffic through that one interface.
This asymmetry is what makes the 8-GPU all-to-all scale "more poorly"
(Section 6.1): 4 of 7 peers are NVLink-direct, 3 ride shared PCIe.

Two derived quantities drive the simulator's communication costs:

- **pair bandwidth** — direct edge bandwidth, or the fallback bandwidth.
- **all-to-all effective bandwidth** — per-device injection rate for the
  personalized all-to-all (the FFT transpose).  With per-pair message
  size ``s``: the NVLink part finishes in ``s / min_edge_bw`` (all edges
  in parallel), the fallback part in ``k * s / fallback_bw`` for ``k``
  non-adjacent peers, and the collective takes the max of the two.
"""

from __future__ import annotations

import itertools
from collections import Counter

import networkx as nx

from repro.machine import routing
from repro.util.validation import ParameterError

#: Shared PCIe/QPI path used when two GPUs have no NVLink edge
#: (approximate achieved DGX-1 cross-quad PCIe bandwidth).
DEFAULT_FALLBACK_BANDWIDTH = 10e9
DEFAULT_FALLBACK_LATENCY = 15e-6

#: Fraction of peak P2P bandwidth a strided, chunked personalized
#: all-to-all achieves in practice (pack granularity, protocol overhead,
#: simultaneous bidirectional traffic).  Calibrated so the simulated
#: cuFFTXT-style transposes reproduce the paper's measured speedup bands.
ALLTOALL_EFFICIENCY = 0.55


class _FallbackLink:
    """Minimal LinkSpec-alike for the shared PCIe fallback path."""

    def __init__(self, bandwidth: float, latency: float):
        self.bandwidth = bandwidth
        self.latency = latency


def _with_fallback(g: nx.Graph, fallback) -> nx.Graph:
    g.graph["fallback_link"] = fallback or _FallbackLink(
        DEFAULT_FALLBACK_BANDWIDTH, DEFAULT_FALLBACK_LATENCY
    )
    return g


def fully_connected(n: int, link, fallback=None) -> nx.Graph:
    """All-pairs direct links (PCIe switch pair, NVLink pair/quad)."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for a, b in itertools.combinations(range(n), 2):
        g.add_edge(a, b, link=link)
    return _with_fallback(g, fallback)


def ring(n: int, link, fallback=None) -> nx.Graph:
    """A ring of n devices."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for a in range(n):
        g.add_edge(a, (a + 1) % n, link=link)
    return _with_fallback(g, fallback)


def nvlink_quad(link, fallback=None) -> nx.Graph:
    """4 GPUs, fully NVLink-connected (half a DGX-1 board)."""
    return fully_connected(4, link, fallback)


def dgx1_hybrid_cube_mesh(link, fallback=None) -> nx.Graph:
    """The DGX-1 (P100) hybrid cube-mesh: 8 GPUs, 4 NVLinks each.

    Two quads {0..3} and {4..7}; within each quad a ring plus one
    diagonal, and a "cube" edge pairing the quads: degree exactly 4,
    so exactly 4 of each GPU's 7 peers are NVLink-direct and the other
    3 use the PCIe fallback.
    """
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3),   # quad 0
        (4, 5), (5, 6), (6, 7), (7, 4), (4, 6), (5, 7),   # quad 1
        (0, 4), (1, 5), (2, 6), (3, 7),                    # cube edges
    ]
    g = nx.Graph()
    g.add_nodes_from(range(8))
    for a, b in edges:
        g.add_edge(a, b, link=link)
    # NVLink budget check: 4 ports per P100 — ring(2) + diagonal(1) + cube(1).
    assert all(d == 4 for _, d in g.degree()), "hybrid cube-mesh must be 4-regular"
    return _with_fallback(g, fallback)


def fallback_link(graph: nx.Graph):
    """The shared fallback path descriptor for non-adjacent pairs."""
    fb = graph.graph.get("fallback_link")
    if fb is None:
        raise ParameterError("graph has no fallback_link attribute")
    return fb


def _internode(graph: nx.Graph, a: int, b: int) -> bool:
    """True when both endpoints are mapped to *different* nodes."""
    node_of = graph.graph.get("node_of")
    if node_of is None:
        return False
    na, nb = node_of.get(a), node_of.get(b)
    return na is not None and nb is not None and na != nb


def pair_bandwidth(graph: nx.Graph, a: int, b: int) -> float:
    """Effective bandwidth for a lone a->b transfer."""
    if a == b:
        raise ParameterError("pair_bandwidth requires distinct devices")
    if graph.has_edge(a, b):
        return graph.edges[a, b]["link"].bandwidth
    if _internode(graph, a, b):
        return routing.inter_bandwidth(graph, a, b)
    return fallback_link(graph).bandwidth


def pair_latency(graph: nx.Graph, a: int, b: int) -> float:
    """Per-message latency for an a->b transfer.

    Inter-node pairs pay the routed path: MPI software overhead plus
    each hop's traversal latency (NIC, switches) accumulated along the
    route — not just the NIC's wire latency.
    """
    if graph.has_edge(a, b):
        return graph.edges[a, b]["link"].latency
    if _internode(graph, a, b):
        return routing.inter_latency(graph, a, b)
    return fallback_link(graph).latency


def link_class(graph: nx.Graph, a: int, b: int) -> str:
    """Coarse label for the path an a->b message crosses.

    ``"self"`` (no wire), ``"inter-node"`` (endpoints on different
    nodes of a multi-node graph, same leaf switch), ``"inter-node-far"``
    (crossing the fabric spine), ``"direct"`` (a dedicated edge), or
    ``"fallback"`` (the shared fallback interface).  This is the
    ``link_class`` label on the ``comm.bytes`` telemetry series —
    bounded cardinality, unlike per-pair labels.

    A ``node_of`` map that omits either endpoint is an error: silently
    comparing ``None == None`` would misclassify an inter-node pair as
    ``direct``/``fallback`` and misprice its traffic.
    """
    if a == b:
        return "self"
    node_of = graph.graph.get("node_of")
    if node_of is not None:
        missing = [d for d in (a, b) if d not in node_of]
        if missing:
            raise ParameterError(
                f"node_of must cover every device; missing {missing}"
            )
        if node_of[a] != node_of[b]:
            if routing.cross_leaf(graph, a, b):
                return "inter-node-far"
            return "inter-node"
    return "direct" if graph.has_edge(a, b) else "fallback"


def alltoall_effective_bandwidth(graph: nx.Graph, efficiency: float = ALLTOALL_EFFICIENCY) -> float:
    """Per-device effective injection bandwidth for personalized all-to-all.

    Each device sends one message of unit size to every peer: direct
    peers over dedicated full-duplex edges in parallel, non-adjacent
    peers serialized through the shared fallback interface.  Returns
    ``efficiency * (G - 1) / completion_time`` for unit messages, where
    ``efficiency`` accounts for pack granularity and protocol overhead
    of a real strided all-to-all.
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise ParameterError("all-to-all needs at least 2 devices")
    if not 0.0 < efficiency <= 1.0:
        raise ParameterError(f"efficiency must be in (0, 1], got {efficiency!r}")
    nvlink_time = 0.0
    if graph.number_of_edges():
        nvlink_time = 1.0 / min(
            d["link"].bandwidth for _, _, d in graph.edges(data=True)
        )
    fb = fallback_link(graph)
    node_of = graph.graph.get("node_of")
    if node_of is not None:
        # Multi-node: all off-node traffic of a node's devices serializes
        # through that node's single NIC (both directions full duplex).
        per_node = Counter(node_of.values())
        worst_fallback = 0.0
        for node, g_local in per_node.items():
            off_node_pairs = g_local * (n - g_local)
            worst_fallback = max(worst_fallback, off_node_pairs / fb.bandwidth)
        fab = routing.fabric_of(graph)
        if fab is not None:
            # Fabric: a leaf's cross-leaf traffic serializes through its
            # (possibly oversubscribed) aggregate uplink capacity.
            leaf_devs: Counter = Counter()
            for node, g_local in per_node.items():
                leaf_devs[fab.leaf_of(node)] += g_local
            up = fab.uplink_bandwidth
            for leaf, d_local in leaf_devs.items():
                cross_pairs = d_local * (n - d_local)
                worst_fallback = max(worst_fallback, cross_pairs / up)
    else:
        worst_fallback = 0.0
        for a in graph.nodes:
            k = (n - 1) - graph.degree(a)
            worst_fallback = max(worst_fallback, k / fb.bandwidth)
    unit_time = max(nvlink_time, worst_fallback)
    return efficiency * (n - 1) / unit_time


def diameter_latency(graph: nx.Graph) -> float:
    """Worst-case single-message latency across the topology.

    Scans per link *class* instead of all O(n^2) pairs: the worst
    direct edge (one edge pass), the shared fallback when any same-node
    pair lacks an edge, and the worst routed inter-node path — whose
    per-hop latencies are *summed* along the route (NIC + switches +
    MPI overhead), not approximated by the largest single hop.
    """
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    worst = max(
        (d["link"].latency for _, _, d in graph.edges(data=True)), default=0.0
    )
    node_of = graph.graph.get("node_of")
    if node_of is None:
        if any(graph.degree(a) < n - 1 for a in graph.nodes):
            worst = max(worst, fallback_link(graph).latency)
        return worst
    # same-node pairs missing a direct edge ride the shared fallback
    per_node = Counter(node_of.values())
    intra_edges: Counter = Counter()
    for a, b in graph.edges():
        if node_of.get(a) == node_of.get(b):
            intra_edges[node_of.get(a)] += 1
    if any(intra_edges[nd] < g * (g - 1) // 2 for nd, g in per_node.items()):
        worst = max(worst, fallback_link(graph).latency)
    if len(per_node) > 1:
        worst = max(worst, routing.worst_route_latency(graph))
    return worst
