"""The virtual cluster execution engine.

:class:`VirtualCluster` is what every distributed algorithm in the
library runs on.  It provides:

- ``launch`` — enqueue a compute kernel on a device stream; simulated
  duration comes from the roofline (Eq. 3) + launch latency, and the
  optional ``fn`` performs the *real* NumPy computation on the device's
  memory dict.
- ``sendrecv`` — point-to-point transfer occupying both endpoints' comm
  streams (halo exchanges).
- ``alltoall`` / ``allgather`` — the legacy flat ("bulk") collectives
  costed with the topology's effective bandwidth; ``alltoall`` supports
  chunking so transposes can pipeline against local compute, as cuFFTXT
  does.  Pipelines issue collectives through :mod:`repro.comm`, which
  either delegates here (``algorithm="bulk"``) or decomposes them into
  explicit per-round ``sendrecv`` message plans.
- events/streams — explicit dependencies, so overlap is expressed the
  same way the paper's CUDA implementation expresses it.

Orchestration is sequential Python: the coordinator issues ops in a
valid serialization order, ``fn`` closures run immediately (so data is
always ready), and the event algebra reconstructs what the *parallel*
timeline would have been.

Every op additionally declares its buffer read/write sets (``reads`` /
``writes``, device-local buffer names; sendrecv reads on the source and
writes on the destination) and records which events it waited on.  The
declarations cost nothing at simulation time but let
:mod:`repro.analysis.hazards` prove the reconstructed parallel timeline
race-free — or pinpoint the missing dependency when it is not.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.machine.device import Device
from repro.machine.ledger import Ledger, OpRecord
from repro.machine.roofline import op_time
from repro.machine.spec import ClusterSpec
from repro.machine.stream import Event
from repro.machine.trace import ExecutionTrace
from repro.util.validation import ParameterError


class VirtualCluster:
    """G simulated devices wired by an interconnect graph.

    Parameters
    ----------
    spec:
        The node description (devices + topology).
    execute:
        True runs real NumPy compute alongside the timing simulation;
        False records timing only (shape-determined), enabling sweeps at
        sizes where Python-side numerics would be prohibitive.
    faults:
        Optional :class:`~repro.faults.FaultInjector`.  When installed,
        stragglers/degraded links stretch recorded op durations and
        :mod:`repro.comm` consults it for per-attempt outcomes (retrying
        under ``retry``).  With no injector — or an injector that never
        fires — every duration is bit-identical to the fault-free path.
    retry:
        Optional :class:`~repro.comm.retry.RetryPolicy` governing the
        comm layer's timeout/backoff/budget.  Defaults to
        ``DEFAULT_RETRY`` whenever ``faults`` is installed.
    telemetry:
        Optional :class:`~repro.obs.telemetry.MetricsRegistry`.  When
        installed, the comm layer emits ``comm.bytes`` /
        ``comm.retry`` / ``comm.measured_vs_model`` series (stamped
        with simulated time).  None (the default) keeps the bare
        cluster's hot path free of any instrumentation.
    """

    def __init__(self, spec: ClusterSpec, execute: bool = True,
                 faults=None, retry=None, telemetry=None):
        self.spec = spec
        self.execute = execute
        if faults is not None and faults.spec.num_devices != spec.num_devices:
            raise ParameterError(
                f"fault injector built for {faults.spec.num_devices} devices, "
                f"cluster has {spec.num_devices}"
            )
        if retry is not None and faults is None:
            raise ParameterError("retry policy given without a fault injector")
        self.faults = faults
        if faults is not None and retry is None:
            from repro.comm.retry import DEFAULT_RETRY

            retry = DEFAULT_RETRY
        self.retry = retry
        #: live metrics registry, or None (serve installs one)
        self.telemetry = telemetry
        self.devices = [
            Device(g, spec.device, execute=execute) for g in range(spec.num_devices)
        ]
        self.ledger = Ledger()
        self._a2a_bw = spec.alltoall_bandwidth() if spec.num_devices > 1 else None
        self._regions: list[str] = []
        #: one entry per repro.comm collective call (algorithm, payload,
        #: predicted time) — joined against the ledger by obs.metrics
        self.comm_log: list[dict] = []

    # -- basic accessors ----------------------------------------------

    @property
    def G(self) -> int:
        return self.spec.num_devices

    def dev(self, g: int) -> Device:
        return self.devices[g]

    def wall_time(self) -> float:
        """Latest clock across all streams of all devices."""
        return max(d.max_clock() for d in self.devices)

    def reset_time(self) -> None:
        """Zero all stream clocks and clear the ledger (memory persists).

        An installed fault injector is reset too (reseeded, online
        transient events dropped), so run → reset → run replays
        bit-identically.
        """
        for d in self.devices:
            d.reset_time()
        self.ledger = Ledger()
        if self.faults is not None:
            self.faults.reset()

    def trace(self) -> ExecutionTrace:
        return ExecutionTrace(self.ledger, self.spec)

    def sanitize(self) -> None:
        """Run the hazard sanitizer over the ledger; raise on any finding.

        Strict mode for tests and ``--sanitize`` CLI runs: raises
        :class:`~repro.analysis.hazards.HazardError` if the recorded
        schedule has data hazards or structural defects.
        """
        from repro.analysis.hazards import find_hazards

        find_hazards(self.ledger).raise_if_any()

    # -- region annotation --------------------------------------------

    @property
    def region_path(self) -> str:
        """The '/'-joined path of the active region scopes ('' if none)."""
        return "/".join(self._regions)

    @contextmanager
    def region(self, name: str) -> Iterator["VirtualCluster"]:
        """Scope ops under a pipeline-stage region (nestable).

        Every op issued inside the ``with`` block is stamped with the
        full region path, e.g.::

            with cl.region("fmmfft"):
                with cl.region("fmm"):
                    cl.launch(...)        # region == "fmmfft/fmm"

        Regions are telemetry only — they never affect timing, events,
        or the hazard analysis.  The metrics engine in :mod:`repro.obs`
        rolls ledger records up by this path.
        """
        if not name or "/" in name:
            raise ParameterError(
                f"region name must be a non-empty path segment, got {name!r}"
            )
        self._regions.append(name)
        try:
            yield self
        finally:
            self._regions.pop()

    # -- dependency bookkeeping ---------------------------------------

    @staticmethod
    def _qualify(g: int, keys: Sequence[str]) -> tuple:
        """Tag device-local buffer names with their device id."""
        return tuple((g, k) for k in keys)

    @staticmethod
    def _wait_uids(after: Sequence[Event]) -> tuple:
        """Uids of the producing ops behind a dependency list."""
        return tuple(ev.op for ev in after if ev is not None and ev.op >= 0)

    # -- compute -------------------------------------------------------

    def launch(
        self,
        g: int,
        name: str,
        kind: str,
        flops: float,
        mops: float,
        dtype,
        stream: str = "compute",
        after: Sequence[Event] = (),
        fn: Callable[["VirtualCluster"], None] | None = None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
    ) -> Event:
        """Enqueue one kernel on device ``g``.

        Returns the completion :class:`Event`.  ``fn(cluster)`` runs
        immediately when executing; its cost is *not* measured — the
        simulated duration is the roofline time plus launch latency.
        ``reads``/``writes`` declare the device-local buffers the kernel
        touches, for the hazard sanitizer.
        """
        dev = self.devices[g]
        st = dev.stream(stream)
        start = st.ready_after(*after)
        dur = dev.spec.launch_latency + op_time(dev.spec, flops, mops, dtype, kind=kind)
        if self.faults is not None:
            s = self.faults.compute_scale(g, start)
            if s != 1.0:
                dur *= s
        uid = self.ledger.append(
            OpRecord(
                device=g, stream=stream, kind=kind, name=name,
                start=start, duration=dur, flops=flops, mops=mops,
                reads=self._qualify(g, reads),
                writes=self._qualify(g, writes),
                waits=self._wait_uids(after),
                region=self.region_path,
            )
        )
        if fn is not None and self.execute:
            fn(self)
        return st.advance_to(start + dur, op=uid)

    def host_action(
        self, fn: Callable[["VirtualCluster"], None] | None
    ) -> None:
        """Run a host-side data action with no ledger or timing footprint.

        For execute-mode data movement that is *not* an operation the
        schedule models (e.g. the FMM's halo stash, which mirrors data
        the comm layer is separately charged for).  Unlike
        :meth:`host_op` nothing is appended to the ledger, so existing
        ledgers and fingerprints are unchanged.  Routing such actions
        through this hook (instead of bare ``if cl.execute:`` blocks)
        is what lets the :mod:`repro.ir` capture layer see them and
        re-run them on replay.
        """
        if fn is not None and self.execute:
            fn(self)

    def host_op(
        self,
        g: int,
        name: str,
        fn: Callable[["VirtualCluster"], None] | None = None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
    ) -> Event:
        """Zero-cost bookkeeping op (plan setup, pointer swaps)."""
        dev = self.devices[g]
        st = dev.stream("compute")
        uid = self.ledger.append(
            OpRecord(device=g, stream="compute", kind="host", name=name,
                     start=st.clock, duration=0.0,
                     reads=self._qualify(g, reads),
                     writes=self._qualify(g, writes),
                     region=self.region_path)
        )
        if fn is not None and self.execute:
            fn(self)
        return Event(st.clock, name, op=uid)

    # -- point-to-point communication -----------------------------------

    def sendrecv(
        self,
        src: int,
        dst: int,
        nbytes: float,
        name: str,
        after: Sequence[Event] = (),
        fn: Callable[["VirtualCluster"], None] | None = None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
        bandwidth: float | None = None,
        latency: float | None = None,
    ) -> Event:
        """P2P transfer src -> dst on both comm streams.

        ``reads`` are buffers on the source device, ``writes`` buffers on
        the destination.  ``bandwidth``/``latency`` override the spec's
        pair values — :mod:`repro.comm` uses them to charge per-message
        link contention and per-link latency; left at ``None`` the
        transfer is costed exactly as before (worst-case link latency +
        full pair bandwidth).  ``comm_bytes`` records the full message
        size once, on the source device.

        A self-send (``src == dst``, including every G=1 transfer) is a
        local copy: it costs nothing and moves no interconnect bytes, but
        still appends a zero-duration ledger record carrying its
        read/write declares so the hazard sanitizer and G=1 traces see
        it (``fn`` still runs, so G=1 degenerates correctly).
        """
        if src == dst or self.G == 1:
            if fn is not None and self.execute:
                fn(self)
            s_st = self.devices[src].stream("comm.tx")
            d_st = self.devices[src].stream("comm.rx")
            start = max(s_st.ready_after(*after), d_st.ready_after())
            uid = self.ledger.append(
                OpRecord(device=src, stream="comm", kind="comm", name=name,
                         start=start, duration=0.0, comm_bytes=0.0, peer=src,
                         reads=self._qualify(src, reads),
                         writes=self._qualify(src, writes),
                         waits=self._wait_uids(after),
                         region=self.region_path)
            )
            s_st.advance_to(start, op=uid)
            return d_st.advance_to(start, op=uid)
        # Links are full duplex: the sender's tx engine and the receiver's
        # rx engine are occupied, so a ring shift (every device one send +
        # one receive) proceeds fully in parallel, as on real NVLink.
        s_st = self.devices[src].stream("comm.tx")
        d_st = self.devices[dst].stream("comm.rx")
        start = max(s_st.ready_after(*after), d_st.ready_after(*after))
        link_lat = self.spec.comm_latency() if latency is None else latency
        bw = self.spec.pair_bandwidth(src, dst) if bandwidth is None else bandwidth
        dur = link_lat + nbytes / bw
        if self.faults is not None:
            s = self.faults.comm_scale(src, dst, start)
            if s != 1.0:
                dur *= s
        uid = self.ledger.append(
            OpRecord(device=src, stream="comm", kind="comm", name=name,
                     start=start, duration=dur, comm_bytes=nbytes, peer=dst,
                     reads=self._qualify(src, reads),
                     writes=self._qualify(dst, writes),
                     waits=self._wait_uids(after),
                     region=self.region_path)
        )
        if fn is not None and self.execute:
            fn(self)
        s_st.advance_to(start + dur, op=uid)
        return d_st.advance_to(start + dur, op=uid)

    # -- collectives -----------------------------------------------------

    def _collective(
        self,
        name: str,
        bytes_per_device: float,
        after: Sequence[Event],
        fn: Callable[["VirtualCluster"], None] | None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
        duration: float | None = None,
    ) -> list[Event]:
        """Shared costing for alltoall/allgather (the ``bulk`` model).

        All devices' comm streams synchronize at the start (it is a
        collective), proceed at the topology's effective all-to-all
        bandwidth, and finish together.  ``reads``/``writes`` are
        device-local names applied per participating device.

        Byte accounting convention: each of the G records carries
        ``comm_bytes = bytes_per_device`` — the payload *that device*
        injects — so the ledger total for a collective is
        ``G * bytes_per_device``, symmetric with p2p ``sendrecv`` where
        the single record carries the full message the source injects.
        Summing ``comm_bytes`` over any record set therefore always
        yields "bytes injected by those devices", never double-counted.

        Pipelines should not call this directly: :mod:`repro.comm`
        wraps it (``algorithm="bulk"``) alongside the per-round message
        plans, and the ``raw-comm`` lint rule enforces that boundary.

        ``duration`` overrides the modelled cost — the retry layer uses
        it to charge a timed-out failed attempt (the retry timeout, not
        the transfer time) while keeping collective coherence: all G
        records share one name/start/duration.
        """
        if self.G == 1:
            if fn is not None and self.execute:
                fn(self)
            st = self.devices[0].stream("comm.tx")
            return [Event(st.ready_after(*after), name)]
        # A collective saturates both directions on every device.
        tx = [d.stream("comm.tx") for d in self.devices]
        rx = [d.stream("comm.rx") for d in self.devices]
        start = max(st.ready_after(*after) for st in tx + rx)
        # The G-1 per-peer messages ride distinct links concurrently, so
        # one message latency is paid per collective call, not per peer —
        # plus the host-side synchronization cost of coordinating it.
        lat = self.spec.comm_latency() + self.spec.collective_overhead
        if duration is not None:
            dur = duration
        else:
            dur = lat + bytes_per_device / self._a2a_bw
            if self.faults is not None:
                s = self.faults.collective_scale(start)
                if s != 1.0:
                    dur *= s
        waits = self._wait_uids(after)
        uids = [
            self.ledger.append(
                OpRecord(device=g, stream="comm", kind="comm", name=name,
                         start=start, duration=dur, comm_bytes=bytes_per_device,
                         reads=self._qualify(g, reads),
                         writes=self._qualify(g, writes),
                         waits=waits,
                         region=self.region_path)
            )
            for g in range(self.G)
        ]
        if fn is not None and self.execute:
            fn(self)
        out = []
        for g in range(self.G):
            tx[g].advance_to(start + dur, op=uids[g])
            out.append(rx[g].advance_to(start + dur, op=uids[g]))
        return out

    def alltoall(
        self,
        bytes_sent_per_device: float,
        name: str,
        after: Sequence[Event] = (),
        fn: Callable[["VirtualCluster"], None] | None = None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
    ) -> list[Event]:
        """Personalized all-to-all: each device sends ``bytes_sent_per_device``
        total, split evenly over the other G-1 devices.

        Returns one completion event per device.
        """
        return self._collective(name, bytes_sent_per_device, after, fn,
                                reads=reads, writes=writes)

    def allgather(
        self,
        bytes_per_device: float,
        name: str,
        after: Sequence[Event] = (),
        fn: Callable[["VirtualCluster"], None] | None = None,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
    ) -> list[Event]:
        """Allgather: each device contributes ``bytes_per_device`` and ends
        with everyone's contribution.  Receive-side volume dominates:
        ``(G-1) * bytes_per_device`` per device at all-to-all bandwidth.
        """
        return self._collective(
            name, (self.G - 1) * bytes_per_device, after, fn,
            reads=reads, writes=writes,
        )

    def barrier(self) -> Event:
        """Synchronize every stream on every device to the global max."""
        t = self.wall_time()
        for d in self.devices:
            for st in d.streams.values():
                st.advance_to(t)
        return Event(t, "barrier")

    # -- memory helpers ---------------------------------------------------

    def scatter_blocks(self, key: str, array: np.ndarray) -> None:
        """Block-partition a 1D array over devices into buffer ``key``.

        Used to stage input: device g receives the contiguous slice
        ``array[g*n/G : (g+1)*n/G]``.  Requires execute mode.
        """
        n = array.shape[0]
        if n % self.G != 0:
            raise ParameterError(f"array length {n} not divisible by G={self.G}")
        blk = n // self.G
        for g, dev in enumerate(self.devices):
            dev[key] = array[g * blk : (g + 1) * blk].copy()

    def gather_blocks(self, key: str) -> np.ndarray:
        """Concatenate buffer ``key`` from all devices (inverse of scatter)."""
        return np.concatenate([dev[key] for dev in self.devices])

    def __repr__(self) -> str:  # pragma: no cover
        mode = "execute" if self.execute else "timing-only"
        return f"VirtualCluster({self.spec.name}, G={self.G}, {mode})"
