"""A simulated device: streams plus a named-array memory space.

The memory model is deliberately simple — a dict of named NumPy arrays —
because the algorithms address buffers symbolically ('S', 'M10', 'T',
...) exactly as the paper's tensors are named.  In timing-only mode the
dict stays empty and only shapes are recorded, so N = 2^27 sweeps cost no
allocation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.machine.spec import DeviceSpec
from repro.machine.stream import Stream


class Device:
    """One simulated accelerator."""

    #: streams every device starts with; more are created on demand.
    #: comm.tx / comm.rx model the full-duplex DMA engines.
    DEFAULT_STREAMS = ("compute", "comm.tx", "comm.rx")

    def __init__(self, device_id: int, spec: DeviceSpec, execute: bool = True):
        self.id = device_id
        self.spec = spec
        self.execute = execute
        self.streams: dict[str, Stream] = {
            name: Stream(device_id, name) for name in self.DEFAULT_STREAMS
        }
        self.memory: dict[str, np.ndarray] = {}
        self.shapes: dict[str, tuple[tuple[int, ...], np.dtype]] = {}

    def stream(self, name: str) -> Stream:
        """Get (or lazily create) a stream by name."""
        if name not in self.streams:
            self.streams[name] = Stream(self.id, name)
        return self.streams[name]

    def alloc(self, key: str, shape: tuple[int, ...], dtype) -> None:
        """Declare a buffer; zero-filled when executing."""
        dt = np.dtype(dtype)
        self.shapes[key] = (tuple(shape), dt)
        if self.execute:
            self.memory[key] = np.zeros(shape, dtype=dt)

    def free(self, key: str) -> None:
        """Drop a buffer (both the metadata and any real array)."""
        self.shapes.pop(key, None)
        self.memory.pop(key, None)

    def __setitem__(self, key: str, value: np.ndarray) -> None:
        value = np.asarray(value)
        self.shapes[key] = (value.shape, value.dtype)
        if self.execute:
            self.memory[key] = value

    def __getitem__(self, key: str) -> np.ndarray:
        if not self.execute:
            raise RuntimeError(
                f"device {self.id} is in timing-only mode; buffer {key!r} has no data"
            )
        return self.memory[key]

    def __contains__(self, key: str) -> bool:
        return key in self.shapes

    def nbytes(self, key: str) -> int:
        """Size of a declared buffer in bytes."""
        shape, dt = self.shapes[key]
        n = 1
        for s in shape:
            n *= s
        return n * dt.itemsize

    def max_clock(self) -> float:
        return max(s.clock for s in self.streams.values())

    def reset_time(self) -> None:
        for s in self.streams.values():
            s.reset()
