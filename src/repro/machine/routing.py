"""Routed inter-node fabrics: per-hop paths, latency, and contention.

Flat multi-node graphs (:func:`repro.machine.multinode.multinode_graph`)
model the inter-node path as a single NIC-to-NIC hop.  Real clusters
route through a switched fabric — typically a two-level fat tree: every
node's NIC plugs into a leaf switch, leaves join through a spine layer,
and the leaf uplinks are often *oversubscribed* (less up-capacity than
down-capacity).  This module adds that fabric as a routing layer over
the existing topology graph:

- :class:`Fabric` describes the tree (NIC link, switch radix,
  oversubscription factor, per-switch traversal latency).  It lives in
  ``graph.graph["fabric"]``; graphs without one keep the flat model.
- :func:`next_hop` is the per-entity routing table (``node -> leaf ->
  spine -> leaf -> node``); :func:`trace_route` walks it hop by hop and
  returns the entity path, traceroute style.
- :func:`route_hops` prices the path: one :class:`Hop` per wire segment
  with its bandwidth and the contention-resource key it occupies.  The
  comm layer's round costing charges an inter-node message the minimum
  hop bandwidth after sharing, and :func:`inter_latency` accumulates the
  per-hop latencies plus the MPI software overhead stored in
  ``graph.graph["mpi_latency"]``.

Contention keys are per *shared interface*, not per device: every
message leaving a node occupies ``("nic-tx", node)`` — all of a node's
devices serialize through one NIC — and every cross-leaf message
occupies its leaf's aggregate ``("up", leaf)`` / ``("down", leaf)``
capacity, which is where oversubscription bites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.util.validation import ParameterError, check_positive


class Hop(NamedTuple):
    """One wire segment of a routed path.

    ``key`` is the contention resource the segment occupies (shared
    equally by same-direction messages within a round), ``bandwidth``
    the segment's capacity, ``latency`` its traversal overhead.
    """

    key: tuple
    bandwidth: float
    latency: float


@dataclass(frozen=True)
class Fabric:
    """A two-level fat-tree inter-node fabric.

    Attributes
    ----------
    nic:
        The node-to-leaf link (anything with ``bandwidth``/``latency``,
        e.g. a :class:`~repro.machine.spec.LinkSpec`).
    radix:
        Switch port count; half the ports face down (nodes), so a leaf
        serves ``radix // 2`` nodes.
    oversubscription:
        Ratio of a leaf's down-capacity to its up-capacity; 1.0 is a
        full-bisection (non-blocking) tree, 2.0 halves the uplinks.
    switch_latency:
        Per-switch traversal latency (cut-through forwarding).
    """

    nic: object
    radix: int = 36
    oversubscription: float = 1.0
    switch_latency: float = 0.5e-6

    def __post_init__(self):
        if self.radix < 2:
            raise ParameterError(f"radix must be >= 2, got {self.radix}")
        check_positive("oversubscription", self.oversubscription)
        check_positive("switch_latency", self.switch_latency)
        for attr in ("bandwidth", "latency"):
            if not hasattr(self.nic, attr):
                raise ParameterError(f"fabric nic needs a {attr!r} attribute")

    @property
    def nodes_per_leaf(self) -> int:
        return self.radix // 2

    @property
    def uplink_bandwidth(self) -> float:
        """Aggregate up/down capacity of one leaf switch."""
        return self.nodes_per_leaf * self.nic.bandwidth / self.oversubscription

    def leaf_of(self, node: int) -> int:
        return node // self.nodes_per_leaf


def fabric_of(graph):
    """The graph's :class:`Fabric`, or None for flat (single-hop) NICs."""
    return graph.graph.get("fabric")


def mpi_latency(graph) -> float:
    """MPI software latency charged on top of the wire for inter-node."""
    return float(graph.graph.get("mpi_latency", 0.0))


def validate_node_cover(graph) -> None:
    """Require ``node_of`` (when present) to map every device.

    A device missing from ``node_of`` would make every classification
    based on ``node_of.get(...)`` silently compare ``None == None`` and
    misprice inter-node traffic as intra-node — so incomplete maps are
    rejected at construction time instead.
    """
    node_of = graph.graph.get("node_of")
    if node_of is None:
        return
    missing = sorted(set(graph.nodes) - set(node_of))
    if missing:
        raise ParameterError(
            f"node_of must cover every device; missing {missing}"
        )


def _node_pair(graph, a: int, b: int) -> tuple[int, int]:
    node_of = graph.graph.get("node_of")
    if node_of is None:
        raise ParameterError("routing needs a multi-node graph (node_of)")
    try:
        return node_of[a], node_of[b]
    except KeyError as e:
        raise ParameterError(f"device {e.args[0]} missing from node_of") from None


def _nic_of(graph):
    fab = fabric_of(graph)
    if fab is not None:
        return fab.nic
    nic = graph.graph.get("fallback_link")
    if nic is None:
        raise ParameterError("multi-node graph has no NIC (fallback_link)")
    return nic


def next_hop(graph, entity: str, dst_node: int) -> str | None:
    """One routing-table lookup: the next entity toward ``dst_node``.

    Entities are ``"node:<i>"``, ``"leaf:<l>"``, ``"spine"`` — or
    ``"switch"``, the single implicit crossbar of a fabric-less
    multi-node graph.  Returns None once delivered.
    """
    kind, _, arg = entity.partition(":")
    fab = fabric_of(graph)
    if kind == "node":
        cur = int(arg)
        if cur == dst_node:
            return None
        return "switch" if fab is None else f"leaf:{fab.leaf_of(cur)}"
    if kind == "switch":
        return f"node:{dst_node}"
    if kind == "leaf":
        if fab.leaf_of(dst_node) == int(arg):
            return f"node:{dst_node}"
        return "spine"
    if kind == "spine":
        return f"leaf:{fab.leaf_of(dst_node)}"
    raise ParameterError(f"unknown routing entity {entity!r}")


def trace_route(graph, a: int, b: int) -> list[str]:
    """The entity path a -> b, walked hop by hop off the routing table."""
    na, nb = _node_pair(graph, a, b)
    path = [f"node:{na}"]
    for _ in range(8):  # a two-level tree routes in <= 4 hops
        nxt = next_hop(graph, path[-1], nb)
        if nxt is None:
            return path
        path.append(nxt)
    raise ParameterError(f"route {a}->{b} did not terminate: {path}")


def cross_leaf(graph, a: int, b: int) -> bool:
    """True when a->b crosses the spine (endpoints on different leaves)."""
    fab = fabric_of(graph)
    if fab is None:
        return False
    na, nb = _node_pair(graph, a, b)
    return fab.leaf_of(na) != fab.leaf_of(nb)


def route_hops(graph, a: int, b: int) -> list[Hop]:
    """Wire segments of the routed inter-node path a -> b.

    The NIC latency is charged on the injecting segment; every further
    segment charges the latency of the switch it exits.
    """
    na, nb = _node_pair(graph, a, b)
    if na == nb:
        raise ParameterError(f"devices {a} and {b} share node {na}; no route")
    fab = fabric_of(graph)
    nic = _nic_of(graph)
    sw = fab.switch_latency if fab is not None else 0.0
    path = trace_route(graph, a, b)
    hops: list[Hop] = []
    for prev, cur in zip(path, path[1:]):
        pk = prev.partition(":")[0]
        ck, _, carg = cur.partition(":")
        if pk == "node":
            hops.append(Hop(("nic-tx", na), nic.bandwidth, nic.latency))
        elif ck == "node":
            hops.append(Hop(("nic-rx", nb), nic.bandwidth, sw))
        elif ck == "spine":
            hops.append(Hop(("up", int(prev.partition(":")[2])),
                            fab.uplink_bandwidth, sw))
        else:  # spine -> leaf
            hops.append(Hop(("down", int(carg)), fab.uplink_bandwidth, sw))
    return hops


def inter_latency(graph, a: int, b: int) -> float:
    """Routed inter-node latency: MPI overhead + per-hop accumulation."""
    return mpi_latency(graph) + sum(h.latency for h in route_hops(graph, a, b))


def inter_bandwidth(graph, a: int, b: int) -> float:
    """Uncontended bandwidth of the routed path (bottleneck segment)."""
    return min(h.bandwidth for h in route_hops(graph, a, b))


def worst_route_latency(graph) -> float:
    """The worst routed inter-node latency, without enumerating pairs.

    Every inter-node route pays NIC + MPI; fabric routes add one switch
    traversal same-leaf and three cross-leaf — so the worst case is a
    per-class constant, not an O(n^2) scan.
    """
    node_of = graph.graph.get("node_of")
    if node_of is None or len(set(node_of.values())) < 2:
        return 0.0
    lat = mpi_latency(graph) + _nic_of(graph).latency
    fab = fabric_of(graph)
    if fab is not None:
        leaves = {fab.leaf_of(nd) for nd in set(node_of.values())}
        lat += fab.switch_latency * (3 if len(leaves) > 1 else 1)
    return lat
