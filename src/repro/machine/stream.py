"""CUDA-like streams and events for the simulated timeline.

A :class:`Stream` is an in-order queue on one device: each enqueued op
starts no earlier than the previous op on the same stream.  An
:class:`Event` marks a point in simulated time; ops on other streams (or
devices) can be made to wait on it, which is how the algorithms express
compute/communication overlap — e.g. Algorithm 1 launches S2M on the
compute stream while the S-halo exchange proceeds on the comm stream,
and S2T waits on the halo's event.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """A completion timestamp in the simulated timeline."""

    time: float
    label: str = ""

    @staticmethod
    def zero() -> "Event":
        return Event(0.0, "t0")


class Stream:
    """An in-order execution queue with a running clock."""

    def __init__(self, device: int, name: str):
        self.device = device
        self.name = name
        self.clock = 0.0

    def ready_after(self, *events: Event) -> float:
        """Earliest start respecting stream order and the given events."""
        t = self.clock
        for ev in events:
            if ev is not None and ev.time > t:
                t = ev.time
        return t

    def advance_to(self, t: float) -> Event:
        """Move the clock to ``t`` (monotone) and return an event for it."""
        if t < self.clock:
            raise ValueError(
                f"stream {self.name}@dev{self.device} cannot rewind "
                f"{self.clock} -> {t}"
            )
        self.clock = t
        return Event(t, f"{self.name}@dev{self.device}")

    def reset(self) -> None:
        self.clock = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stream(dev={self.device}, {self.name!r}, t={self.clock:.3e})"
