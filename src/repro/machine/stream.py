"""CUDA-like streams and events for the simulated timeline.

A :class:`Stream` is an in-order queue on one device: each enqueued op
starts no earlier than the previous op on the same stream.  An
:class:`Event` marks a point in simulated time; ops on other streams (or
devices) can be made to wait on it, which is how the algorithms express
compute/communication overlap — e.g. Algorithm 1 launches S2M on the
compute stream while the S-halo exchange proceeds on the comm stream,
and S2T waits on the halo's event.

Events additionally carry the ledger uid of the operation that produced
them (``op``), which is what lets the hazard sanitizer in
:mod:`repro.analysis.hazards` reconstruct the happens-before graph of a
run, and a ``wait_count`` recording how many times the event was
actually waited on (unwaited events are a smell: a declared dependency
nobody enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """A completion timestamp in the simulated timeline.

    Attributes
    ----------
    time:
        Simulated completion time, seconds.
    label:
        Debugging label (stream or stage name).
    op:
        Ledger uid of the producing :class:`~repro.machine.ledger.OpRecord`,
        or -1 for synthetic events (``Event.zero()``, barriers, G=1
        degenerate paths).  Excluded from equality/hash so pre-existing
        event comparisons keep their semantics.
    wait_count:
        Number of times a stream actually waited on this event.
        Mutable bookkeeping (via ``object.__setattr__``), excluded from
        equality/hash.
    """

    time: float
    label: str = ""
    op: int = field(default=-1, compare=False)
    wait_count: int = field(default=0, compare=False)

    @staticmethod
    def zero() -> "Event":
        return Event(0.0, "t0")

    def _mark_waited(self) -> None:
        object.__setattr__(self, "wait_count", self.wait_count + 1)


class Stream:
    """An in-order execution queue with a running clock."""

    def __init__(self, device: int, name: str):
        self.device = device
        self.name = name
        self.clock = 0.0

    def ready_after(self, *events: Event) -> float:
        """Earliest start respecting stream order and the given events.

        ``None`` entries are rejected: a silently skipped dependency is
        exactly the class of bug the hazard sanitizer exists to catch,
        so passing one is always a call-site error.
        """
        t = self.clock
        for ev in events:
            if ev is None:
                raise ValueError(
                    f"stream {self.name}@dev{self.device}: None event in "
                    "dependency list; filter absent dependencies at the "
                    "call site instead of passing None"
                )
            ev._mark_waited()
            if ev.time > t:
                t = ev.time
        return t

    def advance_to(self, t: float, op: int = -1) -> Event:
        """Move the clock to ``t`` (monotone) and return an event for it.

        ``op`` is the ledger uid of the operation completing at ``t``;
        it rides on the returned event so later waits are attributable.
        """
        if t < self.clock:
            raise ValueError(
                f"stream {self.name}@dev{self.device} cannot rewind "
                f"{self.clock} -> {t}"
            )
        self.clock = t
        return Event(t, f"{self.name}@dev{self.device}", op=op)

    def reset(self) -> None:
        self.clock = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Stream(dev={self.device}, {self.name!r}, t={self.clock:.3e})"
