"""Execution traces: nvprof-style ASCII profiles and stage summaries.

Figure 2 of the paper is an nvprof timeline showing yellow (comm) bars
and compute kernels per GPU.  :meth:`ExecutionTrace.render_profile`
reproduces that view: one row per (device, stream), time flowing left to
right, comm ops drawn with ``~`` and compute ops with per-stage letters.
"""

from __future__ import annotations

from collections import defaultdict

from repro.machine.ledger import Ledger
from repro.machine.spec import ClusterSpec
from repro.util.table import Table, format_bytes, format_count, format_time


class ExecutionTrace:
    """A read-only view over a run's ledger with rendering helpers."""

    def __init__(self, ledger: Ledger, spec: ClusterSpec):
        self.ledger = ledger
        self.spec = spec

    def wall_time(self) -> float:
        start, end = self.ledger.span()
        return end - start

    def hazards(self) -> "HazardReport":
        """Run the hazard sanitizer over this trace's ledger.

        Returns the :class:`~repro.analysis.hazards.HazardReport`; call
        ``.raise_if_any()`` on it for strict mode.  Imported lazily to
        keep the machine package free of an analysis dependency.
        """
        from repro.analysis.hazards import find_hazards

        return find_hazards(self.ledger)

    # -- rendering -------------------------------------------------------

    def render_profile(self, width: int = 100, devices: list[int] | None = None) -> str:
        """ASCII timeline: one row per (device, stream).

        Compute ops print the first letter of their stage name (uppercase),
        comm ops print ``~``.  Overlapping comm under compute — the
        paper's key qualitative observation — is directly visible as
        ``~`` runs aligned under kernel runs.
        """
        start, end = self.ledger.span()
        span = max(end - start, 1e-30)
        rows: dict[tuple[int, str], list] = defaultdict(list)
        for r in self.ledger:
            rows[(r.device, r.stream)].append(r)
        if devices is not None:
            rows = {k: v for k, v in rows.items() if k[0] in devices}
        lines = [f"profile: {self.spec.name}, wall {format_time(span)}"]
        legend: dict[str, str] = {}
        for (dev, stream) in sorted(rows):
            line = [" "] * width
            for r in rows[(dev, stream)]:
                c0 = int(width * (r.start - start) / span)
                c1 = int(width * (r.end - start) / span)
                c1 = max(c1, c0 + 1)
                ch = "~" if r.kind == "comm" else (r.name[:1].upper() or "?")
                if r.kind != "comm":
                    legend.setdefault(ch, r.name)
                for c in range(c0, min(c1, width)):
                    line[c] = ch
            lines.append(f"dev{dev}:{stream:<8}|{''.join(line)}|")
        if legend:
            lines.append(
                "legend: ~=comm  "
                + "  ".join(f"{ch}={name}" for ch, name in sorted(legend.items()))
            )
        return "\n".join(lines)

    def stage_summary(self) -> Table:
        """Per-stage totals: time, launches, flops, memory and comm bytes."""
        times = self.ledger.time_by_name()
        flops = self.ledger.flops_by_name()
        mops = self.ledger.mops_by_name()
        comm = self.ledger.comm_bytes_by_name()
        counts: dict[str, int] = defaultdict(int)
        for r in self.ledger:
            counts[r.name] += 1
        t = Table(["stage", "ops", "time", "flops", "mem bytes", "comm bytes"])
        for name in sorted(times, key=lambda n: -times[n]):
            t.add_row([
                name,
                counts[name],
                format_time(times[name]),
                format_count(flops.get(name, 0.0)),
                format_bytes(mops.get(name, 0.0)),
                format_bytes(comm.get(name, 0.0)),
            ])
        return t

    def to_chrome_trace(self) -> list[dict]:
        """Export the run as Chrome-tracing events (chrome://tracing,
        Perfetto).  One complete ('X') event per op: pid = device,
        tid = stream, microsecond timestamps."""
        events = []
        streams: dict[tuple[int, str], int] = {}
        for r in self.ledger:
            tid = streams.setdefault((r.device, r.stream), len(streams))
            events.append({
                "name": r.name,
                "cat": r.kind,
                "ph": "X",
                "pid": r.device,
                "tid": tid,
                "ts": r.start * 1e6,
                "dur": r.duration * 1e6,
                "args": {
                    "flops": r.flops,
                    "mops": r.mops,
                    "comm_bytes": r.comm_bytes,
                    "stream": r.stream,
                },
            })
        return events

    def save_chrome_trace(self, path) -> None:
        """Write a ``chrome://tracing``-loadable JSON file."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps({"traceEvents": self.to_chrome_trace()}))

    def to_perfetto(self) -> dict:
        """Export via the richer :mod:`repro.obs.perfetto` pipeline:
        named tracks, flow arrows for dependency edges, and counter
        tracks.  Lazy import — obs depends on machine, not vice versa."""
        from repro.obs.perfetto import build_trace

        return build_trace(self.ledger, self.spec)

    def save_perfetto(self, path) -> None:
        """Write a Perfetto-UI-loadable JSON file (rich exporter)."""
        from repro.obs.perfetto import save_trace

        save_trace(path, self.ledger, self.spec)

    def compute_time(self, device: int | None = None) -> float:
        """Total duration of non-comm ops (summed, not unioned)."""
        return sum(
            r.duration for r in self.ledger.records(device=device) if r.kind != "comm"
        )

    def comm_time(self, device: int | None = None) -> float:
        """Total duration of comm ops (summed, not unioned)."""
        return sum(
            r.duration for r in self.ledger.records(device=device) if r.kind == "comm"
        )
