"""Multi-node clusters — the paper's Section 7 extension.

"Extending the results to multiple nodes is necessary ... the
performance on multiple nodes is very likely to improve relative
performance and energy efficiency due to higher internode communication
costs."

A multi-node spec groups devices into nodes: intra-node pairs keep
their NVLink edges; inter-node pairs have no edge and share the node's
NIC (modeled like the DGX-1's PCIe fallback, but with the additional
constraint that *all* of a node's off-node traffic serializes through
one NIC).  The all-to-all analysis in :mod:`repro.machine.topology`
detects the ``node_of`` annotation and applies the per-node NIC
bottleneck, which is what makes the transpose-bound 1D FFT collapse —
and the FMM-FFT's advantage grow — as nodes are added.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.machine import topology as topo
from repro.machine.routing import Fabric
from repro.machine.spec import ClusterSpec, DeviceSpec, LinkSpec, NVLINK_P100_LINK, P100
from repro.util.validation import ParameterError, check_positive

#: A 100 Gb/s-class fabric (4x EDR InfiniBand), achieved.
DEFAULT_NIC = LinkSpec(bandwidth=10e9, latency=2e-6)
#: MPI-level software latency for inter-node messages, charged on top of
#: the NIC/switch wire latencies (``graph.graph["mpi_latency"]``).
DEFAULT_NIC_LATENCY = 3e-6
#: Default fat-tree shape for the routed builders: 36-port leaves at
#: full bisection (oversubscription 1.0 — override to model cheaper
#: fabrics).
DEFAULT_RADIX = 36
DEFAULT_SWITCH_LATENCY = 0.5e-6


def multinode_graph(
    nodes: int,
    gpus_per_node: int,
    intra_link: LinkSpec,
    nic: LinkSpec,
) -> nx.Graph:
    """Fully-connected NVLink islands joined only through per-node NICs."""
    check_positive("nodes", nodes)
    check_positive("gpus_per_node", gpus_per_node)
    G = nodes * gpus_per_node
    g = nx.Graph()
    g.add_nodes_from(range(G))
    node_of = {}
    for n in range(nodes):
        devs = range(n * gpus_per_node, (n + 1) * gpus_per_node)
        for d in devs:
            node_of[d] = n
        for a, b in itertools.combinations(devs, 2):
            g.add_edge(a, b, link=intra_link)
    g.graph["fallback_link"] = nic
    g.graph["node_of"] = node_of
    g.graph["gpus_per_node"] = gpus_per_node
    g.graph["mpi_latency"] = DEFAULT_NIC_LATENCY
    return g


def routed_multinode_graph(
    nodes: int,
    gpus_per_node: int,
    intra_link: LinkSpec,
    nic: LinkSpec,
    radix: int = DEFAULT_RADIX,
    oversubscription: float = 1.0,
    switch_latency: float = DEFAULT_SWITCH_LATENCY,
) -> nx.Graph:
    """NVLink islands joined by a routed two-level fat tree.

    Same island structure as :func:`multinode_graph`, plus a
    :class:`~repro.machine.routing.Fabric` descriptor: every node's NIC
    plugs into a leaf switch serving ``radix // 2`` nodes, leaves join
    through the spine, and ``oversubscription`` scales the leaf uplink
    capacity down.  Inter-node messages are priced per hop (NIC ->
    leaf [-> spine -> leaf] -> NIC) by :mod:`repro.machine.routing`.
    """
    g = multinode_graph(nodes, gpus_per_node, intra_link, nic)
    g.graph["fabric"] = Fabric(
        nic=nic,
        radix=radix,
        oversubscription=oversubscription,
        switch_latency=switch_latency,
    )
    return g


def multinode_p100(
    nodes: int,
    gpus_per_node: int = 4,
    nic: LinkSpec = DEFAULT_NIC,
    device: DeviceSpec = P100,
    intra_link: LinkSpec = NVLINK_P100_LINK,
) -> ClusterSpec:
    """N nodes of NVLink-connected P100s joined by an InfiniBand fabric."""
    if nodes < 1:
        raise ParameterError(f"nodes must be >= 1, got {nodes}")
    graph = multinode_graph(nodes, gpus_per_node, intra_link, nic)
    return ClusterSpec(
        device=device,
        num_devices=nodes * gpus_per_node,
        graph=graph,
        name=f"{nodes}x{gpus_per_node}xP100, IB",
        # cross-node collectives involve MPI on top of device sync
        collective_overhead=60e-6 * max(nodes, 1),
    )


def routed_multinode_p100(
    nodes: int,
    gpus_per_node: int = 4,
    radix: int = DEFAULT_RADIX,
    oversubscription: float = 1.0,
    nic: LinkSpec = DEFAULT_NIC,
    device: DeviceSpec = P100,
    intra_link: LinkSpec = NVLINK_P100_LINK,
    switch_latency: float = DEFAULT_SWITCH_LATENCY,
) -> ClusterSpec:
    """N P100 nodes on a routed IB fat tree (radix + oversubscription)."""
    if nodes < 1:
        raise ParameterError(f"nodes must be >= 1, got {nodes}")
    graph = routed_multinode_graph(
        nodes, gpus_per_node, intra_link, nic,
        radix=radix, oversubscription=oversubscription,
        switch_latency=switch_latency,
    )
    return ClusterSpec(
        device=device,
        num_devices=nodes * gpus_per_node,
        graph=graph,
        name=(f"{nodes}x{gpus_per_node}xP100, "
              f"fat-tree r{radix} o{oversubscription:g}"),
        collective_overhead=60e-6 * max(nodes, 1),
    )
