"""Schedule auditing: invariants every simulated run must satisfy.

The event-based engine is only trustworthy if its schedules are
physically realizable.  :func:`audit_schedule` checks a ledger for:

- **stream exclusivity** — no two ops overlap on the same
  (device, stream) pair (comm ops are checked on the tx/rx engines of
  their endpoints);
- **monotone issue order** — ops on a stream start in non-decreasing
  order;
- **non-negative durations** and finite timestamps;
- **collective coherence** — all G records of a collective share one
  start and one duration.

Tests run the auditor over every pipeline (including hypothesis-driven
random programs); libraries embedding the simulator can call it as a
debug assertion.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import math

from repro.machine.ledger import Ledger


@dataclass
class AuditReport:
    """Outcome of a schedule audit."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.ok:
            return "AuditReport(ok)"
        return "AuditReport:\n  " + "\n  ".join(self.violations)


#: tolerance for float comparisons of timestamps
_EPS = 1e-12


def audit_schedule(ledger: Ledger) -> AuditReport:
    """Check a run's ledger against the physical-schedule invariants."""
    report = AuditReport()
    per_stream: dict[tuple[int, str], list] = defaultdict(list)
    collectives: dict[tuple[str, float], list] = defaultdict(list)

    for i, r in enumerate(ledger):
        if not (math.isfinite(r.start) and math.isfinite(r.duration)):
            report.violations.append(f"op {i} ({r.name}) has non-finite times")
            continue
        if r.duration < 0:
            report.violations.append(f"op {i} ({r.name}) has negative duration")
        if r.start < -_EPS:
            report.violations.append(f"op {i} ({r.name}) starts before t=0")
        if r.kind == "comm":
            if r.peer >= 0:
                per_stream[(r.device, "comm.tx")].append((r.start, r.end, r.name, i))
                per_stream[(r.peer, "comm.rx")].append((r.start, r.end, r.name, i))
            else:
                # collective: occupies both engines on its device
                per_stream[(r.device, "comm.tx")].append((r.start, r.end, r.name, i))
                per_stream[(r.device, "comm.rx")].append((r.start, r.end, r.name, i))
                collectives[(r.name, round(r.start, 15))].append(r)
        else:
            per_stream[(r.device, r.stream)].append((r.start, r.end, r.name, i))

    for (dev, stream), ops in per_stream.items():
        issue_order_end = -math.inf
        prev_start = -math.inf
        for (start, end, name, i) in ops:
            if start < prev_start - _EPS:
                report.violations.append(
                    f"dev{dev}:{stream} op {i} ({name}) issued out of order "
                    f"(start {start} < previous start {prev_start})"
                )
            if start < issue_order_end - _EPS:
                report.violations.append(
                    f"dev{dev}:{stream} op {i} ({name}) overlaps previous op "
                    f"(start {start} < previous end {issue_order_end})"
                )
            prev_start = start
            issue_order_end = max(issue_order_end, end)

    for (name, _), recs in collectives.items():
        durs = {round(r.duration, 15) for r in recs}
        if len(durs) != 1:
            report.violations.append(
                f"collective {name!r} records disagree on duration: {sorted(durs)}"
            )
    return report


def assert_valid_schedule(ledger: Ledger) -> None:
    """Raise AssertionError with the violation list if the audit fails."""
    report = audit_schedule(ledger)
    assert report.ok, str(report)
