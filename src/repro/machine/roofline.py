"""Per-operation roofline costing (the paper's Eq. 3).

The model minimum wall time for a computation is::

    T = W / min(gamma, beta * W / D)                                 (3)

with ``W`` total flops, ``D`` total bytes through memory, ``gamma`` the
practical peak flop rate, and ``beta`` the practical memory bandwidth.
The engine adds a per-launch latency on top and applies the kind-specific
derates (BatchedGEMM vs GEMM vs hand-written kernels) from the device
spec, which is what separates "measured" (simulated) time from the pure
model and produces the Figure 5 efficiency gaps.
"""

from __future__ import annotations

import numpy as np

from repro.machine.spec import DeviceSpec
from repro.util.validation import ParameterError


def op_time(
    spec: DeviceSpec,
    flops: float,
    mops: float,
    dtype,
    kind: str = "custom",
    include_latency: bool = False,
) -> float:
    """Eq. (3) wall time for one kernel on one device.

    Parameters
    ----------
    spec:
        Device envelope.
    flops:
        Real floating-point operation count W.
    mops:
        Bytes through device memory D.
    dtype:
        Determines single vs double gamma.
    kind:
        'gemm' | 'batched_gemm' | 'gemv' | 'custom' | 'fft' | 'copy'.
        Applies the corresponding compute derate.
    include_latency:
        Add the per-launch latency (the engine usually adds it itself).
    """
    if flops < 0 or mops < 0:
        raise ParameterError(f"flops/mops must be >= 0, got {flops}, {mops}")
    derate = _derate(spec, kind)
    gamma = spec.gamma(dtype) * derate
    # Hand-written kernels achieve their fraction of the *roofline* —
    # both ceilings — matching the paper's ~60% observation for S2T/M2L
    # even in memory-bound regimes (Section 6.2).
    beta = spec.beta * (derate if kind == "custom" else 1.0)
    if flops == 0 and mops == 0:
        t = 0.0
    elif flops == 0:
        t = mops / beta
    else:
        intensity_limited = beta * flops / mops if mops > 0 else np.inf
        t = flops / min(gamma, intensity_limited)
    if include_latency:
        t += spec.launch_latency
    return t


def _derate(spec: DeviceSpec, kind: str) -> float:
    if kind == "batched_gemm":
        return spec.batched_gemm_derate
    if kind in ("custom",):
        return spec.custom_kernel_derate
    if kind in ("gemv", "copy", "fft"):
        # bandwidth-bound kinds: compute ceiling rarely binds; model at peak
        return 1.0
    if kind in ("gemm", "host", "comm"):
        return 1.0
    raise ParameterError(f"unknown op kind {kind!r}")


def gemm_shape_cost(m: int, n: int, k: int, batch: int, itemsize: int, c_factor: int = 1):
    """(flops, bytes) for a batched real GEMM C[m,n] += A[m,k] B[k,n].

    ``c_factor`` is the paper's C: complex data laid out as interleaved
    real pairs flattens a real-complex multiply into a single real-real
    multiply with doubled columns, so flops and bytes both scale by C.
    """
    flops = 2.0 * m * n * k * batch * c_factor
    bytes_ = (m * k + k * n * c_factor + 2 * m * n * c_factor) * batch * itemsize
    return flops, bytes_


def gemm_performance(
    spec: DeviceSpec,
    n: int,
    dtype,
    batched: bool = False,
) -> float:
    """Achieved flop/s for Figure 1's two benchmark shapes.

    - plain GEMM: one multiply of size ``N^2 x N x N`` (m = N^2, n = k = N);
    - BatchedGEMM: ``N`` multiplies of size ``N x N x N``.

    Both perform ``2 N^4`` flops; the batched variant pays the batched
    derate and N launches' worth of scheduling amortized into one call
    (modeled as a single launch — cuBLAS batches internally — but with
    smaller per-matrix tiles captured by the derate).
    """
    itemsize = np.dtype(dtype).itemsize
    if batched:
        flops = 2.0 * n * (n * n * n)
        bytes_ = 3.0 * n * (n * n) * itemsize
        kind = "batched_gemm"
    else:
        flops = 2.0 * (n * n) * n * n
        bytes_ = ((n * n) * n + n * n + (n * n) * n) * itemsize
        kind = "gemm"
    t = op_time(spec, flops, bytes_, dtype, kind=kind) + spec.launch_latency
    return flops / t
