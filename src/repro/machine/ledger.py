"""Operation ledger: the simulator's profiling record.

Every launch/copy/message the :class:`~repro.machine.cluster.VirtualCluster`
issues appends one :class:`OpRecord`.  The ledger is the single source of
truth for "measured" results: Figure 2's profile, Figure 4's per-kernel
time fractions, Figure 5's efficiency ratios, and the cross-checks
between simulated counts and the Section 5 closed-form model all read
from it.
"""

from __future__ import annotations

import hashlib
import math
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator


#: op kinds with distinct costing rules in the engine
KINDS = ("gemm", "batched_gemm", "gemv", "custom", "fft", "copy", "comm", "host")


@dataclass(frozen=True)
class OpRecord:
    """One simulated operation.

    Attributes
    ----------
    device:
        Executing device id (for comm ops, the sender).
    stream:
        Stream name on the device ('compute', 'comm', ...).
    kind:
        One of :data:`KINDS`.
    name:
        Stage label ('S2M', 'M2L-B', 'transpose1', ...).
    start, duration:
        Simulated seconds.
    flops:
        Real floating-point operations performed.
    mops:
        Bytes moved through device memory.
    comm_bytes:
        Bytes this record's device injects into the interconnect (comm
        ops only).  P2P transfers record the full message once, on the
        source; collectives record the per-device payload on every
        participant, so a collective's ledger total is G x payload and
        summing ``comm_bytes`` never double-counts a byte.  Self-sends
        (local copies) record 0.0.
    peer:
        Receiving device id for point-to-point comm, else -1.
    uid:
        Ledger-unique operation id, assigned on append (or preserved
        when already >= 0).  Events reference their producing op by uid,
        which is what the hazard sanitizer's happens-before graph is
        built from.
    reads, writes:
        Declared buffer access sets as ``(device, buffer)`` pairs.
        Sub-resources use ``"buf#part"`` naming; a whole-buffer access
        conflicts with any of its parts.  Empty for legacy records.
    waits:
        Uids of the ops whose completion events this op waited on (its
        explicit cross-stream dependency edges).
    region:
        Hierarchical pipeline-stage path (``"fmmfft/fmm"``) stamped by
        the engine from the active ``cluster.region(...)`` scopes.
        Empty for ops issued outside any region.  Metrics roll up by
        this path, so stage accounting survives renames of individual
        kernels (see :mod:`repro.obs`).
    """

    device: int
    stream: str
    kind: str
    name: str
    start: float
    duration: float
    flops: float = 0.0
    mops: float = 0.0
    comm_bytes: float = 0.0
    peer: int = -1
    uid: int = -1
    reads: tuple = ()
    writes: tuple = ()
    waits: tuple = ()
    region: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration

    def interval(self) -> tuple[float, float]:
        """The op's simulated occupancy interval ``[start, end]``."""
        return (self.start, self.end)


class Ledger:
    """Append-only list of :class:`OpRecord` with aggregation helpers.

    ``append`` validates records (known kind, finite non-negative
    timing) and assigns each a ledger-unique ``uid`` so events and
    dependency declarations stay attributable.
    """

    def __init__(self) -> None:
        self._records: list[OpRecord] = []
        self._next_uid = 0

    def append(self, rec: OpRecord) -> int:
        """Validate, uid-stamp, and store a record; returns its uid."""
        if rec.kind not in KINDS:
            raise ValueError(f"unknown op kind {rec.kind!r}")
        if not rec.name:
            raise ValueError("op records need a non-empty stage name")
        if not (math.isfinite(rec.start) and math.isfinite(rec.duration)):
            raise ValueError(
                f"op {rec.name!r} has non-finite timing "
                f"(start={rec.start!r}, duration={rec.duration!r})"
            )
        if rec.duration < 0.0:
            raise ValueError(
                f"op {rec.name!r} has negative duration {rec.duration!r}"
            )
        if rec.uid < 0:
            rec = replace(rec, uid=self._next_uid)
        self._next_uid = max(self._next_uid, rec.uid) + 1
        self._records.append(rec)
        return rec.uid

    def append_stamped(self, rec: OpRecord) -> int:
        """Store a freshly built record, stamping the next uid in place.

        The replay hot path (:mod:`repro.ir.executor`): replayed
        records come from a certified graph whose capture run already
        passed :meth:`append`'s validation, so this skips it — and
        stamps the uid with ``object.__setattr__`` instead of
        ``dataclasses.replace``, avoiding a second full construction
        per record.  ``rec`` must be freshly constructed (``uid=-1``,
        never shared), exactly as the executor builds them.
        """
        uid = self._next_uid
        object.__setattr__(rec, "uid", uid)
        self._next_uid = uid + 1
        self._records.append(rec)
        return uid

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[OpRecord]:
        return iter(self._records)

    def records(
        self,
        device: int | None = None,
        kind: str | None = None,
        name: str | None = None,
        stream: str | None = None,
    ) -> list[OpRecord]:
        """Filter records by any combination of fields."""
        out = []
        for r in self._records:
            if device is not None and r.device != device:
                continue
            if kind is not None and r.kind != kind:
                continue
            if name is not None and r.name != name:
                continue
            if stream is not None and r.stream != stream:
                continue
            out.append(r)
        return out

    # -- aggregates ----------------------------------------------------

    def total(self, field_name: str, **filters) -> float:
        """Sum a numeric field over filtered records."""
        return sum(getattr(r, field_name) for r in self.records(**filters))

    def time_by_name(self, device: int | None = None) -> dict[str, float]:
        """Total duration per stage name (summed over devices/streams)."""
        acc: dict[str, float] = defaultdict(float)
        for r in self.records(device=device):
            acc[r.name] += r.duration
        return dict(acc)

    def flops_by_name(self, device: int | None = None) -> dict[str, float]:
        """Total flops per stage name."""
        acc: dict[str, float] = defaultdict(float)
        for r in self.records(device=device):
            acc[r.name] += r.flops
        return dict(acc)

    def mops_by_name(self, device: int | None = None) -> dict[str, float]:
        """Total memory bytes per stage name."""
        acc: dict[str, float] = defaultdict(float)
        for r in self.records(device=device):
            acc[r.name] += r.mops
        return dict(acc)

    def time_by_region(self, device: int | None = None) -> dict[str, float]:
        """Total duration per region path (``""`` for unregioned ops)."""
        acc: dict[str, float] = defaultdict(float)
        for r in self.records(device=device):
            acc[r.region] += r.duration
        return dict(acc)

    def comm_bytes_by_name(self, device: int | None = None) -> dict[str, float]:
        """Total interconnect bytes per stage name."""
        acc: dict[str, float] = defaultdict(float)
        for r in self.records(device=device):
            if r.comm_bytes:
                acc[r.name] += r.comm_bytes
        return dict(acc)

    def launch_count(self, device: int | None = None, compute_only: bool = True) -> int:
        """Number of kernel launches (excluding comm/host by default)."""
        n = 0
        for r in self.records(device=device):
            if compute_only and r.kind in ("comm", "host"):
                continue
            n += 1
        return n

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all records.

        An empty ledger has a defined span of ``(0.0, 0.0)`` — callers
        (profile rendering, wall-time deltas) need not special-case it.
        """
        if not self._records:
            return (0.0, 0.0)
        return (
            min(r.start for r in self._records),
            max(r.end for r in self._records),
        )

    def fingerprint(self) -> str:
        """Order-sensitive content hash over every field of every record.

        Two runs with equal fingerprints issued the same ops with the
        same timings, dependencies, and declares, in the same order —
        the replay-determinism check used by chaos runs (same seed ⇒
        same fingerprint) and the zero-fault twin test (injector
        installed but silent ⇒ fingerprint equals the seed ledger's).
        Floats are hashed via ``repr`` so the check is bit-exact.
        """
        h = hashlib.sha256()
        for r in self._records:
            h.update(repr((
                r.device, r.stream, r.kind, r.name, r.start, r.duration,
                r.flops, r.mops, r.comm_bytes, r.peer, r.uid,
                r.reads, r.writes, r.waits, r.region,
            )).encode())
        return h.hexdigest()

    def by_uid(self, uid: int) -> OpRecord:
        """Look up a record by its uid (linear scan; diagnostics only)."""
        for r in self._records:
            if r.uid == uid:
                return r
        raise KeyError(f"no op with uid {uid}")

    def merge(self, other: "Ledger") -> None:
        """Append all records from another ledger (multi-phase runs).

        Uids (and the ``waits`` references among them) are shifted past
        this ledger's counter so merged records stay unique and their
        dependency edges stay internally consistent.
        """
        shift = self._next_uid
        for r in other._records:
            self._records.append(
                replace(
                    r,
                    uid=r.uid + shift if r.uid >= 0 else r.uid,
                    waits=tuple(w + shift for w in r.waits),
                )
            )
        self._next_uid += other._next_uid
