"""Local FFT plans and convenience transforms.

:class:`LocalFFTPlan` mirrors the plan-based API of vendor FFT libraries
(cuFFT/FFTW): construct once for a ``(n, dtype)`` pair, then apply to many
batches.  The plan chooses a backend:

- ``stockham`` — power-of-two iterative autosort (default for 2^k),
- ``bluestein`` — chirp-z for general n,
- ``numpy`` — delegate to ``numpy.fft`` (pocketfft); used as an oracle in
  tests and as an opt-in fast path for very large integration runs.

Conventions match ``numpy.fft``: forward is unnormalized, inverse scales
by ``1/n``.
"""

from __future__ import annotations

import numpy as np

from repro.fftcore.bluestein import fft_bluestein
from repro.fftcore.stockham import fft_pow2
from repro.util.bitmath import is_pow2
from repro.util.validation import ParameterError, check_in, check_positive


class LocalFFTPlan:
    """A reusable 1D FFT plan applied along a chosen axis of a batch.

    Parameters
    ----------
    n:
        Transform length.
    dtype:
        Working complex precision: 'complex64' or 'complex128'.
    backend:
        'auto' (default), 'stockham', 'bluestein', or 'numpy'.
        'auto' selects 'stockham' for powers of two, else 'bluestein'.

    Examples
    --------
    >>> import numpy as np
    >>> plan = LocalFFTPlan(8)
    >>> x = np.arange(8.0)
    >>> np.allclose(plan.forward(x), np.fft.fft(x))
    True
    """

    def __init__(self, n: int, dtype="complex128", backend: str = "auto"):
        check_positive("n", n)
        dt = np.dtype(dtype)
        if dt.kind != "c":
            raise ParameterError(f"LocalFFTPlan dtype must be complex, got {dt!r}")
        check_in("backend", backend, ("auto", "stockham", "bluestein", "numpy"))
        if backend == "auto":
            backend = "stockham" if is_pow2(n) else "bluestein"
        if backend == "stockham" and not is_pow2(n):
            raise ParameterError(f"stockham backend requires power-of-two n, got {n}")
        self.n = int(n)
        self.dtype = dt
        self.backend = backend

    def _apply(self, x: np.ndarray, axis: int, sign: int) -> np.ndarray:
        if x.shape[axis] != self.n:
            raise ParameterError(
                f"axis {axis} has length {x.shape[axis]}, plan expects {self.n}"
            )
        moved = np.moveaxis(x, axis, -1)
        if self.backend == "numpy":
            out = np.fft.fft(moved) if sign < 0 else np.fft.ifft(moved) * self.n
            out = out.astype(self.dtype)
        elif self.backend == "stockham":
            out = fft_pow2(moved.astype(self.dtype, copy=False), sign=sign)
        else:
            out = fft_bluestein(moved.astype(self.dtype, copy=False), sign=sign)
        return np.moveaxis(out, -1, axis)

    def forward(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Unnormalized forward DFT along ``axis``."""
        return self._apply(np.asarray(x), axis, -1)

    def inverse(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Inverse DFT along ``axis`` (scaled by ``1/n``)."""
        return self._apply(np.asarray(x), axis, +1) / self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalFFTPlan(n={self.n}, dtype={self.dtype.name}, backend={self.backend!r})"


def fft(x: np.ndarray, axis: int = -1, dtype=None) -> np.ndarray:
    """One-shot forward FFT along ``axis`` using a throwaway plan."""
    x = np.asarray(x)
    if dtype is None:
        dtype = np.complex64 if x.dtype in (np.float32, np.complex64) else np.complex128
    return LocalFFTPlan(x.shape[axis], dtype=dtype).forward(x, axis=axis)


def ifft(x: np.ndarray, axis: int = -1, dtype=None) -> np.ndarray:
    """One-shot inverse FFT along ``axis`` using a throwaway plan."""
    x = np.asarray(x)
    if dtype is None:
        dtype = np.complex64 if x.dtype in (np.float32, np.complex64) else np.complex128
    return LocalFFTPlan(x.shape[axis], dtype=dtype).inverse(x, axis=axis)
