"""From-scratch local FFT engine (the cuFFT-substitute substrate).

The paper's pipelines lean on a vendor FFT (cuFFT) for the *local*
transforms inside the distributed 1D and 2D FFTs.  This package provides
that substrate:

- :mod:`repro.fftcore.stockham` — iterative Stockham autosort radix-2/4
  FFT, batched over leading axes, one O(n·batch) NumPy pass per stage so
  it vectorizes well (see the HPC guides: few large vector ops, no
  per-element Python).
- :mod:`repro.fftcore.bluestein` — chirp-z (Bluestein) transform for
  arbitrary lengths, built on the power-of-two Stockham core.
- :mod:`repro.fftcore.plan` — :class:`LocalFFTPlan` with cached twiddles
  and a backend switch (``stockham`` / ``bluestein`` / ``numpy``), plus
  module-level :func:`fft` / :func:`ifft` conveniences.
- :mod:`repro.fftcore.flops` — flop/memory-pass cost model used by the
  machine simulator to price local FFT launches.
"""

from __future__ import annotations

from repro.fftcore.plan import LocalFFTPlan, fft, ifft
from repro.fftcore.stockham import fft_pow2
from repro.fftcore.bluestein import fft_bluestein
from repro.fftcore.flops import fft_flops, fft_mops
from repro.fftcore.oracle import reference_fft, reference_ifft, reference_rfft
from repro.fftcore.real import irfft_pow2, rfft_pow2

__all__ = [
    "LocalFFTPlan",
    "fft",
    "fft_bluestein",
    "fft_flops",
    "fft_mops",
    "fft_pow2",
    "ifft",
    "irfft_pow2",
    "reference_fft",
    "reference_ifft",
    "reference_rfft",
    "rfft_pow2",
]
