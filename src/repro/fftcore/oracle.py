"""Reference-transform oracles: the repo's only gateway to ``numpy.fft``.

Accuracy checks and synthetic-signal generators need a trusted DFT that
is *independent* of our own Stockham/Bluestein/FMM machinery.  That is
``numpy.fft`` (pocketfft) — but calling it from arbitrary modules makes
it too easy to "reproduce" the paper with the very library we are
replacing.  The ``np-fft`` lint rule therefore confines ``numpy.fft``
to :mod:`repro.fftcore`, and everything else imports these wrappers,
which say what they are at the call site.
"""

from __future__ import annotations

import numpy as np


def reference_fft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Trusted forward DFT (double precision), for oracles only."""
    return np.fft.fft(np.asarray(x).astype(np.complex128), axis=axis)  # lint: allow-dtype-discipline


def reference_ifft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Trusted inverse DFT (double precision), for oracles only."""
    return np.fft.ifft(np.asarray(x).astype(np.complex128), axis=axis)  # lint: allow-dtype-discipline


def reference_rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Trusted real-input DFT (``n//2 + 1`` bins), for oracles only."""
    return np.fft.rfft(np.asarray(x).astype(np.float64), axis=axis)
