"""Twiddle-factor tables with process-wide caching.

Twiddle generation (``exp(±2πi k / n)``) is pure overhead if repeated per
transform, so tables are cached keyed by ``(n, sign, precision)``.  The
cache is bounded: plans for the paper's sweeps touch a few dozen sizes,
but a long-lived process running many unrelated sizes should not grow
without bound.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

_CACHE: OrderedDict[tuple[int, int, str], np.ndarray] = OrderedDict()
_CACHE_MAX = 256


def twiddles(n: int, sign: int, dtype="complex128") -> np.ndarray:
    """Return ``exp(sign * 2πi * k / n)`` for ``k = 0..n-1`` (cached).

    Parameters
    ----------
    n:
        Table length (the transform size the factors belong to).
    sign:
        -1 for forward transforms, +1 for inverse.
    dtype:
        complex64 or complex128.
    """
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign!r}")
    dt = np.dtype(dtype)
    key = (n, sign, dt.name)
    hit = _CACHE.get(key)
    if hit is not None:
        _CACHE.move_to_end(key)
        return hit
    # Always compute in double precision, then narrow: float32 twiddles
    # computed natively lose ~1 digit on large n.
    k = np.arange(n, dtype=np.float64)
    tab = np.exp(sign * 2j * np.pi * k / n).astype(dt)
    _CACHE[key] = tab
    if len(_CACHE) > _CACHE_MAX:
        _CACHE.popitem(last=False)
    return tab


def clear_cache() -> None:
    """Drop all cached tables (used by tests)."""
    _CACHE.clear()


def cache_size() -> int:
    """Number of cached tables."""
    return len(_CACHE)
