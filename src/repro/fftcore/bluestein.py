"""Bluestein (chirp-z) FFT for arbitrary transform lengths.

Rewrites the DFT as a circular convolution with a chirp::

    X_k = conj(c_k) * sum_j (x_j * conj(c_j)) * c_(k-j),   c_j = exp(sign pi i j^2 / n)

and evaluates the convolution with a zero-padded power-of-two FFT of
length >= 2n - 1 via :func:`repro.fftcore.stockham.fft_pow2`.  This makes
the local engine total: any length, same API, O(n log n).
"""

from __future__ import annotations

import numpy as np

from repro.fftcore.stockham import fft_pow2
from repro.util.bitmath import next_pow2


def _chirp(n: int, sign: int, dtype) -> np.ndarray:
    """The chirp ``exp(sign * pi i j^2 / n)``, computed with j^2 mod 2n.

    Reducing ``j^2`` modulo ``2n`` before the complex exponential keeps
    full accuracy for large ``n`` (j^2 overflows double-precision exactness
    around n ~ 2^26 otherwise).
    """
    j = np.arange(n, dtype=np.int64)
    jsq = (j * j) % (2 * n)
    return np.exp(sign * 1j * np.pi * jsq / n).astype(dtype)


def fft_bluestein(x: np.ndarray, sign: int = -1) -> np.ndarray:
    """Batched arbitrary-length FFT along the last axis (unnormalized).

    Parameters
    ----------
    x:
        Array of shape ``(..., n)``, any ``n >= 1``.
    sign:
        -1 forward, +1 unnormalized inverse.
    """
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign!r}")
    n = x.shape[-1]
    cdt = np.complex64 if x.dtype in (np.float32, np.complex64) else np.complex128
    if n == 1:
        return x.astype(cdt).copy()
    # With c built from -sign, conj(c_k) * sum_j (x_j conj(c_j)) c_{k-j}
    # expands to sum_j x_j exp(sign 2 pi i j k / n) — the requested kernel.
    c = _chirp(n, -sign, cdt)
    m = next_pow2(2 * n - 1)
    lead = x.shape[:-1]
    a = np.zeros(lead + (m,), dtype=cdt)
    a[..., :n] = x.astype(cdt) * np.conj(c)
    b = np.zeros(m, dtype=cdt)
    b[:n] = c
    b[m - n + 1 :] = c[1:][::-1]  # wrap negative lags: b[m-j] = c[j]
    fa = fft_pow2(a, sign=-1)
    fb = fft_pow2(b, sign=-1)
    conv = fft_pow2(fa * fb, sign=+1) / m
    return (np.conj(c) * conv[..., :n]).astype(cdt)
