"""Cost model for local FFT launches.

Used by the machine simulator to price FFT kernels.  Conventions follow
the standard accounting the paper (and the FFT literature) uses:

- complex 1D FFT of length n: ``5 n log2 n`` real flops;
- a GPU FFT kernel makes ``ceil(log_r n)`` passes over the data for
  radix ``r`` (cuFFT uses high radices; we model r = 8), each pass
  reading and writing the whole array.

The distinction matters: the paper's Section 6 observes that large local
FFTs are *memory-bandwidth* bound on GPUs, which is what makes the
distributed 2D FFT's single transpose — not its flops — the budget the
FMM must beat.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive

#: Modeled GPU FFT kernel radix: each fused shared-memory kernel pass
#: handles ~10 bits (cuFFT processes up to ~1024 points per CTA), so a
#: 2^27 transform is ~3 passes over memory — matching measured cuFFT
#: bandwidth-bound throughput on P100-class devices.
MODEL_RADIX_BITS = 10


def fft_flops(n: int, batch: int = 1, complex_input: bool = True) -> float:
    """Real floating-point operations for ``batch`` FFTs of length ``n``.

    Real-input transforms cost roughly half a complex transform (the
    standard 2.5 n log2 n accounting).
    """
    check_positive("n", n)
    check_positive("batch", batch)
    base = 5.0 * n * math.log2(n) if n > 1 else 0.0
    if not complex_input:
        base *= 0.5
    return base * batch


def fft_passes(n: int) -> float:
    """Effective kernel passes over the data for a length-n FFT.

    Modeled smoothly as ``max(1, log2(n) / MODEL_RADIX_BITS)`` rather
    than a ceil: real libraries blend radices across passes, and a
    stair-step here would put artificial cliffs into the parameter-
    dependence studies (Figures 6-8).
    """
    check_positive("n", n)
    if n == 1:
        return 1.0
    return max(1.0, math.log2(n) / MODEL_RADIX_BITS)


def fft_mops(n: int, batch: int, itemsize: int) -> float:
    """Bytes moved through memory for ``batch`` FFTs of length ``n``.

    Each modeled pass reads and writes the full array once.
    """
    check_positive("itemsize", itemsize)
    return 2.0 * fft_passes(n) * n * batch * itemsize


#: Half-efficiency transform length for batched small-n FFTs.
SMALL_N_HALF_EFF = 40.0


def fft_small_n_efficiency(n: int) -> float:
    """Bandwidth efficiency of batched FFTs with a small transform dim.

    Very short rows under-utilize the memory system (strided gathers,
    per-row index math dominate): modeled as ``n / (n + 40)``.  This is
    what makes extreme-aspect 2D FFTs ~3x slower than square ones
    (paper Section 6.3.2 / Figure 7) while leaving the near-square
    six-step baseline untouched.
    """
    check_positive("n", n)
    return n / (n + SMALL_N_HALF_EFF)
