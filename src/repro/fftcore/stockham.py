"""Iterative Stockham autosort FFT for power-of-two sizes.

The Stockham formulation carries the working array through shapes
``(batch, l, m)`` with ``l * m == n``, where ``l`` is the length of the
transforms completed so far and ``m`` the number of interleaved
subsequences remaining.  The invariant maintained by every pass is::

    Y[b, k, j] = sum_t  x[b, j + t*m] * w_l^(k t),   w_l = exp(sign 2 pi i / l)

i.e. column ``j`` holds the length-``l`` DFT of the stride-``m``
subsequence starting at ``j``.  A radix-2 pass halves ``m`` and doubles
``l`` with one vectorized butterfly over the whole array; a radix-4 pass
quarters ``m``.  No bit-reversal permutation is ever needed (autosort),
and every pass is a constant number of whole-array NumPy operations —
exactly the "few large vector ops" idiom the performance guides call for.
"""

from __future__ import annotations

import numpy as np

from repro.fftcore.twiddle import twiddles
from repro.util.bitmath import ilog2
from repro.util.validation import ParameterError


def _radix2_pass(y: np.ndarray, l: int, m: int, sign: int) -> np.ndarray:
    """One radix-2 Stockham pass: (batch, l, m) -> (batch, 2l, m//2)."""
    h = m // 2
    # w_k = exp(sign 2 pi i k / (2l)), k < l: first half of the 2l-table.
    w = twiddles(2 * l, sign, y.dtype)[:l].reshape(1, l, 1)
    e = y[:, :, :h]
    t = w * y[:, :, h:]
    return np.concatenate((e + t, e - t), axis=1)


def _radix4_pass(y: np.ndarray, l: int, m: int, sign: int) -> np.ndarray:
    """One radix-4 Stockham pass: (batch, l, m) -> (batch, 4l, m//4).

    The radix-4 butterfly combines the four stride-``m``-interleaved
    subsequences ``j``, ``j+m/4``, ``j+2m/4``, ``j+3m/4``::

        Y'[k + a*l, j] = sum_b  i_s^(a b) * w_(4l)^(b k) * Y[k, j + b*m/4]

    where ``i_s = exp(sign pi i / 2)`` is the quarter rotation.
    """
    q = m // 4
    tab = twiddles(4 * l, sign, y.dtype)
    w1 = tab[:l].reshape(1, l, 1)
    w2 = (tab[:l] ** 2).reshape(1, l, 1)
    w3 = (tab[:l] ** 3).reshape(1, l, 1)
    y0 = y[:, :, 0 * q : 1 * q]
    y1 = w1 * y[:, :, 1 * q : 2 * q]
    y2 = w2 * y[:, :, 2 * q : 3 * q]
    y3 = w3 * y[:, :, 3 * q : 4 * q]
    ii = 1j if sign > 0 else -1j
    a02, s02 = y0 + y2, y0 - y2
    a13, s13 = y1 + y3, ii * (y1 - y3)
    return np.concatenate((a02 + a13, s02 + s13, a02 - a13, s02 - s13), axis=1)


def fft_pow2(x: np.ndarray, sign: int = -1, radix: int = 4) -> np.ndarray:
    """Batched power-of-two FFT along the last axis (unnormalized).

    Parameters
    ----------
    x:
        Array of shape ``(..., n)`` with ``n`` a power of two.  Real input
        is promoted to the matching complex dtype.
    sign:
        -1 for the forward transform ``sum_j x_j exp(-2 pi i j k / n)``,
        +1 for the unnormalized inverse.
    radix:
        4 uses radix-4 passes (with one radix-2 pass when ``log2 n`` is
        odd); 2 forces pure radix-2.  Results are identical; radix 4 does
        half the passes over memory.

    Returns
    -------
    Array of the same shape, complex dtype.
    """
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +-1, got {sign!r}")
    if radix not in (2, 4):
        raise ValueError(f"radix must be 2 or 4, got {radix!r}")
    n = x.shape[-1]
    q = ilog2(n)  # raises on non-pow2
    cdt = np.complex64 if x.dtype in (np.float32, np.complex64) else np.complex128
    lead = x.shape[:-1]
    y = np.ascontiguousarray(x, dtype=cdt).reshape(-1, 1, n)
    l, m = 1, n
    if radix == 4 and q % 2 == 1:
        y = _radix2_pass(y, l, m, sign)
        l, m = 2 * l, m // 2
    while m > 1:
        if radix == 4 and m % 4 == 0:
            y = _radix4_pass(y, l, m, sign)
            l, m = 4 * l, m // 4
        else:
            y = _radix2_pass(y, l, m, sign)
            l, m = 2 * l, m // 2
    return y.reshape(*lead, n)


def num_passes(n: int, radix: int = 4) -> int:
    """Number of full passes over the data :func:`fft_pow2` performs."""
    q = ilog2(n)
    if radix == 2:
        return q
    return q // 2 + q % 2


def dft_direct(x: np.ndarray, sign: int = -1) -> np.ndarray:
    """O(n^2) direct DFT along the last axis — the test oracle.

    Only suitable for small ``n``; used to validate the fast transforms
    without assuming ``numpy.fft`` conventions.
    """
    n = x.shape[-1]
    if n > 4096:
        raise ParameterError(f"dft_direct is O(n^2); refusing n={n}")
    j = np.arange(n)
    w = np.exp(sign * 2j * np.pi * np.outer(j, j) / n)
    cdt = np.complex64 if x.dtype in (np.float32, np.complex64) else np.complex128
    return np.tensordot(x.astype(cdt), w.astype(cdt), axes=([-1], [0]))
