"""Real-input transforms via Hermitian symmetry.

The paper's C factor already accounts for real input costing half a
complex transform; this module realizes that saving in the local engine:
a length-n real FFT is computed with one length-n/2 complex FFT plus an
O(n) untangling pass (the classic "two-for-one" trick), matching
``numpy.fft.rfft`` conventions (n//2 + 1 output bins).
"""

from __future__ import annotations

import numpy as np

from repro.fftcore.stockham import fft_pow2
from repro.fftcore.twiddle import twiddles
from repro.util.bitmath import is_pow2
from repro.util.validation import ParameterError


def rfft_pow2(x: np.ndarray) -> np.ndarray:
    """Forward FFT of real input along the last axis (power-of-two n).

    Returns the ``n//2 + 1`` non-redundant bins, like ``numpy.fft.rfft``.
    """
    x = np.asarray(x)
    n = x.shape[-1]
    if not is_pow2(n) or n < 2:
        raise ParameterError(f"rfft_pow2 requires power-of-two n >= 2, got {n}")
    if x.dtype.kind == "c":
        raise ParameterError("rfft_pow2 requires real input")
    cdt = np.complex64 if x.dtype == np.float32 else np.complex128
    h = n // 2
    # pack even/odd samples into one complex signal z[k] = x[2k] + i x[2k+1]
    z = (x[..., 0::2] + 1j * x[..., 1::2]).astype(cdt)
    Z = fft_pow2(z, sign=-1)
    # untangle: E_k = (Z_k + conj(Z_{-k}))/2, O_k = (Z_k - conj(Z_{-k}))/(2i)
    idx = (-np.arange(h)) % h
    Zc = np.conj(Z[..., idx])
    E = 0.5 * (Z + Zc)
    O = -0.5j * (Z - Zc)
    w = twiddles(n, -1, cdt)[:h]
    Xh = E + w * O          # bins 0..h-1
    nyq = (E[..., :1] - O[..., :1]).real  # bin h = E_0 - O_0 (real)
    out = np.empty(x.shape[:-1] + (h + 1,), dtype=cdt)
    out[..., :h] = Xh
    out[..., h] = nyq[..., 0]
    return out


def irfft_pow2(X: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft_pow2`: Hermitian bins -> real signal.

    Parameters
    ----------
    X:
        ``(..., n//2 + 1)`` spectrum.
    n:
        Output length (defaults to ``2 * (X.shape[-1] - 1)``).
    """
    X = np.asarray(X)
    if n is None:
        n = 2 * (X.shape[-1] - 1)
    if not is_pow2(n) or X.shape[-1] != n // 2 + 1:
        raise ParameterError(
            f"irfft_pow2 needs n//2+1 = {n // 2 + 1} bins for n = {n}, got {X.shape[-1]}"
        )
    h = n // 2
    cdt = np.complex64 if X.dtype == np.complex64 else np.complex128
    Xh = X[..., :h]
    idx = (-np.arange(h)) % h
    # rebuild the full-length bins k = h..n-1 by Hermitian symmetry, then
    # invert the packing: Z_k = E_k + i O_k with
    # E_k = (X_k + conj(X_{n/2... the algebra below inverts rfft_pow2.
    w = np.conj(twiddles(n, -1, cdt)[:h])
    Xfull_k = Xh
    Xfull_mk = np.conj(
        np.concatenate([X[..., h:h + 1], Xh[..., 1:][..., ::-1]], axis=-1)
    )
    E = 0.5 * (Xfull_k + Xfull_mk)
    O = 0.5 * w * (Xfull_k - Xfull_mk)
    Z = E + 1j * O
    z = fft_pow2(Z, sign=+1) / h
    out = np.empty(X.shape[:-1] + (n,), dtype=np.float32 if cdt == np.complex64 else np.float64)
    out[..., 0::2] = z.real
    out[..., 1::2] = z.imag
    return out


def rfft_flop_saving(n: int) -> float:
    """Ratio of complex-FFT flops to two-for-one real-FFT flops.

    ~2x asymptotically — the engine-level realization of the paper's
    C = 1 accounting for real input.
    """
    import math

    if n < 4:
        return 1.0
    full = 5.0 * n * math.log2(n)
    half = 5.0 * (n / 2) * math.log2(n / 2) + 6.0 * n  # untangle pass
    return full / half
