"""Distributed FMM-FFT on the virtual cluster (Algorithm 1 + 2D FFT).

The full pipeline of Section 4.9: the distributed FMMs (S2M .. L2T with
S/M halos and the base gather), then the POST stage *fused into the 2D
FFT's load callback* (Algorithm 1 lines 15-16 — the cuFFTXT-callback
optimization that saves one full round trip of T through memory), then
the single-transpose distributed 2D FFT.

Data placement: device g owns the contiguous natural-order block
``x[g N/G : (g+1) N/G]`` on input and the corresponding block of the
spectrum on output — the same in-order contract as the baseline 1D FFT,
so the two are drop-in comparable.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import FmmFftPlan
from repro.dfft.fft2d import Distributed2DFFT
from repro.fmm.distributed import DistributedFMM
from repro.machine.cluster import VirtualCluster
from repro.util.validation import ParameterError


class FmmFftDistributed:
    """Executable distributed FMM-FFT.

    Parameters
    ----------
    plan:
        An :class:`FmmFftPlan` whose G matches the cluster.
    cluster:
        The machine to run on (execute or timing-only).
    backend:
        Local FFT backend for the 2D stage.
    chunks:
        Transpose pipeline depth in the 2D FFT.
    fuse_post:
        True (default) fuses POST into the 2D FFT's first load; False
        issues it as a separate elementwise kernel (the ablation).
    comm_algorithm:
        Collective algorithm for the FMM allgather and the 2D FFT
        transpose (see :mod:`repro.comm`): ``"bulk"`` is the legacy
        flat model, ``"auto"`` picks the cheapest message plan per
        collective for this topology.
    ns:
        Buffer namespace.  None (default) keeps the historical names
        (``fmmfft.S``/``fmmfft.T`` staging, ``fmm.*`` internals); a
        string ``s`` prefixes every buffer with ``s.`` so concurrent
        in-flight executions (serve's interleaved batches) touch
        provably disjoint buffers.
    batch:
        Stacked-problem count (timing-only cost model): the serve
        batcher's coalesced requests run as one schedule whose data
        costs scale by ``batch`` while launch/collective counts do not.
    """

    def __init__(
        self,
        plan: FmmFftPlan,
        cluster: VirtualCluster,
        backend: str = "auto",
        chunks: int = 4,
        fuse_post: bool = True,
        comm_algorithm: str = "bulk",
        ns: str | None = None,
        batch: int = 1,
    ):
        if plan.G != cluster.G:
            raise ParameterError(f"plan G={plan.G} != cluster G={cluster.G}")
        if plan.operators is None and cluster.execute:
            raise ParameterError("execute-mode cluster requires built operators")
        if batch < 1:
            raise ParameterError(f"batch must be >= 1, got {batch}")
        if batch > 1 and cluster.execute:
            raise ParameterError(
                "batch > 1 is a timing-only cost model; execute-mode numerics "
                "run through core.single.fmmfft_batched"
            )
        self.plan = plan
        self.cl = cluster
        self.backend = backend
        self.ns = "fmmfft" if ns is None else ns
        fmm_ns = "fmm" if ns is None else f"{ns}.fmm"
        self.fmm = DistributedFMM(
            plan.operators if plan.operators is not None else plan.geometry,
            cluster, dtype=plan.dtype, comm_algorithm=comm_algorithm,
            ns=fmm_ns, batch=batch,
        )
        self.fft2d = Distributed2DFFT(
            plan.M, plan.P, cluster, dtype=plan.dtype, chunks=chunks,
            backend=backend, fuse_load=fuse_post,
            comm_algorithm=comm_algorithm, batch=batch,
        )
        self._r: np.ndarray | None = None

    # -- staging -----------------------------------------------------------

    def _scatter_input(self, x: np.ndarray, key: str) -> None:
        """Device g gets S_g = S[:, b0:b1, :] (its leaf boxes, all p).

        In terms of the natural vector this is exactly the contiguous
        block ``x[g N/G : (g+1) N/G]`` re-viewed p-major.
        """
        plan = self.plan
        x = np.asarray(x, dtype=plan.dtype)
        if x.shape != (plan.N,):
            raise ParameterError(f"input must have shape ({plan.N},), got {x.shape}")
        S = np.ascontiguousarray(x.reshape(plan.M, plan.P).T)  # (P, M)
        self.fmm.scatter(S, key)

    def _post_callback(self, block: np.ndarray, g: int) -> np.ndarray:
        """POST on device g's (M/G, P) block: columns p >= 1 scale by
        rho_p after adding i r_p.

        Reads the FMM's live reduction result (not a snapshot from the
        orchestrating ``run``), so a replayed schedule — where the FMM
        stage closures refresh ``fmm._r`` without re-running ``run`` —
        feeds POST the current pass's values.
        """
        rho = self.plan.operators.rho
        r = self.fmm._r
        out = np.array(block, dtype=self.plan.dtype)
        out[:, 1:] = rho[None, :] * (block[:, 1:] + 1j * r[None, :])
        return out

    # -- execution -----------------------------------------------------------

    def run(
        self,
        x: np.ndarray | None = None,
        after: list | None = None,
        barrier: bool = True,
    ) -> np.ndarray | None:
        """Execute the full FMM-FFT.

        ``after`` gates the input-consuming stages (request release in
        the serve scheduler); ``barrier=False`` skips the trailing
        cluster barrier so another in-flight schedule can overlap.

        Returns the in-order DFT (gathered to the host) in execute mode,
        None in timing-only mode.  Simulated time accumulates on the
        cluster; read it with ``cluster.wall_time()``.
        """
        cl, plan = self.cl, self.plan
        key_s, key_t = f"{self.ns}.S", f"{self.ns}.T"
        if cl.execute:
            if x is None:
                raise ParameterError("execute-mode cluster requires input data")
            self._scatter_input(x, key_s)
        # Algorithm 1 lines 1-14
        with cl.region("fmmfft"):
            ev_t, r = self.fmm.run(key_in=key_s, key_out=key_t, staged=True,
                                   after=after)
        self._r = r

        # Relayout T (P, nb_loc, ML) -> A (M/G, P): free at the timing level
        # (the fused load callback gathers directly from T's storage).
        if cl.execute:
            def relayout(c):
                for g in range(cl.G):
                    T = np.asarray(c.dev(g)[key_t])  # (P, nb_loc, ML)
                    mloc = T.shape[1] * T.shape[2]
                    c.dev(g)[key_t] = np.ascontiguousarray(
                        T.reshape(plan.P, mloc).T
                    )
            with cl.region("fmmfft"), cl.region("relayout"):
                cl.host_op(0, "relayout", relayout,
                           reads=[key_t], writes=[key_t])

        # The POST callback is always passed so its (fused) cost is charged;
        # it only actually executes on execute-mode clusters.
        with cl.region("fmmfft"):
            out = self.fft2d.run(
                key=key_t,
                load_callback=self._post_callback,
                after=ev_t,
                staged=True,
                barrier=barrier,
            )
        if cl.execute:
            return np.asarray(out).reshape(plan.N)
        return None
