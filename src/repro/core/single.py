"""Single-device FMM-FFT execution (pure NumPy, no machine model).

The fastest way to run the *numerics* — used for accuracy studies
(Figure 9, Section 6.1's error claims) and as the reference the
distributed executor must match.  The pipeline is factorization (2)
read right-to-left::

    S[p, m]   = x[p + m P]                    (p-major view)
    T, r      = P-1 batched FMMs (C~_p S_p)   + passthrough p = 0
    T         = rho_p (T + i r_p)             (POST, p >= 1)
    A[m, p]   = T[p, m]
    A         = FFT_P along p; B[p, m] = A[m, p]; B = FFT_M along m
    X[m + pM] = B[p, m]                       (natural order)
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import post_process
from repro.core.plan import FmmFftPlan
from repro.fftcore.oracle import reference_fft
from repro.fftcore.plan import LocalFFTPlan
from repro.fmm.batched import BatchedFMM
from repro.util.validation import ParameterError


def fmmfft_single(
    x: np.ndarray,
    plan: FmmFftPlan,
    backend: str = "auto",
) -> np.ndarray:
    """Compute the in-order DFT of ``x`` via the FMM-FFT.

    Parameters
    ----------
    x:
        Length-N input (real or complex; promoted to the plan dtype).
    plan:
        A :class:`FmmFftPlan` with operators built (any G — the G only
        matters for distributed layout).
    backend:
        Local FFT backend for the 2D stage ('auto' = our Stockham,
        'numpy' = pocketfft fast path).

    Returns
    -------
    The length-N DFT, same convention as ``numpy.fft.fft``.
    """
    if plan.operators is None:
        raise ParameterError("plan was built with build_operators=False")
    x = np.asarray(x)
    if x.shape != (plan.N,):
        raise ParameterError(f"input must have shape ({plan.N},), got {x.shape}")
    M, P = plan.M, plan.P
    x = x.astype(plan.dtype, copy=False)

    # p-major view: S[p, m] = x[p + m P]
    S = np.ascontiguousarray(x.reshape(M, P).T)

    fmm = BatchedFMM(plan.operators)
    T, r = fmm.apply(S)
    T = post_process(T, r, M, P)

    # the M x P 2D FFT
    A = np.ascontiguousarray(T.T)                     # A[m, p]
    A = LocalFFTPlan(P, dtype=plan.dtype, backend=backend).forward(A, axis=1)
    Bt = np.ascontiguousarray(A.T)                    # B[p, m]
    Bt = LocalFFTPlan(M, dtype=plan.dtype, backend=backend).forward(Bt, axis=1)
    return Bt.reshape(plan.N)


def fmmfft_batched(
    xs: np.ndarray,
    plan: FmmFftPlan,
    backend: str = "auto",
) -> np.ndarray:
    """Compute the DFTs of a stack of inputs via one batched FMM-FFT.

    The batched analogue of :func:`fmmfft_single`: every stage runs as
    one broadcasted contraction over the leading batch axis (the serve
    batcher's coalesced execution), sharing a single operator bundle.
    Results are bit-identical to calling :func:`fmmfft_single` on each
    row — numpy applies the same per-slice kernels either way — which is
    what makes serve's coalescing transparent to callers.

    Parameters
    ----------
    xs:
        (k, N) stack of inputs (k >= 1; real or complex).
    plan:
        A :class:`FmmFftPlan` with operators built.
    backend:
        Local FFT backend for the 2D stage.

    Returns
    -------
    The (k, N) stack of DFTs, same convention as ``numpy.fft.fft``.
    """
    if plan.operators is None:
        raise ParameterError("plan was built with build_operators=False")
    xs = np.asarray(xs)
    if xs.ndim != 2 or xs.shape[1] != plan.N:
        raise ParameterError(
            f"input must have shape (k, {plan.N}), got {xs.shape}"
        )
    k, (M, P) = xs.shape[0], (plan.M, plan.P)
    xs = xs.astype(plan.dtype, copy=False)

    # p-major view per problem: S[i, p, m] = xs[i, p + m P]
    S = np.ascontiguousarray(np.swapaxes(xs.reshape(k, M, P), -1, -2))

    fmm = BatchedFMM(plan.operators)
    T, r = fmm.apply(S)
    T = post_process(T, r, M, P)

    # the M x P 2D FFT, batched row-wise through the same local plans
    A = np.ascontiguousarray(np.swapaxes(T, -1, -2))  # (k, M, P)
    A = LocalFFTPlan(P, dtype=plan.dtype, backend=backend).forward(
        A.reshape(k * M, P), axis=1
    ).reshape(k, M, P)
    Bt = np.ascontiguousarray(np.swapaxes(A, -1, -2))  # (k, P, M)
    Bt = LocalFFTPlan(M, dtype=plan.dtype, backend=backend).forward(
        Bt.reshape(k * P, M), axis=1
    ).reshape(k, P, M)
    return Bt.reshape(k, plan.N)


def fmmfft_relative_error(
    x: np.ndarray, plan: FmmFftPlan, backend: str = "numpy"
) -> float:
    """Relative l2 error of the FMM-FFT against the exact FFT.

    The oracle is ``numpy.fft.fft`` in double precision (our own FFT is
    validated against it separately); this is the quantity Figure 9
    (bottom) sweeps over Q.
    """
    got = fmmfft_single(x, plan, backend=backend)
    ref = reference_fft(x)
    return float(np.linalg.norm(got - ref) / np.linalg.norm(ref))
