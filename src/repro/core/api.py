"""One-call conveniences over the FMM-FFT pipelines.

For library users who just want a transform::

    >>> import numpy as np
    >>> from repro.core import fmmfft
    >>> x = np.random.default_rng(0).standard_normal(4096).astype(np.complex128)
    >>> X = fmmfft(x)                        # single device, auto params
    >>> np.allclose(X, np.fft.fft(x), atol=1e-8)
    True

For multi-device simulation, pass a :class:`VirtualCluster`; for full
control, build an :class:`FmmFftPlan` and use the executors directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single
from repro.fftcore.plan import LocalFFTPlan
from repro.machine.cluster import VirtualCluster
from repro.util.bitmath import ilog2, is_pow2
from repro.util.validation import ParameterError, complex_dtype_for


def default_params(N: int, G: int = 1) -> dict:
    """Reasonable default (P, ML, B, Q) for a size, following Section 6:
    ML = 64 and Q = 16 for large N, P sized to keep M = N/P >= 4 ML and
    the 2D FFT aspect ratio moderate.

    Always returns an admissible tuple for :meth:`FmmFftPlan.create`
    (or raises :class:`ParameterError` when no admissible configuration
    exists, e.g. G > N/2): the base level satisfies ``2 <= B <= L`` and
    ``G | 2^B``, and P is a multiple of G in ``[2, N/2]``.  Preference
    order when N is small for the device count: shrink P toward 2G,
    then shrink the leaf ML, then (last resort) allow P down to G.
    """
    if not is_pow2(N):
        raise ParameterError(f"FMM-FFT sizes must be powers of two, got {N}")
    if G < 1 or not is_pow2(G):
        raise ParameterError(f"G must be a positive power of two, got {G}")
    q = ilog2(N)
    Bmin = max(2, ilog2(G))         # smallest B with G | 2^B
    P_floor = max(2, G)             # smallest admissible P (G | P)
    if P_floor > N // 2 or N // P_floor < max(4, 1 << Bmin):
        raise ParameterError(
            f"no admissible FMM-FFT configuration for N={N} on G={G} devices"
        )
    ML = 64 if q >= 16 else max(4, 1 << max(2, q // 3))
    # target P near sqrt(N) but capped so M/ML leaves a usable tree:
    # M = N/P must hold at least max(4, 2^Bmin) leaf-level boxes.
    P = min(max(1 << max(1, q // 2 - 2), 2 * G, 2), N // 2)
    while P > max(2, 2 * G) and N // P < max(4, 1 << Bmin) * ML:
        P //= 2
    while ML > 1 and N // P < max(4, 1 << Bmin) * ML:
        ML //= 2
    while P > P_floor and N // P < max(4, 1 << Bmin) * ML:
        P //= 2
    M = N // P
    L = ilog2(M // ML)
    B = max(min(3, L), Bmin)
    return dict(P=P, ML=ML, B=B, Q=16)


def fmmfft(
    x: np.ndarray,
    P: int | None = None,
    ML: int | None = None,
    B: int | None = None,
    Q: int | None = None,
    cluster: VirtualCluster | None = None,
    backend: str = "auto",
) -> np.ndarray:
    """Compute the DFT of ``x`` with the FMM-FFT.

    Any of (P, ML, B, Q) omitted falls back to :func:`default_params`.
    With a ``cluster``, runs distributed (execute-mode cluster required);
    otherwise runs the single-device pipeline.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ParameterError(f"input must be 1D, got shape {x.shape}")
    N = x.shape[0]
    G = cluster.G if cluster is not None else 1
    d = default_params(N, G)
    params = dict(
        P=P if P is not None else d["P"],
        ML=ML if ML is not None else d["ML"],
        B=B if B is not None else d["B"],
        Q=Q if Q is not None else d["Q"],
    )
    dtype = complex_dtype_for(x.dtype if x.dtype.kind in "fc" else np.float64)
    plan = FmmFftPlan.create(N=N, G=G, dtype=dtype, **params)
    if cluster is None:
        return fmmfft_single(x, plan, backend=backend)
    return FmmFftDistributed(plan, cluster, backend=backend).run(x)


def ifmmfft(
    X: np.ndarray,
    P: int | None = None,
    ML: int | None = None,
    B: int | None = None,
    Q: int | None = None,
    cluster: VirtualCluster | None = None,
    backend: str = "auto",
) -> np.ndarray:
    """Inverse DFT via the FMM-FFT (numpy ``ifft`` convention).

    Uses the conjugation identity ``ifft(X) = conj(fft(conj(X))) / N``,
    so the inverse inherits the forward transform's accuracy and cost.
    """
    X = np.asarray(X)
    out = np.conj(fmmfft(np.conj(X), P=P, ML=ML, B=B, Q=Q, cluster=cluster,
                         backend=backend))
    return out / X.shape[0]


def fourier_transform(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Plain (non-FMM) FFT via the library's own local engine.

    Exposed so examples can avoid ``numpy.fft`` entirely; any length.
    """
    x = np.asarray(x)
    plan = LocalFFTPlan(x.shape[-1], dtype=complex_dtype_for(
        x.dtype if x.dtype.kind in "fc" else np.float64))
    return plan.inverse(x) if inverse else plan.forward(x)
