"""The FMM-FFT — the paper's primary contribution.

``F_N = F_{M,P} * H^_{M,P}``: P-1 interleaved periodic 1D FMMs followed
by a distributed M x P 2D FFT (one all-to-all), replacing the six-step
1D FFT's three all-to-alls.

- :mod:`repro.core.factorization` — permutation operators and dense
  Fourier-matrix factorization builders (the machine-precision validity
  checks behind everything else).
- :mod:`repro.core.kernels` — the ``C_p`` cotangent kernel matrices,
  ``rho_p`` prefactors, and the dense ``H`` / ``H^`` operators.
- :mod:`repro.core.plan` — :class:`FmmFftPlan`: parameter validation
  (``N = M P``, ``M = M_L 2^L``, ``L >= B >= 2``, ``G | 2^B``...) and
  operator precomputation.
- :mod:`repro.core.single` — single-device NumPy execution (the
  accuracy workhorse, Figure 9).
- :mod:`repro.core.distributed` — Algorithm 1 + fused POST + 2D FFT on
  a :class:`~repro.machine.cluster.VirtualCluster`.
- :mod:`repro.core.baseline` — the cuFFTXT-style 1D FFT comparator.
- :mod:`repro.core.api` — one-call conveniences.
"""

from __future__ import annotations

from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single
from repro.core.distributed import FmmFftDistributed
from repro.core.baseline import baseline_1d_fft
from repro.core.api import fmmfft, fourier_transform, ifmmfft

__all__ = [
    "FmmFftDistributed",
    "FmmFftPlan",
    "baseline_1d_fft",
    "fmmfft",
    "fmmfft_single",
    "fourier_transform",
    "ifmmfft",
]
