"""Fourier-matrix factorizations and permutation operators (Section 3).

The block-to-cyclic permutation ``Pi_{M,P}`` acts on unit vectors as
``Pi e_{p + m P} = e_{m + p M}``; on data, ``(Pi x)[m + p M] = x[p + m P]``,
i.e. the reshape-transpose ``x.reshape(M, P).T.ravel()``.

Two factorizations of ``F_N`` (N = M P) are provided densely for
validation:

- the radix-P split used by all standard distributed 1D FFTs::

      F_N = Pi_{M,P} (I_M x F_P) Pi_{P,M} T_{P,M} (I_P x F_M) Pi_{M,P}

- the FMM-FFT factorization (Edelman et al.)::

      F_N = (I_P x F_M) Pi_{M,P} (I_M x F_P) Pi_{P,M} H_{P,M} Pi_{M,P}

Both are verified to machine precision in the test suite for many
(M, P), including non-powers of two — the index-convention ground truth
for the whole library.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import dense_h_matrix
from repro.util.validation import ParameterError, check_positive


def fourier_matrix(N: int) -> np.ndarray:
    """The N x N DFT matrix ``[F_N]_{jk} = exp(-2 pi i j k / N)``."""
    check_positive("N", N)
    j = np.arange(N)
    return np.exp(-2j * np.pi * np.outer(j, j) / N)


def perm_block_to_cyclic(M: int, P: int) -> np.ndarray:
    """Index map ``idx`` with ``(Pi_{M,P} x) = x[idx]``.

    ``(Pi x)[m + p M] = x[p + m P]``: position ``m + p M`` reads source
    ``p + m P``.
    """
    check_positive("M", M)
    check_positive("P", P)
    out = np.empty(M * P, dtype=np.intp)
    for p in range(P):
        for m in range(M):
            out[m + p * M] = p + m * P
    return out


def apply_perm_mp(x: np.ndarray, M: int, P: int) -> np.ndarray:
    """Apply ``Pi_{M,P}`` to the last axis of ``x`` (vectorized form)."""
    x = np.asarray(x)
    if x.shape[-1] != M * P:
        raise ParameterError(f"last axis must be {M * P}, got {x.shape[-1]}")
    lead = x.shape[:-1]
    return np.swapaxes(x.reshape(*lead, M, P), -1, -2).reshape(*lead, M * P)


def perm_matrix(M: int, P: int) -> np.ndarray:
    """``Pi_{M,P}`` as a dense 0/1 matrix (tests and tiny N only)."""
    N = M * P
    Pi = np.zeros((N, N), dtype=np.float64)
    Pi[np.arange(N), perm_block_to_cyclic(M, P)] = 1.0
    return Pi


def twiddle_matrix(M: int, P: int) -> np.ndarray:
    """The diagonal ``T_{P,M}``: entry ``omega_N^((i mod M) * floor(i/M))``."""
    N = M * P
    i = np.arange(N)
    return np.diag(np.exp(-2j * np.pi * ((i % M) * (i // M)) / N))


def radix_split_dense(M: int, P: int) -> np.ndarray:
    """Evaluate the radix-P split factorization densely (should == F_N)."""
    I_M, I_P = np.eye(M), np.eye(P)
    return (
        perm_matrix(M, P)
        @ np.kron(I_M, fourier_matrix(P))
        @ perm_matrix(P, M)
        @ twiddle_matrix(M, P)
        @ np.kron(I_P, fourier_matrix(M))
        @ perm_matrix(M, P)
    )


def fmmfft_dense(M: int, P: int) -> np.ndarray:
    """Evaluate the FMM-FFT factorization densely (should == F_N)."""
    I_M, I_P = np.eye(M), np.eye(P)
    return (
        np.kron(I_P, fourier_matrix(M))
        @ perm_matrix(M, P)
        @ np.kron(I_M, fourier_matrix(P))
        @ perm_matrix(P, M)
        @ dense_h_matrix(M, P)
        @ perm_matrix(M, P)
    )


def hhat_dense(M: int, P: int) -> np.ndarray:
    """``H^_{M,P} = Pi_{P,M} H_{P,M} Pi_{M,P}`` — the interleaved kernels
    acting directly on the natural (p-major) layout."""
    return perm_matrix(P, M) @ dense_h_matrix(M, P) @ perm_matrix(M, P)
