"""The baseline comparator: the cuFFTXT-style distributed 1D FFT.

A thin convenience over :class:`~repro.dfft.fft1d.Distributed1DFFT` so
benchmarks construct the paper's comparison ("Speedup over 1D cuFFTXT")
in one call with matching conventions.
"""

from __future__ import annotations

import numpy as np

from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster


def baseline_1d_fft(
    N: int,
    cluster: VirtualCluster,
    x: np.ndarray | None = None,
    dtype="complex128",
    backend: str = "auto",
    chunks: int = 4,
) -> tuple[np.ndarray | None, float]:
    """Run the six-step baseline once; returns ``(result, wall_seconds)``.

    The cluster's clocks are *not* reset first — call on a fresh or
    freshly-reset cluster for standalone timings.
    """
    t0 = cluster.wall_time()
    plan = Distributed1DFFT(N, cluster, dtype=dtype, backend=backend, chunks=chunks)
    out = plan.run(x)
    return out, cluster.wall_time() - t0
