"""FMM-FFT plan: parameter validation and operator precomputation.

The admissible parameter space (Table 1 and Sections 3-4):

- ``N = M * P`` with ``P >= 2`` (there are P-1 FMMs);
- ``M = M_L * 2^L`` with leaf size ``M_L >= 1``;
- ``L >= B >= 2`` (base level; B = L means no hierarchical levels —
  the latency-minimizing small-N configuration);
- ``Q >= 2`` expansion order;
- ``G | 2^B`` and ``G | P`` so every device owns whole boxes at every
  level and the 2D FFT layouts partition evenly.

The plan owns the :class:`~repro.fmm.plan.FmmOperators` bundle and the
complex working dtype; executors are stateless over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fmm.plan import FmmGeometry, FmmOperators
from repro.util.bitmath import ilog2, is_pow2
from repro.util.validation import (
    ParameterError,
    check_dtype,
    check_multiple,
    check_positive,
    check_pow2,
    check_range,
    complex_dtype_for,
    c_factor,
)


@dataclass(frozen=True)
class FmmFftPlan:
    """A validated, operator-ready FMM-FFT configuration.

    Construct via :meth:`create` (which derives M and L and builds
    operators) rather than directly.

    Attributes
    ----------
    N, M, P:
        Transform size and its FMM/FFT split, N = M * P.
    ML, L, B, Q:
        Leaf size, leaf level, base level, expansion order.
    G:
        Device count the plan is laid out for.
    dtype:
        Complex working dtype.
    operators:
        The precomputed FMM operator bundle.
    """

    N: int
    M: int
    P: int
    ML: int
    L: int
    B: int
    Q: int
    G: int
    dtype: np.dtype
    operators: FmmOperators = field(repr=False)

    @classmethod
    def create(
        cls,
        N: int,
        P: int,
        ML: int,
        B: int,
        Q: int,
        G: int = 1,
        dtype="complex128",
        build_operators: bool = True,
    ) -> "FmmFftPlan":
        """Validate parameters and build operators.

        Raises :class:`~repro.util.validation.ParameterError` with a
        named constraint on any violation.
        """
        check_positive("N", N)
        check_range("P", P, 2, N // 2)
        if N % P != 0:
            raise ParameterError(f"P (={P}) must divide N (={N})")
        M = N // P
        check_pow2("M", M)
        check_pow2("P", P)
        check_pow2("ML", ML)
        if ML > M:
            raise ParameterError(f"ML={ML} cannot exceed M={M}")
        L = ilog2(M // ML)
        check_range("B", B, 2, L)
        check_range("Q", Q, 2, None)
        check_pow2("G", G)
        check_multiple("2^B", 1 << B, G, "G")
        check_multiple("P", P, G, "G")
        dt = complex_dtype_for(check_dtype("dtype", dtype))
        ops = (
            FmmOperators.create(M=M, P=P, ML=ML, B=B, Q=Q, dtype=dt, G=G)
            if build_operators
            else None
        )
        return cls(N=N, M=M, P=P, ML=ML, L=L, B=B, Q=Q, G=G, dtype=np.dtype(dt),
                   operators=ops)

    def plan_key(self) -> tuple:
        """Stable, hashable configuration key.

        Two plans with equal keys produce identical schedules and
        numerics; use this wherever plans are compared or cached
        (dataclass equality drags the numpy operator arrays into the
        comparison, and an operator-less plan would never equal its
        operator-ready twin).  M and L are derived, so the key carries
        only the defining tuple.
        """
        return ("fmmfft", self.N, self.P, self.ML, self.B, self.Q, self.G,
                self.dtype.name)

    @property
    def C(self) -> int:
        """The paper's C factor (2: all plans work in complex)."""
        return c_factor(self.dtype)

    @property
    def geometry(self) -> FmmGeometry:
        """Shape-only FMM description (valid even without operators)."""
        if self.operators is not None:
            return self.operators.geometry
        return FmmGeometry.create(
            M=self.M, P=self.P, ML=self.ML, B=self.B, Q=self.Q, G=self.G
        )

    def with_devices(self, G: int) -> "FmmFftPlan":
        """Re-derive the plan for a different device count."""
        return FmmFftPlan.create(
            N=self.N, P=self.P, ML=self.ML, B=self.B, Q=self.Q, G=G,
            dtype=self.dtype, build_operators=self.operators is not None,
        )

    def describe(self) -> str:
        """One-line human-readable parameter summary."""
        return (
            f"FMM-FFT N=2^{ilog2(self.N) if is_pow2(self.N) else self.N} "
            f"(M={self.M}, P={self.P}), ML={self.ML}, L={self.L}, B={self.B}, "
            f"Q={self.Q}, G={self.G}, {self.dtype.name}"
        )


def admissible_params(
    N: int,
    G: int = 1,
    max_Q: int = 20,
    min_Q: int = 4,
) -> list[dict]:
    """Enumerate the admissible (P, ML, B, Q) grid for a given N and G.

    Used by the parameter search behind Figure 3 ("the fastest FMM-FFT
    found by searching the parameter space").  The grid is pruned to the
    paper's practically relevant region: P between 2G and N/(4 ML_min),
    ML up to 512, B up to min(L, 6), Q in {8, 12, 16, 20}.
    """
    check_pow2("N", N)
    out: list[dict] = []
    qs = [q for q in (8, 12, 16, 20) if min_Q <= q <= max_Q]
    P = max(2, 2 * G)
    while P <= N // 4:
        M = N // P
        ML = 1
        while ML <= min(M // 4, 512):
            L = ilog2(M // ML)
            for B in range(2, min(L, 6) + 1):
                if (1 << B) % G != 0:
                    continue
                for Q in qs:
                    out.append(dict(P=P, ML=ML, B=B, Q=Q))
            ML *= 2
        P *= 2
    return out
