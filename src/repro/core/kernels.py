"""The FMM-FFT's cotangent kernels (Section 3).

``H_{P,M} = diag(I_M, C_1, ..., C_{P-1})`` with

    [C_p]_{mn} = rho_p [ cot(pi/M (n - m) + pi/N p) + i ]
    rho_p      = exp(-i pi p / P) sin(pi p / P) / M

Each ``C_p`` is what one periodic 1D FMM applies (approximately); the
``+ i`` rank-one part becomes the REDUCE stage and the ``rho_p`` scaling
the POST stage.  The dense builders here are oracles for tests and tiny
problems.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.operators import rho_factors
from repro.fmm.reference import dense_kernel_matrix
from repro.util.validation import ParameterError


def dense_c_matrix(M: int, P: int, p: int) -> np.ndarray:
    """The full complex ``C_p`` (identity for p = 0)."""
    return dense_kernel_matrix(M, P, p, with_rho=True)


def dense_h_matrix(M: int, P: int) -> np.ndarray:
    """``H_{P,M}``: block diagonal of I_M and the C_p (size N x N)."""
    N = M * P
    H = np.zeros((N, N), dtype=np.complex128)  # lint: allow-dtype-discipline (dense reference, tiny N)
    for p in range(P):
        H[p * M : (p + 1) * M, p * M : (p + 1) * M] = dense_c_matrix(M, P, p)
    return H


def post_process(T: np.ndarray, r: np.ndarray, M: int, P: int) -> np.ndarray:
    """Algorithm 1 line 15: ``T_p <- rho_p (T_p + i r_p)`` for p >= 1.

    Parameters
    ----------
    T:
        (P, M) array — row 0 is the p = 0 passthrough, rows 1.. are the
        FMM outputs (the cotangent part) — or (..., P, M) with leading
        batch axes (a stack of independent problems).
    r:
        (P-1,) reduction vector ``r[p-1] = sum_m S[p, m]``, or
        (..., P-1) matching T's leading axes.
    """
    T = np.asarray(T)
    r = np.asarray(r)
    if T.ndim < 2 or T.shape[-2] != P or r.shape != (*T.shape[:-2], P - 1):
        raise ParameterError(
            f"shape mismatch: T {T.shape}, r {r.shape} for P={P}"
        )
    rho = rho_factors(P, M)
    out = np.array(T, dtype=np.result_type(T.dtype, np.complex64))
    out[..., 1:, :] = rho[:, None] * (T[..., 1:, :] + 1j * r[..., :, None])
    return out
