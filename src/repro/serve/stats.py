"""Serving telemetry: latency percentiles, throughput, cache hit rates.

:func:`summarize` folds a finished :class:`ServeScheduler` into a
:class:`ServeReport` — p50/p95/p99 latency overall and per deadline
class, throughput, queue depth, shed counts, batch shape, and the plan/
wisdom cache counters (whose ``searches`` field is the acceptance
criterion's "zero autotune searches on a warm start").

:func:`serve_trace_events` renders the same run as a Chrome-trace
process — one X span per batch (release to finish) plus a queue-depth
counter — that :func:`merge_serve_track` splices into a device trace
from :func:`repro.obs.perfetto.build_trace`, so batch lifetimes sit in
the same Perfetto timeline as the kernels and collectives they caused.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.serve.request import DEADLINE_CLASSES, DEADLINE_TARGETS
from repro.serve.scheduler import ServeScheduler

#: Chrome-trace pid for the serve track; device pids are 0..G-1 and real
#: clusters top out at 8 devices, so 99 never collides.
SERVE_PID = 99


def _percentiles(xs: list[float]) -> dict[str, float]:
    """Nearest-rank percentiles (not interpolated).

    The p-th percentile of n samples is the ``ceil(p/100 * n)``-th
    smallest — an *observed* value.  Linear interpolation (the old
    ``np.percentile`` default) invents a value below the true tail on
    small samples: p99 of 100 latencies interpolated between the 99th
    and 100th order statistics under-reports the worst observed
    request.  Nearest-rank is also exactly the discipline the telemetry
    histogram's :meth:`~repro.obs.telemetry.HistogramSeries.quantile`
    uses, so the two agree within one bucket's width.
    """
    if not xs:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = sorted(xs)
    n = len(arr)

    def rank(q: float) -> float:
        return arr[min(n, max(1, math.ceil(q * n))) - 1]

    return {"p50": rank(0.50), "p95": rank(0.95), "p99": rank(0.99)}


@dataclass(frozen=True)
class ServeReport:
    """Aggregated outcome of one served trace (all times in seconds)."""

    completed: int
    shed: dict[str, int]
    wall_time: float
    throughput: float
    latency: dict[str, float]
    latency_by_class: dict[str, dict[str, float]]
    queue_depth_max: int
    queue_depth_mean: float
    batches: int
    mean_batch_size: float
    plan_hit_rate: float
    wisdom_hits: int
    wisdom_misses: int
    searches: int
    #: per-class completions that finished past their deadline target
    deadline_misses: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in DEADLINE_CLASSES})
    #: per-class requests re-enqueued after their batch failed
    retried: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in DEADLINE_CLASSES})
    #: per-class requests shed on retry (budget/deadline exceeded)
    retry_shed: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in DEADLINE_CLASSES})
    #: batches that died with a CommFailure
    failed_batches: int = 0
    #: fault events the injector stamped (0 on fault-free runs)
    fault_events: int = 0
    #: total ledger time spent in timed-out ``!fail`` comm attempts
    retry_time: float = 0.0

    def to_json(self) -> str:
        """Serialize the report as indented JSON."""
        return json.dumps(asdict(self), indent=1, sort_keys=True)

    def render(self) -> str:
        """Human-readable multi-line summary (the CLI prints this)."""
        lines = [
            f"completed      {self.completed}  "
            f"(shed {sum(self.shed.values())})",
            f"wall time      {self.wall_time * 1e3:9.3f} ms",
            f"throughput     {self.throughput:9.1f} req/s",
            f"latency        p50 {self.latency['p50'] * 1e3:8.3f} ms   "
            f"p95 {self.latency['p95'] * 1e3:8.3f} ms   "
            f"p99 {self.latency['p99'] * 1e3:8.3f} ms",
        ]
        for cls in DEADLINE_CLASSES:
            pct = self.latency_by_class[cls]
            lines.append(
                f"  {cls:<12} p50 {pct['p50'] * 1e3:8.3f} ms   "
                f"p95 {pct['p95'] * 1e3:8.3f} ms   "
                f"p99 {pct['p99'] * 1e3:8.3f} ms"
            )
        misses = ", ".join(
            f"{cls} {self.deadline_misses[cls]}" for cls in DEADLINE_CLASSES
        )
        lines += [
            f"deadline miss  {misses}",
            f"queue depth    max {self.queue_depth_max}  "
            f"mean {self.queue_depth_mean:.2f}",
            f"batches        {self.batches}  "
            f"(mean size {self.mean_batch_size:.2f})",
            f"plan cache     hit rate {self.plan_hit_rate * 100.0:.1f}%",
            f"wisdom         {self.wisdom_hits} hits / "
            f"{self.wisdom_misses} misses, {self.searches} searches",
        ]
        if self.fault_events or self.failed_batches or self.retry_time:
            lines += [
                f"faults         {self.fault_events} events, "
                f"{self.failed_batches} failed batches",
                f"retries        {sum(self.retried.values())} re-enqueued / "
                f"{sum(self.retry_shed.values())} shed, exposed "
                f"{self.retry_time * 1e3:.3f} ms",
            ]
        return "\n".join(lines)


def _retry_time(ledger) -> float:
    """Total simulated time charged to ``!fail`` comm attempts.

    P2P fail records count individually; a failed bulk collective's G
    coherent records (same name/start/duration, ``peer < 0``) count
    once — the whole machine lost that window together, not G times.
    """
    total, seen = 0.0, set()
    for r in ledger:
        if r.kind != "comm" or not r.name.endswith("!fail"):
            continue
        if r.peer >= 0:
            total += r.duration
        else:
            key = (r.name, r.start, r.duration)
            if key not in seen:
                seen.add(key)
                total += r.duration
    return total


def summarize(sched: ServeScheduler) -> ServeReport:
    """Fold a finished scheduler run into a :class:`ServeReport`."""
    cache = sched.batcher.cache
    lat = [c.latency for c in sched.completed]
    by_class = {
        cls: _percentiles(
            [c.latency for c in sched.completed if c.request.deadline == cls]
        )
        for cls in DEADLINE_CLASSES
    }
    targets = getattr(sched, "deadline_targets", DEADLINE_TARGETS)
    deadline_misses = {
        cls: sum(
            1 for c in sched.completed
            if c.request.deadline == cls and c.latency > targets[cls]
        )
        for cls in DEADLINE_CLASSES
    }
    faults = getattr(sched.cluster, "faults", None)
    depths = [d for _, d in sched.queue.depth_samples]
    ks = [b["k"] for b in sched.batches]
    wall = sched.wall_time
    return ServeReport(
        completed=len(sched.completed),
        shed=dict(sched.queue.shed),
        wall_time=wall,
        throughput=len(sched.completed) / wall if wall > 0 else 0.0,
        latency=_percentiles(lat),
        latency_by_class=by_class,
        queue_depth_max=max(depths) if depths else 0,
        queue_depth_mean=float(np.mean(depths)) if depths else 0.0,
        batches=len(sched.batches),
        mean_batch_size=float(np.mean(ks)) if ks else 0.0,
        plan_hit_rate=cache.hit_rate,
        wisdom_hits=cache.wisdom_hits,
        wisdom_misses=cache.wisdom_misses,
        searches=cache.searches,
        deadline_misses=deadline_misses,
        retried=dict(sched.retried),
        retry_shed=dict(sched.retry_shed),
        failed_batches=sched.failed_batches,
        fault_events=len(faults.events) if faults is not None else 0,
        retry_time=_retry_time(sched.cluster.ledger),
    )


#: bumped whenever the serve-run JSON envelope changes incompatibly
RUN_SCHEMA_VERSION = 1

#: ``repro serve --json`` / ``repro chaos --json`` envelope kind tag
RUN_SCHEMA_KIND = "serve-run"


def serve_run_doc(sched: ServeScheduler,
                  report: ServeReport | None = None) -> dict:
    """One versioned document for a served trace: report + telemetry.

    The shared-schema envelope ``repro serve --json`` and ``repro chaos
    --json`` emit::

        {"version": 1, "kind": "serve-run",
         "report": {...ServeReport...},
         "telemetry": {...telemetry-snapshot...},
         "slo": {"objectives": {...}, "alerts": [...]}}

    ``repro top --replay`` renders a dashboard from exactly this
    document; the snapshot's quantiles re-derive the report's
    percentiles within one histogram bucket.
    """
    rep = report if report is not None else summarize(sched)
    return {
        "version": RUN_SCHEMA_VERSION,
        "kind": RUN_SCHEMA_KIND,
        "report": asdict(rep),
        "telemetry": sched.telemetry.snapshot(time=sched.wall_time),
        "slo": sched.slo.to_json(),
    }


def _slo_alert_events(sched: ServeScheduler) -> list[dict]:
    """SLO burn-rate alert windows as X spans on the serve track.

    Consecutive trigger→clear transitions per class become one span; a
    still-firing alert spans to the run's wall time.  (The Perfetto
    validator whitelists X/M/C/s/t/f shapes — no instant events.)
    """
    alerts = getattr(getattr(sched, "slo", None), "alerts", None)
    if not alerts:
        return []
    events: list[dict] = [
        {"name": "thread_name", "ph": "M", "pid": SERVE_PID, "tid": 1,
         "args": {"name": "slo alerts"}},
    ]
    open_at: dict[str, object] = {}
    spans: list[tuple] = []
    for a in alerts:
        if a.kind == "trigger":
            open_at[a.deadline_class] = a
        elif a.deadline_class in open_at:
            spans.append((open_at.pop(a.deadline_class), a.time))
    wall = sched.wall_time
    for a in open_at.values():
        spans.append((a, max(wall, a.time)))
    for a, end in sorted(spans, key=lambda s: (s[0].time, s[0].deadline_class)):
        events.append({
            "name": f"slo burn {a.deadline_class}",
            "ph": "X", "pid": SERVE_PID, "tid": 1,
            "ts": a.time * 1e6,
            "dur": max(0.0, end - a.time) * 1e6,
            "args": {"class": a.deadline_class,
                     "short_burn": a.short_burn, "long_burn": a.long_burn},
        })
    return events


def serve_trace_events(sched: ServeScheduler) -> list[dict]:
    """Chrome-trace events for the serve track (pid :data:`SERVE_PID`).

    One metadata pair names the process/thread, each batch becomes an X
    span over its device-occupancy window (release to finish), every
    queue-depth sample becomes a C counter point, and SLO burn-rate
    alert windows land as X spans on a second thread — all shapes that
    :func:`repro.obs.perfetto.validate_trace` accepts.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": SERVE_PID,
         "args": {"name": "serve"}},
        {"name": "thread_name", "ph": "M", "pid": SERVE_PID, "tid": 0,
         "args": {"name": "batches"}},
    ]
    events.extend(_slo_alert_events(sched))
    for b in sched.batches:
        events.append({
            "name": f"batch {b['bid']} (k={b['k']}, N={b['N']})",
            "ph": "X", "pid": SERVE_PID, "tid": 0,
            "ts": b["release"] * 1e6,
            "dur": max(0.0, (b["finish"] - b["release"])) * 1e6,
            "args": {"batch_size": b["k"], "N": b["N"],
                     "setup_time_us": b["setup_time"] * 1e6,
                     "failed": bool(b.get("failed", False))},
        })
    for t, depth in sched.queue.depth_samples:
        events.append({
            "name": "queue depth", "ph": "C", "pid": SERVE_PID,
            "ts": t * 1e6, "args": {"depth": depth},
        })
    return events


def merge_serve_track(trace: dict, sched: ServeScheduler) -> dict:
    """Splice the serve track into a device trace document, in place.

    ``trace`` is a ``build_trace`` result; the same document is
    returned so calls chain into ``save_trace``-style writers.
    """
    trace["traceEvents"] = list(trace["traceEvents"]) + serve_trace_events(sched)
    return trace
