"""Admission-controlled bounded request queue with backpressure.

The service's front door: arrivals are admitted while the queue has
room and shed (rejected, counted) once it is full — the backpressure
signal an open-loop driver observes as its offered load exceeds
capacity.  Scheduling order is deadline-class priority (interactive
ahead of batch), FIFO within a class; the batcher drains compatible
groups through :meth:`AdmissionQueue.take`.

Admission order is tracked per *admission*, not per rid: the same
request object may legitimately enter the queue more than once (the
scheduler re-enqueues the survivors of a failed batch), and each
admission gets a fresh sequence token, so a re-offered request queues
behind its class like any other arrival and never corrupts a sibling
still waiting from an earlier admission.

Queue-depth samples are recorded at every state change — including
shed arrivals, so depth percentiles and the Perfetto depth counter
show the queue pinned at capacity at the exact instants of
backpressure.
"""

from __future__ import annotations

from typing import Callable

from repro.serve.request import DEADLINE_CLASSES, TransformRequest
from repro.util.validation import ParameterError


class AdmissionQueue:
    """Bounded FIFO with deadline-class priority and shed accounting.

    Parameters
    ----------
    capacity:
        Maximum queued (admitted, not yet issued) requests; arrivals
        beyond it are shed.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: (admission token, request), token assigned per offer()
        self._items: list[tuple[int, TransformRequest]] = []
        self._next_seq = 0
        #: shed counts per deadline class
        self.shed: dict[str, int] = {c: 0 for c in DEADLINE_CLASSES}
        #: admitted counts per deadline class
        self.admitted: dict[str, int] = {c: 0 for c in DEADLINE_CLASSES}
        #: (time, depth) samples at every admission/shed/drain
        self.depth_samples: list[tuple[float, int]] = [(0.0, 0)]
        #: queued requests per class, maintained incrementally so the
        #: per-change telemetry sample never rescans the queue
        self._class_depth: dict[str, int] = {c: 0 for c in DEADLINE_CLASSES}
        #: optional MetricsRegistry (see :meth:`attach_telemetry`)
        self.telemetry = None
        self._depth_gauges: dict[str, object] = {}
        self._shed_counters: dict[str, object] = {}

    def attach_telemetry(self, registry) -> None:
        """Stream queue state into a metrics registry.

        Every state change re-emits the per-class
        ``serve.queue_depth{class=...}`` gauges, and shed arrivals
        increment ``serve.shed{class=...}`` — all stamped with the
        simulated time of the change.  Series handles are resolved once
        here; the per-change path touches no registry lookups.
        """
        self.telemetry = registry
        self._depth_gauges = {
            c: registry.gauge("serve.queue_depth", {"class": c})
            for c in DEADLINE_CLASSES
        }
        self._shed_counters = {
            c: registry.counter("serve.shed", {"class": c})
            for c in DEADLINE_CLASSES
        }

    def __len__(self) -> int:
        return len(self._items)

    def _sample(self, now: float) -> None:
        self.depth_samples.append((now, len(self._items)))
        if self.telemetry is not None:
            for c, gauge in self._depth_gauges.items():
                gauge.set(self._class_depth[c], t=now)

    def offer(self, req: TransformRequest, now: float) -> bool:
        """Admit ``req`` at time ``now``; False means shed (queue full)."""
        if len(self._items) >= self.capacity:
            self.shed[req.deadline] += 1
            if self.telemetry is not None:
                self._shed_counters[req.deadline].inc(1.0, t=now)
            self._sample(now)
            return False
        self._items.append((self._next_seq, req))
        self._next_seq += 1
        self.admitted[req.deadline] += 1
        self._class_depth[req.deadline] += 1
        self._sample(now)
        return True

    @staticmethod
    def _priority(entry: tuple[int, TransformRequest]) -> tuple:
        seq, req = entry
        return (DEADLINE_CLASSES.index(req.deadline), seq)

    def head(self) -> TransformRequest | None:
        """The request the scheduler must serve next (None if empty)."""
        if not self._items:
            return None
        return min(self._items, key=self._priority)[1]

    def take(
        self,
        now: float,
        compatible: Callable[[TransformRequest], bool],
        limit: int,
    ) -> list[TransformRequest]:
        """Drain up to ``limit`` requests compatible with the head.

        The head request is always included; the rest are taken in
        priority order among those for which ``compatible`` is true.
        """
        if limit < 1:
            raise ParameterError(f"limit must be >= 1, got {limit}")
        if not self._items:
            return []
        head = min(self._items, key=self._priority)
        group = [e for e in self._items if compatible(e[1])]
        group.sort(key=self._priority)
        if head not in group:
            group = [head] + group
        group = group[:limit]
        taken = set(seq for seq, _ in group)
        self._items = [e for e in self._items if e[0] not in taken]
        for _, req in group:
            self._class_depth[req.deadline] -= 1
        self._sample(now)
        return [req for _, req in group]
