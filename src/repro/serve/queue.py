"""Admission-controlled bounded request queue with backpressure.

The service's front door: arrivals are admitted while the queue has
room and shed (rejected, counted) once it is full — the backpressure
signal an open-loop driver observes as its offered load exceeds
capacity.  Scheduling order is deadline-class priority (interactive
ahead of batch), FIFO within a class; the batcher drains compatible
groups through :meth:`AdmissionQueue.take`.

Queue-depth samples are recorded at every state change so the stats
layer can report depth percentiles and the Perfetto exporter can draw
the depth counter track.
"""

from __future__ import annotations

from typing import Callable

from repro.serve.request import DEADLINE_CLASSES, TransformRequest
from repro.util.validation import ParameterError


class AdmissionQueue:
    """Bounded FIFO with deadline-class priority and shed accounting.

    Parameters
    ----------
    capacity:
        Maximum queued (admitted, not yet issued) requests; arrivals
        beyond it are shed.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: list[TransformRequest] = []
        self._seq: dict[int, int] = {}   # rid -> admission sequence number
        self._next_seq = 0
        #: shed counts per deadline class
        self.shed: dict[str, int] = {c: 0 for c in DEADLINE_CLASSES}
        #: admitted counts per deadline class
        self.admitted: dict[str, int] = {c: 0 for c in DEADLINE_CLASSES}
        #: (time, depth) samples at every admission/drain
        self.depth_samples: list[tuple[float, int]] = [(0.0, 0)]

    def __len__(self) -> int:
        return len(self._items)

    def _sample(self, now: float) -> None:
        self.depth_samples.append((now, len(self._items)))

    def offer(self, req: TransformRequest, now: float) -> bool:
        """Admit ``req`` at time ``now``; False means shed (queue full)."""
        if len(self._items) >= self.capacity:
            self.shed[req.deadline] += 1
            return False
        self._items.append(req)
        self._seq[req.rid] = self._next_seq
        self._next_seq += 1
        self.admitted[req.deadline] += 1
        self._sample(now)
        return True

    def _priority(self, req: TransformRequest) -> tuple:
        return (DEADLINE_CLASSES.index(req.deadline), self._seq[req.rid])

    def head(self) -> TransformRequest | None:
        """The request the scheduler must serve next (None if empty)."""
        if not self._items:
            return None
        return min(self._items, key=self._priority)

    def take(
        self,
        now: float,
        compatible: Callable[[TransformRequest], bool],
        limit: int,
    ) -> list[TransformRequest]:
        """Drain up to ``limit`` requests compatible with the head.

        The head request is always included; the rest are taken in
        priority order among those for which ``compatible`` is true.
        """
        if limit < 1:
            raise ParameterError(f"limit must be >= 1, got {limit}")
        head = self.head()
        if head is None:
            return []
        group = [r for r in self._items if compatible(r)]
        group.sort(key=self._priority)
        if head not in group:
            group = [head] + group
        group = group[:limit]
        taken = set(id(r) for r in group)
        self._items = [r for r in self._items if id(r) not in taken]
        for r in group:
            self._seq.pop(r.rid, None)
        self._sample(now)
        return group
