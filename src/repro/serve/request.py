"""Transform requests and synthetic open-loop workloads.

A :class:`TransformRequest` is the unit of work the serving layer
admits, batches, and schedules: one 1D FMM-FFT of a given size and
precision, stamped with its (simulated) arrival time and a deadline
class.  :func:`synthetic_workload` generates the Poisson-arrival /
size-mix traffic the ``repro serve`` CLI and ``bench_serve`` drive —
the open-loop model under which throughput and tail latency are
meaningful (a closed loop would self-throttle and hide queueing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.bitmath import is_pow2
from repro.util.validation import ParameterError, complex_dtype_for

#: admissible deadline classes, in scheduling-priority order
DEADLINE_CLASSES = ("interactive", "batch")

#: default arrival-to-completion latency target per class, seconds.
#: Finishing later counts as a deadline miss in :class:`ServeReport`,
#: and a request already past its target is shed rather than retried
#: when its batch fails (see docs/FAULTS.md).
DEADLINE_TARGETS = {"interactive": 10e-3, "batch": 100e-3}


@dataclass(frozen=True)
class TransformRequest:
    """One FMM-FFT to serve.

    Attributes
    ----------
    rid:
        Caller-unique request id (stable across replays — determinism
        tests compare ledgers keyed by it).
    N:
        Transform size (power of two).
    dtype:
        Working precision, complex64 or complex128.
    arrival:
        Simulated arrival time in seconds (>= 0).
    deadline:
        ``"interactive"`` requests are scheduled ahead of ``"batch"``
        requests; within a class, admission order is FIFO.
    x:
        Optional length-N payload.  When the service runs with numerics
        enabled, outputs are computed host-side via
        :func:`repro.core.single.fmmfft_batched`; timing-only services
        ignore it.
    """

    rid: int
    N: int
    dtype: str = "complex128"
    arrival: float = 0.0
    deadline: str = "batch"
    x: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if not is_pow2(self.N):
            raise ParameterError(f"request size must be a power of two, got {self.N}")
        if np.dtype(self.dtype).kind != "c":
            raise ParameterError(
                f"dtype must be complex64/complex128, got {self.dtype!r}"
            )
        if self.arrival < 0.0:
            raise ParameterError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline not in DEADLINE_CLASSES:
            raise ParameterError(
                f"deadline must be one of {DEADLINE_CLASSES}, got {self.deadline!r}"
            )
        if self.x is not None and np.asarray(self.x).shape != (self.N,):
            raise ParameterError(
                f"payload must have shape ({self.N},), got {np.asarray(self.x).shape}"
            )


@dataclass(frozen=True)
class CompletedRequest:
    """Outcome of one served request (the stats layer's raw material)."""

    request: TransformRequest
    batch_id: int
    batch_size: int
    release: float
    finish: float

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (queueing + planning + execution)."""
        return self.finish - self.request.arrival


def synthetic_workload(
    num_requests: int,
    rate: float,
    sizes: dict[int, float] | None = None,
    dtype: str = "complex128",
    interactive_fraction: float = 0.25,
    seed: int = 0,
    with_payloads: bool = False,
) -> list[TransformRequest]:
    """Generate an open-loop Poisson workload.

    Parameters
    ----------
    num_requests:
        Number of requests to generate.
    rate:
        Offered load in requests/second; interarrival gaps are
        exponential with mean ``1/rate``.
    sizes:
        Size mix as ``{N: weight}`` (weights need not be normalized);
        default is a 3:2:1 mix of 2^16 / 2^17 / 2^18.
    dtype:
        Working precision of every request.
    interactive_fraction:
        Probability a request is deadline class ``"interactive"``.
    seed:
        PRNG seed — workloads are bit-reproducible per seed.
    with_payloads:
        Attach random complex payload vectors (needed for
        numerics-enabled serving; costly at large N).
    """
    if num_requests < 1:
        raise ParameterError(f"num_requests must be >= 1, got {num_requests}")
    if rate <= 0.0:
        raise ParameterError(f"rate must be > 0, got {rate}")
    if not 0.0 <= interactive_fraction <= 1.0:
        raise ParameterError(
            f"interactive_fraction must be in [0, 1], got {interactive_fraction}"
        )
    if sizes is None:
        sizes = {1 << 16: 3.0, 1 << 17: 2.0, 1 << 18: 1.0}
    for n in sizes:
        if not is_pow2(n):
            raise ParameterError(f"size-mix entries must be powers of two, got {n}")
    ns = sorted(sizes)
    w = np.array([sizes[n] for n in ns], dtype=np.float64)
    if not np.all(w > 0):
        raise ParameterError("size-mix weights must be positive")
    w /= w.sum()

    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    arrivals = np.cumsum(gaps)
    picks = rng.choice(len(ns), size=num_requests, p=w)
    interactive = rng.random(num_requests) < interactive_fraction
    out: list[TransformRequest] = []
    for i in range(num_requests):
        n = ns[picks[i]]
        x = None
        if with_payloads:
            x = (
                rng.standard_normal(n) + 1j * rng.standard_normal(n)
            ).astype(complex_dtype_for(dtype))
        out.append(
            TransformRequest(
                rid=i, N=n, dtype=dtype, arrival=float(arrivals[i]),
                deadline="interactive" if interactive[i] else "batch", x=x,
            )
        )
    return out
