"""Plan cache and persistent wisdom — the serving layer's memory.

Two tiers, FFTW style:

- :class:`Wisdom` — a JSON-persistable store of *winning parameters*:
  the ``(P, ML, B, Q)`` found by :func:`repro.model.search.find_fastest`
  and the collective algorithm picked by
  :func:`repro.comm.tuning.choose_algorithm`, keyed by machine-spec
  fingerprint + N + dtype.  A warm start loads it and performs **zero**
  autotune searches.
- :class:`PlanCache` — an LRU of live :class:`FmmFftPlan` objects keyed
  by :meth:`FmmFftPlan.plan_key`, so repeated traffic at the same
  configuration reuses one operator bundle instead of rebuilding it per
  request.

This module is the **only** place the serving layer may construct an
``FmmFftPlan`` — the ``serve-plan-cache`` lint rule enforces it — so the
hit-rate accounting the stats layer reports is truthful by construction.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.comm.tuning import choose_algorithm
from repro.core.api import default_params
from repro.core.plan import FmmFftPlan
from repro.machine.spec import ClusterSpec, spec_fingerprint
from repro.model.search import find_fastest
from repro.util.validation import ParameterError

#: modeled host-side cost of one autotune search (a few hundred
#: timing-only simulations — FFTW_MEASURE territory), charged to the
#: release time of the batch that triggered it
SEARCH_SETUP_TIME = 5e-3

#: modeled host-side cost of building one plan's operator bundle
PLAN_BUILD_TIME = 0.5e-3


def _wisdom_key(fingerprint: str, N: int, dtype) -> str:
    return f"{fingerprint}|{N}|{np.dtype(dtype).name}"


@dataclass
class Wisdom:
    """Persistent autotuning results, keyed by machine fingerprint.

    Unlike :class:`repro.model.tuning.TuningCache` (keyed by the
    spec's display *name*), wisdom keys on :func:`spec_fingerprint`, so
    it is safe to ship between hosts: a mismatched machine misses
    instead of silently serving another machine's parameters.
    """

    entries: dict[str, dict] = field(default_factory=dict)

    def get(self, spec: ClusterSpec, N: int, dtype) -> dict | None:
        """Stored ``{"params": ..., "comm_algorithm": ...}`` or None."""
        hit = self.entries.get(_wisdom_key(spec_fingerprint(spec), N, dtype))
        if hit is None:
            return None
        return {"params": dict(hit["params"]),
                "comm_algorithm": hit["comm_algorithm"]}

    def put(self, spec: ClusterSpec, N: int, dtype, params: dict,
            comm_algorithm: str, fmmfft_time: float | None = None) -> None:
        """Record a search winner for this machine."""
        self.entries[_wisdom_key(spec_fingerprint(spec), N, dtype)] = dict(
            params={k: int(params[k]) for k in ("P", "ML", "B", "Q")},
            comm_algorithm=comm_algorithm,
            fmmfft_time=fmmfft_time,
        )

    def __len__(self) -> int:
        return len(self.entries)

    def dumps(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps({"version": 1, "kind": "serve-wisdom",
                           "entries": self.entries}, indent=1)

    @classmethod
    def loads(cls, text: str) -> "Wisdom":
        """Deserialize; rejects unknown versions and malformed entries."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            raise ParameterError(f"invalid wisdom JSON: {e}") from None
        if (
            not isinstance(doc, dict)
            or doc.get("version") != 1
            or doc.get("kind") != "serve-wisdom"
        ):
            raise ParameterError("unsupported wisdom format")
        entries = doc.get("entries", {})
        for k, v in entries.items():
            if (
                "params" not in v
                or not {"P", "ML", "B", "Q"} <= set(v["params"])
                or "comm_algorithm" not in v
            ):
                raise ParameterError(f"malformed wisdom entry {k!r}")
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        """Write the wisdom file."""
        Path(path).write_text(self.dumps())

    @classmethod
    def load(cls, path: str | Path) -> "Wisdom":
        """Read a wisdom file."""
        return cls.loads(Path(path).read_text())


class PlanCache:
    """LRU plan cache over a wisdom store — the serve layer's sole
    source of :class:`FmmFftPlan` objects.

    Parameters
    ----------
    spec:
        The machine being served (fixes G and the wisdom fingerprint).
    capacity:
        Maximum live plans; least recently used are evicted.  0 disables
        caching entirely (every resolve re-plans — the "one-shot cold"
        baseline the benchmark measures against).
    wisdom:
        The persistent store; None starts cold and accumulates in
        memory.
    autotune:
        True (default) runs the Figure-3 parameter search on a wisdom
        miss; False falls back to :func:`repro.core.api.default_params`
        without searching (no search penalty, weaker parameters).
    build_operators:
        Build numeric operator bundles (needed when the service computes
        payloads; timing-only services keep geometry-only plans).
    remember:
        False drops search results instead of recording them to wisdom —
        every resolve re-searches.  Together with ``capacity=0`` this is
        the "re-plan and re-autotune per request" strawman the benchmark
        measures the service against.

    Counters ``plan_hits``/``plan_misses``/``wisdom_hits``/
    ``wisdom_misses``/``searches`` feed the stats layer's hit-rate and
    the zero-searches-on-warm-start acceptance check.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        capacity: int = 16,
        wisdom: Wisdom | None = None,
        autotune: bool = True,
        build_operators: bool = False,
        remember: bool = True,
    ):
        if capacity < 0:
            raise ParameterError(f"capacity must be >= 0, got {capacity}")
        self.spec = spec
        self.capacity = capacity
        self.wisdom = wisdom if wisdom is not None else Wisdom()
        self.autotune = autotune
        self.build_operators = build_operators
        self.remember = remember
        self._plans: OrderedDict[tuple, FmmFftPlan] = OrderedDict()
        #: captured IR graphs keyed by (plan_key, comm_algorithm, batch_k);
        #: warm batches replay these instead of re-interpreting the pipeline
        self._graphs: OrderedDict[tuple, object] = OrderedDict()
        self.plan_hits = 0
        self.plan_misses = 0
        self.wisdom_hits = 0
        self.wisdom_misses = 0
        self.searches = 0
        self.graph_hits = 0
        self.graph_misses = 0
        #: replayed-batch count (the scheduler increments via
        #: :meth:`count_replay` when a graph hit is actually replayed)
        self.replays = 0
        #: optional MetricsRegistry (see :meth:`attach_telemetry`)
        self.telemetry = None
        #: simulated time the next counter emission is stamped with —
        #: the batcher sets it before each resolve (the cache's own
        #: methods carry no time parameter)
        self.sim_now = 0.0

    def attach_telemetry(self, registry) -> None:
        """Stream cache counters (``cache.plan_hit`` / ``cache.plan_miss``
        / ``cache.wisdom_hit`` / ``cache.wisdom_miss`` / ``cache.search``
        / ``cache.graph_hit`` / ``cache.graph_miss`` / ``cache.replay``)
        into a metrics registry, stamped with :attr:`sim_now`."""
        self.telemetry = registry

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name).inc(1.0, t=self.sim_now)

    def __len__(self) -> int:
        return len(self._plans)

    # -- parameter resolution (wisdom tier) ----------------------------

    def resolve(self, N: int, dtype) -> tuple[dict, str, float]:
        """Winning ``(params, comm_algorithm)`` for a size, plus the
        modeled host-side setup time this resolve cost (0.0 on a wisdom
        hit).  Searches at most once per (machine, N, dtype)."""
        hit = self.wisdom.get(self.spec, N, dtype)
        if hit is not None:
            self.wisdom_hits += 1
            self._count("cache.wisdom_hit")
            return hit["params"], hit["comm_algorithm"], 0.0
        self.wisdom_misses += 1
        self._count("cache.wisdom_miss")
        t = 0.0
        if self.autotune and self.spec.num_devices > 1:
            self.searches += 1
            self._count("cache.search")
            t += SEARCH_SETUP_TIME
            result = find_fastest(N, self.spec, dtype=dtype)
            params, best_time = dict(result.params), result.fmmfft_time
        else:
            params, best_time = default_params(N, self.spec.num_devices), None
        # the transpose all-to-all dominates; pick its algorithm once
        payload = N * np.dtype(dtype).itemsize
        alg = choose_algorithm(self.spec, "alltoall",
                               payload / max(1, self.spec.num_devices))
        if self.remember:
            self.wisdom.put(self.spec, N, dtype, params, alg, best_time)
        return params, alg, t

    # -- plan resolution (LRU tier) ------------------------------------

    def plan_for(self, N: int, dtype) -> tuple[FmmFftPlan, str, float]:
        """The live plan for a size: ``(plan, comm_algorithm, setup_time)``.

        ``setup_time`` models the host-side cost actually incurred by
        this call — search (wisdom miss) plus operator build (LRU miss);
        a fully warm call costs 0.0 and performs no construction.
        """
        params, alg, t = self.resolve(N, dtype)
        key = ("fmmfft", N, params["P"], params["ML"], params["B"],
               params["Q"], self.spec.num_devices, np.dtype(dtype).name)
        plan = self._plans.get(key)
        if plan is not None:
            self.plan_hits += 1
            self._count("cache.plan_hit")
            self._plans.move_to_end(key)
            return plan, alg, t
        self.plan_misses += 1
        self._count("cache.plan_miss")
        plan = FmmFftPlan.create(
            N=N, G=self.spec.num_devices, dtype=dtype,
            build_operators=self.build_operators, **params,
        )
        if plan.plan_key() != key:
            raise ParameterError(
                f"plan key drifted: built {plan.plan_key()}, cached {key}"
            )
        t += PLAN_BUILD_TIME
        if self.capacity > 0:
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
        return plan, alg, t

    def host_plan_for(self, N: int, dtype) -> FmmFftPlan:
        """Single-device operator twin of the serving plan.

        Batched numerics run host-side (:func:`repro.core.single.
        fmmfft_batched` wants G=1 operators); this resolves the same
        ``(P, ML, B, Q)`` as :meth:`plan_for` but builds a G=1 plan
        with operators.  Cached in the same LRU (``plan_key`` embeds G,
        so serving and host twins never collide).  Host numerics are a
        correctness mirror, not part of the timing model, so no setup
        time is charged here.
        """
        params, _, _ = self.resolve(N, dtype)
        key = ("fmmfft", N, params["P"], params["ML"], params["B"],
               params["Q"], 1, np.dtype(dtype).name)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan
        plan = FmmFftPlan.create(N=N, G=1, dtype=dtype,
                                 build_operators=True, **params)
        if self.capacity > 0:
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
        return plan

    # -- captured-graph tier (IR replay) -------------------------------

    def graph_for(self, key: tuple):
        """The certified :class:`~repro.ir.graph.IRGraph` captured for
        a ``(plan_key, comm_algorithm, batch_k)`` configuration, or
        None (counted as ``cache.graph_hit`` / ``cache.graph_miss``)."""
        graph = self._graphs.get(key)
        if graph is not None:
            self.graph_hits += 1
            self._count("cache.graph_hit")
            self._graphs.move_to_end(key)
            return graph
        self.graph_misses += 1
        self._count("cache.graph_miss")
        return None

    def put_graph(self, key: tuple, graph) -> None:
        """Store a captured graph (LRU, same capacity as the plan tier;
        a zero-capacity cache stores nothing)."""
        if self.capacity > 0:
            self._graphs[key] = graph
            while len(self._graphs) > self.capacity:
                self._graphs.popitem(last=False)

    def count_replay(self) -> None:
        """Account one replayed batch (``cache.replay``)."""
        self.replays += 1
        self._count("cache.replay")

    @property
    def hit_rate(self) -> float:
        """Plan-cache hit fraction over all lookups (1.0 when warm)."""
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0
