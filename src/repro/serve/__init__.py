"""repro.serve — a batching transform service over the virtual cluster.

The motivating observation: an FMM-FFT server that re-plans and
re-autotunes per request throws away the two things this codebase is
good at — amortizing launches via batched execution and knowing the
machine's winning parameters ahead of time.  This package serves
transform requests the way an inference server serves tokens:

- :mod:`repro.serve.request` — requests, completions, Poisson workloads;
- :mod:`repro.serve.queue` — bounded admission queue with backpressure;
- :mod:`repro.serve.cache` — LRU plan cache + persistent FFTW-style
  wisdom (zero searches on a warm start);
- :mod:`repro.serve.batcher` — continuous batching by execution
  compatibility;
- :mod:`repro.serve.scheduler` — discrete-event loop interleaving
  in-flight batches so one batch's comm hides under another's compute,
  with graceful degradation under injected faults (failed batches
  re-enqueue within retry budgets and deadline targets, replanned
  against the degraded topology — see ``docs/FAULTS.md``);
- :mod:`repro.serve.stats` — latency percentiles (nearest-rank),
  throughput, hit rates, deadline-miss and retry accounting, the
  Perfetto serve track, and the versioned ``serve-run`` JSON document.

Live telemetry: every scheduler run streams into a
:class:`~repro.obs.telemetry.MetricsRegistry` (queue depth, latency
histograms, cache/comm/fault counters) with a windowed
:class:`~repro.obs.slo.SloTracker` on top — see ``repro top`` and the
"Live telemetry vs post-hoc traces" section of ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.serve.batcher import Batch, Batcher
from repro.serve.cache import PlanCache, Wisdom, spec_fingerprint
from repro.serve.queue import AdmissionQueue
from repro.serve.request import (
    DEADLINE_CLASSES,
    DEADLINE_TARGETS,
    CompletedRequest,
    TransformRequest,
    synthetic_workload,
)
from repro.serve.scheduler import ServeScheduler
from repro.serve.stats import (
    ServeReport,
    merge_serve_track,
    serve_run_doc,
    serve_trace_events,
    summarize,
)

__all__ = [
    "DEADLINE_CLASSES",
    "DEADLINE_TARGETS",
    "AdmissionQueue",
    "Batch",
    "Batcher",
    "CompletedRequest",
    "PlanCache",
    "ServeReport",
    "ServeScheduler",
    "TransformRequest",
    "Wisdom",
    "merge_serve_track",
    "serve_run_doc",
    "serve_trace_events",
    "spec_fingerprint",
    "summarize",
    "synthetic_workload",
]
