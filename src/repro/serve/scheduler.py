"""Discrete-event serving loop with interleaved in-flight batches.

The scheduler owns simulated wall-clock time.  It admits arrivals into
the queue, forms batches through the batcher whenever an issue slot is
free, and launches each batch onto the *shared* virtual cluster:

- every batch runs in its own buffer namespace (``serve.b<id>.*``), so
  concurrent schedules touch provably disjoint buffers and the hazard
  sanitizer can certify the interleaving;
- a synthetic release :class:`~repro.machine.stream.Event` (``op=-1``,
  so it adds no ghost wait edges) gates each batch's input-consuming
  stages at ``issue_time + setup_time`` — plan search and operator
  build are host-side costs the device timeline must respect;
- batches are issued with ``barrier=False``, so batch B's early
  communication (halo exchange, M2L broadcasts) overlaps batch A's
  trailing compute on the in-order streams — cross-batch overlap on
  top of the paper's within-transform overlap.

IR replay: the first batch at each ``(plan_key, comm_algorithm, k)``
configuration is issued through :func:`repro.ir.capture.capture` — a
normal interpreted run that also records the op graph — then certified
(hazards + prealloc) and stored in the plan cache's graph tier.  Every
warm batch replays the compiled graph instead of re-constructing the
pipeline: buffers are renamed into a reusable slot namespace
(``serve.r<slot>``, slots reused only after their previous batch
finished, so the hazard sanitizer still certifies the interleaving),
regions are re-stamped ``serve/b<bid>/...`` truthfully, and the ledger
records are bit-identical to what the interpreted issue would have
appended.  Fault-injecting clusters never capture or replay (recorded
durations would launder transient faults), and a zero-capacity cache
disables the graph tier with the rest of the cache.  ``replay=False``
restores the pure interpreted path (the benchmark's baseline arm).

With ``max_inflight=1`` the loop degrades to strict one-at-a-time
serving (the baseline arm); the default 2 keeps one batch's comm under
another's compute.

Graceful degradation: when the cluster carries a fault injector, a
batch whose communication exhausts its retry budget (or hits a
permanent fault) raises :class:`~repro.comm.retry.CommFailure`.  The
scheduler absorbs it — the batch's partial schedule stays on the
ledger (the engines really were occupied), its requests re-enter the
admission queue with a bounded per-request retry budget, and requests
already past their deadline target are shed instead of retried.
Re-issued batches replan their collective algorithm against the
injector's *degraded* topology via the ``auto`` selector, so a run
with a throttled link switches algorithms instead of hammering the
dead link.  All retry/shed accounting lands in
:class:`~repro.serve.stats.ServeReport`.

Every run also streams *live* telemetry: the scheduler owns (or is
given) a :class:`~repro.obs.telemetry.MetricsRegistry`, wires it into
the cluster's comm layer, the admission queue, the plan cache, and the
fault injector, and feeds per-completion latency/deadline series plus a
windowed :class:`~repro.obs.slo.SloTracker` — all stamped with
simulated time, so instrumented runs replay bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro.comm.retry import CommFailure
from repro.comm.tuning import choose_algorithm
from repro.core.distributed import FmmFftDistributed
from repro.core.single import fmmfft_batched
from repro.ir.capture import capture
from repro.ir.executor import ReplayExecutor
from repro.machine.cluster import VirtualCluster
from repro.machine.stream import Event
from repro.obs.slo import SloTracker
from repro.obs.telemetry import MetricsRegistry
from repro.serve.batcher import Batch, Batcher
from repro.serve.queue import AdmissionQueue
from repro.serve.request import (
    DEADLINE_CLASSES,
    DEADLINE_TARGETS,
    CompletedRequest,
    TransformRequest,
)
from repro.util.validation import ParameterError


class ServeScheduler:
    """Run an open-loop request trace to completion on one cluster.

    Parameters
    ----------
    cluster:
        Timing-only :class:`VirtualCluster` (execute mode is rejected —
        batched numerics run host-side via
        :func:`repro.core.single.fmmfft_batched` when
        ``compute_outputs`` is set).
    batcher:
        Batch former (owns the plan cache).
    queue:
        Admission queue; None builds a default 64-slot queue.
    max_inflight:
        Concurrent in-flight batches on the cluster (>= 1).
    compute_outputs:
        Compute request payloads host-side with the batched kernel;
        requires payloads on every request and a cache built with
        ``build_operators=True``.  Outputs land in :attr:`outputs`.
    retry_budget:
        Times a request survives its batch failing before being shed
        (fault-injected runs only).
    deadline_targets:
        Per-class latency targets (seconds); defaults to
        :data:`~repro.serve.request.DEADLINE_TARGETS`.  A failed
        request already past its target is shed rather than retried,
        and the stats layer counts completions past it as deadline
        misses.
    telemetry:
        The :class:`~repro.obs.telemetry.MetricsRegistry` the run
        streams into.  None builds a fresh enabled registry (pass
        ``MetricsRegistry(enabled=False)`` for the zero-instrumentation
        arm).  The scheduler wires it into the cluster, the queue, the
        plan cache, and any installed fault injector, so every
        emission point shares one registry.
    slo:
        The :class:`~repro.obs.slo.SloTracker` fed per completion;
        None builds one with default objectives over ``telemetry``.
    replay:
        True (default) captures each batch configuration's op graph on
        first issue and replays it for warm batches (see the module
        docstring); False always re-interprets — the baseline arm
        :mod:`benchmarks.bench_serve` measures replay against.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        batcher: Batcher,
        queue: AdmissionQueue | None = None,
        max_inflight: int = 2,
        compute_outputs: bool = False,
        retry_budget: int = 2,
        deadline_targets: dict[str, float] | None = None,
        telemetry: MetricsRegistry | None = None,
        slo: SloTracker | None = None,
        replay: bool = True,
    ):
        if cluster.execute:
            raise ParameterError(
                "serve scheduling is timing-only; use compute_outputs for numerics"
            )
        if cluster.G != batcher.cache.spec.num_devices:
            raise ParameterError(
                f"cluster G={cluster.G} != cache spec G="
                f"{batcher.cache.spec.num_devices}"
            )
        if max_inflight < 1:
            raise ParameterError(f"max_inflight must be >= 1, got {max_inflight}")
        if compute_outputs and not batcher.cache.build_operators:
            raise ParameterError(
                "compute_outputs requires a PlanCache(build_operators=True)"
            )
        if retry_budget < 0:
            raise ParameterError(f"retry_budget must be >= 0, got {retry_budget}")
        if deadline_targets is not None and set(deadline_targets) != set(
            DEADLINE_CLASSES
        ):
            raise ParameterError(
                f"deadline_targets must cover {DEADLINE_CLASSES}, "
                f"got {sorted(deadline_targets)}"
            )
        self.cluster = cluster
        self.batcher = batcher
        self.queue = queue if queue is not None else AdmissionQueue()
        self.max_inflight = max_inflight
        self.compute_outputs = compute_outputs
        self.retry_budget = retry_budget
        self.deadline_targets = (dict(DEADLINE_TARGETS)
                                 if deadline_targets is None
                                 else dict(deadline_targets))
        self.faults = cluster.faults
        #: the run's live metrics registry, shared by every emission
        #: point (cluster comm layer, queue, cache, fault injector)
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        cluster.telemetry = self.telemetry
        self.queue.attach_telemetry(self.telemetry)
        batcher.cache.attach_telemetry(self.telemetry)
        if self.faults is not None:
            self.faults.attach_telemetry(self.telemetry)
        #: windowed burn-rate tracker fed at every completion
        self.slo = slo if slo is not None else SloTracker(self.telemetry)
        #: rid -> output vector (only with ``compute_outputs``)
        self.outputs: dict[int, np.ndarray] = {}
        #: per-batch telemetry: {bid, k, N, release, finish, setup_time,
        #: failed, replayed}
        self.batches: list[dict] = []
        self.completed: list[CompletedRequest] = []
        #: batches that raised CommFailure
        self.failed_batches = 0
        #: per-class counts of requests re-enqueued after a batch failure
        self.retried: dict[str, int] = {c: 0 for c in DEADLINE_CLASSES}
        #: per-class counts shed on retry (budget or deadline exceeded)
        self.retry_shed: dict[str, int] = {c: 0 for c in DEADLINE_CLASSES}
        self._attempts: dict[int, int] = {}
        self._retry_pending: list[tuple[float, TransformRequest]] = []
        #: replay enabled (off automatically under fault injection or a
        #: zero-capacity cache — see the module docstring)
        self.replay = replay
        #: replay-slot occupancy: finish time of the last batch replayed
        #: into ``serve.r<slot>``; a slot is reusable once that batch
        #: finished before the next batch's release
        self._slot_free: list[float] = []
        #: compiled executors keyed by (graph_key, slot)
        self._executors: dict[tuple, ReplayExecutor] = {}
        #: batches issued via graph replay (mirrors ``cache.replays``)
        self.replayed_batches = 0

    # -- one batch ----------------------------------------------------

    def _comm_algorithm(self, batch: Batch, release: float) -> str:
        """The batch's collective algorithm, replanned under faults.

        While any scheduled fault window is active at release time, the
        cached choice (tuned on the healthy machine) is re-derived by
        the ``auto`` selector against the injector's degraded topology —
        a throttled or flapping link changes which plan is cheapest.
        """
        if self.faults is None or not self.faults.active(release):
            return batch.comm_algorithm
        payload = (batch.plan.N * np.dtype(batch.plan.dtype).itemsize
                   / max(1, self.cluster.G))
        return choose_algorithm(self.faults.degraded_spec(release),
                                "alltoall", payload)

    def _issue(self, batch: Batch, now: float) -> float:
        """Launch one batch on the cluster; returns its finish time.

        A :class:`CommFailure` mid-batch is absorbed: the partial
        schedule stays on the ledger, the batch is marked failed, and
        each of its requests is either re-enqueued (within its retry
        budget and deadline target) or shed.
        """
        cl = self.cluster
        release = now + batch.setup_time
        rel = Event(time=release, label=f"serve.release.b{batch.bid}")
        start_idx = len(cl.ledger)
        algo = self._comm_algorithm(batch, release)
        cache = self.batcher.cache
        replayable = (self.replay and self.faults is None
                      and cache.capacity > 0)
        gkey = (batch.plan.plan_key() + (algo, batch.k)
                if replayable else None)
        graph = cache.graph_for(gkey) if replayable else None
        try:
            if graph is not None:
                finish = self._replay_batch(graph, gkey, batch, release)
            else:
                finish = self._interpret_batch(batch, rel, algo, gkey,
                                               start_idx, release)
        except CommFailure as e:
            return self._fail(batch, release, start_idx, e)
        if self.compute_outputs:
            host_plan = self.batcher.cache.host_plan_for(
                batch.plan.N, batch.plan.dtype
            )
            xs = np.stack([np.asarray(r.x) for r in batch.requests])
            ys = fmmfft_batched(xs, host_plan)
            for j, r in enumerate(batch.requests):
                self.outputs[r.rid] = ys[j]
        self.batches.append(dict(
            bid=batch.bid, k=batch.k, N=batch.plan.N, release=release,
            finish=finish, setup_time=batch.setup_time, failed=False,
            replayed=graph is not None,
        ))
        tel = self.telemetry
        tel.histogram("serve.batch_latency").observe(
            max(0.0, finish - now), t=finish)
        for r in batch.requests:
            self.completed.append(CompletedRequest(
                request=r, batch_id=batch.bid, batch_size=batch.k,
                release=release, finish=finish,
            ))
            lat = finish - r.arrival
            tel.histogram("serve.request_latency",
                          {"class": r.deadline}).observe(lat, t=finish)
            ok = lat <= self.deadline_targets[r.deadline]
            if not ok:
                tel.counter("serve.deadline_miss",
                            {"class": r.deadline}).inc(1.0, t=finish)
            self.slo.record(r.deadline, finish, ok)
        return finish

    def _interpret_batch(self, batch: Batch, rel: Event, algo: str,
                         gkey: tuple | None, start_idx: int,
                         release: float) -> float:
        """Issue one batch through the interpreted pipeline.

        With ``gkey`` set, the run goes through the IR recording proxy
        — same ledger, same events — and the captured graph is
        certified and stored so the next batch at this configuration
        replays.  Returns the batch finish time.
        """
        cl = self.cluster

        def _run(proxy):
            FmmFftDistributed(
                batch.plan, proxy, comm_algorithm=algo,
                ns=f"serve.b{batch.bid}", batch=batch.k,
            ).run(after=[rel], barrier=False)

        with cl.region("serve"), cl.region(f"b{batch.bid}"):
            if gkey is None:
                _run(cl)
            else:
                graph, _ = capture(
                    _run, cl, release_event=rel, pipeline="fmmfft",
                    key=gkey, buffer_prefix=f"serve.b{batch.bid}")
        if gkey is not None:
            graph.certify(cl.spec)
            self.batcher.cache.put_graph(gkey, graph)
        recs = list(cl.ledger)[start_idx:]
        return max((r.end for r in recs), default=release)

    def _replay_batch(self, graph, gkey: tuple, batch: Batch,
                      release: float) -> float:
        """Replay a certified graph for one warm batch.

        Picks the lowest slot whose previous batch finished by this
        batch's release (so same-name buffer intervals never overlap),
        reusing the slot's compiled executor when one exists.  Returns
        the batch finish time.
        """
        slot = next((s for s, t in enumerate(self._slot_free)
                     if t <= release), None)
        if slot is None:
            self._slot_free.append(0.0)
            slot = len(self._slot_free) - 1
        ex = self._executors.get((gkey, slot))
        if ex is None:
            ex = ReplayExecutor(
                graph, self.cluster,
                rename=(graph.meta["buffer_prefix"], f"serve.r{slot}"),
                region_strip=2)
            self._executors[(gkey, slot)] = ex
        finish = ex.run(release=release,
                        region_prefix=f"serve/b{batch.bid}/")
        self._slot_free[slot] = finish
        self.replayed_batches += 1
        self.batcher.cache.count_replay()
        return finish

    def _fail(self, batch: Batch, release: float, start_idx: int,
              exc: CommFailure) -> float:
        """Account one failed batch; returns the time it died."""
        recs = list(self.cluster.ledger)[start_idx:]
        fail_time = max([r.end for r in recs] + [exc.time, release])
        self.failed_batches += 1
        tel = self.telemetry
        tel.counter("serve.batch_failed").inc(1.0, t=fail_time)
        self.batches.append(dict(
            bid=batch.bid, k=batch.k, N=batch.plan.N, release=release,
            finish=fail_time, setup_time=batch.setup_time, failed=True,
            replayed=False,
        ))
        for r in batch.requests:
            n = self._attempts.get(r.rid, 0) + 1
            self._attempts[r.rid] = n
            late = fail_time - r.arrival > self.deadline_targets[r.deadline]
            if exc.permanent or n > self.retry_budget or late:
                self.retry_shed[r.deadline] += 1
                tel.counter("serve.retry_shed",
                            {"class": r.deadline}).inc(1.0, t=fail_time)
                # a shed request is an availability miss, not a latency
                # sample — feed the SLO, skip the latency histogram
                self.slo.record(r.deadline, fail_time, False)
            else:
                self.retried[r.deadline] += 1
                tel.counter("serve.retry",
                            {"class": r.deadline}).inc(1.0, t=fail_time)
                self._retry_pending.append((fail_time, r))
        return fail_time

    # -- the event loop -----------------------------------------------

    def run(self, requests: list[TransformRequest]) -> list[CompletedRequest]:
        """Serve a trace to completion; returns completions in finish order.

        Shed requests (queue full at arrival) are counted on the queue
        and never complete.  The trace is replay-deterministic: same
        requests, same cluster spec, same cache state, same knobs →
        bit-identical ledger.
        """
        if self.compute_outputs and any(r.x is None for r in requests):
            raise ParameterError("compute_outputs requires payloads on every request")
        pending = sorted(requests, key=lambda r: (r.arrival, r.rid))
        inflight: list[float] = []          # finish times of issued batches
        now, i = 0.0, 0
        while True:
            # re-admit retry survivors first: their failure time precedes
            # any same-instant fresh arrival in the service's causal order
            self._retry_pending.sort(key=lambda e: (e[0], e[1].rid))
            while self._retry_pending and self._retry_pending[0][0] <= now:
                _, r = self._retry_pending.pop(0)
                self.queue.offer(r, now)
            while i < len(pending) and pending[i].arrival <= now:
                self.queue.offer(pending[i], now)
                i += 1
            inflight = [f for f in inflight if f > now]
            while len(inflight) < self.max_inflight and len(self.queue):
                batch = self.batcher.next_batch(self.queue, now)
                inflight.append(self._issue(batch, now))
            if (i >= len(pending) and not len(self.queue) and not inflight
                    and not self._retry_pending):
                break
            horizon = list(inflight)
            if i < len(pending):
                horizon.append(pending[i].arrival)
            if self._retry_pending:
                horizon.append(min(t for t, _ in self._retry_pending))
            now = min(t for t in horizon if t > now)
        self.completed.sort(key=lambda c: (c.finish, c.request.rid))
        return self.completed

    @property
    def wall_time(self) -> float:
        """Last completion time of the serviced trace (0.0 if none ran)."""
        return max((c.finish for c in self.completed), default=0.0)
