"""Continuous batching: coalesce compatible requests into one execution.

Two requests are *compatible* when they resolve to the same execution
configuration — ``(N, dtype, P, ML, B, Q, G, comm_algorithm)`` — so a
batch of k of them runs as one plan with a leading batch axis: every
BatchedGEMM stacks k problems, every collective carries k payloads,
while launch count and per-launch latency stay those of a single
transform.  That amortization is the Figure-1 BatchedGEMM story applied
across *requests* instead of across FMM boxes, and it is where the
service's throughput win at latency-bound sizes comes from.

The policy is continuous batching: whenever the scheduler has a free
issue slot it drains up to ``max_batch`` requests compatible with the
queue head — no timers, no artificial waiting for a batch to "fill".
Deadline classes shape who the head *is* (the queue serves interactive
first); the batcher never delays the head to improve packing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import FmmFftPlan
from repro.serve.cache import PlanCache
from repro.serve.queue import AdmissionQueue
from repro.serve.request import TransformRequest
from repro.util.validation import ParameterError


@dataclass(frozen=True)
class Batch:
    """One coalesced execution: k requests sharing a plan.

    ``setup_time`` is the modeled host-side planning cost this batch
    actually incurred (search + operator build on cold paths, 0.0 when
    fully warm); the scheduler adds it to the batch's release time.
    """

    bid: int
    requests: tuple[TransformRequest, ...]
    plan: FmmFftPlan = field(repr=False)
    comm_algorithm: str
    setup_time: float

    @property
    def k(self) -> int:
        """Batch size (number of coalesced requests)."""
        return len(self.requests)


class Batcher:
    """Form batches from an :class:`AdmissionQueue` through a
    :class:`PlanCache`.

    Parameters
    ----------
    cache:
        Plan/wisdom cache; the sole source of plans (lint rule 8).
    max_batch:
        Largest coalesced batch.
    batching:
        False degrades to one-request batches (the unbatched baseline
        arm in ``bench_serve``).
    """

    def __init__(self, cache: PlanCache, max_batch: int = 8,
                 batching: bool = True):
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        self.cache = cache
        self.max_batch = max_batch
        self.batching = batching
        # (N, dtype) -> compat key; resolution is deterministic for a
        # fixed machine, so memoizing keeps compat probes from charging
        # the cache counters once per queued request per issue attempt
        self._key_memo: dict[tuple, tuple] = {}
        self._next_bid = 0
        #: (bid, k, N) of every batch formed, in issue order
        self.formed: list[tuple[int, int, int]] = []

    def compat_key(self, req: TransformRequest) -> tuple:
        """The full compatibility key a request resolves to.

        ``(N, dtype, P, ML, B, Q, G, comm_algorithm)``: requests with
        equal keys can share one batched execution.  Under a fixed
        machine and wisdom store the parameters are a pure function of
        (N, dtype), so this is also the wisdom key's resolution.
        """
        memo_key = (req.N, np.dtype(req.dtype).name)
        hit = self._key_memo.get(memo_key)
        if hit is not None:
            return hit
        params, alg, _ = self.cache.resolve(req.N, req.dtype)
        key = (req.N, np.dtype(req.dtype).name, params["P"], params["ML"],
               params["B"], params["Q"], self.cache.spec.num_devices, alg)
        self._key_memo[memo_key] = key
        return key

    def next_batch(self, queue: AdmissionQueue, now: float) -> Batch | None:
        """Drain the next batch (None if the queue is empty).

        The queue head is always served; up to ``max_batch - 1`` more
        requests with the head's compatibility key ride along.  The
        plan is resolved exactly once, *before* the compatibility scan,
        so cold resolves charge their setup to this batch; the scan
        itself filters on (N, dtype), which under a fixed machine and
        wisdom store equals full-key equality without re-resolving (a
        probe resolve would warm the wisdom and quietly erase the
        search penalty the head is about to owe).
        """
        head = queue.head()
        if head is None:
            return None
        # stamp the cache's telemetry clock so hit/miss/search counters
        # carry this batch's issue time (its methods take no `now`)
        self.cache.sim_now = now
        plan, alg, setup = self.cache.plan_for(head.N, head.dtype)
        self._key_memo[(head.N, np.dtype(head.dtype).name)] = (
            head.N, np.dtype(head.dtype).name, plan.P, plan.ML, plan.B,
            plan.Q, self.cache.spec.num_devices, alg,
        )
        if self.batching:
            reqs = queue.take(
                now,
                lambda r: r.N == head.N
                and np.dtype(r.dtype) == np.dtype(head.dtype),
                self.max_batch,
            )
        else:
            reqs = queue.take(now, lambda r: r is head, 1)
        bid = self._next_bid
        self._next_bid += 1
        self.formed.append((bid, len(reqs), head.N))
        return Batch(bid=bid, requests=tuple(reqs), plan=plan,
                     comm_algorithm=alg, setup_time=setup)
