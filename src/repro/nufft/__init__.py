"""Nonequispaced FFTs — the P = 1 ancestor of the FMM-FFT.

Section 2 of the paper: "This FMM-FFT appears to be a generalization of
a previous algorithm by Dutt et al. [7] for nonequispaced FFTs, which
can be interpreted as Edelman's formulation with P = 1."  This package
implements that ancestor with the same machinery:

- :mod:`repro.nufft.nonuniform_fmm` — a periodic 1D FMM for the
  cotangent kernel ``cot(pi (x - y))`` with *arbitrary* source and
  target positions on [0, 1): the same Chebyshev M2M/M2L/L2L operators
  as the FMM-FFT (they are position-independent), with per-box S2M/L2T
  built from the actual points.
- :mod:`repro.nufft.barycentric` — trigonometric barycentric
  interpolation on equispaced nodes, whose weights are exactly the
  cotangent kernel (Henrici's formula) — the bridge between FFTs and
  the cot FMM.
- :mod:`repro.nufft.transforms` — :func:`nufft2` (uniform coefficients
  evaluated at nonuniform points: FFT + FMM-accelerated barycentric
  interpolation) and :func:`nufft1_adjoint` (its exact adjoint:
  FMM-accelerated spreading + FFT), both O(N log N + M).
"""

from __future__ import annotations

from repro.nufft.nonuniform_fmm import NonuniformPeriodicFMM
from repro.nufft.barycentric import trig_barycentric_dense
from repro.nufft.transforms import nufft1_adjoint, nufft2, nudft2_direct

__all__ = [
    "NonuniformPeriodicFMM",
    "nudft2_direct",
    "nufft1_adjoint",
    "nufft2",
    "trig_barycentric_dense",
]
