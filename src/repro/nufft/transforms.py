"""Nonequispaced discrete Fourier transforms (Dutt-Rokhlin style).

Conventions (matching the common NUFFT literature):

- **type 2** (:func:`nufft2`): given uniform Fourier coefficients
  ``c_k`` for ``k = -n/2 .. n/2 - 1``, evaluate::

      f(x_j) = sum_k c_k exp(2 pi i k x_j)

  at arbitrary points ``x_j`` in [0, 1).  Implemented as: zero-pad the
  spectrum by ``sigma`` (so the signal is strictly below the fine
  grid's Nyquist), one uniform inverse FFT onto the fine grid, then
  FMM-accelerated barycentric interpolation — Dutt-Rokhlin, i.e.
  "Edelman's formulation with P = 1".

- **type 1 adjoint** (:func:`nufft1_adjoint`): the exact adjoint of
  type 2::

      c_k = sum_j w_j exp(-2 pi i k x_j)

  implemented by transposing the interpolation (FMM-accelerated
  spreading onto the fine grid) followed by one uniform FFT.

Both are O(n log n + m) with accuracy set by the FMM order Q —
"the ability ... to specify the error a priori regardless of the
complexity or distribution of the input" (Section 2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.fftcore.plan import LocalFFTPlan
from repro.nufft.barycentric import HIT_TOL
from repro.nufft.nonuniform_fmm import NonuniformPeriodicFMM
from repro.util.bitmath import next_pow2
from repro.util.validation import ParameterError


def _fine_grid_size(n: int, sigma: float) -> int:
    return next_pow2(max(int(math.ceil(sigma * n)), 2 * n))


def _pad_spectrum(c: np.ndarray, nf: int) -> np.ndarray:
    """Centered zero-pad of coefficients k = -n/2..n/2-1 into length nf,
    stored in FFT (wrap-around) order."""
    n = c.shape[0]
    spec = np.zeros(nf, dtype=np.complex128)
    half = n // 2
    spec[:half] = c[half:]          # k = 0 .. n/2-1
    spec[nf - half :] = c[:half]    # k = -n/2 .. -1
    return spec


def nudft2_direct(c: np.ndarray, x: np.ndarray) -> np.ndarray:
    """O(n m) direct type-2 evaluation — the oracle."""
    c = np.asarray(c, dtype=np.complex128)
    n = c.shape[0]
    if n % 2:
        raise ParameterError(f"coefficient count must be even, got {n}")
    if n * np.asarray(x).size > 8_000_000:
        raise ParameterError("nudft2_direct refused: problem too large")
    k = np.arange(-n // 2, n // 2)
    x = np.asarray(x, dtype=np.float64).ravel()
    return np.exp(2j * np.pi * np.outer(x, k)) @ c


def nufft2(
    c: np.ndarray,
    x: np.ndarray,
    sigma: float = 2.0,
    Q: int = 16,
    B: int = 3,
) -> np.ndarray:
    """Fast type-2 NUDFT: coefficients -> samples at nonuniform points.

    Parameters
    ----------
    c:
        Even-length coefficient vector, ``k = -n/2 .. n/2 - 1``.
    x:
        Evaluation points in [0, 1) (any order, repeats allowed).
    sigma:
        Oversampling factor (>= 1.5; 2 recommended).
    Q, B:
        FMM order and base level (Q = 16 gives ~1e-13).
    """
    c = np.asarray(c, dtype=np.complex128)
    n = c.shape[0]
    if n % 2:
        raise ParameterError(f"coefficient count must be even, got {n}")
    if sigma < 1.5:
        raise ParameterError(f"sigma must be >= 1.5, got {sigma}")
    nf = _fine_grid_size(n, sigma)
    spec = _pad_spectrum(c, nf)
    grid = LocalFFTPlan(nf).inverse(spec) * nf  # sum_k spec_k e^{+2pi i k m/nf}

    from repro.nufft.barycentric import trig_barycentric_fmm

    return trig_barycentric_fmm(grid, x, Q=Q, B=B)


def nufft1_adjoint(
    w: np.ndarray,
    x: np.ndarray,
    n: int,
    sigma: float = 2.0,
    Q: int = 16,
    B: int = 3,
) -> np.ndarray:
    """Fast type-1 (adjoint of type 2): samples -> coefficients.

    Computes ``c_k = sum_j w_j exp(-2 pi i k x_j)`` for
    ``k = -n/2 .. n/2 - 1`` by transposing every step of :func:`nufft2`:
    spread through the transposed barycentric weights onto the fine
    grid (two FMM passes: one for the denominators at the points, one
    for the spreading), then one uniform FFT and spectrum truncation.
    """
    w = np.asarray(w, dtype=np.complex128).ravel()
    x = np.asarray(x, dtype=np.float64).ravel() % 1.0
    if w.shape != x.shape:
        raise ParameterError(f"weights {w.shape} and points {x.shape} differ")
    if n % 2:
        raise ParameterError(f"coefficient count must be even, got {n}")
    nf = _fine_grid_size(n, sigma)
    t = np.arange(nf) / nf
    sign = (-1.0) ** np.arange(nf)

    j_near = np.round(x * nf).astype(np.intp) % nf
    hits = np.abs(x * nf - np.round(x * nf)) < HIT_TOL

    L = max(B, int(math.log2(nf)) - 4)
    # denominators D(x_j) = sum_m (-1)^m cot(pi (x_j - t_m))
    fwd = NonuniformPeriodicFMM(t, x[~hits] if (~hits).any() else t[:1],
                                L=L, B=min(B, L), Q=Q)
    grid = np.zeros(nf, dtype=np.complex128)
    if (~hits).any():
        den = fwd.apply(sign.astype(np.float64))
        coeff = w[~hits] / den
        # spread: g_m = (-1)^m sum_j coeff_j cot(pi (x_j - t_m))
        #             = -(-1)^m sum_j coeff_j cot(pi (t_m - x_j))
        rev = NonuniformPeriodicFMM(x[~hits], t, L=L, B=min(B, L), Q=Q)
        grid -= sign * rev.apply(coeff)
    if hits.any():
        np.add.at(grid, j_near[hits], w[hits])

    spec = LocalFFTPlan(nf).forward(grid)  # sum_m g_m e^{-2pi i k m/nf}
    half = n // 2
    out = np.empty(n, dtype=np.complex128)
    out[half:] = spec[:half]
    out[:half] = spec[nf - half :]
    return out


class ClusterNufft2:
    """Type-2 NUFFT as a (single-device) cluster pipeline.

    The host-path :func:`nufft2` runs its three stages — centered pad,
    fine-grid inverse FFT, FMM-accelerated barycentric evaluation — as
    plain NumPy calls, invisible to the scheduling machinery.  This
    plan issues the same three stages as chained ``launch`` ops on a
    G = 1 :class:`~repro.machine.cluster.VirtualCluster`, so the NUFFT
    gets a ledger, regions, hazard checking, and (the point) an IR
    capture like every other pipeline.  Outputs are bit-identical to
    :func:`nufft2` — each stage closure calls the exact same helpers.

    Parameters
    ----------
    n:
        Even coefficient count (fixed at plan time).
    m:
        Number of evaluation points (fixed at plan time).
    cluster:
        A G = 1 cluster (execute or timing-only).
    sigma, Q, B:
        As for :func:`nufft2`.
    """

    def __init__(self, n: int, m: int, cluster, sigma: float = 2.0,
                 Q: int = 16, B: int = 3):
        if cluster.G != 1:
            raise ParameterError(
                f"ClusterNufft2 is a single-device pipeline, got G={cluster.G}")
        if n % 2:
            raise ParameterError(f"coefficient count must be even, got {n}")
        if sigma < 1.5:
            raise ParameterError(f"sigma must be >= 1.5, got {sigma}")
        if m < 1:
            raise ParameterError(f"need at least one point, got m={m}")
        self.n, self.m, self.cl = n, m, cluster
        self.sigma, self.Q, self.B = sigma, Q, B
        self.nf = _fine_grid_size(n, sigma)
        self._plan = LocalFFTPlan(self.nf)  # twiddles built at plan time

    def stage_in(self, c: np.ndarray, x: np.ndarray, key: str = "nufft") -> None:
        """Place coefficients and points into device buffers (host-side)."""
        c = np.asarray(c, dtype=np.complex128)
        x = np.asarray(x, dtype=np.float64).ravel()
        if c.shape != (self.n,):
            raise ParameterError(f"coefficients must have shape ({self.n},), got {c.shape}")
        if x.shape != (self.m,):
            raise ParameterError(f"points must have shape ({self.m},), got {x.shape}")
        dev = self.cl.dev(0)
        dev[f"{key}.c"] = c
        dev[f"{key}.x"] = x

    def finalize(self, key: str = "nufft") -> np.ndarray:
        """Read the evaluated samples back from the device (host-side)."""
        return np.asarray(self.cl.dev(0)[f"{key}.out"])

    def run(self, c: np.ndarray | None = None, x: np.ndarray | None = None,
            key: str = "nufft") -> np.ndarray | None:
        """Execute the three-stage pipeline; returns samples or None."""
        from repro.fftcore.flops import fft_flops, fft_mops
        from repro.nufft.barycentric import trig_barycentric_fmm

        cl, n, nf, m = self.cl, self.n, self.nf, self.m
        if cl.execute:
            if c is None or x is None:
                raise ParameterError("execute-mode cluster requires input data")
            self.stage_in(c, x, key)
        else:
            dev = cl.dev(0)
            dev.alloc(f"{key}.c", (n,), np.complex128)
            dev.alloc(f"{key}.x", (m,), np.float64)
        plan, Q, B = self._plan, self.Q, self.B

        def pad_fn(cluster) -> None:
            d = cluster.dev(0)
            d[f"{key}.spec"] = _pad_spectrum(np.asarray(d[f"{key}.c"]), nf)

        def ifft_fn(cluster) -> None:
            d = cluster.dev(0)
            d[f"{key}.grid"] = plan.inverse(np.asarray(d[f"{key}.spec"])) * nf

        def eval_fn(cluster) -> None:
            d = cluster.dev(0)
            d[f"{key}.out"] = trig_barycentric_fmm(
                np.asarray(d[f"{key}.grid"]), np.asarray(d[f"{key}.x"]),
                Q=Q, B=B)

        itemc = 16  # complex128
        with cl.region("nufft"):
            with cl.region("pad"):
                ev = cl.launch(0, "nufft.pad", "copy", flops=0.0,
                               mops=(n + nf) * itemc, dtype=np.complex128,
                               fn=pad_fn,
                               reads=[f"{key}.c"], writes=[f"{key}.spec"])
            with cl.region("ifft"):
                ev = cl.launch(0, "nufft.ifft", "fft",
                               flops=fft_flops(nf),
                               mops=fft_mops(nf, batch=1, itemsize=itemc),
                               dtype=np.complex128, after=[ev], fn=ifft_fn,
                               reads=[f"{key}.spec"], writes=[f"{key}.grid"])
            with cl.region("eval"):
                # barycentric FMM: O(Q) work per point plus the fine-grid
                # sweep; charged as a single custom kernel
                cl.launch(0, "nufft.eval", "custom",
                          flops=20.0 * Q * m + 10.0 * nf,
                          mops=(nf + 2 * m) * itemc,
                          dtype=np.complex128, after=[ev], fn=eval_fn,
                          reads=[f"{key}.grid", f"{key}.x"],
                          writes=[f"{key}.out"])
            cl.barrier()
        if cl.execute:
            return self.finalize(key)
        return None


def nudft1_direct(w: np.ndarray, x: np.ndarray, n: int) -> np.ndarray:
    """O(n m) direct type-1 adjoint — the oracle."""
    w = np.asarray(w, dtype=np.complex128).ravel()
    x = np.asarray(x, dtype=np.float64).ravel()
    if n % 2:
        raise ParameterError(f"coefficient count must be even, got {n}")
    if n * x.size > 8_000_000:
        raise ParameterError("nudft1_direct refused: problem too large")
    k = np.arange(-n // 2, n // 2)
    return np.exp(-2j * np.pi * np.outer(k, x)) @ w
