"""Periodic 1D FMM for ``cot(pi (x - y))`` with arbitrary points.

Sources ``y_j`` with weights ``w_j`` and targets ``x_i`` live on the
periodic unit interval.  The evaluation::

    u(x_i) = sum_j  w_j * cot(pi (x_i - y_j))        (x_i != y_j)

is the workhorse of trigonometric barycentric interpolation (and hence
of Dutt-Rokhlin nonequispaced FFTs).  Exact coincidences ``x_i == y_j``
contribute zero (the caller — the barycentric formula — handles node
hits separately).

The hierarchical structure is identical to the FMM-FFT's uniform FMM
(:mod:`repro.fmm`): a binary tree of ``2^L`` boxes, cousin interaction
lists at levels L..B+1, a dense all-non-neighbours pass at the base
level B >= 2, and the level-independent Chebyshev M2M/L2L translations.
Only S2M, L2T, and the near field see the actual point positions.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.chebyshev import cheb_points, lagrange_eval
from repro.fmm.interaction import COUSINS_EVEN, COUSINS_ODD, base_offsets
from repro.fmm.operators import m2m_matrix
from repro.util.validation import ParameterError, check_range


def cot_pi(x: np.ndarray) -> np.ndarray:
    """``cot(pi x)`` with exact zeros mapped to 0 (skipped pairs)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    mask = x != 0.0
    out[mask] = 1.0 / np.tan(np.pi * x[mask])
    return out


class NonuniformPeriodicFMM:
    """Plan for repeated cot-kernel evaluations with fixed geometry.

    Parameters
    ----------
    sources, targets:
        Point coordinates in [0, 1) (any order; binned internally).
    L:
        Tree depth: 2^L leaf boxes.
    B:
        Base level (2 <= B <= L).
    Q:
        Chebyshev expansion order.

    Notes
    -----
    Points are *binned*, not assumed sorted.  Accuracy matches the
    uniform FMM: geometric in Q (Figure 9's rate), because cousin boxes
    are separated by at least one box width regardless of where points
    sit inside them.
    """

    def __init__(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        L: int = 6,
        B: int = 3,
        Q: int = 16,
    ):
        sources = np.asarray(sources, dtype=np.float64).ravel()
        targets = np.asarray(targets, dtype=np.float64).ravel()
        for name, pts in (("sources", sources), ("targets", targets)):
            if pts.size == 0:
                raise ParameterError(f"{name} must be non-empty")
            if (pts < 0).any() or (pts >= 1).any():
                raise ParameterError(f"{name} must lie in [0, 1)")
        check_range("B", B, 2, L)
        check_range("Q", Q, 2, None)
        self.L, self.B, self.Q = L, B, Q
        self.nb = 1 << L
        self.src = sources
        self.tgt = targets

        # bin points: argsort by box, store box boundaries
        self._src_order, self._src_bounds = self._bin(sources)
        self._tgt_order, self._tgt_bounds = self._bin(targets)

        # geometry-dependent operators
        self._s2m_blocks = self._anterp_blocks(sources, self._src_order,
                                               self._src_bounds)
        self._l2t_blocks = [a.T for a in self._anterp_blocks(
            targets, self._tgt_order, self._tgt_bounds)]
        self._m2m = m2m_matrix(Q)
        self._m2l_cache: dict[int, np.ndarray] = {}

    # -- setup helpers -----------------------------------------------------

    def _bin(self, pts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        box = np.minimum((pts * self.nb).astype(np.intp), self.nb - 1)
        order = np.argsort(box, kind="stable")
        bounds = np.searchsorted(box[order], np.arange(self.nb + 1))
        return order, bounds

    def _anterp_blocks(self, pts, order, bounds) -> list[np.ndarray]:
        """Per-box anterpolation matrices ``(Q, n_b)`` from positions."""
        w = 1.0 / self.nb
        blocks = []
        for b in range(self.nb):
            sl = order[bounds[b] : bounds[b + 1]]
            if sl.size == 0:
                blocks.append(np.zeros((self.Q, 0)))
                continue
            local = (pts[sl] - b * w) / w * 2.0 - 1.0  # map box -> [-1, 1]
            blocks.append(lagrange_eval(self.Q, local))
        return blocks

    def _m2l_operator(self, level: int) -> np.ndarray:
        """(2, 3, Q, Q) cousin operators at a level (cached)."""
        if level not in self._m2l_cache:
            zq = cheb_points(self.Q)
            w = 1.0 / (1 << level)
            s = np.array([COUSINS_EVEN, COUSINS_ODD], dtype=np.float64)
            # kernel argument is target - source = w((z_i - z_j)/2 - s)
            arg = w * (zq[None, None, :, None] / 2.0
                       - zq[None, None, None, :] / 2.0
                       - s[:, :, None, None])
            self._m2l_cache[level] = cot_pi(arg)
        return self._m2l_cache[level]

    def _m2l_base_operator(self) -> np.ndarray:
        """(nS, Q, Q) dense base-level operators."""
        key = -self.B
        if key not in self._m2l_cache:
            zq = cheb_points(self.Q)
            w = 1.0 / (1 << self.B)
            s = np.asarray(base_offsets(self.B), dtype=np.float64)
            # target - source convention, as at the hierarchical levels
            arg = w * (zq[None, :, None] / 2.0 - zq[None, None, :] / 2.0
                       - s[:, None, None])
            self._m2l_cache[key] = cot_pi(arg)
        return self._m2l_cache[key]

    # -- application --------------------------------------------------------

    def apply(self, weights: np.ndarray) -> np.ndarray:
        """Evaluate the kernel sum for one or more weight vectors.

        Parameters
        ----------
        weights:
            Shape ``(n_src,)`` or ``(n_src, k)`` (k right-hand sides).

        Returns
        -------
        ``(n_tgt,)`` or ``(n_tgt, k)`` values.
        """
        w = np.asarray(weights)
        squeeze = w.ndim == 1
        if squeeze:
            w = w[:, None]
        if w.shape[0] != self.src.size:
            raise ParameterError(
                f"weights must have {self.src.size} rows, got {w.shape[0]}"
            )
        k = w.shape[1]
        dtype = np.result_type(w.dtype, np.float64)
        out = np.zeros((self.tgt.size, k), dtype=dtype)

        # ---- upward: S2M at the leaves, M2M to the base --------------------
        Mexp = {self.L: np.zeros((self.nb, self.Q, k), dtype=dtype)}
        so, sb = self._src_order, self._src_bounds
        for b in range(self.nb):
            sl = so[sb[b] : sb[b + 1]]
            if sl.size:
                Mexp[self.L][b] = self._s2m_blocks[b] @ w[sl]
        for ell in range(self.L - 1, self.B - 1, -1):
            child = Mexp[ell + 1]
            nbl = 1 << ell
            Mexp[ell] = np.einsum(
                "qk,bkr->bqr",
                self._m2m,
                child.reshape(nbl, 2 * self.Q, k),
            )

        # ---- M2L: cousins at L..B+1, dense at B ----------------------------
        loc = {ell: np.zeros(((1 << ell), self.Q, k), dtype=dtype)
               for ell in range(self.B, self.L + 1)}
        for ell in range(self.L, self.B, -1):
            nbl = 1 << ell
            K = self._m2l_operator(ell)
            bidx = np.arange(nbl)
            for parity, offsets in ((0, COUSINS_EVEN), (1, COUSINS_ODD)):
                tb = bidx[parity::2]
                for si, s in enumerate(offsets):
                    srcb = (tb + s) % nbl
                    loc[ell][tb] += np.einsum(
                        "ij,bjr->bir", K[parity, si], Mexp[ell][srcb]
                    )
        nbB = 1 << self.B
        KB = self._m2l_base_operator()
        bidx = np.arange(nbB)
        for si, s in enumerate(base_offsets(self.B)):
            srcb = (bidx + s) % nbB
            loc[self.B] += np.einsum("ij,bjr->bir", KB[si], Mexp[self.B][srcb])

        # ---- downward: L2L to the leaves, L2T at targets --------------------
        for ell in range(self.B, self.L):
            nbl = 1 << ell
            pair = np.einsum("kq,bqr->bkr", self._m2m.T, loc[ell])
            loc[ell + 1] += pair.reshape(2 * nbl, self.Q, k)
        to, tb_ = self._tgt_order, self._tgt_bounds
        for b in range(self.nb):
            sl = to[tb_[b] : tb_[b + 1]]
            if sl.size:
                out[sl] += self._l2t_blocks[b] @ loc[self.L][b]

        # ---- near field: direct with positions ------------------------------
        self._near_field(w, out)
        return out[:, 0] if squeeze else out

    def _near_field(self, w: np.ndarray, out: np.ndarray) -> None:
        so, sb = self._src_order, self._src_bounds
        to, tb = self._tgt_order, self._tgt_bounds
        for b in range(self.nb):
            ti = to[tb[b] : tb[b + 1]]
            if ti.size == 0:
                continue
            for s in (-1, 0, 1):
                nb_ = (b + s) % self.nb
                si = so[sb[nb_] : sb[nb_ + 1]]
                if si.size == 0:
                    continue
                diff = self.tgt[ti][:, None] - self.src[si][None, :]
                # cyclic wrap for the boundary boxes
                diff = diff - np.round(diff)
                out[ti] += cot_pi(diff) @ w[si]

    def apply_dense(self, weights: np.ndarray) -> np.ndarray:
        """O(N M) direct evaluation (test oracle; small sizes only)."""
        if self.src.size * self.tgt.size > 16_000_000:
            raise ParameterError("apply_dense refused: problem too large")
        w = np.asarray(weights)
        squeeze = w.ndim == 1
        if squeeze:
            w = w[:, None]
        diff = self.tgt[:, None] - self.src[None, :]
        diff = diff - np.round(diff)
        out = cot_pi(diff) @ w
        return out[:, 0] if squeeze else out
