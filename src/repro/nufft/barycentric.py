"""Trigonometric barycentric interpolation on equispaced nodes.

For an even number ``n`` of equispaced nodes ``t_j = j / n`` on the
periodic unit interval, the degree-balanced trigonometric interpolant of
values ``f_j`` is (Henrici)::

    p(x) = [ sum_j (-1)^j f_j cot(pi (x - t_j)) ]
           / [ sum_j (-1)^j     cot(pi (x - t_j)) ]

with ``p(t_j) = f_j`` taken as the limit at node hits.  Both sums are
cotangent-kernel evaluations — exactly what
:class:`~repro.nufft.nonuniform_fmm.NonuniformPeriodicFMM` accelerates —
which is the Dutt-Rokhlin route to nonequispaced FFTs.

The interpolant is *exact* for trigonometric polynomials
``sum_{|k| < n/2} c_k e^(2 pi i k x)`` (no Nyquist term); the transforms
layer guarantees that by oversampling.
"""

from __future__ import annotations

import numpy as np

from repro.nufft.nonuniform_fmm import NonuniformPeriodicFMM, cot_pi
from repro.util.validation import ParameterError

#: node-coincidence tolerance (fraction of the node spacing)
HIT_TOL = 1e-12


def _prep(n: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if n < 2 or n % 2:
        raise ParameterError(f"barycentric nodes must be even and >= 2, got {n}")
    x = np.asarray(x, dtype=np.float64).ravel() % 1.0
    j_near = np.round(x * n).astype(np.intp) % n
    hits = np.abs(x * n - np.round(x * n)) < HIT_TOL
    return x, j_near, hits


def trig_barycentric_dense(f: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Direct O(n m) barycentric evaluation (oracle / small problems)."""
    f = np.asarray(f)
    n = f.shape[0]
    x, j_near, hits = _prep(n, x)
    t = np.arange(n) / n
    sign = (-1.0) ** np.arange(n)
    diff = x[:, None] - t[None, :]
    C = cot_pi(diff - np.round(diff)) * sign[None, :]
    num = C @ f
    den = C.sum(axis=1)
    out = np.empty(x.shape, dtype=np.result_type(f.dtype, np.float64))
    ok = ~hits
    out[ok] = num[ok] / den[ok]
    out[hits] = f[j_near[hits]]
    return out


def trig_barycentric_fmm(
    f: np.ndarray,
    x: np.ndarray,
    L: int | None = None,
    B: int = 3,
    Q: int = 16,
) -> np.ndarray:
    """FMM-accelerated barycentric evaluation, O((n + m) Q ...).

    Numerator and denominator ride the same FMM as two right-hand
    sides.  Node coincidences are detected and patched exactly.
    """
    f = np.asarray(f)
    n = f.shape[0]
    x, j_near, hits = _prep(n, x)
    if L is None:
        import math

        L = max(B, int(math.log2(max(n, 2))) - 4)
    t = np.arange(n) / n
    sign = (-1.0) ** np.arange(n)
    fmm = NonuniformPeriodicFMM(t, x, L=L, B=min(B, L), Q=Q)
    rhs = np.stack([sign * f, sign.astype(np.result_type(f.dtype, np.float64))],
                   axis=1)
    sums = fmm.apply(rhs)
    out = np.empty(x.shape, dtype=np.result_type(f.dtype, np.float64))
    ok = ~hits
    out[ok] = sums[ok, 0] / sums[ok, 1]
    out[hits] = f[j_near[hits]]
    return out
