"""Repo-specific AST lint: the numeric discipline the kernels rely on.

Twelve rules, each targeting a failure mode this codebase has actually
to guard against (run with ``python tools/lint.py src``):

``future-annotations``
    Every module starts with ``from __future__ import annotations`` so
    ``X | None`` annotations stay cheap strings on all supported
    Pythons.
``bare-except``
    ``except:`` swallows ``KeyboardInterrupt`` during hour-long sweeps;
    catch something.
``mutable-default``
    ``def f(x=[])`` aliases state across calls — plans and caches here
    are long-lived, so this bites.
``np-fft``
    ``np.fft`` may only be called inside :mod:`repro.fftcore` (the
    backend and its reference oracles).  Everything else must route
    through the library's own transforms, or the reproduction silently
    stops reproducing.
``dtype-discipline``
    In kernel paths (``core/``, ``dfft/``, ``fmm/``, ``fftcore/``):
    no dtype-less ``np.zeros``/``np.empty``/``np.ones``/``np.full``
    (defaults to float64 and upcasts complex64 pipelines), and no bare
    ``np.complex128`` literal unless the same statement also handles
    ``np.complex64`` (i.e. it is explicit precision dispatch, not a
    silent upcast).
``launch-declares``
    Every ``.launch`` / ``.sendrecv`` / ``.alltoall`` / ``.allgather``
    call site passes ``reads=`` and ``writes=`` so the hazard sanitizer
    can certify the schedule (and the call site documents its
    data-flow).
``raw-comm``
    Pipelines (``core/``, ``dfft/``, ``fmm/``) must issue collectives
    through :mod:`repro.comm` (receiver spelled ``comm``), never the raw
    :class:`~repro.machine.cluster.VirtualCluster` methods — raw calls
    bypass the algorithm knob, topology routing, and the comm_log
    measured-vs-model join.  ``._collective`` is internal to the machine
    and comm layers and is flagged everywhere else.

``serve-plan-cache``
    Serving code (``repro/serve/``) must obtain plans from the
    :class:`~repro.serve.cache.PlanCache`, never construct
    ``FmmFftPlan`` directly — a stray construction silently bypasses
    the wisdom store and falsifies the hit-rate the service reports.
    ``repro/serve/cache.py`` is the one sanctioned construction site.

``fault-injection-site``
    Synthetic faults originate only in :mod:`repro.faults` and are
    consumed only by the machine/comm layers: pipelines and serving
    code must not query fault outcomes (``.message_outcome`` /
    ``.collective_outcome``) or construct ``CommFailure`` themselves.
    A pipeline raising its own faults bypasses the injector's seeded
    event stream, so the run stops being replay-deterministic and the
    fault ledger stops being truthful.

``deterministic-time``
    No wall clock (``time.time()``, ``datetime.now()``) and no unseeded
    randomness (``np.random.*`` global-state draws, unseeded
    ``default_rng()``, the stdlib ``random`` module) outside
    :mod:`repro.util.prng` and ``benchmarks/``.  The simulator's only
    clock is virtual and every stochastic choice is a seeded draw; a
    stray wall-clock read or unseeded sample silently breaks the
    ``repro chaos --replay-check`` bit-identity gate.

``telemetry-registry``
    Metric series (``CounterSeries`` / ``GaugeSeries`` /
    ``HistogramSeries``) are constructed only inside
    :mod:`repro.obs.telemetry` — everyone else goes through a
    :class:`~repro.obs.telemetry.MetricsRegistry`, whose keyed lookup
    is what makes snapshots complete and merges deterministic.  A
    free-floating series never lands in any snapshot, so ``repro top``
    and the exporters silently under-report.

``ir-capture-site``
    IR nodes and graphs (:class:`~repro.ir.graph.IRNode` /
    :class:`~repro.ir.graph.IRGraph`) are constructed only inside
    :mod:`repro.ir` — everyone else obtains graphs through the capture
    entry points (:func:`repro.ir.capture.capture`,
    :mod:`repro.ir.pipelines`).  A hand-assembled graph skips capture's
    dependency resolution and :meth:`~repro.ir.graph.IRGraph.certify`'s
    scratch-replay/hazard/prealloc gauntlet, so replaying it can
    silently diverge from any interpreted run.

Any rule can be waived on one line with ``# lint: allow-<rule>``; a
waiver naming no known rule is itself reported (``unknown-waiver``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: rules that only apply under these path fragments (kernel code)
KERNEL_PATHS = ("repro/core/", "repro/dfft/", "repro/fmm/", "repro/fftcore/")

#: the only package allowed to touch numpy.fft
NP_FFT_ALLOWED = "repro/fftcore/"

#: VirtualCluster methods that must declare their buffer access sets
COMM_METHODS = ("launch", "sendrecv", "alltoall", "allgather")

#: pipeline packages that must route collectives through repro.comm
PIPELINE_PATHS = ("repro/core/", "repro/dfft/", "repro/fmm/")

#: the only packages allowed to touch the raw collective machinery
RAW_COMM_ALLOWED = ("repro/machine/", "repro/comm/")

#: cluster comm entry points covered by the raw-comm rule
RAW_COMM_METHODS = ("sendrecv", "alltoall", "allgather")

#: serving code whose plans must come from the plan cache
SERVE_PATHS = ("repro/serve/",)

#: the one serve module allowed to construct plans (the cache itself)
SERVE_PLAN_ALLOWED = "repro/serve/cache.py"

#: the only packages allowed to draw fault outcomes or raise CommFailure
FAULT_RAISE_ALLOWED = ("repro/faults/", "repro/comm/", "repro/machine/")

#: injector outcome queries covered by the fault-injection-site rule
FAULT_OUTCOME_METHODS = ("message_outcome", "collective_outcome")

#: the only places allowed to touch wall clocks / unseeded randomness
DETERMINISTIC_TIME_ALLOWED = ("repro/util/prng.py", "benchmarks/")

#: metric series classes that must be built via the registry
TELEMETRY_SERIES = ("CounterSeries", "GaugeSeries", "HistogramSeries")

#: the one module allowed to construct series directly (the registry)
TELEMETRY_ALLOWED = "repro/obs/telemetry.py"

#: IR node/graph classes whose construction is confined to repro.ir
IR_TYPES = ("IRNode", "IRGraph")

#: the only package allowed to build IR nodes/graphs (the IR itself)
IR_CONSTRUCT_ALLOWED = "repro/ir/"

#: every waivable rule; a pragma naming anything else is unknown-waiver
RULES = (
    "bare-except",
    "deterministic-time",
    "dtype-discipline",
    "fault-injection-site",
    "future-annotations",
    "ir-capture-site",
    "launch-declares",
    "mutable-default",
    "np-fft",
    "raw-comm",
    "serve-plan-cache",
    "telemetry-registry",
)

_PRAGMA = re.compile(r"#\s*lint:\s*allow-([a-z0-9-]+)")


@dataclass(frozen=True)
class LintIssue:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _pragmas(source: str) -> dict[int, set[str]]:
    """Per-line ``# lint: allow-<rule>`` waivers."""
    out: dict[int, set[str]] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        for m in _PRAGMA.finditer(text):
            out.setdefault(i, set()).add(m.group(1))
    return out


def _is_np(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def _in_kernel_path(path: str) -> bool:
    p = path.replace("\\", "/")
    return any(frag in p for frag in KERNEL_PATHS)


class _Checker(ast.NodeVisitor):
    """Single-pass visitor that applies every node-local rule."""

    def __init__(self, path: str, source: str, pragmas: dict[int, set[str]]):
        self.path = path
        self.source = source
        self.pragmas = pragmas
        self.issues: list[LintIssue] = []
        self.kernel = _in_kernel_path(path)
        p = path.replace("\\", "/")
        self.np_fft_ok = NP_FFT_ALLOWED in p
        self.pipeline = any(frag in p for frag in PIPELINE_PATHS)
        self.raw_comm_ok = any(frag in p for frag in RAW_COMM_ALLOWED)
        self.serve = (
            any(frag in p for frag in SERVE_PATHS) and SERVE_PLAN_ALLOWED not in p
        )
        self.fault_raise_ok = any(frag in p for frag in FAULT_RAISE_ALLOWED)
        self.det_time_ok = any(frag in p for frag in DETERMINISTIC_TIME_ALLOWED)
        self.telemetry_ok = TELEMETRY_ALLOWED in p
        self.ir_ok = IR_CONSTRUCT_ALLOWED in p
        self._stmt: ast.stmt | None = None

    # -- plumbing ------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if rule in self.pragmas.get(line, ()):
            return
        self.issues.append(LintIssue(self.path, line, rule, message))

    def visit(self, node: ast.AST):  # noqa: D102 - ast.NodeVisitor hook
        if isinstance(node, ast.stmt):
            prev, self._stmt = self._stmt, node
            super().visit(node)
            self._stmt = prev
        else:
            super().visit(node)

    # -- rules ---------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(node, "bare-except",
                         "bare 'except:' -- name the exception(s)")
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for d in defaults:
            bad = isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(d, ast.Call)
                and isinstance(d.func, ast.Name)
                and d.func.id in ("list", "dict", "set")
            )
            if bad:
                self._report(
                    d, "mutable-default",
                    f"mutable default argument in {getattr(node, 'name', '<lambda>')}()",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # np.fft containment
        if node.attr == "fft" and _is_np(node.value) and not self.np_fft_ok:
            self._report(
                node, "np-fft",
                "numpy.fft outside repro.fftcore -- use the library's own "
                "transforms or repro.fftcore.oracle",
            )
        # silent complex64 -> complex128 upcasts in kernel code
        if node.attr == "complex128" and _is_np(node.value) and self.kernel:
            seg = ""
            if self._stmt is not None:
                seg = ast.get_source_segment(self.source, self._stmt) or ""
            if "complex64" not in seg:
                self._report(
                    node, "dtype-discipline",
                    "bare np.complex128 in a kernel path -- dispatch on the "
                    "input dtype (or waive with '# lint: allow-dtype-discipline')",
                )
        self.generic_visit(node)

    def _check_deterministic_time(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # wall clock: time.time() / time.time_ns()
        if (
            isinstance(base, ast.Name)
            and base.id == "time"
            and func.attr in ("time", "time_ns")
        ):
            self._report(
                node, "deterministic-time",
                f"time.{func.attr}() reads the wall clock -- simulated time "
                "is the only clock here (repro chaos --replay-check breaks)",
            )
        # datetime.now()/utcnow(), date.today()
        if func.attr in ("now", "utcnow", "today"):
            owner = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else "")
            if owner in ("datetime", "date"):
                self._report(
                    node, "deterministic-time",
                    f"{owner}.{func.attr}() reads the wall clock -- "
                    "replayed runs must be bit-identical",
                )
        # numpy global-state / unseeded randomness
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and _is_np(base.value)
        ):
            if func.attr == "default_rng":
                seed = node.args[0] if node.args else None
                for kw in node.keywords:
                    if kw.arg == "seed":
                        seed = kw.value
                if seed is None or (
                    isinstance(seed, ast.Constant) and seed.value is None
                ):
                    self._report(
                        node, "deterministic-time",
                        "unseeded np.random.default_rng() -- draws become "
                        "run-dependent; pass an explicit seed (see "
                        "repro.util.prng)",
                    )
            else:
                self._report(
                    node, "deterministic-time",
                    f"np.random.{func.attr}() uses numpy's global RNG state "
                    "-- use a seeded np.random.default_rng(seed) generator",
                )
        # the stdlib random module (global state, seeded from the OS)
        if isinstance(base, ast.Name) and base.id == "random":
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    self._report(
                        node, "deterministic-time",
                        "random.Random() without a seed -- draws become "
                        "run-dependent",
                    )
            elif func.attr.islower():
                self._report(
                    node, "deterministic-time",
                    f"random.{func.attr}() uses the OS-seeded global RNG -- "
                    "use a seeded generator (see repro.util.prng)",
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not self.det_time_ok:
            self._check_deterministic_time(node)
        # synthetic faults originate only in repro.faults / comm / machine
        if not self.fault_raise_ok:
            if isinstance(func, ast.Name) and func.id == "CommFailure":
                self._report(
                    node, "fault-injection-site",
                    "CommFailure constructed outside the fault/comm/machine "
                    "layers -- synthetic faults must come from the seeded "
                    "injector, or replay determinism is lost",
                )
            if (
                isinstance(func, ast.Attribute)
                and func.attr in FAULT_OUTCOME_METHODS
            ):
                self._report(
                    node, "fault-injection-site",
                    f".{func.attr}() outside the fault/comm/machine layers "
                    "-- only the comm layer may draw fault outcomes (each "
                    "draw consumes the injector's seeded stream)",
                )
        # serving code must get plans from the cache, not build them
        if self.serve and (
            (isinstance(func, ast.Name) and func.id == "FmmFftPlan")
            or (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "FmmFftPlan"
            )
        ):
            self._report(
                node, "serve-plan-cache",
                "FmmFftPlan constructed in serving code -- resolve plans "
                "through repro.serve.cache.PlanCache so wisdom and hit-rate "
                "accounting stay truthful",
            )
        # metric series come only from the registry's keyed lookup
        if not self.telemetry_ok:
            series = None
            if isinstance(func, ast.Name) and func.id in TELEMETRY_SERIES:
                series = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in TELEMETRY_SERIES
            ):
                series = func.attr
            if series is not None:
                self._report(
                    node, "telemetry-registry",
                    f"{series} constructed outside repro.obs.telemetry -- "
                    "get series from a MetricsRegistry "
                    "(.counter/.gauge/.histogram) so they land in snapshots",
                )
        # IR nodes/graphs are built only by the capture layer
        if not self.ir_ok:
            ir_type = None
            if isinstance(func, ast.Name) and func.id in IR_TYPES:
                ir_type = func.id
            elif isinstance(func, ast.Attribute) and func.attr in IR_TYPES:
                ir_type = func.attr
            if ir_type is not None:
                self._report(
                    node, "ir-capture-site",
                    f"{ir_type} constructed outside repro.ir -- graphs come "
                    "from the capture entry points (repro.ir.capture / "
                    "repro.ir.pipelines); hand-built graphs skip certify()",
                )
        if isinstance(func, ast.Attribute):
            # dtype-less allocations in kernel code
            if (
                self.kernel
                and func.attr in ("zeros", "empty", "ones", "full")
                and _is_np(func.value)
            ):
                need_pos = 3 if func.attr == "full" else 2
                has_dtype = any(kw.arg == "dtype" for kw in node.keywords) or (
                    len(node.args) >= need_pos
                )
                if not has_dtype:
                    self._report(
                        node, "dtype-discipline",
                        f"np.{func.attr} without an explicit dtype defaults to "
                        "float64 and silently upcasts complex64 pipelines",
                    )
            # launch/comm call sites must declare their data-flow
            if func.attr in COMM_METHODS:
                kws = {kw.arg for kw in node.keywords}
                missing = [k for k in ("reads", "writes") if k not in kws]
                if missing:
                    self._report(
                        node, "launch-declares",
                        f".{func.attr}() call missing {'/'.join(missing)} "
                        "declaration(s) -- the hazard sanitizer needs every "
                        "op's buffer access sets",
                    )
            # pipelines must route collectives through repro.comm
            via_comm = isinstance(func.value, ast.Name) and func.value.id == "comm"
            if func.attr == "_collective" and not self.raw_comm_ok:
                self._report(
                    node, "raw-comm",
                    "._collective() is internal to repro.machine/repro.comm "
                    "-- use the repro.comm collectives",
                )
            elif (
                self.pipeline
                and not self.raw_comm_ok
                and func.attr in RAW_COMM_METHODS
                and not via_comm
            ):
                self._report(
                    node, "raw-comm",
                    f"raw .{func.attr}() in a pipeline -- issue it through "
                    "repro.comm so the algorithm knob, topology routing, and "
                    "comm_log join apply",
                )
        self.generic_visit(node)


def _check_future_import(path: str, tree: ast.Module,
                         pragmas: dict[int, set[str]]) -> list[LintIssue]:
    body = tree.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]  # module docstring carries no annotations
    if not body:
        return []
    for node in body:
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            if any(a.name == "annotations" for a in node.names):
                return []
    if "future-annotations" in pragmas.get(1, ()):
        return []
    return [LintIssue(path, 1, "future-annotations",
                      "missing 'from __future__ import annotations'")]


def lint_source(path: str, source: str) -> list[LintIssue]:
    """Lint one module's source text; returns sorted issues."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintIssue(path, exc.lineno or 1, "syntax",
                          f"could not parse: {exc.msg}")]
    pragmas = _pragmas(source)
    checker = _Checker(path, source, pragmas)
    checker.visit(tree)
    issues = checker.issues + _check_future_import(path, tree, pragmas)
    known = set(RULES)
    for line, names in pragmas.items():
        for name in sorted(names - known):
            issues.append(LintIssue(
                path, line, "unknown-waiver",
                f"'# lint: allow-{name}' names no known rule -- a typo "
                "here silently waives nothing",
            ))
    issues.sort(key=lambda i: (i.path, i.line, i.rule))
    return issues


def lint_file(path: str | Path) -> list[LintIssue]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(str(p), p.read_text(encoding="utf-8"))


def iter_py_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    """Expand files/directories into the .py files beneath them."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Sequence[str | Path]) -> list[LintIssue]:
    """Lint every .py file under the given files/directories."""
    issues: list[LintIssue] = []
    for f in iter_py_files(paths):
        issues.extend(lint_file(f))
    return issues
