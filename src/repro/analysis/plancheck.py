"""Static plan verifier: certify a CommPlan before any op runs.

The hazard sanitizer (:mod:`repro.analysis.hazards`) is dynamic — it
certifies one *recorded* ledger, so a comm plan that deadlocks, drops a
payload block, or reads an undefined staging buffer is caught only
after a full simulated run, and only for the one (G, topology,
algorithm) combination that executed.  This module is the static
complement: it proves schedule-level invariants from the
:class:`~repro.comm.plans.CommPlan` alone, for any machine, without
running anything.

Three families of checks, reported as :class:`~repro.analysis.findings.
Finding` rows whose rule prefix is the category:

``deadlock-*``
    Per-round send/recv matching (well-formed endpoints, no two sends
    competing for one receive slot), routing discipline for ``hier``
    node groups, messages touching lost devices, and cycle detection
    over the round-dependency graph: a message that reads a staging
    buffer produced only by a *later* round, or forwards a block that
    has not yet arrived, is a cycle — on real hardware the rendezvous
    would wait forever.
``conservation-*``
    Payload-matrix conservation.  A symbolic block-flow interpreter
    replays the rounds: every device starts with its logical blocks
    ((src, dst) pairs for an alltoall, its own origin for an
    allgather), each message must carry exactly the blocks its
    algorithm's forwarding rule prescribes (and their bytes must equal
    ``Msg.nbytes``), and at the end every logical block must have been
    delivered exactly once with nothing stranded in staging.  Wire
    bytes are cross-checked against the tuner's model inputs
    (:func:`repro.comm.plans.plan_time` on an independently rebuilt
    twin), so :func:`repro.comm.tuning.predict_time` prices exactly the
    bytes certified here.
``liveness-*``
    Buffer def-use over the declared reads/writes: reads of staging
    sub-resources (``#via``/``#fwd``/``#nd`` parts) that nothing wrote
    (dangling ``buf#part`` reads), and staging stores no later round
    consumes (dead stores).  The interpreter also computes per-device
    peak live bytes — the preallocation contract a compiled plan-IR
    executor can size its buffers from.

Certification is wired into :func:`repro.comm.plans.build_plan` behind
a verdict cache keyed by ``(spec_fingerprint, kind, algorithm)`` — plan
structure depends only on those three (payload scales every message
linearly) — so the serve warm path pays one dict lookup and never
re-verifies.  ``repro verify`` sweeps the full algorithm x G x
topology matrix from the CLI and emits the shared JSON findings
schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import Finding, finding_context
from repro.machine.spec import spec_fingerprint
from repro.util.validation import ParameterError

#: sub-resource name fragments that are plan-internal staging buffers
#: (the builders' ABI): reads of these must be produced by an earlier
#: round; anything else unmatched is assumed to be caller input.
#: ``#g``/``#x`` are the hier2 gather/exchange staging parts.
STAGING_MARKERS = ("#via", "#fwd", "#nd", "#rem", "#g", "#x")

#: per-rule cap on detail findings; the rest collapse into one summary
MAX_DETAIL_FINDINGS = 16

_TOOL = "plancheck"


class PlanCheckError(ParameterError):
    """Raised by :func:`certify_plan` when a plan fails verification."""


@dataclass(frozen=True)
class PlanCertificate:
    """Outcome of statically verifying one plan.

    ``prealloc`` is the preallocation contract: per-device peak live
    bytes (source blocks still held + staged forwards + delivered
    payload) and final resident bytes, as the plan-IR executor will
    need to size buffers without running the schedule.
    """

    algorithm: str
    kind: str
    num_devices: int
    payload: float
    wire_bytes: float
    num_messages: int
    num_rounds: int
    findings: tuple
    prealloc: dict
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        """Plain-dict summary (the ``repro verify --json`` row)."""
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "G": self.num_devices,
            "payload": self.payload,
            "wire_bytes": self.wire_bytes,
            "num_messages": self.num_messages,
            "num_rounds": self.num_rounds,
            "ok": self.ok,
            "findings": len(self.findings),
            "prealloc": dict(self.prealloc),
            "fingerprint": self.fingerprint,
        }

    def render(self, limit: int = MAX_DETAIL_FINDINGS) -> str:
        """Human-readable certificate / failure report."""
        head = (
            f"plancheck {self.kind}/{self.algorithm} G={self.num_devices}: "
            f"{self.num_messages} messages in {self.num_rounds} rounds, "
            f"{self.wire_bytes:.0f} wire bytes"
        )
        if self.ok:
            peak = self.prealloc.get("peak_live_bytes", 0.0)
            return head + f" -- certified (peak live {peak:.0f} B/device)"
        lines = [head + f" -- {len(self.findings)} finding(s)"]
        for f in self.findings[:limit]:
            lines.append(f"  [{f.rule}] {f.message}")
        if len(self.findings) > limit:
            lines.append(f"  ... {len(self.findings) - limit} more")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# findings plumbing
# ---------------------------------------------------------------------------

class _Collector:
    """Accumulates findings with a per-rule detail cap."""

    def __init__(self, base_context: tuple):
        self.base = base_context
        self.rows: list[Finding] = []
        self._suppressed: dict[str, int] = {}

    def add(self, rule: str, message: str, **ctx) -> None:
        seen = sum(1 for f in self.rows if f.rule == rule)
        if seen >= MAX_DETAIL_FINDINGS:
            self._suppressed[rule] = self._suppressed.get(rule, 0) + 1
            return
        self.rows.append(Finding(
            tool=_TOOL, rule=rule, severity="error", message=message,
            context=self.base + finding_context(**ctx)))

    def done(self) -> tuple:
        for rule, n in sorted(self._suppressed.items()):
            self.rows.append(Finding(
                tool=_TOOL, rule=rule, severity="error",
                message=f"... {n} more {rule} finding(s) suppressed",
                context=self.base))
        return tuple(self.rows)


def _root(name: str) -> str:
    return name.split("#", 1)[0]


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= 1e-6 * max(1.0, abs(a), abs(b))


# ---------------------------------------------------------------------------
# topology helpers (hier node groups)
# ---------------------------------------------------------------------------

def _hier_info(spec):
    """(node_idx, leader_of, groups) for a ``node_of`` machine, else None."""
    node_of = spec.graph.graph.get("node_of")
    if not node_of:
        return None
    nodes: dict = {}
    for dev, nd in node_of.items():
        nodes.setdefault(nd, []).append(dev)
    groups = [sorted(devs) for _, devs in sorted(nodes.items())]
    if len(groups) < 2:
        return None
    node_idx = {}
    leader_of = {}
    for i, grp in enumerate(groups):
        for g in grp:
            node_idx[g] = i
            leader_of[g] = grp[0]  # build_plan's leader convention
    return node_idx, leader_of, groups


def _relay(groups, i: int, j: int) -> int:
    """build_plan's hier2 relay convention: node i's device for node j."""
    grp = groups[i]
    return grp[j % len(grp)]


# ---------------------------------------------------------------------------
# structural checks (send/recv matching, endpoints, lost devices)
# ---------------------------------------------------------------------------

def _check_structure(plan, G: int, lost, out: _Collector) -> bool:
    """Well-formedness; returns False when interpretation is impossible."""
    ok = True
    if not plan.rounds:
        out.add("deadlock-malformed", "plan has no rounds")
        return False
    for k, rnd in enumerate(plan.rounds):
        if not rnd:
            out.add("deadlock-malformed", f"round {k} is empty", round=k)
            ok = False
        pairs = set()
        for m in rnd:
            if not (0 <= m.src < G and 0 <= m.dst < G):
                out.add("deadlock-malformed",
                        f"round {k}: message {m.src}->{m.dst} references a "
                        f"device outside 0..{G - 1}", round=k)
                ok = False
                continue
            if m.src == m.dst:
                out.add("deadlock-malformed",
                        f"round {k}: device {m.src} sends to itself", round=k)
                ok = False
            if not (m.nbytes >= 0.0 and m.nbytes == m.nbytes
                    and m.nbytes != float("inf")):
                out.add("deadlock-malformed",
                        f"round {k}: message {m.src}->{m.dst} has invalid "
                        f"byte count {m.nbytes!r}", round=k)
                ok = False
            if (m.src, m.dst) in pairs:
                out.add("deadlock-unmatched",
                        f"round {k}: two sends {m.src}->{m.dst} compete for "
                        "one receive slot (unmatched rendezvous)", round=k)
            pairs.add((m.src, m.dst))
            if m.src in lost or m.dst in lost:
                out.add("deadlock-lost-device",
                        f"round {k}: message {m.src}->{m.dst} touches a lost "
                        "device -- the rendezvous can never complete",
                        round=k)
    return ok


# ---------------------------------------------------------------------------
# buffer def-use / liveness over declared reads & writes
# ---------------------------------------------------------------------------

def _prefixes(name: str):
    """``name`` and each proper ancestor at ``#`` boundaries.

    Two buffer names conflict (:func:`~repro.analysis.hazards.
    buffers_conflict`) exactly when one is the other or an ancestor of
    the other in the ``#`` hierarchy, so conflict queries reduce to
    O(depth) dict lookups over these prefixes.
    """
    yield name
    while "#" in name:
        name = name.rsplit("#", 1)[0]
        yield name


class _RoundIndex:
    """Earliest/latest round each buffer name is touched, per device,
    supporting O(depth) conflict queries instead of linear scans."""

    def __init__(self):
        self.exact: dict = {}  # (device, name) -> (min_round, max_round)
        self.desc: dict = {}   # (device, ancestor) -> same, over descendants

    def add(self, device: int, name: str, rnd: int) -> None:
        key = (device, name)
        lo, hi = self.exact.get(key, (rnd, rnd))
        self.exact[key] = (min(lo, rnd), max(hi, rnd))
        for a in _prefixes(name):  # name is a descendant of each prefix
            key = (device, a)
            lo, hi = self.desc.get(key, (rnd, rnd))
            self.desc[key] = (min(lo, rnd), max(hi, rnd))

    def conflicts(self, device: int, name: str):
        """(min_round, max_round) over all touches conflicting with
        ``name`` on ``device``, or None when nothing conflicts."""
        spans = []
        span = self.desc.get((device, name))  # name itself + descendants
        if span is not None:
            spans.append(span)
        for p in _prefixes(name):
            if p != name:
                span = self.exact.get((device, p))  # proper ancestors
                if span is not None:
                    spans.append(span)
        if not spans:
            return None
        return (min(lo for lo, _ in spans), max(hi for _, hi in spans))


def _check_defuse(plan, out: _Collector) -> None:
    """Use-before-write, dangling staging reads, round-dependency cycles."""
    writes = _RoundIndex()
    for k, rnd in enumerate(plan.rounds):
        for m in rnd:
            for w in m.writes:
                writes.add(m.dst, w, k)
    for k, rnd in enumerate(plan.rounds):
        for m in rnd:
            for r in m.reads:
                span = writes.conflicts(m.src, r)
                if span is not None and span[0] < k:
                    continue  # defined by an earlier round
                if span is not None:
                    out.add(
                        "deadlock-cycle",
                        f"round {k}: message {m.src}->{m.dst} reads {r!r} "
                        f"which is first written in round {span[0]} -- "
                        "cyclic round dependency (data produced downstream)",
                        round=k, buffer=r)
                elif any(mark in r for mark in STAGING_MARKERS):
                    out.add(
                        "liveness-undefined-read",
                        f"round {k}: message {m.src}->{m.dst} reads staging "
                        f"sub-resource {r!r} which no message writes on "
                        f"device {m.src} (dangling read)",
                        round=k, buffer=r)
                # else: caller-provided input buffer


def _check_dead_stores(plan, staged_by_msg: dict, out: _Collector) -> None:
    """Staging stores (interpreter says the message staged blocks for
    later forwarding) must be consumed by a later round at the dst."""
    reads = _RoundIndex()
    for k, rnd in enumerate(plan.rounds):
        for m in rnd:
            for r in m.reads:
                reads.add(m.src, r, k)
    for (k, idx), nstaged in sorted(staged_by_msg.items()):
        if nstaged == 0:
            continue
        m = plan.rounds[k][idx]
        consumed = False
        for w in m.writes:
            span = reads.conflicts(m.dst, w)
            if span is not None and span[1] > k:
                consumed = True
                break
        if not consumed:
            out.add(
                "liveness-dead-store",
                f"round {k}: message {m.src}->{m.dst} stages {nstaged} "
                f"block(s) under {list(m.writes)!r} but no later round reads "
                "them on the destination (dead store)",
                round=k)


# ---------------------------------------------------------------------------
# block-flow interpreter: payload-matrix conservation
# ---------------------------------------------------------------------------

def _required_alltoall(m, hold, G: int, hier, s: float, out: _Collector,
                       k: int):
    """Blocks the algorithm's forwarding rule prescribes for one message.

    Returns (required_set, ambiguous_ok).  ``hier`` is the
    (algorithm, node_idx, leader_of, groups) tuple for hier/hier2
    plans, the algorithm name otherwise.
    """
    src, dst = m.src, m.dst
    if isinstance(hier, tuple):
        algo, node_idx, leader_of, groups = hier
        i, j = node_idx[src], node_idx[dst]
        if algo == "hier2":
            if i == j:
                # phase-0 intra delivery, the phase-1 relay gather, or
                # the phase-3 scatter; the declared bytes disambiguate
                # (gather is empty in phase 0/3, direct in phase 1).
                direct_req = {b for b in hold[src] if b[1] == dst}
                gather = {b for b in hold[src]
                          if node_idx[b[1]] != i
                          and _relay(groups, i, node_idx[b[1]]) == dst}
                for cand in (direct_req, gather, direct_req | gather):
                    if _close(len(cand) * s, m.nbytes):
                        return cand
                return direct_req | gather
            if src != _relay(groups, i, j) or dst != _relay(groups, j, i):
                out.add("deadlock-routing",
                        f"round {k}: message {src}->{dst} violates hier2 "
                        "routing (the node-pair exchange must go "
                        "relay-to-relay)", round=k)
                return set()
            # relay exchange: everything destined to dst's node
            return {b for b in hold[src] if node_idx[b[1]] == j}
        if i == j:
            if src != leader_of[src] and dst == leader_of[src]:
                # non-leader -> its leader: phase-0 intra delivery or the
                # phase-1 funnel; the declared bytes disambiguate.
                direct_req = {b for b in hold[src] if b[1] == dst}
                funnel = {b for b in hold[src]
                          if node_idx[b[1]] != node_idx[src]}
                for cand in (direct_req, funnel, direct_req | funnel):
                    if _close(len(cand) * s, m.nbytes):
                        return cand
                return direct_req | funnel
            # intra-node pairwise / leader scatter: final placement only
            return {b for b in hold[src] if b[1] == dst}
        if src == leader_of[src] and dst == leader_of[dst]:
            # leader exchange: everything destined to dst's node
            return {b for b in hold[src] if node_idx[b[1]] == node_idx[dst]}
        out.add("deadlock-routing",
                f"round {k}: message {src}->{dst} violates hierarchical "
                "routing (cross-node traffic must go leader-to-leader)",
                round=k)
        return set()
    if hier == "direct":
        return {(src, dst)}
    if hier == "ring":
        if dst != (src + 1) % G:
            out.add("deadlock-routing",
                    f"round {k}: ring message {src}->{dst} is not a "
                    "nearest-neighbour hop", round=k)
        return set(hold[src])  # store-and-forward: everything held
    # bruck: distance encodes the bit this round clears
    dist = (dst - src) % G
    kbit = dist.bit_length() - 1
    if dist == 0 or (1 << kbit) != dist:
        out.add("deadlock-routing",
                f"round {k}: bruck message {src}->{dst} at distance {dist} "
                "(not a power of two)", round=k)
        return set()
    return {b for b in hold[src] if (((b[1] - src) % G) >> kbit) & 1}


def _interpret_alltoall(plan, G: int, payload: float, hier,
                        out: _Collector):
    """Replay the rounds symbolically; returns (prealloc, staged_by_msg)."""
    s = payload / (G - 1)
    hold = [{(g, d) for d in range(G) if d != g} for g in range(G)]
    dest_index = [frozenset((o, d) for o in range(G) if o != d)
                  for d in range(G)]
    delivered: set = set()
    delivered_count = [0] * G
    peak = [float(G - 1)] * G
    staged_by_msg: dict = {}

    for k, rnd in enumerate(plan.rounds):
        incoming = []  # (dst, blocks, (k, idx))
        sent_this_round: set = set()
        for idx, m in enumerate(rnd):
            if not (0 <= m.src < G and 0 <= m.dst < G) or m.src == m.dst:
                continue  # structurally flagged already
            if hier == "ring":
                # fast path: store-and-forward carries everything held
                if m.dst != (m.src + 1) % G:
                    out.add("deadlock-routing",
                            f"round {k}: ring message {m.src}->{m.dst} is "
                            "not a nearest-neighbour hop", round=k)
                required = carried = hold[m.src]
                missing = frozenset()
                hold[m.src] = set()
            else:
                required = _required_alltoall(m, hold, G, hier, s, out, k)
                carried = required & hold[m.src]
                missing = required - carried
                hold[m.src] -= carried
            if not _close(len(required) * s, m.nbytes):
                out.add(
                    "conservation-bytes",
                    f"round {k}: message {m.src}->{m.dst} declares "
                    f"{m.nbytes:.0f} B but the {plan.algorithm} forwarding "
                    f"rule moves {len(required)} block(s) "
                    f"({len(required) * s:.0f} B)", round=k)
            for b in sorted(missing):
                if b in delivered or b in sent_this_round:
                    out.add(
                        "conservation-duplicate",
                        f"round {k}: message {m.src}->{m.dst} re-sends block "
                        f"{b} which was already forwarded or delivered",
                        round=k)
                else:
                    out.add(
                        "deadlock-cycle",
                        f"round {k}: message {m.src}->{m.dst} must forward "
                        f"block {b} which has not yet arrived at device "
                        f"{m.src} (forward-before-receive)", round=k)
            sent_this_round |= carried
            incoming.append((m.dst, carried, (k, idx)))
        for dst, blocks, mid in incoming:
            deliv = blocks & dest_index[dst]
            dups = deliv & delivered
            if dups:
                out.add("conservation-duplicate",
                        f"round {k}: {len(dups)} block(s) delivered to "
                        f"device {dst} a second time (e.g. {sorted(dups)[0]})",
                        round=k)
            delivered |= deliv
            delivered_count[dst] += len(deliv - dups)
            stage = blocks - deliv
            dups2 = stage & hold[dst]
            if dups2:
                out.add("conservation-duplicate",
                        f"round {k}: {len(dups2)} block(s) staged at device "
                        f"{dst} twice (e.g. {sorted(dups2)[0]})", round=k)
            hold[dst] |= stage
            staged_by_msg[mid] = len(stage)
        for g in range(G):
            peak[g] = max(peak[g], len(hold[g]) + delivered_count[g])

    want = G * (G - 1)
    if len(delivered) != want:
        undelivered = want - len(delivered)
        stuck = {g: sorted(hold[g])[:3] for g in range(G) if hold[g]}
        out.add(
            "conservation-missing",
            f"{undelivered} of {want} logical blocks never delivered; "
            f"blocks still held: { {g: v for g, v in list(stuck.items())[:4]} }")
    leftovers = sum(1 for g in range(G) for b in hold[g] if b[0] != g)
    if leftovers:
        out.add("conservation-missing",
                f"{leftovers} forwarded block(s) stranded in staging at "
                "the end of the plan")

    prealloc = {
        "per_device_peak_live_bytes": [p * s for p in peak],
        "per_device_final_bytes": [c * s for c in delivered_count],
        "peak_live_bytes": max(peak) * s,
    }
    return prealloc, staged_by_msg


def _required_allgather(m, hold, G: int, hier, b: float, out: _Collector,
                        k: int):
    """Origins one allgather message must carry (copies, not moves)."""
    src, dst = m.src, m.dst
    if isinstance(hier, tuple):
        algo, node_idx, leader_of, groups = hier
        if algo == "hier2":
            i, j = node_idx[src], node_idx[dst]
            if i == j:
                # phase-0 intra contribution or the phase-2 relay
                # broadcast of foreign origins; bytes disambiguate.
                contrib = {src} - hold[dst]
                forward = hold[src] - hold[dst]
                for cand in (contrib, forward):
                    if _close(len(cand) * b, m.nbytes):
                        return cand
                return forward
            if src != _relay(groups, i, j) or dst != _relay(groups, j, i):
                out.add("deadlock-routing",
                        f"round {k}: allgather message {src}->{dst} "
                        "violates hier2 routing (node-pair exchange must "
                        "go relay-to-relay)", round=k)
                return set()
            # relay exchange: every origin native to src's node
            return {o for o in hold[src] if node_idx[o] == i}
        funnel = src != leader_of[src] and dst == leader_of[src]
        bcast = src == leader_of[src] and leader_of[dst] == src
        ring = src == leader_of[src] and dst == leader_of[dst]
        if not (funnel or bcast or ring):
            out.add("deadlock-routing",
                    f"round {k}: allgather message {src}->{dst} violates "
                    "hierarchical routing", round=k)
            return set()
        return hold[src] - hold[dst]
    if hier == "direct":
        return {src}
    if hier == "ring":
        if dst != (src + 1) % G:
            out.add("deadlock-routing",
                    f"round {k}: ring message {src}->{dst} is not a "
                    "nearest-neighbour hop", round=k)
        return hold[src] - hold[dst]
    # bruck: the send distance encodes how many origins are forwarded
    c = (src - dst) % G
    if c == 0:
        out.add("deadlock-routing",
                f"round {k}: bruck allgather self-distance message "
                f"{src}->{dst}", round=k)
        return set()
    return {(src + t) % G for t in range(min(c, G - c))}


def _interpret_allgather(plan, G: int, payload: float, hier,
                         out: _Collector):
    """Symbolic replay for allgather plans (blocks replicate)."""
    b = payload
    hold = [{g} for g in range(G)]
    peak = [1.0] * G

    for k, rnd in enumerate(plan.rounds):
        incoming = []
        for m in rnd:
            if not (0 <= m.src < G and 0 <= m.dst < G) or m.src == m.dst:
                continue
            required = _required_allgather(m, hold, G, hier, b, out, k)
            carried = required & hold[m.src]
            missing = required - carried
            if not _close(len(required) * b, m.nbytes):
                out.add(
                    "conservation-bytes",
                    f"round {k}: message {m.src}->{m.dst} declares "
                    f"{m.nbytes:.0f} B but the {plan.algorithm} rule moves "
                    f"{len(required)} origin block(s) "
                    f"({len(required) * b:.0f} B)", round=k)
            for o in sorted(missing):
                if o in hold[m.dst]:
                    out.add("conservation-duplicate",
                            f"round {k}: message {m.src}->{m.dst} would "
                            f"re-deliver origin {o} already present at the "
                            "destination", round=k)
                else:
                    out.add(
                        "deadlock-cycle",
                        f"round {k}: message {m.src}->{m.dst} must forward "
                        f"origin {o} which has not yet arrived at device "
                        f"{m.src} (forward-before-receive)", round=k)
            incoming.append((m.dst, carried))
        for dst, blocks in incoming:
            dups = blocks & hold[dst]
            if dups:
                out.add("conservation-duplicate",
                        f"round {k}: {len(dups)} origin block(s) delivered "
                        f"to device {dst} a second time "
                        f"(e.g. origin {sorted(dups)[0]})", round=k)
            hold[dst] |= blocks
        for g in range(G):
            peak[g] = max(peak[g], float(len(hold[g])))

    full = set(range(G))
    for g in range(G):
        miss = full - hold[g]
        if miss:
            out.add("conservation-missing",
                    f"device {g} ends without origin block(s) "
                    f"{sorted(miss)} -- the allgather is incomplete",
                    device=g)

    prealloc = {
        "per_device_peak_live_bytes": [p * b for p in peak],
        "per_device_final_bytes": [len(hold[g]) * b for g in range(G)],
        "peak_live_bytes": max(peak) * b,
    }
    return prealloc, {}


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def check_plan(spec, plan, payload: float, lost=frozenset()) -> PlanCertificate:
    """Statically verify one plan; never raises, returns the certificate.

    ``payload`` is the per-device payload the plan was built for (the
    same value passed to :func:`repro.comm.plans.build_plan`); ``lost``
    is an optional set of device ids currently lost to faults — any
    message touching one is a rendezvous that cannot complete.
    """
    G = spec.num_devices
    out = _Collector(finding_context(
        algorithm=plan.algorithm, kind=plan.kind, G=G))
    prealloc: dict = {}
    if plan.kind not in ("alltoall", "allgather"):
        out.add("deadlock-malformed", f"unknown collective kind {plan.kind!r}")
    elif G < 2:
        out.add("deadlock-malformed", "plans need at least 2 devices")
    elif _check_structure(plan, G, frozenset(lost), out):
        hier = plan.algorithm
        if plan.algorithm in ("hier", "hier2"):
            info = _hier_info(spec)
            hier = None if info is None else (plan.algorithm,) + info
        if hier is None:
            out.add("deadlock-routing",
                    f"{plan.algorithm} plan on a machine without a "
                    "multi-node node_of annotation")
        elif plan.kind == "alltoall":
            prealloc, staged = _interpret_alltoall(plan, G, payload, hier, out)
            _check_defuse(plan, out)
            _check_dead_stores(plan, staged, out)
        else:
            prealloc, _ = _interpret_allgather(plan, G, payload, hier, out)
            _check_defuse(plan, out)
    return PlanCertificate(
        algorithm=plan.algorithm, kind=plan.kind, num_devices=G,
        payload=payload, wire_bytes=plan.wire_bytes(),
        num_messages=plan.num_messages, num_rounds=len(plan.rounds),
        findings=out.done(), prealloc=prealloc,
        fingerprint=spec_fingerprint(spec))


def check_bulk(spec, kind: str, payload: float) -> PlanCertificate:
    """Certificate for the legacy flat (``bulk``) collective.

    Bulk has no message decomposition to interpret: the machine layer
    issues one synchronized op per device at the topology's effective
    all-to-all bandwidth, so conservation holds by construction.  The
    certificate records the logical byte volume and the trivial
    preallocation contract so ``repro verify`` covers all five
    algorithms uniformly.
    """
    G = spec.num_devices
    final = payload if kind == "alltoall" else G * payload
    return PlanCertificate(
        algorithm="bulk", kind=kind, num_devices=G, payload=payload,
        wire_bytes=G * payload, num_messages=0, num_rounds=0, findings=(),
        prealloc={
            "per_device_peak_live_bytes": [float(final)] * G,
            "per_device_final_bytes": [float(final)] * G,
            "peak_live_bytes": float(final),
        },
        fingerprint=spec_fingerprint(spec))


#: verdict cache: (spec_fingerprint, kind, algorithm) -> PlanCertificate.
#: Plan structure is payload-linear, so one certification covers every
#: payload at that structural key — the serve warm path pays one dict hit.
_VERDICTS: dict = {}


def clear_verdicts() -> None:
    """Drop all cached verdicts (tests, long-lived tuning sweeps)."""
    _VERDICTS.clear()


def certify_plan(spec, plan, payload: float) -> PlanCertificate:
    """Cached strict verification: raises :class:`PlanCheckError`.

    This is the :func:`repro.comm.plans.build_plan` admission gate.  On
    a verdict-cache miss the plan is fully checked and its wire bytes
    are cross-checked against an independently rebuilt twin priced by
    the tuner's :func:`repro.comm.plans.plan_time` model; on a hit the
    stored certificate is returned at zero cost.
    """
    key = (spec_fingerprint(spec), plan.kind, plan.algorithm)
    cert = _VERDICTS.get(key)
    if cert is None:
        cert = check_plan(spec, plan, payload)
        if cert.ok:
            cert = _cross_check_model(spec, plan, payload, cert)
        _VERDICTS[key] = cert
    if not cert.ok:
        raise PlanCheckError(cert.render())
    return cert


def _cross_check_model(spec, plan, payload: float,
                       cert: PlanCertificate) -> PlanCertificate:
    """Wire-byte / model-input consistency vs a freshly built twin."""
    from repro.comm import plans as _plans

    twin = _plans.build_plan(spec, plan.kind, payload, plan.algorithm,
                             certify=False)
    rows = list(cert.findings)
    if not _close(twin.wire_bytes(), plan.wire_bytes()):
        rows.append(Finding(
            tool=_TOOL, rule="conservation-model-drift", severity="error",
            message=(
                f"plan carries {plan.wire_bytes():.0f} wire bytes but the "
                f"tuner's model input carries {twin.wire_bytes():.0f} -- "
                "predict_time would price a different plan"),
            context=finding_context(algorithm=plan.algorithm, kind=plan.kind,
                                    G=spec.num_devices)))
    elif not _close(_plans.plan_time(spec, twin), _plans.plan_time(spec, plan)):
        rows.append(Finding(
            tool=_TOOL, rule="conservation-model-drift", severity="error",
            message="plan prices differently from the tuner's model twin",
            context=finding_context(algorithm=plan.algorithm, kind=plan.kind,
                                    G=spec.num_devices)))
    if len(rows) == len(cert.findings):
        return cert
    return PlanCertificate(
        algorithm=cert.algorithm, kind=cert.kind,
        num_devices=cert.num_devices, payload=cert.payload,
        wire_bytes=cert.wire_bytes, num_messages=cert.num_messages,
        num_rounds=cert.num_rounds, findings=tuple(rows),
        prealloc=cert.prealloc, fingerprint=cert.fingerprint)


# ---------------------------------------------------------------------------
# the `repro verify` matrix
# ---------------------------------------------------------------------------

DEFAULT_G_LIST = (2, 4, 8, 16, 64, 256)


def _matrix_specs(g_list, include_degraded: bool):
    """(label, spec) rows covering single-node, multi-node, degraded."""
    from repro.faults.injector import (DeviceLoss, FaultInjector, LinkDegrade,
                                       LinkFlap)
    from repro.machine import topology as topo
    from repro.machine.multinode import multinode_p100, routed_multinode_p100
    from repro.machine.spec import (ClusterSpec, NVLINK_P100_LINK, P100,
                                    dgx1_p100)

    rows = []
    for G in g_list:
        rows.append((f"flat{G}", ClusterSpec(
            device=P100, num_devices=G,
            graph=topo.fully_connected(G, NVLINK_P100_LINK),
            name=f"{G}xP100 flat")))
        if G == 8:
            rows.append(("dgx1", dgx1_p100()))
        if G >= 4:
            nodes = 2 if G <= 8 else G // 4
            rows.append((f"nodes{nodes}x{G // nodes}",
                         multinode_p100(nodes, gpus_per_node=G // nodes)))
        if G >= 16:
            # routed fat tree: radix 8 -> 4 nodes per leaf, so G >= 64
            # exercises cross-leaf (spine) routes too
            nodes = G // 4
            rows.append((f"routed{nodes}x4",
                         routed_multinode_p100(nodes, gpus_per_node=4,
                                               radix=8, oversubscription=2.0)))
    if include_degraded:
        base = multinode_p100(2, gpus_per_node=4)
        inj = FaultInjector(base, scheduled=(
            LinkFlap(0, 1, start=1e-3, end=3e-3),
            LinkDegrade(4, 5, start=1e-3, end=3e-3, bandwidth_scale=0.25),
        ))
        rows.append(("nodes2x4-degraded", inj.degraded_spec(2e-3)))
        dgx = dgx1_p100()
        inj2 = FaultInjector(dgx, scheduled=(
            LinkDegrade(0, 1, start=1e-3, end=3e-3, bandwidth_scale=0.5),))
        rows.append(("dgx1-degraded", inj2.degraded_spec(2e-3)))
        # a routed machine that lost a whole node's devices: plans over
        # the full device set must still certify (retry/reroute happens
        # at runtime, not in the plan structure)
        routed = routed_multinode_p100(4, gpus_per_node=4, radix=8)
        inj3 = FaultInjector(routed, scheduled=tuple(
            DeviceLoss(d, time=1e-3) for d in range(4, 8)))
        rows.append(("routed4x4-nodeloss", inj3.degraded_spec(2e-3)))
    return rows


def verify_matrix(g_list=DEFAULT_G_LIST, payload: float = float(1 << 20),
                  include_degraded: bool = True):
    """Certify every algorithm x kind over the topology matrix.

    Returns ``(rows, findings)``: one summary dict per (spec, kind,
    algorithm) certification and the flat list of findings across all
    of them (empty when every plan is healthy).
    """
    from repro.comm.plans import build_plan
    from repro.comm.tuning import predict_time

    rows = []
    findings: list = []
    for label, spec in _matrix_specs(tuple(g_list), include_degraded):
        multinode = _hier_info(spec) is not None
        algorithms = ("bulk", "direct", "ring", "bruck") + (
            ("hier", "hier2") if multinode else ())
        for kind in ("alltoall", "allgather"):
            for algorithm in algorithms:
                if algorithm == "bulk":
                    cert = check_bulk(spec, kind, payload)
                else:
                    plan = build_plan(spec, kind, payload, algorithm,
                                      reads=("x",), certify=False)
                    cert = check_plan(spec, plan, payload)
                    # seed the admission cache so predict_time's internal
                    # build_plan calls below don't re-verify
                    _VERDICTS.setdefault(
                        (cert.fingerprint, kind, algorithm), cert)
                    if cert.ok and not _close(
                        predict_time(spec, kind, payload, algorithm),
                        _plan_time(spec, plan),
                    ):
                        findings.append(Finding(
                            tool=_TOOL, rule="conservation-model-drift",
                            severity="error",
                            message=(f"{label} {kind}/{algorithm}: verified "
                                     "plan prices differently from "
                                     "predict_time's model input"),
                            context=finding_context(
                                algorithm=algorithm, kind=kind,
                                G=spec.num_devices)))
                row = cert.to_json()
                row["spec"] = label
                rows.append(row)
                findings.extend(cert.findings)
    return rows, findings


def _plan_time(spec, plan) -> float:
    from repro.comm.plans import plan_time

    return plan_time(spec, plan)
