"""Static and dynamic analyses over the reproduction.

Two legs:

- :mod:`repro.analysis.hazards` — a TSan-style hazard sanitizer for the
  virtual cluster.  It rebuilds the happens-before graph of a recorded
  run (stream program order + event wait edges) and proves the
  paper's overlap claims race-free: any pair of ops that touch the same
  buffer, overlap in simulated time, and have no ordering edge is a
  RAW/WAR/WAW hazard the real CUDA code could hit.
- :mod:`repro.analysis.lint` — repo-specific AST lint rules enforcing
  the numeric discipline the kernels depend on (dtype hygiene, declared
  launch data-flow, no stray ``np.fft``, no mutable defaults, no bare
  ``except``, postponed annotations).
"""

from __future__ import annotations

from repro.analysis.hazards import (
    Hazard,
    HazardError,
    HazardReport,
    find_hazards,
    happens_before,
)
from repro.analysis.lint import LintIssue, lint_file, lint_paths

__all__ = [
    "Hazard",
    "HazardError",
    "HazardReport",
    "LintIssue",
    "find_hazards",
    "happens_before",
    "lint_file",
    "lint_paths",
]
