"""Static and dynamic analyses over the reproduction.

Three legs:

- :mod:`repro.analysis.hazards` — a TSan-style hazard sanitizer for the
  virtual cluster.  It rebuilds the happens-before graph of a recorded
  run (stream program order + event wait edges) and proves the
  paper's overlap claims race-free: any pair of ops that touch the same
  buffer, overlap in simulated time, and have no ordering edge is a
  RAW/WAR/WAW hazard the real CUDA code could hit.
- :mod:`repro.analysis.plancheck` — a static plan verifier that
  certifies a :class:`~repro.comm.plans.CommPlan` *before* any op runs:
  deadlock-freedom (send/recv matching, round-dependency cycles),
  payload-matrix conservation (every logical block delivered exactly
  once, wire bytes matching the tuner's model), and buffer liveness
  (no dangling staging reads, no dead stores, a per-device peak-live
  preallocation contract).  Wired into ``build_plan`` behind a
  fingerprint-keyed verdict cache; swept from ``repro verify``.
- :mod:`repro.analysis.lint` — repo-specific AST lint rules enforcing
  the numeric discipline the kernels depend on (dtype hygiene, declared
  launch data-flow, no stray ``np.fft``, no wall clocks or unseeded
  randomness, no mutable defaults, no bare ``except``, postponed
  annotations).

All three report through one schema, :mod:`repro.analysis.findings`,
so CI annotates lint, sanitizer, and verifier output from a single
JSON document.
"""

from __future__ import annotations

from repro.analysis.findings import (
    Finding,
    findings_doc,
    from_hazards,
    from_lint,
    load_findings,
    write_findings,
)
from repro.analysis.hazards import (
    Hazard,
    HazardError,
    HazardReport,
    find_hazards,
    happens_before,
)
from repro.analysis.lint import LintIssue, lint_file, lint_paths
from repro.analysis.plancheck import (
    PlanCertificate,
    PlanCheckError,
    certify_plan,
    check_bulk,
    check_plan,
    clear_verdicts,
    verify_matrix,
)

__all__ = [
    "Finding",
    "Hazard",
    "HazardError",
    "HazardReport",
    "LintIssue",
    "PlanCertificate",
    "PlanCheckError",
    "certify_plan",
    "check_bulk",
    "check_plan",
    "clear_verdicts",
    "find_hazards",
    "findings_doc",
    "from_hazards",
    "from_lint",
    "happens_before",
    "lint_file",
    "lint_paths",
    "load_findings",
    "verify_matrix",
    "write_findings",
]
