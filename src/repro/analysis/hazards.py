"""Hazard sanitizer for the virtual cluster — TSan for the simulator.

The engine in :mod:`repro.machine.cluster` reconstructs a *parallel*
timeline from a sequential coordinator: ``fn`` closures always run in a
valid order, so the numerics are right even when the declared event
dependencies are wrong.  A missing ``wait`` on a halo-exchange event
would therefore go unnoticed — and silently report an overlap speedup
(Figure 2) the real CUDA implementation could never achieve.

This module closes that loophole.  From any :class:`Ledger` it builds
the **happens-before graph**:

- *program order* — ops on the same (device, stream) queue are ordered
  by issue (comm records order on the sender's tx engine);
- *wait edges* — op B recorded ``waits=(uid_A, ...)`` because it was
  launched ``after=[event of A]``.

Two ops conflict when their declared access sets share a buffer on the
same device and at least one access is a write (sub-resources
``"buf#part"`` conflict with the whole buffer ``"buf"`` but not with
each other).  A conflict whose intervals overlap in simulated time with
no happens-before path between them is reported as a RAW/WAR/WAW
hazard.  Structural defects are reported alongside: waits on events
that complete after the waiter starts, dangling wait references, and
every physical-schedule violation found by
:func:`repro.machine.validate.audit_schedule` (stream double-booking,
issue-order rewinds, incoherent collectives).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.ledger import Ledger, OpRecord
from repro.machine.validate import audit_schedule
from repro.util.table import format_time


class HazardError(RuntimeError):
    """Raised in strict (``--sanitize``) mode when a run is not race-free."""


def buffers_conflict(a: str, b: str) -> bool:
    """Whether two declared buffer names can alias.

    Names are device-local.  ``"buf"`` denotes the whole buffer;
    ``"buf#part"`` a disjoint sub-resource (a chunk of rows, one
    pipeline stage's slice).  The whole buffer conflicts with any of its
    parts; distinct parts of the same buffer do not conflict.
    """
    if a == b:
        return True
    return a.startswith(b + "#") or b.startswith(a + "#")


def _root(key: str) -> str:
    return key.split("#", 1)[0]


@dataclass(frozen=True)
class Hazard:
    """One data race between two recorded operations.

    ``first`` is the op with the earlier start.  ``kind`` is RAW when
    the earlier op writes and the later reads, WAR for the reverse, and
    WAW when both write.
    """

    kind: str
    device: int
    buffer: str
    first: OpRecord
    second: OpRecord

    def describe(self) -> str:
        f, s = self.first, self.second
        return (
            f"{self.kind} dev{self.device} buffer {self.buffer!r}: "
            f"{f.name} [{format_time(f.start)}, {format_time(f.end)}] overlaps "
            f"{s.name} [{format_time(s.start)}, {format_time(s.end)}] "
            "with no ordering edge"
        )


@dataclass
class HazardReport:
    """Outcome of a sanitizer pass over one ledger."""

    hazards: list[Hazard] = field(default_factory=list)
    defects: list[str] = field(default_factory=list)
    num_ops: int = 0
    num_edges: int = 0

    @property
    def ok(self) -> bool:
        return not self.hazards and not self.defects

    def render(self, limit: int = 40) -> str:
        """Human-readable report (the ``repro analyze`` output)."""
        head = (
            f"hazard sanitizer: {self.num_ops} ops, {self.num_edges} "
            f"happens-before edges"
        )
        if self.ok:
            return head + " -- schedule certified race-free"
        lines = [
            head
            + f" -- {len(self.hazards)} hazard(s), {len(self.defects)} defect(s)"
        ]
        for h in self.hazards[:limit]:
            lines.append("  " + h.describe())
        if len(self.hazards) > limit:
            lines.append(f"  ... {len(self.hazards) - limit} more hazard(s)")
        for d in self.defects[:limit]:
            lines.append("  defect: " + d)
        if len(self.defects) > limit:
            lines.append(f"  ... {len(self.defects) - limit} more defect(s)")
        return "\n".join(lines)

    def raise_if_any(self) -> None:
        if not self.ok:
            raise HazardError(self.render())


def happens_before(ledger: Ledger) -> list[tuple[int, int]]:
    """All happens-before edges of a run as (uid, uid) pairs.

    Program-order edges chain consecutive ops on each (device, stream)
    queue; wait edges come from each record's ``waits``.  The graph is a
    DAG: uids are assigned in issue order and every edge points forward.
    """
    edges: list[tuple[int, int]] = []
    last_on_stream: dict[tuple[int, str], int] = {}
    known = {r.uid for r in ledger}
    for r in ledger:
        key = (r.device, r.stream)
        if key in last_on_stream:
            edges.append((last_on_stream[key], r.uid))
        last_on_stream[key] = r.uid
        for w in r.waits:
            if w in known and w != r.uid:
                edges.append((w, r.uid))
    return edges


def find_hazards(ledger: Ledger, include_audit: bool = True) -> HazardReport:
    """Sanitize one run: data hazards + structural defects.

    Parameters
    ----------
    ledger:
        The recorded run.
    include_audit:
        Also fold in :func:`repro.machine.validate.audit_schedule`'s
        physical-schedule violations (double-booked comm engines, issue
        order rewinds) as defects.
    """
    recs = list(ledger)
    report = HazardReport(num_ops=len(recs))
    if not recs:
        return report

    pos = {r.uid: i for i, r in enumerate(recs)}

    # -- structural defects -------------------------------------------------
    span = max(abs(r.end) for r in recs) or 1.0
    eps = 1e-9 * span
    for r in recs:
        for w in r.waits:
            if w not in pos:
                report.defects.append(
                    f"{r.name} (uid {r.uid}) waits on unknown op uid {w}"
                )
                continue
            pred = recs[pos[w]]
            if pred.end > r.start + eps:
                report.defects.append(
                    f"{r.name} (uid {r.uid}) starts at {format_time(r.start)} "
                    f"but waits on {pred.name} (uid {pred.uid}) completing at "
                    f"{format_time(pred.end)} -- wait on a future event"
                )
    if include_audit:
        report.defects.extend(audit_schedule(ledger).violations)

    # -- happens-before reachability ---------------------------------------
    edges = happens_before(ledger)
    report.num_edges = len(edges)
    preds: list[list[int]] = [[] for _ in recs]
    for a, b in edges:
        if a in pos and b in pos:
            preds[pos[b]].append(pos[a])
    # ancestors as bitmasks; edges all point forward in issue order
    anc = [0] * len(recs)
    for j in range(len(recs)):
        m = 0
        for p in preds[j]:
            m |= anc[p] | (1 << p)
        anc[j] = m

    def ordered(i: int, j: int) -> bool:
        return bool((anc[j] >> i) & 1) or bool((anc[i] >> j) & 1)

    # -- data hazards -------------------------------------------------------
    # Bucket accesses by (device, buffer root) so only plausible pairs
    # are compared; within a bucket do the exact pairwise check.
    buckets: dict[tuple[int, str], list[tuple[int, str, bool]]] = {}
    for i, r in enumerate(recs):
        for dev, key in r.reads:
            buckets.setdefault((dev, _root(key)), []).append((i, key, False))
        for dev, key in r.writes:
            buckets.setdefault((dev, _root(key)), []).append((i, key, True))

    seen: set[tuple[int, int, str, str]] = set()
    for (dev, _), accesses in buckets.items():
        for x in range(len(accesses)):
            i, ki, wi = accesses[x]
            a = recs[i]
            for y in range(x + 1, len(accesses)):
                j, kj, wj = accesses[y]
                if i == j or not (wi or wj):
                    continue
                if not buffers_conflict(ki, kj):
                    continue
                b = recs[j]
                # strict interval overlap; zero-duration ops never race
                if min(a.end, b.end) - max(a.start, b.start) <= 0.0:
                    continue
                if ordered(i, j):
                    continue
                first, second = (a, b) if (a.start, i) <= (b.start, j) else (b, a)
                fw = wi if first is a else wj
                sw = wj if first is a else wi
                kind = "WAW" if (fw and sw) else ("RAW" if fw else "WAR")
                sig = (min(i, j), max(i, j), min(ki, kj), max(ki, kj))
                if sig in seen:
                    continue
                seen.add(sig)
                report.hazards.append(
                    Hazard(kind=kind, device=dev,
                           buffer=ki if len(ki) >= len(kj) else kj,
                           first=first, second=second)
                )
    report.hazards.sort(key=lambda h: (h.first.start, h.second.start))
    return report
