"""One findings schema for every analysis tool.

The lint pass, the hazard sanitizer, and the static plan verifier each
discover different classes of defect, but CI wants to annotate from a
single machine-readable document.  This module is that contract: a
:class:`Finding` is ``(tool, rule, severity, message, file, line)`` plus
free-form context pairs, and :func:`findings_doc` wraps any list of
findings in a versioned JSON envelope::

    {"version": 1, "kind": "analysis-findings",
     "count": 3, "errors": 2, "findings": [...]}

``python tools/lint.py --json``, ``repro analyze --json``, and
``repro verify --json`` all emit exactly this document, so one CI step
can parse all three.  A finding's *category* is the first dash-separated
token of its rule (``deadlock-cycle`` -> ``deadlock``), which is what
the plan verifier's mutation tests key on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: bumped whenever the JSON envelope changes incompatibly
SCHEMA_VERSION = 1

#: the envelope's ``kind`` tag
SCHEMA_KIND = "analysis-findings"

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One defect reported by one analysis tool.

    ``file``/``line`` locate source findings (lint); schedule- or
    plan-level findings leave them empty and carry their coordinates
    (algorithm, kind, G, ...) in ``context`` instead.
    """

    tool: str
    rule: str
    severity: str
    message: str
    file: str = ""
    line: int = 0
    context: tuple = ()  # sorted (key, value) pairs

    @property
    def category(self) -> str:
        """First dash token of the rule: ``deadlock-cycle`` -> ``deadlock``."""
        return self.rule.split("-", 1)[0]

    def to_json(self) -> dict:
        """Plain-dict form used inside the findings document."""
        return {
            "tool": self.tool,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "context": {k: v for k, v in self.context},
        }

    def __str__(self) -> str:
        loc = f"{self.file}:{self.line}: " if self.file else ""
        return f"{loc}[{self.tool}/{self.rule}] {self.message}"


def finding_context(**kwargs) -> tuple:
    """Context pairs in canonical (sorted, hashable) form."""
    return tuple(sorted(kwargs.items()))


def from_lint(issues) -> list[Finding]:
    """Convert :class:`repro.analysis.lint.LintIssue` rows."""
    return [
        Finding(tool="lint", rule=i.rule, severity="error",
                message=i.message, file=i.path, line=i.line)
        for i in issues
    ]


def from_hazards(report, context: tuple = ()) -> list[Finding]:
    """Convert a :class:`repro.analysis.hazards.HazardReport`.

    Hazards become ``hazard-raw``/``hazard-war``/``hazard-waw``
    findings; structural defects become ``hazard-defect``.
    """
    out = [
        Finding(tool="hazards", rule=f"hazard-{h.kind.lower()}",
                severity="error", message=h.describe(),
                context=context + finding_context(
                    device=h.device, buffer=h.buffer))
        for h in report.hazards
    ]
    out.extend(
        Finding(tool="hazards", rule="hazard-defect", severity="error",
                message=d, context=context)
        for d in report.defects
    )
    return out


def findings_doc(findings) -> dict:
    """The versioned JSON envelope CI consumes."""
    rows = [f.to_json() for f in findings]
    return {
        "version": SCHEMA_VERSION,
        "kind": SCHEMA_KIND,
        "count": len(rows),
        "errors": sum(1 for f in findings if f.severity == "error"),
        "findings": rows,
    }


def write_findings(path, findings) -> None:
    """Serialize the findings document to ``path``."""
    Path(path).write_text(json.dumps(findings_doc(findings), indent=1))


def load_findings(path) -> dict:
    """Read back a findings document, validating the envelope."""
    doc = json.loads(Path(path).read_text())
    if (
        not isinstance(doc, dict)
        or doc.get("version") != SCHEMA_VERSION
        or doc.get("kind") != SCHEMA_KIND
    ):
        raise ValueError(f"{path}: not a version-{SCHEMA_VERSION} "
                         f"{SCHEMA_KIND} document")
    return doc
