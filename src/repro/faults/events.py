"""Fault events: the injector's own append-only ledger.

Every fault the injector schedules or draws is stamped as one
:class:`FaultEvent` — the fault-side twin of the machine's
:class:`~repro.machine.ledger.OpRecord`.  The events feed the Perfetto
fault track (:func:`repro.obs.perfetto.fault_track_events`) and the
fault counters in :class:`~repro.serve.stats.ServeReport`, so a chaos
run's timeline shows *what was injected* next to *what it cost*.
"""

from __future__ import annotations

from dataclasses import dataclass

#: admissible fault-event kinds
FAULT_KINDS = (
    "link_degrade",   # scheduled: a link runs at reduced bandwidth
    "link_flap",      # scheduled: a link drops every message in a window
    "straggler",      # scheduled: a device runs slowed down
    "device_loss",    # scheduled: a device permanently leaves the machine
    "transient",      # drawn online: one message/collective attempt failed
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence on the simulated timeline.

    Attributes
    ----------
    time:
        Simulated onset time, seconds.
    kind:
        One of :data:`FAULT_KINDS`.
    device:
        Primary affected device (sender for transients), -1 if none.
    peer:
        Second endpoint for link faults and transients, -1 if none.
    duration:
        Window length for scheduled faults; 0.0 for point events
        (transients, device loss).
    detail:
        Free-form context — the collective/stage name for transients,
        the scale factor for degrades/stragglers.
    """

    time: float
    kind: str
    device: int = -1
    peer: int = -1
    duration: float = 0.0
    detail: str = ""

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0.0 or self.duration < 0.0:
            raise ValueError(
                f"fault event times must be >= 0, got time={self.time!r} "
                f"duration={self.duration!r}"
            )
