"""repro.faults — deterministic fault injection for the virtual cluster.

The resilience layer's source of truth: *what goes wrong, when, and
reproducibly*.  A :class:`FaultInjector` holds scheduled fault windows
(link degradation/flaps, straggler devices, permanent device loss) plus
a seeded online transient-failure stream, and answers time-indexed
queries from the rest of the stack:

- :mod:`repro.machine` asks for duration scale factors (stragglers,
  degraded links stretch recorded ops);
- :mod:`repro.comm` asks for per-attempt outcomes and turns transient
  failures into timed-out ``<stage>!fail`` ledger records, retried
  under a :class:`~repro.comm.retry.RetryPolicy`;
- :mod:`repro.serve` asks for the degraded topology to replan failed
  batches, and for the fault ledger (:attr:`FaultInjector.events`) to
  report.

Everything is seeded and consumed in issue order, so a chaos run
replays bit-identically and the zero-fault configuration is
bit-identical to a cluster with no injector installed.  See
``docs/FAULTS.md``.
"""

from __future__ import annotations

from repro.faults.events import FAULT_KINDS, FaultEvent
from repro.faults.injector import (
    OUTCOMES,
    DeviceLoss,
    FaultInjector,
    LinkDegrade,
    LinkFlap,
    Straggler,
    node_loss,
    seeded_chaos,
)

__all__ = [
    "FAULT_KINDS",
    "OUTCOMES",
    "DeviceLoss",
    "FaultEvent",
    "FaultInjector",
    "LinkDegrade",
    "LinkFlap",
    "Straggler",
    "node_loss",
    "seeded_chaos",
]
