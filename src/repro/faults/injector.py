"""Deterministic, seeded fault injection for the virtual cluster.

The injector is a *pure observer of simulated time*: the machine and
comm layers ask it "what is true at time t?" and it answers from two
sources —

- **scheduled faults**: explicit windows handed to the constructor
  (:class:`LinkDegrade`, :class:`LinkFlap`, :class:`Straggler`,
  :class:`DeviceLoss`), bit-reproducible by construction;
- **online transients**: per-attempt Bernoulli draws from a seeded
  ``numpy`` generator, consumed in issue order — the same schedule
  replayed issues ops in the same order, so the draws (and therefore the
  whole chaos run) are bit-reproducible too.

Nothing here mutates the cluster.  Timing degradation is applied by the
machine layer (duration scale factors), failures are surfaced by the
comm layer (:class:`~repro.comm.retry.CommFailure` after retries), and
recovery policy lives in serve.  The zero-fault configuration returns
scale 1.0 and outcome ``"ok"`` everywhere and never perturbs a single
record — the twin-ledger tests pin that bit-identity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.faults.events import FaultEvent
from repro.machine.spec import ClusterSpec
from repro.util.validation import ParameterError

#: message/collective attempt outcomes
OUTCOMES = ("ok", "transient", "lost")


@dataclass(frozen=True)
class LinkDegrade:
    """Link (a, b) runs degraded during [start, end): bandwidth scaled
    by ``bandwidth_scale`` (< 1 slows it), latency by ``latency_scale``."""

    a: int
    b: int
    start: float
    end: float
    bandwidth_scale: float = 0.25
    latency_scale: float = 1.0

    def __post_init__(self):
        _check_window(self.start, self.end)
        if not 0.0 < self.bandwidth_scale <= 1.0:
            raise ParameterError(
                f"bandwidth_scale must be in (0, 1], got {self.bandwidth_scale!r}"
            )
        if self.latency_scale < 1.0:
            raise ParameterError(
                f"latency_scale must be >= 1, got {self.latency_scale!r}"
            )


@dataclass(frozen=True)
class LinkFlap:
    """Link (a, b) is down during [start, end): every message attempt
    crossing it fails transiently (detected after the retry timeout)."""

    a: int
    b: int
    start: float
    end: float

    def __post_init__(self):
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class Straggler:
    """Device runs ``slowdown``x slower during [start, end) — compute
    and its share of communication both stretch."""

    device: int
    start: float
    end: float
    slowdown: float = 3.0

    def __post_init__(self):
        _check_window(self.start, self.end)
        if self.slowdown < 1.0:
            raise ParameterError(f"slowdown must be >= 1, got {self.slowdown!r}")


@dataclass(frozen=True)
class DeviceLoss:
    """Device permanently leaves the machine at ``time``: every later
    message or collective touching it fails non-retryably."""

    device: int
    time: float

    def __post_init__(self):
        if self.time < 0.0:
            raise ParameterError(f"loss time must be >= 0, got {self.time!r}")


def _check_window(start: float, end: float) -> None:
    if start < 0.0 or end <= start:
        raise ParameterError(
            f"fault window must satisfy 0 <= start < end, got [{start}, {end})"
        )


def _active(f, t: float) -> bool:
    return f.start <= t < f.end


class FaultInjector:
    """Answers "what is wrong with the machine at time t?".

    Parameters
    ----------
    spec:
        The healthy machine (validates device/link references and is the
        base of :meth:`degraded_spec`).
    seed:
        Seed of the online transient generator.  Two injectors built
        with the same arguments produce bit-identical fault sequences
        against the same op issue order.
    transient_rate:
        Per-attempt probability in [0, 1) that a message or collective
        fails transiently (independent of scheduled faults).
    scheduled:
        Iterable of :class:`LinkDegrade` / :class:`LinkFlap` /
        :class:`Straggler` / :class:`DeviceLoss` windows.

    Attributes
    ----------
    events:
        The fault ledger: one :class:`FaultEvent` per scheduled fault
        (stamped up front) plus one per online transient drawn (stamped
        as it happens).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        seed: int = 0,
        transient_rate: float = 0.0,
        scheduled: tuple = (),
    ):
        if not 0.0 <= transient_rate < 1.0:
            raise ParameterError(
                f"transient_rate must be in [0, 1), got {transient_rate!r}"
            )
        self.spec = spec
        self.seed = seed
        self.transient_rate = transient_rate
        self.degrades: list[LinkDegrade] = []
        self.flaps: list[LinkFlap] = []
        self.stragglers: list[Straggler] = []
        self.losses: list[DeviceLoss] = []
        G = spec.num_devices
        for f in scheduled:
            if isinstance(f, (LinkDegrade, LinkFlap)):
                for d in (f.a, f.b):
                    _check_device(d, G)
                if f.a == f.b:
                    raise ParameterError(f"link fault needs two devices, got ({f.a}, {f.b})")
                (self.degrades if isinstance(f, LinkDegrade) else self.flaps).append(f)
            elif isinstance(f, Straggler):
                _check_device(f.device, G)
                self.stragglers.append(f)
            elif isinstance(f, DeviceLoss):
                _check_device(f.device, G)
                self.losses.append(f)
            else:
                raise ParameterError(f"unknown scheduled fault {f!r}")
        self.events: list[FaultEvent] = []
        self.transient_count = 0
        #: optional MetricsRegistry (see :meth:`attach_telemetry`)
        self.telemetry = None
        self._rng = np.random.default_rng(seed)
        self._stamp_scheduled()

    def attach_telemetry(self, registry) -> None:
        """Stream the fault ledger into a metrics registry.

        Already-stamped events (the scheduled windows) are counted
        immediately at their window-start times; every future transient
        draw increments ``faults.events{kind=...}`` as it is stamped.
        Attach once per registry — re-attaching double-counts the
        scheduled windows.
        """
        self.telemetry = registry
        for e in self.events:
            registry.counter("faults.events", {"kind": e.kind}).inc(
                1.0, t=e.time)

    def _stamp_scheduled(self) -> None:
        for f in self.degrades:
            self.events.append(FaultEvent(
                time=f.start, kind="link_degrade", device=f.a, peer=f.b,
                duration=f.end - f.start,
                detail=f"bandwidth x{f.bandwidth_scale:g}",
            ))
        for f in self.flaps:
            self.events.append(FaultEvent(
                time=f.start, kind="link_flap", device=f.a, peer=f.b,
                duration=f.end - f.start, detail="link down",
            ))
        for f in self.stragglers:
            self.events.append(FaultEvent(
                time=f.start, kind="straggler", device=f.device,
                duration=f.end - f.start, detail=f"slowdown x{f.slowdown:g}",
            ))
        for f in self.losses:
            self.events.append(FaultEvent(
                time=f.time, kind="device_loss", device=f.device,
                detail="permanent",
            ))
        self.events.sort(key=lambda e: (e.time, e.kind, e.device, e.peer))

    def reset(self) -> None:
        """Rewind to construction state (replay support): reseed the
        transient generator and drop the dynamically stamped events.
        An attached telemetry registry is *not* rewound — replays build
        a fresh registry alongside the fresh cluster."""
        self._rng = np.random.default_rng(self.seed)
        self.transient_count = 0
        self.events = [e for e in self.events if e.kind != "transient"]

    # -- timing degradation (queried by repro.machine) -----------------

    def compute_scale(self, device: int, t: float) -> float:
        """Duration multiplier for a kernel starting on ``device`` at t."""
        s = 1.0
        for f in self.stragglers:
            if f.device == device and _active(f, t):
                s *= f.slowdown
        return s

    def comm_scale(self, src: int, dst: int, t: float) -> float:
        """Duration multiplier for a src->dst message starting at t:
        the slower endpoint's straggler factor times any degrade of the
        link the message crosses."""
        s = 1.0
        worst = 1.0
        for f in self.stragglers:
            if f.device in (src, dst) and _active(f, t):
                worst = max(worst, f.slowdown)
        s *= worst
        for f in self.degrades:
            if {f.a, f.b} == {src, dst} and _active(f, t):
                s *= 1.0 / f.bandwidth_scale
        return s

    def collective_scale(self, t: float) -> float:
        """Duration multiplier for a bulk collective starting at t — it
        synchronizes everyone, so the worst active straggler/degrade
        stretches the whole operation."""
        s = 1.0
        for f in self.stragglers:
            if _active(f, t):
                s = max(s, f.slowdown)
        for f in self.degrades:
            if _active(f, t):
                s = max(s, 1.0 / f.bandwidth_scale)
        return s

    # -- failures (queried by repro.comm before each attempt) ----------

    def message_outcome(self, src: int, dst: int, name: str, t: float) -> str:
        """Outcome of one src->dst message attempt starting at t."""
        for f in self.losses:
            if f.time <= t and f.device in (src, dst):
                return "lost"
        for f in self.flaps:
            if {f.a, f.b} == {src, dst} and _active(f, t):
                return "transient"
        if self.transient_rate > 0.0 and self._rng.random() < self.transient_rate:
            self._stamp_transient(t, src, dst, name)
            return "transient"
        return "ok"

    def collective_outcome(self, name: str, t: float) -> str:
        """Outcome of one bulk-collective attempt starting at t (it
        touches every device and every link)."""
        for f in self.losses:
            if f.time <= t:
                return "lost"
        for f in self.flaps:
            if _active(f, t):
                return "transient"
        if self.transient_rate > 0.0 and self._rng.random() < self.transient_rate:
            self._stamp_transient(t, -1, -1, name)
            return "transient"
        return "ok"

    def _stamp_transient(self, t: float, src: int, dst: int, name: str) -> None:
        self.transient_count += 1
        self.events.append(FaultEvent(
            time=t, kind="transient", device=src, peer=dst, detail=name,
        ))
        if self.telemetry is not None:
            self.telemetry.counter("faults.events", {"kind": "transient"}).inc(
                1.0, t=t)

    # -- degraded topology (queried by the serve replanner) ------------

    def active(self, t: float) -> bool:
        """True when any scheduled fault is in effect at time t."""
        return (
            any(_active(f, t) for f in self.degrades)
            or any(_active(f, t) for f in self.flaps)
            or any(_active(f, t) for f in self.stragglers)
            or any(f.time <= t for f in self.losses)
        )

    def degraded_spec(self, t: float) -> ClusterSpec:
        """The machine as it stands at time t: flapped links removed,
        degraded links rescaled, lost devices isolated.  Feed this to
        :func:`repro.comm.tuning.choose_algorithm` to replan against
        the topology that actually exists."""
        g = self.spec.graph.copy()
        for f in self.flaps:
            if _active(f, t) and g.has_edge(f.a, f.b):
                g.remove_edge(f.a, f.b)
        for f in self.degrades:
            if _active(f, t) and g.has_edge(f.a, f.b):
                link = g.edges[f.a, f.b]["link"]
                g.edges[f.a, f.b]["link"] = replace(
                    link,
                    bandwidth=link.bandwidth * f.bandwidth_scale,
                    latency=link.latency * f.latency_scale,
                )
        for f in self.losses:
            if f.time <= t:
                for peer in list(g.neighbors(f.device)):
                    g.remove_edge(f.device, peer)
        return replace(self.spec, graph=g, name=f"{self.spec.name} (degraded)")


def _check_device(d: int, G: int) -> None:
    if not 0 <= d < G:
        raise ParameterError(f"fault references device {d}, machine has 0..{G - 1}")


def node_loss(spec: ClusterSpec, node: int, time: float) -> tuple:
    """One :class:`DeviceLoss` per device of ``node`` — a whole-node
    failure (power, NIC, or top-of-rack port) at ``time``.

    Requires a multi-node spec (``node_of`` annotation); feed the tuple
    to :class:`FaultInjector`'s ``scheduled`` alongside other faults.
    """
    node_of = spec.graph.graph.get("node_of")
    if not node_of:
        raise ParameterError("node_loss needs a multi-node spec (node_of)")
    devs = sorted(d for d, nd in node_of.items() if nd == node)
    if not devs:
        raise ParameterError(
            f"node {node} has no devices; nodes: {sorted(set(node_of.values()))}"
        )
    return tuple(DeviceLoss(d, time) for d in devs)


def seeded_chaos(
    spec: ClusterSpec,
    seed: int = 0,
    transient_rate: float = 0.02,
    flaps: int = 0,
    stragglers: int = 1,
    degrades: int = 0,
    horizon: float = 50e-3,
    slowdown: float = 3.0,
    bandwidth_scale: float = 0.25,
) -> FaultInjector:
    """Build a reproducible random chaos scenario for one machine.

    Draws ``flaps``/``degrades`` link windows and ``stragglers`` device
    windows uniformly inside ``[0, horizon)`` from a generator seeded
    with ``seed`` — the scenario (and the injector's online transient
    stream, seeded with ``seed + 1``) is a pure function of the
    arguments.  This is what ``repro chaos`` and ``bench_faults``
    drive.
    """
    if horizon <= 0.0:
        raise ParameterError(f"horizon must be > 0, got {horizon!r}")
    rng = np.random.default_rng(seed)
    edges = sorted(spec.graph.edges())
    scheduled: list = []
    for _ in range(flaps):
        a, b = edges[int(rng.integers(len(edges)))]
        t0 = float(rng.uniform(0.1, 0.6)) * horizon
        scheduled.append(LinkFlap(a, b, t0, t0 + float(rng.uniform(0.05, 0.2)) * horizon))
    for _ in range(degrades):
        a, b = edges[int(rng.integers(len(edges)))]
        t0 = float(rng.uniform(0.1, 0.6)) * horizon
        scheduled.append(LinkDegrade(
            a, b, t0, t0 + float(rng.uniform(0.1, 0.3)) * horizon,
            bandwidth_scale=bandwidth_scale,
        ))
    for _ in range(stragglers):
        d = int(rng.integers(spec.num_devices))
        t0 = float(rng.uniform(0.1, 0.6)) * horizon
        scheduled.append(Straggler(
            d, t0, t0 + float(rng.uniform(0.1, 0.3)) * horizon,
            slowdown=slowdown,
        ))
    return FaultInjector(spec, seed=seed + 1, transient_rate=transient_rate,
                         scheduled=tuple(scheduled))
