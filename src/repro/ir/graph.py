"""The op-graph IR: explicit nodes for everything a pipeline issues.

An :class:`IRGraph` is the captured form of one pipeline run on a
:class:`~repro.machine.cluster.VirtualCluster`: a flat, topologically
ordered list of :class:`IRNode` entries, one per engine primitive the
run issued (kernel launch, host op, point-to-point transfer, bulk
collective, barrier) plus bookkeeping nodes for host-side data actions
and ``comm_log`` entries.  Nodes carry exactly the fields the rest of
the toolchain already consumes — op kind/name, modeled duration,
flops/mops/comm bytes, declared read/write buffer sets, and the region
path — so a replayed graph produces ledger records, hazard-sanitizer
input, trace spans, and telemetry identical to the interpreted run that
was captured.

Dependencies are structural, not temporal: each node stores
``(producer_index, sub, in_waits)`` triples resolved at capture time
from the event objects the pipeline actually passed, where ``sub``
selects one device's completion out of a collective and ``in_waits``
says whether the edge appears in the ledger record's ``waits`` tuple
(synthetic ``op == -1`` events contribute ordering but no wait edge).
``producer_index == -1`` is the external *release* dependency — the
serve scheduler's batch-release event — substituted per replay.

The IR is backend-neutral by construction: nothing in a node references
the virtual engine beyond stream *names* and modeled durations, so a
future backend only needs its own executor.

Construction of nodes and graphs is confined to :mod:`repro.ir` by the
``ir-capture-site`` lint rule — everyone else receives graphs from
:func:`repro.ir.capture.capture` or the pipeline helpers in
:mod:`repro.ir.pipelines`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import ParameterError

#: node opcodes, in the order the executor dispatches on them
OP_LAUNCH = "launch"      #: compute kernel on a device stream
OP_HOST = "host"          #: zero-cost host bookkeeping op
OP_P2P_SELF = "p2p_self"  #: self-send / G=1 local copy (zero cost)
OP_P2P = "p2p"            #: point-to-point transfer src -> dst
OP_COLL = "coll"          #: bulk collective (G synchronized records)
OP_COLL1 = "coll1"        #: G=1 degenerate collective (no records)
OP_BARRIER = "barrier"    #: all-stream synchronization
OP_ACTION = "action"      #: host-side data action (no ledger footprint)
OP_LOG = "log"            #: comm_log entry (+ bulk byte counter)

#: opcodes that append ledger records when replayed
RECORD_OPS = (OP_LAUNCH, OP_HOST, OP_P2P_SELF, OP_P2P, OP_COLL)


@dataclass
class IRNode:
    """One captured engine primitive.

    ``deps`` holds ``(producer_index, sub, in_waits)`` triples (see the
    module docstring).  ``fn`` is the capture-time NumPy closure — it
    already binds the operators/twiddles built when the pipeline was
    constructed, which is what makes replay free of plan construction.
    ``tel`` is the per-message telemetry intent for real p2p transfers:
    ``(link_class, link_label, predicted_seconds)``.  ``payload`` is
    op-specific extra state (the comm_log dict for :data:`OP_LOG`).
    """

    op: str
    name: str = ""
    kind: str = ""
    device: int = -1
    peer: int = -1
    stream: str = ""
    duration: float = 0.0
    flops: float = 0.0
    mops: float = 0.0
    comm_bytes: float = 0.0
    reads: tuple = ()
    writes: tuple = ()
    region: str = ""
    deps: tuple = ()
    fn: object = None
    tel: tuple | None = None
    payload: dict | None = None


class IRGraph:
    """A captured pipeline schedule, ready for replay.

    Attributes
    ----------
    nodes:
        Topologically ordered :class:`IRNode` list.
    meta:
        Capture provenance: ``pipeline`` (e.g. ``"fmmfft"``), ``key``
        (the pipeline's plan key, hashable), ``G``, ``spec_fingerprint``
        (replay is only valid on an identical machine), and
        ``buffer_prefix`` (the namespace captured buffers live under,
        for slot renaming).
    stage_in:
        Optional ``stage_in(*inputs)`` callable re-staging input device
        buffers before an execute-mode replay (pipelines transform
        buffers in place, so replaying without re-staging would
        transform the previous output).  Bound to the capture cluster,
        as are the captured closures; None until a pipeline helper
        attaches it.
    finalize:
        Optional ``finalize() -> ndarray`` gathering the output after
        an execute-mode replay (same binding).
    prealloc:
        The graph-level preallocation contract derived from the
        :class:`~repro.analysis.plancheck.PlanCertificate` of every
        captured collective (see :mod:`repro.ir.prealloc`); None until
        :meth:`certify` runs.
    """

    def __init__(self, nodes: list[IRNode], meta: dict):
        self.nodes = nodes
        self.meta = dict(meta)
        self.stage_in = None
        self.finalize = None
        self.prealloc: dict | None = None
        self._certified: dict | None = None

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def num_records(self) -> int:
        """Ledger records one replay of this graph appends."""
        total = 0
        for n in self.nodes:
            if n.op == OP_COLL:
                total += self.meta["G"]
            elif n.op in RECORD_OPS:
                total += 1
        return total

    def op_counts(self) -> dict[str, int]:
        """Node count per opcode (stable key order)."""
        out: dict[str, int] = {}
        for n in self.nodes:
            out[n.op] = out.get(n.op, 0) + 1
        return dict(sorted(out.items()))

    def buffers(self) -> set:
        """All ``(device, name)`` buffer references the graph declares."""
        G = self.meta["G"]
        out: set = set()
        for n in self.nodes:
            if n.op == OP_COLL:
                for g in range(G):
                    out.update((g, b) for b in n.reads)
                    out.update((g, b) for b in n.writes)
            elif n.op == OP_P2P:
                out.update((n.device, b) for b in n.reads)
                out.update((n.peer, b) for b in n.writes)
            elif n.op in RECORD_OPS:
                out.update((n.device, b) for b in n.reads)
                out.update((n.device, b) for b in n.writes)
        return out

    def comm_calls(self) -> list[dict]:
        """The captured ``comm_log`` entries, in issue order."""
        return [dict(n.payload["entry"]) for n in self.nodes
                if n.op == OP_LOG]

    def summary(self) -> dict:
        """Plain-dict overview (the ``repro ir --json`` core)."""
        return {
            "pipeline": self.meta.get("pipeline", ""),
            "G": self.meta["G"],
            "nodes": len(self.nodes),
            "records_per_replay": self.num_records,
            "op_counts": self.op_counts(),
            "buffers": len(self.buffers()),
            "comm_calls": len(self.comm_calls()),
            "fused": self.meta.get("fused", 0),
            "peak_live_bytes": (
                None if self.prealloc is None
                else self.prealloc["peak_live_bytes"]),
        }

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Structural sanity: dep indices acyclic (strictly backward)."""
        for i, n in enumerate(self.nodes):
            for idx, sub, _ in n.deps:
                if idx >= i:
                    raise ParameterError(
                        f"IR node {i} ({n.op} {n.name!r}) depends on node "
                        f"{idx} which does not precede it")
                if idx >= 0 and sub >= 0 and self.nodes[idx].op != OP_COLL:
                    raise ParameterError(
                        f"IR node {i} has a per-device dep on non-collective "
                        f"node {idx}")

    def certify(self, spec) -> dict:
        """Certify the graph once: hazards + plancheck prealloc.

        Replays the graph timing-only onto a scratch cluster of the
        same spec, runs the hazard sanitizer over the resulting ledger,
        and checks every captured collective against its
        :class:`~repro.analysis.plancheck.PlanCertificate` (attaching
        the graph-level ``prealloc`` contract).  Returns a summary dict
        and caches it; raises on hazards or prealloc violations, so a
        graph that certifies once is safe to replay forever.
        """
        if self._certified is not None:
            return self._certified
        from repro.ir.executor import scratch_replay
        from repro.ir.prealloc import check_graph_prealloc

        self.validate()
        scratch = scratch_replay(self, spec)
        scratch.sanitize()
        findings = check_graph_prealloc(self, spec)
        errors = [f for f in findings if f.severity == "error"]
        if errors:
            raise ParameterError(
                "captured graph fails prealloc certification: "
                + "; ".join(f.message for f in errors[:4]))
        self._certified = {
            "hazards": 0,
            "prealloc_findings": len(findings),
            "records": len(scratch.ledger),
            "peak_live_bytes": (
                None if self.prealloc is None
                else self.prealloc["peak_live_bytes"]),
        }
        return self._certified
