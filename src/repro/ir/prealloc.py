"""The graph-level preallocation contract, from plan certificates.

PR 6's static plan verifier left a promissory note: every
:class:`~repro.analysis.plancheck.PlanCertificate` carries a
``prealloc`` dict — per-device peak live bytes — "as the preallocation
contract a compiled plan-IR executor can size its buffers from".  This
module cashes it.  :func:`check_graph_prealloc` re-certifies every
communication call a captured graph performs (rebuilding each message
plan deterministically from the logged algorithm/payload/chunks),
derives the graph-level contract as the element-wise maximum of the
per-collective contracts, and cross-checks the *captured* messages
against the certificates:

- ``prealloc-conservation`` — the bytes the captured nodes actually
  move must equal what the certificate says crosses the wire;
- ``prealloc-messages`` — the captured message count must match the
  certified plan;
- ``prealloc-message-exceeds-peak`` — no single captured message may
  carry more bytes than the contract says a device ever holds live
  (the replay executor sizes slot buffers from this number);
- certificate findings themselves pass through unchanged.

On success the contract is attached as ``graph.prealloc`` and the
returned findings list is empty — :meth:`IRGraph.certify` treats any
``error``-severity row as a refusal to replay, and ``repro verify
--ir`` sweeps the check across every pipeline x algorithm and folds
the rows into the shared analysis-findings document.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, finding_context
from repro.analysis.plancheck import check_bulk, check_plan
from repro.comm.plans import build_plan
from repro.ir.graph import OP_COLL, OP_LOG, OP_P2P, OP_P2P_SELF

_TOOL = "ir"


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= 1e-6 * max(1.0, abs(a), abs(b))


class _CallWindow:
    """Captured p2p/collective nodes accumulated since the last log."""

    def __init__(self):
        self.reset()

    def reset(self):
        self.msgs = 0
        self.bytes = 0.0
        self.max_msg = 0.0
        self.colls = 0
        self.coll_bytes = 0.0
        self.per_dst: dict[int, float] = {}

    def add_p2p(self, node):
        self.msgs += 1
        self.bytes += node.comm_bytes
        if node.comm_bytes > self.max_msg:
            self.max_msg = node.comm_bytes
        d = self.per_dst
        d[node.peer] = d.get(node.peer, 0.0) + node.comm_bytes

    def add_coll(self, node, G: int):
        self.colls += 1
        self.coll_bytes += G * node.comm_bytes


def check_graph_prealloc(graph, spec) -> list[Finding]:
    """Certify every comm call of a captured graph (module docstring).

    Attaches the derived contract as ``graph.prealloc`` and returns the
    findings (empty when everything checks out).
    """
    G = graph.meta["G"]
    findings: list[Finding] = []
    peak = [0.0] * G
    win = _CallWindow()

    def ctx(entry, **kw):
        return finding_context(name=entry["name"], kind=entry["kind"],
                               algorithm=entry["algorithm"], G=G, **kw)

    def err(rule, msg, entry, **kw):
        findings.append(Finding(tool=_TOOL, rule=rule, severity="error",
                                message=msg, context=ctx(entry, **kw)))

    for node in graph.nodes:
        if node.op == OP_P2P:
            win.add_p2p(node)
        elif node.op == OP_P2P_SELF:
            win.msgs += 1
        elif node.op == OP_COLL:
            win.add_coll(node, G)
        elif node.op == OP_LOG:
            entry = node.payload["entry"]
            kind, algo = entry["kind"], entry["algorithm"]
            payload, chunks = entry["payload"], entry.get("chunks", 1)
            if kind in ("alltoall", "allgather"):
                if algo == "bulk":
                    cert = check_bulk(spec, kind, payload)
                    expected = (G * payload if kind == "alltoall"
                                else G * (G - 1) * payload)
                    if win.colls != chunks:
                        err("prealloc-messages",
                            f"{entry['name']}: bulk {kind} captured "
                            f"{win.colls} collective issue(s), expected "
                            f"{chunks} chunk(s)", entry)
                    if not _close(win.coll_bytes, expected):
                        err("prealloc-conservation",
                            f"{entry['name']}: bulk {kind} moved "
                            f"{win.coll_bytes:.0f} ledger bytes, certificate "
                            f"prices {expected:.0f}", entry)
                else:
                    plan = build_plan(spec, kind, payload / chunks, algo,
                                      certify=False)
                    cert = check_plan(spec, plan, payload / chunks)
                    findings.extend(cert.findings)
                    if win.msgs != chunks * cert.num_messages:
                        err("prealloc-messages",
                            f"{entry['name']}: captured {win.msgs} "
                            f"message(s), certified plan has "
                            f"{chunks * cert.num_messages}", entry)
                    if not _close(win.bytes, chunks * cert.wire_bytes):
                        err("prealloc-conservation",
                            f"{entry['name']}: captured messages carry "
                            f"{win.bytes:.0f} wire bytes, certificate "
                            f"prices {chunks * cert.wire_bytes:.0f}", entry)
                per_dev = cert.prealloc.get(
                    "per_device_peak_live_bytes", [0.0] * G)
                for g in range(G):
                    if per_dev[g] > peak[g]:
                        peak[g] = per_dev[g]
                if win.max_msg > cert.prealloc.get(
                        "peak_live_bytes", float("inf")) * (1 + 1e-6):
                    err("prealloc-message-exceeds-peak",
                        f"{entry['name']}: a captured message carries "
                        f"{win.max_msg:.0f} B, above the certified peak "
                        f"live {cert.prealloc['peak_live_bytes']:.0f} B",
                        entry)
            elif kind == "halo":
                # a ring halo holds both neighbours' slabs live at once
                if win.msgs != 2 * G:
                    err("prealloc-messages",
                        f"{entry['name']}: halo captured {win.msgs} "
                        f"message(s), the two ring shifts need {2 * G}",
                        entry)
                if not _close(win.bytes, 2 * G * payload):
                    err("prealloc-conservation",
                        f"{entry['name']}: halo moved {win.bytes:.0f} "
                        f"bytes, expected {2 * G * payload:.0f}", entry)
                for g in range(G):
                    if 2 * payload > peak[g]:
                        peak[g] = 2 * payload
            elif kind == "p2p":
                if win.msgs != 1:
                    err("prealloc-messages",
                        f"{entry['name']}: p2p logged one transfer but "
                        f"{win.msgs} message(s) were captured", entry)
                for dst, b in win.per_dst.items():
                    if b > peak[dst]:
                        peak[dst] = b
            win.reset()

    graph.prealloc = {
        "per_device_peak_live_bytes": list(peak),
        "peak_live_bytes": max(peak) if peak else 0.0,
    }
    return findings
