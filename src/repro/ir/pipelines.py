"""One IR capture entry point per pipeline.

Each ``capture_*`` helper constructs its pipeline object *against the
recording proxy* (so every primitive the pipeline issues is recorded),
runs it once — a fully valid interpreted run — and returns
``(graph, result)``.  On the way out it attaches the two host-side
data hooks the replay loop needs in execute mode:

- ``graph.stage_in(*inputs)`` — place fresh input data into the
  capture cluster's device buffers (the same host-side scatter the
  pipeline's ``run`` performs before issuing ops);
- ``graph.finalize()`` — gather the output from device buffers (the
  same host-side gather ``run`` performs at the end).

Both hooks are bound to the **capture cluster**: the captured NumPy
closures read and write that cluster's device buffers (and, for the
FMM, per-instance host state), so an execute-mode replay must target
the machine the graph was captured on.  Timing-only replays
(:func:`~repro.ir.executor.scratch_replay`, the serve scheduler) never
run closures and may target any fresh cluster with the same spec.

:func:`capture_pipeline` is the uniform dispatch the CLI and CI smoke
jobs use: name + cluster + N, with inputs generated from a seeded RNG
on execute-mode clusters.
"""

from __future__ import annotations

import numpy as np

from repro.ir.capture import capture
from repro.util.validation import ParameterError

#: pipeline names :func:`capture_pipeline` accepts
PIPELINE_NAMES = ("fft1d", "fft2d", "rfft", "fmm", "fmmfft", "nufft")


def _attach(graph, stage_in, finalize):
    graph.stage_in = stage_in
    graph.finalize = finalize
    return graph


def capture_fft1d(cluster, N, *, dtype="complex128", chunks=4,
                  backend="auto", comm_algorithm="bulk", key="dfft1",
                  x=None):
    """Capture one six-step 1D FFT run; returns ``(graph, result)``."""
    from repro.dfft.fft1d import Distributed1DFFT

    box = {}

    def _run(proxy):
        plan = Distributed1DFFT(N, proxy, dtype=dtype, chunks=chunks,
                                backend=backend,
                                comm_algorithm=comm_algorithm)
        box["plan"] = plan
        return plan.run(x, key=key)

    graph, result = capture(
        _run, cluster, pipeline="fft1d", buffer_prefix=key,
        key=("fft1d", N, np.dtype(dtype).name, chunks, backend,
             comm_algorithm, cluster.G))
    plan = box["plan"]
    return _attach(graph,
                   lambda xv: plan.stage_in(xv, key),
                   lambda: plan.gather(key)), result


def capture_fft2d(cluster, M, P, *, dtype="complex128", chunks=4,
                  backend="auto", comm_algorithm="bulk", key="dfft2",
                  a=None):
    """Capture one single-transpose 2D FFT run; returns ``(graph, result)``."""
    from repro.dfft.fft2d import Distributed2DFFT

    box = {}

    def _run(proxy):
        plan = Distributed2DFFT(M, P, proxy, dtype=dtype, chunks=chunks,
                                backend=backend,
                                comm_algorithm=comm_algorithm)
        box["plan"] = plan
        return plan.run(a, key=key)

    graph, result = capture(
        _run, cluster, pipeline="fft2d", buffer_prefix=key,
        key=("fft2d", M, P, np.dtype(dtype).name, chunks, backend,
             comm_algorithm, cluster.G))
    plan = box["plan"]
    return _attach(graph,
                   lambda av: plan.stage_in(av, key),
                   lambda: plan.gather(key)), result


def capture_rfft(cluster, N, *, dtype="float64", chunks=4, backend="auto",
                 comm_algorithm="bulk", key="drfft", x=None):
    """Capture one real-input FFT run; returns ``(graph, result)``."""
    from repro.dfft.realfft import DistributedRealFFT

    box = {}

    def _run(proxy):
        plan = DistributedRealFFT(N, proxy, dtype=dtype, chunks=chunks,
                                  backend=backend,
                                  comm_algorithm=comm_algorithm)
        box["plan"] = plan
        return plan.run(x, key=key)

    graph, result = capture(
        _run, cluster, pipeline="rfft", buffer_prefix=key,
        key=("rfft", N, np.dtype(dtype).name, chunks, backend,
             comm_algorithm, cluster.G))
    plan = box["plan"]
    return _attach(graph,
                   lambda xv: plan.stage_in(xv, key),
                   lambda: plan.finalize(key)), result


def capture_fmm(cluster, operators, *, dtype="complex128",
                comm_algorithm="bulk", ns="fmm", S=None):
    """Capture the distributed FMM (plus a settling barrier).

    ``operators`` is an :class:`~repro.fmm.plan.FmmOperators` (execute)
    or bare geometry (timing-only).  Returns ``(graph, (events, r))``.
    """
    from repro.fmm.distributed import DistributedFMM

    box = {}

    def _run(proxy):
        fmm = DistributedFMM(operators, proxy, dtype=dtype,
                             comm_algorithm=comm_algorithm, ns=ns)
        box["fmm"] = fmm
        out = fmm.run(S)
        proxy.barrier()
        return out

    graph, result = capture(
        _run, cluster, pipeline="fmm", buffer_prefix=ns,
        key=("fmm", operators.tree.G, operators.P, operators.Q,
             operators.ML, operators.B, np.dtype(dtype).name,
             comm_algorithm))
    fmm = box["fmm"]
    return _attach(graph,
                   lambda Sv: fmm.scatter(Sv),
                   lambda: fmm.gather()), result


def capture_fmmfft(cluster, plan, *, backend="auto", chunks=4,
                   fuse_post=True, comm_algorithm="bulk", ns=None,
                   x=None):
    """Capture the full FMM-FFT pipeline; returns ``(graph, result)``."""
    from repro.core.distributed import FmmFftDistributed

    box = {}

    def _run(proxy):
        ff = FmmFftDistributed(plan, proxy, backend=backend, chunks=chunks,
                               fuse_post=fuse_post,
                               comm_algorithm=comm_algorithm, ns=ns)
        box["ff"] = ff
        return ff.run(x)

    graph, result = capture(
        _run, cluster, pipeline="fmmfft",
        buffer_prefix="fmmfft" if ns is None else ns,
        key=plan.plan_key() + (comm_algorithm, chunks, fuse_post))
    ff = box["ff"]
    key_s, key_t = f"{ff.ns}.S", f"{ff.ns}.T"
    return _attach(
        graph,
        lambda xv: ff._scatter_input(xv, key_s),
        lambda: ff.fft2d.gather(key_t).reshape(plan.N)), result


def capture_nufft(cluster, n, m, *, sigma=2.0, Q=16, B=3, key="nufft",
                  c=None, x=None):
    """Capture the G=1 type-2 NUFFT pipeline; returns ``(graph, result)``."""
    from repro.nufft.transforms import ClusterNufft2

    box = {}

    def _run(proxy):
        plan = ClusterNufft2(n, m, proxy, sigma=sigma, Q=Q, B=B)
        box["plan"] = plan
        return plan.run(c, x, key=key)

    graph, result = capture(
        _run, cluster, pipeline="nufft", buffer_prefix=key,
        key=("nufft", n, m, sigma, Q, B))
    plan = box["plan"]
    return _attach(graph,
                   lambda cv, xv: plan.stage_in(cv, xv, key),
                   lambda: plan.finalize(key)), result


def capture_pipeline(name: str, cluster, N: int, *, dtype="complex128",
                     comm_algorithm="bulk", seed: int = 0):
    """Uniform dispatch: capture pipeline ``name`` at size ``N``.

    On execute-mode clusters, inputs are drawn from a seeded RNG so
    captures are reproducible; timing-only clusters pass None through.
    Returns ``(graph, result)``.
    """
    if name not in PIPELINE_NAMES:
        raise ParameterError(
            f"unknown pipeline {name!r}; expected one of {PIPELINE_NAMES}")
    rng = np.random.default_rng(seed)
    ex = cluster.execute

    def _cvec(size):
        return (rng.standard_normal(size)
                + 1j * rng.standard_normal(size)).astype(np.complex128)

    if name == "fft1d":
        x = _cvec(N).astype(dtype) if ex else None
        return capture_fft1d(cluster, N, dtype=dtype,
                             comm_algorithm=comm_algorithm, x=x)
    if name == "fft2d":
        q = max(N.bit_length() - 1, 2)
        M = 1 << ((q + 1) // 2)
        P = N // M
        a = _cvec(N).astype(dtype).reshape(M, P) if ex else None
        return capture_fft2d(cluster, M, P, dtype=dtype,
                             comm_algorithm=comm_algorithm, a=a)
    if name == "rfft":
        x = rng.standard_normal(N) if ex else None
        return capture_rfft(cluster, N, comm_algorithm=comm_algorithm, x=x)
    if name in ("fmm", "fmmfft"):
        from repro.core.api import default_params
        from repro.core.plan import FmmFftPlan

        plan = FmmFftPlan.create(N=N, G=cluster.G, dtype=dtype,
                                 build_operators=ex,
                                 **default_params(N, cluster.G))
        if name == "fmmfft":
            x = _cvec(N).astype(dtype) if ex else None
            return capture_fmmfft(cluster, plan,
                                  comm_algorithm=comm_algorithm, x=x)
        ops = plan.operators if ex else plan.geometry
        S = (_cvec(N).astype(dtype).reshape(plan.M, plan.P).T.copy()
             if ex else None)
        return capture_fmm(cluster, ops, dtype=dtype,
                           comm_algorithm=comm_algorithm, S=S)
    # nufft
    m = max(16, N // 2)
    c = _cvec(N) if ex else None
    x = rng.random(m) if ex else None
    return capture_nufft(cluster, N, m, c=c, x=x)
