"""Capture layer: record one interpreted pipeline run into an IRGraph.

:class:`RecordingCluster` is a transparent proxy over a live
:class:`~repro.machine.cluster.VirtualCluster`.  Pipelines run on it
unchanged — every primitive (``launch``/``host_op``/``sendrecv``/
``alltoall``/``allgather``/``barrier``/``host_action``) forwards to the
real engine, so the capture run *is* a normal interpreted run with
identical ledger, events, data, and telemetry — and on the way through,
each call is recorded as one :class:`~repro.ir.graph.IRNode` with its
dependency edges resolved from the event objects the pipeline passed.
``comm_log`` appends are intercepted the same way, so the comm layer's
algorithm/payload/predicted entries replay too.

Dependency resolution policy (events carry a ledger uid when real):

- ``ev is release_event`` — the external release dependency, index -1.
- ``ev.op >= 0`` — a uid from this capture maps to its producing node
  (and a ``sub`` device index when the producer is a collective);
  a uid from *outside* the capture is a :class:`CaptureError` (the
  graph would silently lose the edge on replay).
- synthetic ``op == -1`` events the proxy itself returned (G=1
  degenerate collectives) resolve by identity.
- ``time == 0.0`` synthetics (``Event.zero()``) are dropped — a clock
  can never be behind t=0.
- any other synthetic aliases to the node whose completion time equals
  ``ev.time`` (G=1 halo/done fallbacks built by the comm layer); no
  match is a :class:`CaptureError`.

Capture refuses fault-injecting clusters: recorded durations embed any
fault stretching, so a replayed graph would launder a transient fault
into every future run.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.comm.api import _pair_info
from repro.ir.graph import (
    IRGraph,
    IRNode,
    OP_ACTION,
    OP_BARRIER,
    OP_COLL,
    OP_COLL1,
    OP_HOST,
    OP_LAUNCH,
    OP_LOG,
    OP_P2P,
    OP_P2P_SELF,
)
from repro.machine.spec import spec_fingerprint
from repro.machine.stream import Event
from repro.util.validation import ParameterError


class CaptureError(ParameterError):
    """A pipeline issued something the IR cannot faithfully replay."""


class _LogShim(list):
    """``comm_log`` stand-in: mirrors appends to the real log and
    records each entry as an :data:`~repro.ir.graph.OP_LOG` node."""

    def __init__(self, rec: "RecordingCluster", real: list):
        super().__init__(real)
        self._rec = rec
        self._real = real

    def append(self, entry: dict) -> None:
        super().append(entry)
        self._real.append(entry)
        self._rec._note_log(entry)


class RecordingCluster:
    """Recording proxy over a live cluster (see module docstring).

    Everything not intercepted forwards via ``__getattr__``, so the
    proxy is drop-in for any pipeline: ``spec``/``G``/``devices``/
    ``ledger``/``region``/``telemetry``/... all behave as the real
    cluster.  Call :meth:`finish` after the run to obtain the graph.
    """

    def __init__(self, cluster, release_event: Event | None = None,
                 pipeline: str = "", key=None, buffer_prefix: str = ""):
        if cluster.faults is not None:
            raise CaptureError(
                "cannot capture on a fault-injecting cluster: recorded "
                "durations would bake transient faults into every replay")
        self._cl = cluster
        self._nodes: list[IRNode] = []
        self._uid2ref: dict[int, tuple[int, int]] = {}
        self._synth: dict[int, int] = {}
        self._end2idx: dict[float, int] = {}
        self._release = release_event
        self._meta = {
            "pipeline": pipeline,
            "key": key,
            "G": cluster.G,
            "spec_fingerprint": spec_fingerprint(cluster.spec),
            "buffer_prefix": buffer_prefix,
            "executed": bool(cluster.execute),
        }
        self.comm_log = _LogShim(self, cluster.comm_log)

    def __getattr__(self, name: str):
        try:
            cl = self.__dict__["_cl"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(cl, name)

    # -- capture bookkeeping -------------------------------------------

    def _deps(self, after: Sequence[Event]) -> tuple:
        out = []
        for ev in after:
            if ev is None:
                continue
            if ev is self._release:
                out.append((-1, -1, False))
                continue
            if ev.op >= 0:
                ref = self._uid2ref.get(ev.op)
                if ref is None:
                    raise CaptureError(
                        f"dependency on op uid={ev.op} issued outside this "
                        "capture; capture must cover the whole pipeline run")
                out.append((ref[0], ref[1], True))
                continue
            idx = self._synth.get(id(ev))
            if idx is not None:
                out.append((idx, -1, False))
                continue
            if ev.time == 0.0:
                continue
            idx = self._end2idx.get(ev.time)
            if idx is None:
                raise CaptureError(
                    f"unresolvable synthetic dependency {ev.label!r} at "
                    f"t={ev.time!r}: no captured node completes then")
            out.append((idx, -1, False))
        return tuple(out)

    def _note(self, idx: int, uid: int, sub: int, end: float) -> None:
        self._uid2ref[uid] = (idx, sub)
        self._end2idx[end] = idx

    def _last_rec(self):
        return self._cl.ledger._records[-1]

    def _note_log(self, entry: dict) -> None:
        payload = {"entry": dict(entry)}
        if (entry.get("algorithm") == "bulk"
                and entry.get("kind") in ("alltoall", "allgather")
                and self._cl.G > 1):
            # comm.api emits the flat-model byte counter right after this
            # log entry, stamped at the final collective's completion
            for j in range(len(self._nodes) - 1, -1, -1):
                if self._nodes[j].op == OP_COLL:
                    payload["bulk_ref"] = j
                    payload["bulk_bytes"] = entry["payload"] * self._cl.G
                    break
        self._nodes.append(IRNode(op=OP_LOG, name=entry.get("name", "log"),
                                  payload=payload))

    # -- intercepted primitives ----------------------------------------

    def launch(self, g: int, name: str, kind: str, flops: float,
               mops: float, dtype, stream: str = "compute",
               after: Sequence[Event] = (), fn: Callable | None = None,
               reads: Sequence[str] = (), writes: Sequence[str] = ()):
        """Forward one kernel launch and record it."""
        deps = self._deps(after)
        ev = self._cl.launch(g, name, kind, flops, mops, dtype,
                             stream=stream, after=after, fn=fn,
                             reads=reads, writes=writes)
        rec = self._last_rec()
        idx = len(self._nodes)
        self._nodes.append(IRNode(
            op=OP_LAUNCH, name=name, kind=kind, device=g, stream=stream,
            duration=rec.duration, flops=flops, mops=mops,
            reads=tuple(reads), writes=tuple(writes), region=rec.region,
            deps=deps, fn=fn))
        self._note(idx, ev.op, -1, ev.time)
        return ev

    def host_op(self, g: int, name: str, fn: Callable | None = None,
                reads: Sequence[str] = (), writes: Sequence[str] = ()):
        """Forward one zero-cost host op and record it."""
        ev = self._cl.host_op(g, name, fn=fn, reads=reads, writes=writes)
        rec = self._last_rec()
        idx = len(self._nodes)
        self._nodes.append(IRNode(
            op=OP_HOST, name=name, kind="host", device=g, stream="compute",
            reads=tuple(reads), writes=tuple(writes), region=rec.region,
            fn=fn))
        self._note(idx, ev.op, -1, ev.time)
        return ev

    def host_action(self, fn: Callable | None) -> None:
        """Forward (and record) a host-side data action."""
        self._nodes.append(IRNode(op=OP_ACTION, name="host_action", fn=fn))
        self._cl.host_action(fn)

    def sendrecv(self, src: int, dst: int, nbytes: float, name: str,
                 after: Sequence[Event] = (), fn: Callable | None = None,
                 reads: Sequence[str] = (), writes: Sequence[str] = (),
                 bandwidth: float | None = None,
                 latency: float | None = None):
        """Forward one p2p transfer and record it (with its per-message
        telemetry intent, so replay emits identical series)."""
        deps = self._deps(after)
        ev = self._cl.sendrecv(src, dst, nbytes, name, after=after, fn=fn,
                               reads=reads, writes=writes,
                               bandwidth=bandwidth, latency=latency)
        rec = self._last_rec()
        idx = len(self._nodes)
        if src == dst or self._cl.G == 1:
            self._nodes.append(IRNode(
                op=OP_P2P_SELF, name=name, kind="comm", device=src,
                peer=src, reads=tuple(reads), writes=tuple(writes),
                region=rec.region, deps=deps, fn=fn))
        else:
            cls, pair_lat, pair_bw, link = _pair_info(self, src, dst)
            predicted = ((latency if latency is not None else pair_lat)
                         + nbytes / (bandwidth if bandwidth is not None
                                     else pair_bw))
            self._nodes.append(IRNode(
                op=OP_P2P, name=name, kind="comm", device=src, peer=dst,
                duration=rec.duration, comm_bytes=nbytes,
                reads=tuple(reads), writes=tuple(writes),
                region=rec.region, deps=deps, fn=fn,
                tel=(cls, link, predicted)))
        self._note(idx, ev.op, -1, ev.time)
        return ev

    def _capture_collective(self, issue, name: str, after, fn,
                            reads, writes) -> list[Event]:
        deps = self._deps(after)
        events = issue()
        idx = len(self._nodes)
        if self._cl.G == 1:
            self._nodes.append(IRNode(
                op=OP_COLL1, name=name, device=0, deps=deps, fn=fn))
            self._synth[id(events[0])] = idx
            return events
        rec = self._last_rec()
        self._nodes.append(IRNode(
            op=OP_COLL, name=name, kind="comm", duration=rec.duration,
            comm_bytes=rec.comm_bytes, reads=tuple(reads),
            writes=tuple(writes), region=rec.region, deps=deps, fn=fn))
        for g, ev in enumerate(events):
            self._uid2ref[ev.op] = (idx, g)
        self._end2idx[events[0].time] = idx
        return events

    def alltoall(self, bytes_sent_per_device: float, name: str,
                 after: Sequence[Event] = (), fn: Callable | None = None,
                 reads: Sequence[str] = (), writes: Sequence[str] = ()):
        """Forward one bulk all-to-all and record it."""
        return self._capture_collective(
            lambda: self._cl.alltoall(bytes_sent_per_device, name,
                                      after=after, fn=fn, reads=reads,
                                      writes=writes),
            name, after, fn, reads, writes)

    def allgather(self, bytes_per_device: float, name: str,
                  after: Sequence[Event] = (), fn: Callable | None = None,
                  reads: Sequence[str] = (), writes: Sequence[str] = ()):
        """Forward one bulk allgather and record it."""
        return self._capture_collective(
            lambda: self._cl.allgather(bytes_per_device, name,
                                       after=after, fn=fn, reads=reads,
                                       writes=writes),
            name, after, fn, reads, writes)

    def barrier(self) -> Event:
        """Forward one global barrier and record it."""
        ev = self._cl.barrier()
        idx = len(self._nodes)
        self._nodes.append(IRNode(op=OP_BARRIER, name="barrier"))
        self._synth[id(ev)] = idx
        self._end2idx[ev.time] = idx
        return ev

    # -- result --------------------------------------------------------

    def finish(self) -> IRGraph:
        """Seal the capture and return the graph."""
        graph = IRGraph(self._nodes, self._meta)
        graph.validate()
        return graph


def capture(run: Callable, cluster, *, release_event: Event | None = None,
            pipeline: str = "", key=None, buffer_prefix: str = ""):
    """Capture one pipeline run: ``run(proxy)`` on a recording proxy.

    Returns ``(graph, result)`` where ``result`` is whatever ``run``
    returned — the capture run is a fully valid interpreted run (same
    ledger, same data, same telemetry), so its output is usable
    directly.  ``release_event`` marks an external dependency event to
    parameterize per replay; ``buffer_prefix`` documents the namespace
    captured buffer names live under (for slot renaming at replay).
    """
    rec = RecordingCluster(cluster, release_event=release_event,
                           pipeline=pipeline, key=key,
                           buffer_prefix=buffer_prefix)
    result = run(rec)
    return rec.finish(), result
