"""repro.ir — backend-neutral plan IR with a compiled replay executor.

The subsystem in three moves:

1. **Capture** (:mod:`repro.ir.capture`): run any pipeline once on a
   :class:`RecordingCluster` proxy — a fully valid interpreted run —
   and get an :class:`IRGraph` of everything it issued, with
   dependency edges resolved from the actual event objects.
2. **Certify** (:meth:`IRGraph.certify` + :mod:`repro.ir.prealloc`):
   replay timing-only onto a scratch cluster, hazard-sanitize the
   ledger, and check every captured collective against its
   :class:`~repro.analysis.plancheck.PlanCertificate`, deriving the
   graph-level preallocation contract.
3. **Replay** (:class:`ReplayExecutor`): a tight walk over compiled
   step tuples with zero per-run plan/graph construction, producing
   ledger, telemetry, and (execute mode) numerics bit-identical to the
   interpreted run.

:mod:`repro.ir.pipelines` has one capture entry point per pipeline;
:mod:`repro.ir.fuse` implements the opt-in elementwise-stage fusion.
"""

from __future__ import annotations

from repro.ir.capture import CaptureError, RecordingCluster, capture
from repro.ir.executor import ReplayError, ReplayExecutor, scratch_replay
from repro.ir.fuse import fuse_elementwise
from repro.ir.graph import IRGraph, IRNode
from repro.ir.pipelines import (
    PIPELINE_NAMES,
    capture_fft1d,
    capture_fft2d,
    capture_fmm,
    capture_fmmfft,
    capture_nufft,
    capture_pipeline,
    capture_rfft,
)
from repro.ir.prealloc import check_graph_prealloc

__all__ = [
    "CaptureError",
    "IRGraph",
    "IRNode",
    "PIPELINE_NAMES",
    "RecordingCluster",
    "ReplayError",
    "ReplayExecutor",
    "capture",
    "capture_fft1d",
    "capture_fft2d",
    "capture_fmm",
    "capture_fmmfft",
    "capture_nufft",
    "capture_pipeline",
    "capture_rfft",
    "check_graph_prealloc",
    "fuse_elementwise",
    "scratch_replay",
]
