"""Elementwise-stage fusion over a captured graph.

Two kernel launches fuse when doing so provably cannot change any
observable schedule fact except saving one launch:

- both are :data:`~repro.ir.graph.OP_LAUNCH` nodes of data-parallel
  kinds (``copy``/``custom``/``fft``) on the *same* device stream, with
  no other node on that stream between them (stream order already
  serializes them);
- the second's declared dependencies, if any, all point at the first
  (so no cross-stream event is consumed between them);
- nothing else depends on the first (its completion time is not
  observed by any other node — and no barrier, which reads every
  stream clock, sits between them in program order).

The fused node sums flops/mops, composes the NumPy closures in order,
unions the write sets, drops the first node's writes from the second's
read set (they are produced internally now), takes the deepest common
region-path prefix as its region tag (attribution rolls up to the
shared parent), and — the modeled payoff — charges **one** launch
latency instead of two.  This is exactly the
transformation the paper's implementation applies by hand (the fused
twiddle/load callbacks in the 2D FFT); the IR makes it mechanical.

Fusion deliberately changes modeled timing (that is its purpose), so
the serve layer replays *unfused* graphs — where ledger bit-identity
with the interpreted path is the contract — while ``repro ir`` reports
both forms and the fused speedup.
"""

from __future__ import annotations

from repro.ir.graph import IRGraph, IRNode, OP_BARRIER, OP_HOST, OP_LAUNCH

#: launch kinds that are data-parallel over their buffers and therefore
#: safe to fuse back-to-back into one kernel
FUSABLE_KINDS = ("copy", "custom", "fft")


def _common_region(a: str, b: str) -> str:
    """Deepest shared prefix of two region paths."""
    if a == b:
        return a
    out = []
    for x, y in zip(a.split("/"), b.split("/")):
        if x != y:
            break
        out.append(x)
    return "/".join(out)


def _use_counts(nodes) -> list[int]:
    use = [0] * len(nodes)
    for n in nodes:
        for idx, _, _ in n.deps:
            if idx >= 0:
                use[idx] += 1
    return use


def _fuse_once(nodes: list[IRNode], launch_latency: float):
    """One fusion pass; returns (new_nodes, remap, n_fused)."""
    use = _use_counts(nodes)
    barrier_seen = [0] * (len(nodes) + 1)
    for i, n in enumerate(nodes):
        barrier_seen[i + 1] = barrier_seen[i] + (n.op == OP_BARRIER)
    # stream-adjacency: previous launch index per (device, stream)
    prev_on_stream: dict = {}
    fuse_into: dict[int, int] = {}  # victim index -> target index
    for i, n in enumerate(nodes):
        if n.op != OP_LAUNCH:
            if n.op == OP_HOST:
                # a host op samples (and records) its compute stream's
                # clock, so it observes the first launch's end time
                prev_on_stream.pop((n.device, "compute"), None)
            continue
        key = (n.device, n.stream)
        p = prev_on_stream.get(key)
        prev_on_stream[key] = i
        if p is None or p in fuse_into:
            continue
        a = nodes[p]
        if (a.kind in FUSABLE_KINDS and n.kind in FUSABLE_KINDS
                and use[p] <= (1 if any(d[0] == p for d in n.deps) else 0)
                and all(d[0] == p for d in n.deps)
                and barrier_seen[i] == barrier_seen[p + 1]):
            fuse_into[i] = p
    if not fuse_into:
        return nodes, None, 0
    remap = [0] * len(nodes)
    out: list[IRNode] = []
    merged: dict[int, int] = {}
    for i, n in enumerate(nodes):
        if i in fuse_into:
            tgt = merged[fuse_into[i]]
            a = out[tgt]
            fa, fb = a.fn, n.fn
            if fa is not None and fb is not None:
                def _composed(cl, _fa=fa, _fb=fb):
                    _fa(cl)
                    _fb(cl)
                fn = _composed
            else:
                fn = fa if fb is None else fb
            out[tgt] = IRNode(
                op=OP_LAUNCH, name=f"{a.name}+{n.name}",
                kind=n.kind if a.kind == "copy" else a.kind,
                device=a.device, stream=a.stream,
                duration=a.duration + n.duration - launch_latency,
                flops=a.flops + n.flops, mops=a.mops + n.mops,
                reads=a.reads + tuple(r for r in n.reads
                                      if r not in a.writes
                                      and r not in a.reads),
                writes=a.writes + tuple(w for w in n.writes
                                        if w not in a.writes),
                region=_common_region(a.region, n.region),
                deps=a.deps, fn=fn)
            remap[i] = tgt
            continue
        remap[i] = len(out)
        merged[i] = len(out)
        out.append(n)
    # rewrite dependency indices (and bulk counter references)
    final: list[IRNode] = []
    for n in out:
        deps = tuple((remap[idx] if idx >= 0 else idx, sub, w)
                     for idx, sub, w in n.deps)
        payload = n.payload
        if payload is not None and "bulk_ref" in payload:
            payload = dict(payload)
            payload["bulk_ref"] = remap[payload["bulk_ref"]]
        if deps != n.deps or payload is not n.payload:
            n = IRNode(op=n.op, name=n.name, kind=n.kind, device=n.device,
                       peer=n.peer, stream=n.stream, duration=n.duration,
                       flops=n.flops, mops=n.mops, comm_bytes=n.comm_bytes,
                       reads=n.reads, writes=n.writes, region=n.region,
                       deps=deps, fn=n.fn, tel=n.tel, payload=payload)
        final.append(n)
    return final, remap, len(fuse_into)


def fuse_elementwise(graph: IRGraph, spec) -> IRGraph:
    """Fuse adjacent elementwise stages; returns a new graph.

    Runs passes to a fixpoint so chains collapse fully.  The input
    graph is untouched; the result's ``meta["fused"]`` counts merged
    launches and its prealloc/certification state is reset (timing
    changed, so it must re-certify).
    """
    latency = spec.device.launch_latency
    nodes = list(graph.nodes)
    total = 0
    while True:
        nodes, _, n = _fuse_once(nodes, latency)
        if n == 0:
            break
        total += n
    fused = IRGraph(nodes, {**graph.meta, "fused": total})
    fused.stage_in = graph.stage_in
    fused.finalize = graph.finalize
    fused.validate()
    return fused
