"""Compiled replay executor: run a captured graph with zero planning.

:class:`ReplayExecutor` compiles an :class:`~repro.ir.graph.IRGraph`
against one live cluster exactly once — resolving stream objects,
pre-qualifying (and optionally slot-renaming) buffer declarations,
pre-splitting region paths, and freezing every modeled duration — and
then :meth:`run` is a tight walk over flat step tuples: per replayed
op it computes the start time from stream clocks and dependency
completion times using the *same* arithmetic as the interpreted engine
primitives in :mod:`repro.machine.cluster`, appends the ledger record,
advances the streams, re-emits the captured comm telemetry, and (in
execute mode) invokes the captured NumPy closure.  No pipeline object,
plan, operator bundle, comm plan, roofline evaluation, or region
context manager is constructed per run — that is the entire point.

Because the start-time arithmetic is identical and all durations were
recorded fault-free, a replay beginning from the same stream state as
an interpreted run produces bit-identical ledger records (modulo the
requested buffer renaming / region prefix), which the bit-identity test
matrix asserts via :meth:`Ledger.fingerprint`.

Replay refuses fault-injecting clusters (captured durations cannot
reflect new faults) and machines whose spec fingerprint differs from
the capture machine (durations would silently misprice).
"""

from __future__ import annotations

from repro.ir.graph import (
    OP_ACTION,
    OP_BARRIER,
    OP_COLL,
    OP_COLL1,
    OP_HOST,
    OP_LAUNCH,
    OP_LOG,
    OP_P2P,
    OP_P2P_SELF,
)
from repro.machine.ledger import OpRecord
from repro.machine.spec import spec_fingerprint
from repro.util.validation import ParameterError


class ReplayError(ParameterError):
    """The graph cannot be replayed on this cluster."""


def _rename(name: str, old: str, new: str) -> str:
    if old and name.startswith(old):
        return new + name[len(old):]
    return name


class ReplayExecutor:
    """One graph compiled against one cluster (see module docstring).

    Parameters
    ----------
    graph:
        A captured (and normally certified) :class:`IRGraph`.
    cluster:
        The live cluster to replay onto.  Must be fault-free and match
        the capture spec fingerprint.
    rename:
        Optional ``(old_prefix, new_prefix)`` rewriting every captured
        buffer name that starts with ``old_prefix`` — how the serve
        layer re-homes a graph captured under ``serve.b<bid>`` into a
        reusable slot namespace.
    region_strip:
        Number of leading region-path components to drop at compile
        time; :meth:`run`'s ``region_prefix`` is prepended to the
        remainder, so replays can stamp truthful per-batch regions.
    """

    def __init__(self, graph, cluster, rename: tuple | None = None,
                 region_strip: int = 0):
        if cluster.faults is not None:
            raise ReplayError(
                "cannot replay on a fault-injecting cluster: captured "
                "durations are fault-free")
        if cluster.G != graph.meta["G"]:
            raise ReplayError(
                f"graph captured on G={graph.meta['G']}, "
                f"cluster has G={cluster.G}")
        fp = spec_fingerprint(cluster.spec)
        if fp != graph.meta["spec_fingerprint"]:
            raise ReplayError(
                "graph captured on a different machine spec; modeled "
                "durations would not transfer")
        self.graph = graph
        self.cluster = cluster
        self._tel_memo: tuple | None = None
        old, new = rename if rename is not None else ("", "")
        G = cluster.G
        devs = cluster.devices
        comm_tx = [d.stream("comm.tx") for d in devs]
        comm_rx = [d.stream("comm.rx") for d in devs]
        all_streams = [st for d in devs for st in d.streams.values()]

        def q(g, names):
            return tuple((g, _rename(b, old, new)) for b in names)

        def rgn(region):
            parts = region.split("/") if region else []
            return "/".join(parts[region_strip:])

        steps = []
        for n in graph.nodes:
            op = n.op
            if op == OP_LAUNCH:
                st = devs[n.device].stream(n.stream)
                steps.append((0, n.deps, n.device, n.stream, st, n.kind,
                              n.name, n.duration, n.flops, n.mops,
                              q(n.device, n.reads), q(n.device, n.writes),
                              rgn(n.region), n.fn))
            elif op == OP_HOST:
                st = devs[n.device].stream("compute")
                steps.append((1, n.device, st, n.name,
                              q(n.device, n.reads), q(n.device, n.writes),
                              rgn(n.region), n.fn))
            elif op == OP_P2P_SELF:
                steps.append((2, n.deps, n.device, comm_tx[n.device],
                              comm_rx[n.device], n.name,
                              q(n.device, n.reads), q(n.device, n.writes),
                              rgn(n.region), n.fn))
            elif op == OP_P2P:
                steps.append((3, n.deps, n.device, n.peer,
                              comm_tx[n.device], comm_rx[n.peer], n.name,
                              n.duration, n.comm_bytes,
                              q(n.device, n.reads), q(n.peer, n.writes),
                              rgn(n.region), n.fn, n.tel))
            elif op == OP_COLL:
                rq = [q(g, n.reads) for g in range(G)]
                wq = [q(g, n.writes) for g in range(G)]
                steps.append((4, n.deps, n.name, n.duration, n.comm_bytes,
                              rq, wq, rgn(n.region), n.fn,
                              comm_tx, comm_rx))
            elif op == OP_COLL1:
                steps.append((5, n.deps, comm_tx[0], n.fn))
            elif op == OP_BARRIER:
                steps.append((6, all_streams))
            elif op == OP_ACTION:
                steps.append((7, n.fn))
            elif op == OP_LOG:
                p = n.payload
                steps.append((8, dict(p["entry"]),
                              p.get("bulk_ref", -1),
                              p.get("bulk_bytes", 0.0)))
            else:  # pragma: no cover - graph.validate() rejects these
                raise ReplayError(f"unknown IR opcode {op!r}")
        self._steps = steps
        self._n = len(steps)
        self._range_G = range(G)

    # -- telemetry mirrors (same series/labels as repro.comm.api) ------

    def _series(self, tel, cls, link):
        memo = self._tel_memo
        if memo is None or memo[0] is not tel:
            memo = (tel, {})
            self._tel_memo = memo
        handles = memo[1]
        pair = handles.get((cls, link))
        if pair is None:
            pair = (tel.counter("comm.bytes", {"link_class": cls}),
                    tel.histogram("comm.measured_vs_model", {"link": link}))
            handles[(cls, link)] = pair
        return pair

    def _bulk_counter(self, tel):
        memo = self._tel_memo
        if memo is None or memo[0] is not tel:
            memo = (tel, {})
            self._tel_memo = memo
        c = memo[1].get("bulk")
        if c is None:
            c = tel.counter("comm.bytes", {"link_class": "bulk"})
            memo[1]["bulk"] = c
        return c

    # -- replay --------------------------------------------------------

    def run(self, release: float = 0.0, region_prefix: str = "") -> float:
        """Replay once; returns the latest record end time (the finish).

        ``release`` substitutes the external release dependency;
        ``region_prefix`` (e.g. ``"serve/b7"``) is prepended to each
        record's compile-stripped region remainder.
        """
        cl = self.cluster
        append = cl.ledger.append_stamped
        execute = cl.execute
        tel = cl.telemetry
        ends = [0.0] * self._n
        uids: list = [None] * self._n
        finish = 0.0
        pfx = region_prefix
        for i, step in enumerate(self._steps):
            code = step[0]
            if code == 0:  # launch
                (_, deps, g, stream, st, kind, name, dur, flops, mops,
                 reads, writes, rem, fn) = step
                start = st.clock
                w = []
                for idx, sub, in_w in deps:
                    t = release if idx < 0 else ends[idx]
                    if t > start:
                        start = t
                    if in_w:
                        u = uids[idx]
                        w.append(u if sub < 0 else u[sub])
                uid = append(OpRecord(
                    device=g, stream=stream, kind=kind, name=name,
                    start=start, duration=dur, flops=flops, mops=mops,
                    reads=reads, writes=writes, waits=tuple(w),
                    region=pfx + rem if pfx else rem))
                if fn is not None and execute:
                    fn(cl)
                end = start + dur
                st.clock = end
                ends[i] = end
                uids[i] = uid
                if end > finish:
                    finish = end
            elif code == 3:  # p2p
                (_, deps, src, dst, tx, rx, name, dur, nbytes,
                 reads, writes, rem, fn, intent) = step
                start = tx.clock
                if rx.clock > start:
                    start = rx.clock
                w = []
                for idx, sub, in_w in deps:
                    t = release if idx < 0 else ends[idx]
                    if t > start:
                        start = t
                    if in_w:
                        u = uids[idx]
                        w.append(u if sub < 0 else u[sub])
                uid = append(OpRecord(
                    device=src, stream="comm", kind="comm", name=name,
                    start=start, duration=dur, comm_bytes=nbytes, peer=dst,
                    reads=reads, writes=writes, waits=tuple(w),
                    region=pfx + rem if pfx else rem))
                if fn is not None and execute:
                    fn(cl)
                end = start + dur
                tx.clock = end
                rx.clock = end
                ends[i] = end
                uids[i] = uid
                if end > finish:
                    finish = end
                if tel is not None:
                    cls, link, predicted = intent
                    counter, ratio = self._series(tel, cls, link)
                    counter.inc(nbytes, t=end)
                    if predicted > 0.0 and end > start:
                        ratio.observe((end - start) / predicted, t=end)
            elif code == 2:  # self-send / G=1 local copy
                (_, deps, src, tx, rx, name, reads, writes, rem, fn) = step
                if fn is not None and execute:
                    fn(cl)
                start = tx.clock
                if rx.clock > start:
                    start = rx.clock
                w = []
                for idx, sub, in_w in deps:
                    t = release if idx < 0 else ends[idx]
                    if t > start:
                        start = t
                    if in_w:
                        u = uids[idx]
                        w.append(u if sub < 0 else u[sub])
                uid = append(OpRecord(
                    device=src, stream="comm", kind="comm", name=name,
                    start=start, duration=0.0, comm_bytes=0.0, peer=src,
                    reads=reads, writes=writes, waits=tuple(w),
                    region=pfx + rem if pfx else rem))
                tx.clock = start
                rx.clock = start
                ends[i] = start
                uids[i] = uid
                if start > finish:
                    finish = start
            elif code == 4:  # bulk collective
                (_, deps, name, dur, bpd, rq, wq, rem, fn,
                 comm_tx, comm_rx) = step
                start = 0.0
                for st in comm_tx:
                    if st.clock > start:
                        start = st.clock
                for st in comm_rx:
                    if st.clock > start:
                        start = st.clock
                w = []
                for idx, sub, in_w in deps:
                    t = release if idx < 0 else ends[idx]
                    if t > start:
                        start = t
                    if in_w:
                        u = uids[idx]
                        w.append(u if sub < 0 else u[sub])
                waits = tuple(w)
                region = pfx + rem if pfx else rem
                us = [append(OpRecord(
                    device=g, stream="comm", kind="comm", name=name,
                    start=start, duration=dur, comm_bytes=bpd,
                    reads=rq[g], writes=wq[g], waits=waits,
                    region=region)) for g in self._range_G]
                if fn is not None and execute:
                    fn(cl)
                end = start + dur
                for st in comm_tx:
                    st.clock = end
                for st in comm_rx:
                    st.clock = end
                ends[i] = end
                uids[i] = us
                if end > finish:
                    finish = end
            elif code == 1:  # host op
                (_, g, st, name, reads, writes, rem, fn) = step
                start = st.clock
                uid = append(OpRecord(
                    device=g, stream="compute", kind="host", name=name,
                    start=start, duration=0.0, reads=reads, writes=writes,
                    region=pfx + rem if pfx else rem))
                if fn is not None and execute:
                    fn(cl)
                ends[i] = start
                uids[i] = uid
                if start > finish:
                    finish = start
            elif code == 5:  # G=1 degenerate collective
                (_, deps, tx0, fn) = step
                if fn is not None and execute:
                    fn(cl)
                end = tx0.clock
                for idx, _, _ in deps:
                    t = release if idx < 0 else ends[idx]
                    if t > end:
                        end = t
                ends[i] = end
            elif code == 6:  # barrier
                (_, streams) = step
                t = 0.0
                for st in streams:
                    if st.clock > t:
                        t = st.clock
                for st in streams:
                    st.clock = t
                ends[i] = t
            elif code == 7:  # host-side data action
                fn = step[1]
                if fn is not None and execute:
                    fn(cl)
            else:  # code == 8: comm_log entry (+ bulk byte counter)
                (_, entry, bulk_ref, bulk_bytes) = step
                cl.comm_log.append(dict(entry))
                if bulk_ref >= 0 and tel is not None:
                    self._bulk_counter(tel).inc(bulk_bytes,
                                                t=ends[bulk_ref])
        return finish


def scratch_replay(graph, spec):
    """Timing-only replay onto a fresh cluster; returns that cluster.

    The normalized single-run ledger this produces (clocks from zero,
    uids from zero) is what :meth:`IRGraph.certify` hazard-checks, and
    what tests fingerprint against an interpreted run.
    """
    from repro.machine.cluster import VirtualCluster

    cl = VirtualCluster(spec, execute=False)
    ReplayExecutor(graph, cl).run()
    return cl
