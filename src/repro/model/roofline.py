"""Roofline stage and pipeline times (Sections 5.4, 6).

The *model* time of a stage is Eq. (3) with no launch latency and no
kind derates — the idealized minimum the paper's Figure 5 efficiencies
are measured against.  Pipeline models:

- FMM stage:  sum of stage rooflines (stages serialize on the compute
  stream; communication is hidden).
- 2D FFT:     ``fftP + max(transpose, 0) + fftM`` with the transpose
  overlapping the first FFT's chunks.
- 1D FFT:     three transposes, local FFTs overlapped under them.
- FMM-FFT:    FMM model + (simulated or modeled) 2D FFT — the paper
  deliberately treats the measured 2D FFT as 100% efficient when
  quoting FMM-FFT efficiency (Section 6.2).
"""

from __future__ import annotations

import numpy as np

from repro.fftcore.flops import fft_flops, fft_mops, fft_small_n_efficiency
from repro.fmm.plan import FmmGeometry
from repro.machine.roofline import op_time
from repro.machine.spec import ClusterSpec
from repro.model.comm import fft1d_comm_bytes, fft2d_comm_bytes
from repro.model.flops import fmm_stage_flops
from repro.model.mops import fmm_stage_mops
from repro.util.bitmath import ilog2
from repro.util.validation import real_dtype_for


def fmm_stage_times(
    geom: FmmGeometry, spec: ClusterSpec, dtype="complex128"
) -> dict[str, float]:
    """Idealized Eq. (3) time per FMM stage on one device."""
    flops = fmm_stage_flops(geom, dtype)
    mops = fmm_stage_mops(geom, dtype)
    return {
        name: op_time(spec.device, flops[name], mops[name], dtype, kind="gemm")
        for name in flops
    }


def fmm_model_time(geom: FmmGeometry, spec: ClusterSpec, dtype="complex128") -> float:
    """Model minimum wall time of the whole FMM stage (per device)."""
    return sum(fmm_stage_times(geom, spec, dtype).values())


def _local_fft_time(n: int, batch: float, spec: ClusterSpec, dtype) -> float:
    itemsize = 2 * real_dtype_for(dtype).itemsize
    return op_time(
        spec.device,
        fft_flops(n, batch=batch),
        fft_mops(n, batch=batch, itemsize=itemsize) / fft_small_n_efficiency(n),
        dtype,
        kind="fft",
    )


def _alltoall_time(bytes_sent_per_device: float, spec: ClusterSpec) -> float:
    if spec.num_devices == 1:
        return 0.0
    return bytes_sent_per_device / spec.alltoall_bandwidth()


def fft2d_model_time(M: int, P: int, spec: ClusterSpec, dtype="complex128") -> float:
    """Model time of the distributed M x P 2D FFT.

    The single transpose overlaps the first (row) FFT chunk-wise, so the
    pipeline is ``max(fftP, transpose) + fftM`` (plus nothing else in the
    idealized model).
    """
    G = spec.num_devices
    N = M * P
    t_fft_p = _local_fft_time(P, batch=M / G, spec=spec, dtype=dtype)
    t_fft_m = _local_fft_time(M, batch=P / G, spec=spec, dtype=dtype)
    t_a2a = _alltoall_time(fft2d_comm_bytes(N, G, dtype), spec)
    return max(t_fft_p, t_a2a) + t_fft_m


def fft1d_model_time(
    N: int, spec: ClusterSpec, dtype="complex128", M: int | None = None, P: int | None = None
) -> float:
    """Model time of the six-step baseline (near-square split default).

    Transposes 2 and 3 overlap the local FFT phases; transpose 1 has no
    producer to hide under.
    """
    q = ilog2(N)
    if M is None:
        M = 1 << ((q + 1) // 2)
    if P is None:
        P = N // M
    G = spec.num_devices
    t_a2a = _alltoall_time(fft1d_comm_bytes(N, G, dtype) / 3.0, spec)
    t_fft_m = _local_fft_time(M, batch=P / G, spec=spec, dtype=dtype)
    t_fft_p = _local_fft_time(P, batch=M / G, spec=spec, dtype=dtype)
    return t_a2a + max(t_fft_m, t_a2a) + max(t_fft_p, t_a2a)


def fmmfft_model_time(
    geom: FmmGeometry,
    spec: ClusterSpec,
    dtype="complex128",
    fft2d_time: float | None = None,
) -> float:
    """Model FMM-FFT time: FMM roofline + 2D FFT.

    Pass a *measured/simulated* ``fft2d_time`` to reproduce the paper's
    Figure 3 red bars ("peak practical performance... assuming the
    measured 2D FFT implementation is 100% efficient"); defaults to the
    2D FFT model otherwise.
    """
    if fft2d_time is None:
        fft2d_time = fft2d_model_time(geom.M, geom.P, spec, dtype)
    return fmm_model_time(geom, spec, dtype) + fft2d_time


def fmm_intensity(geom: FmmGeometry, dtype="complex128") -> float:
    """Aggregate computational intensity (flops/byte) of the FMM stage —
    the paper quotes ~7.8 for the large-N double-precision regime."""
    f = sum(fmm_stage_flops(geom, dtype).values())
    m = sum(fmm_stage_mops(geom, dtype).values())
    return f / m if m else float("inf")
