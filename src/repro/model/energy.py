"""Energy model: the efficiency angle the paper motivates.

The introduction argues that "compressed and dense algorithms of this
type often harmoniously improve the energy-efficiency of the
computations as well" [17], and the conclusion predicts multi-node
energy wins "due to higher internode communication costs".  This module
quantifies that: a ledger is priced with per-operation energy costs
(representative Pascal-era figures):

===============================  =========================
component                        energy
===============================  =========================
double-precision flop            ~20 pJ
byte through HBM2                ~40 pJ (~12 pJ/byte GDDR5 x ECC ...)
byte over NVLink                 ~80 pJ
byte over PCIe                   ~250 pJ
byte over an IB NIC              ~500 pJ
device idle (leakage + static)   ~75 W per GPU
===============================  =========================

The exact constants matter less than their ordering — moving a byte
across the node costs an order of magnitude more than computing on it,
which is why removing two of three all-to-alls saves energy even when
it does not save time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cluster import VirtualCluster
from repro.machine.ledger import Ledger
from repro.machine.spec import ClusterSpec
from repro.util.validation import ParameterError, check_positive


@dataclass(frozen=True)
class EnergySpec:
    """Per-operation energy costs, joules."""

    per_flop: float = 20e-12
    per_mem_byte: float = 40e-12
    per_link_byte: float = 80e-12     # NVLink-class
    per_fallback_byte: float = 250e-12  # PCIe / NIC class
    idle_power: float = 75.0          # watts per device

    def __post_init__(self):
        for f in ("per_flop", "per_mem_byte", "per_link_byte",
                  "per_fallback_byte", "idle_power"):
            check_positive(f, getattr(self, f))


#: Pascal-era defaults.
PASCAL_ENERGY = EnergySpec()


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated run, joules."""

    compute: float
    memory: float
    communication: float
    idle: float

    @property
    def dynamic(self) -> float:
        return self.compute + self.memory + self.communication

    @property
    def total(self) -> float:
        return self.dynamic + self.idle

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"EnergyReport(total={self.total:.3f} J: compute={self.compute:.3f}, "
            f"memory={self.memory:.3f}, comm={self.communication:.3f}, "
            f"idle={self.idle:.3f})"
        )


def ledger_energy(
    ledger: Ledger,
    spec: ClusterSpec,
    wall_time: float,
    energy: EnergySpec = PASCAL_ENERGY,
) -> EnergyReport:
    """Price a run's ledger.

    Communication bytes use the link-class cost when the topology is
    all-NVLink and the fallback cost when any pair rides PCIe/NIC
    (conservatively, the worst class present — per-message attribution
    is not recorded in the ledger).
    """
    if wall_time < 0:
        raise ParameterError(f"wall_time must be >= 0, got {wall_time}")
    flops = sum(r.flops for r in ledger)
    mem = sum(r.mops for r in ledger)
    comm = sum(r.comm_bytes for r in ledger)
    G = spec.num_devices
    has_fallback = G > 1 and any((G - 1) > d for _, d in spec.graph.degree())
    per_comm = energy.per_fallback_byte if has_fallback else energy.per_link_byte
    if G == 2 and spec.pair_bandwidth(0, 1) < 20e9:
        per_comm = energy.per_fallback_byte  # PCIe-linked pair
    return EnergyReport(
        compute=flops * energy.per_flop,
        memory=mem * energy.per_mem_byte,
        communication=comm * per_comm,
        idle=energy.idle_power * G * wall_time,
    )


def run_energy(cluster: VirtualCluster, energy: EnergySpec = PASCAL_ENERGY) -> EnergyReport:
    """Energy of everything a cluster has executed so far."""
    return ledger_energy(cluster.ledger, cluster.spec, cluster.wall_time(), energy)


def energy_ratio(baseline: EnergyReport, contender: EnergyReport) -> float:
    """Baseline-to-contender total-energy ratio (> 1: contender wins)."""
    if contender.total <= 0:
        raise ParameterError("contender energy must be positive")
    return baseline.total / contender.total
