"""The Section 5 performance model.

Closed-form flop, memory-operation, and communication counts per FMM
stage; the roofline Eq. (3) stage and pipeline times; and the
parameter-space search used for Figure 3's "fastest FMM-FFT found".

Two levels of fidelity:

- **exact per-stage counts** (:mod:`flops`, :mod:`mops`, :mod:`comm`) —
  these match the simulator's ledger sums exactly (asserted in tests),
  so model and "measured" disagree only through latency, derates, and
  overlap, just as in the paper;
- **the paper's collected forms** (:func:`flops.fmm_flops_collected`,
  :func:`mops.fmm_mops_collected`) — the printed formulas of Sections
  5.1/5.3, including the Edelman flop-count agreement at
  P = G, C = 2, B = 2.
"""

from __future__ import annotations

from repro.model.vfunc import v_top, v_levels
from repro.model.flops import fmm_stage_flops, fmm_total_flops, fmm_flops_collected
from repro.model.mops import fmm_stage_mops, fmm_total_mops, fmm_mops_collected
from repro.model.comm import fmm_comm_bytes, fft1d_comm_bytes, fft2d_comm_bytes
from repro.model.roofline import (
    fmm_stage_times,
    fmm_model_time,
    fft2d_model_time,
    fft1d_model_time,
    fmmfft_model_time,
)
from repro.model.search import search_grid, find_fastest, simulate_fmmfft, simulate_fft1d
from repro.model.error import choose_q, predicted_error

__all__ = [
    "choose_q",
    "fft1d_comm_bytes",
    "fft1d_model_time",
    "fft2d_comm_bytes",
    "fft2d_model_time",
    "find_fastest",
    "fmm_comm_bytes",
    "fmm_flops_collected",
    "fmm_model_time",
    "fmm_mops_collected",
    "fmm_stage_flops",
    "fmm_stage_mops",
    "fmm_stage_times",
    "fmm_total_flops",
    "fmm_total_mops",
    "fmmfft_model_time",
    "predicted_error",
    "search_grid",
    "simulate_fft1d",
    "simulate_fmmfft",
    "v_levels",
    "v_top",
]
