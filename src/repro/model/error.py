"""Accuracy model: predicted FMM-FFT error as a function of Q.

The paper sets the error "a priori regardless of the complexity or
distribution of the input" by choosing Q (Section 2; Figure 9 bottom).
Chebyshev interpolation of the cotangent kernel over well-separated
boxes converges geometrically::

    err(Q) ~ C0 * rho^Q        (until the machine-precision floor)

The rate ``rho`` is set by the separation of the nearest cousin
interaction (source box at >= 2 box widths, i.e. a Bernstein-ellipse
parameter of about 2 + sqrt(3)); we use the empirically calibrated
values below, which match the measured Figure 9 sweep to within a
factor ~3 across Q = 2..18.

:func:`choose_q` inverts the model: the smallest (even) Q meeting a
target tolerance — "FFTs that produce less accurate results are then
potentially faster by 1.5x" (Section 6.3.4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import ParameterError, real_dtype_for

#: geometric convergence rate per unit Q (measured: ~0.165/step)
ERROR_RATE = 0.165
#: prefactor at Q = 0
ERROR_PREFACTOR = 0.065
#: relative-error floors from accumulated roundoff
FLOOR = {np.dtype(np.float64): 7e-16, np.dtype(np.float32): 4e-8}


def predicted_error(Q: int, dtype="complex128") -> float:
    """Modeled relative l2 error of the full FMM-FFT at order Q."""
    if Q < 1:
        raise ParameterError(f"Q must be >= 1, got {Q}")
    floor = FLOOR[np.dtype(real_dtype_for(dtype))]
    return max(ERROR_PREFACTOR * ERROR_RATE**Q, floor)


def choose_q(tolerance: float, dtype="complex128", even: bool = True) -> int:
    """Smallest admissible Q with predicted error <= tolerance.

    ``even=True`` (default) rounds up to an even order — the odd-even
    staircase of Figure 9 means odd orders buy almost nothing.
    Raises if the tolerance is below the precision floor.
    """
    if tolerance <= 0:
        raise ParameterError(f"tolerance must be positive, got {tolerance}")
    floor = FLOOR[np.dtype(real_dtype_for(dtype))]
    if tolerance < floor:
        raise ParameterError(
            f"tolerance {tolerance:g} is below the {np.dtype(dtype).name} "
            f"floor {floor:g}; use a higher precision"
        )
    q = math.ceil(math.log(tolerance / ERROR_PREFACTOR) / math.log(ERROR_RATE))
    q = max(q, 2)
    if even and q % 2:
        q += 1
    return min(q, 24)


def speedup_from_reduced_q(q_full: int, q_reduced: int) -> float:
    """Rough FMM-stage speedup from lowering Q (flops ~ linear-to-quadratic
    in Q; we use the Section 5.1 mix at M_L = 64)."""
    if q_reduced > q_full:
        raise ParameterError("q_reduced must not exceed q_full")

    def cost(q):  # 20 q^2/ML + 4 q terms with ML = 64, plus the 6*ML floor
        return 20.0 * q * q / 64.0 + 4.0 * q + 6.0 * 64.0

    return cost(q_full) / cost(q_reduced)
