"""Per-stage memory-operation (byte) counts (Section 5.3).

The exact counts mirror the engine's per-launch accounting: operators
are read at real width, data at ``C x`` real width (the paper's
interleaved layout flattening), S2T/M2L operator entries are generated
on the fly (Section 5.3's trade-off — their PQ^2/PM_L operator terms are
*not* charged as traffic), and accumulating stages re-read their
output.  :func:`fmm_mops_collected` reproduces the paper's printed
lower bound.
"""

from __future__ import annotations

import math

from repro.fmm.plan import FmmGeometry
from repro.util.validation import c_factor, real_dtype_for


def _sizes(dtype):
    rsize = real_dtype_for(dtype).itemsize
    C = c_factor(dtype)
    return C, rsize, C * rsize


def fmm_stage_mops(geom: FmmGeometry, dtype="complex128") -> dict[str, float]:
    """Exact per-device memory bytes per stage (as logged by the engine)."""
    C, rsize, csize = _sizes(dtype)
    t = geom.tree
    P, Q, ML = geom.P, geom.Q, geom.ML
    L, B = t.L, t.B
    nleaf = t.boxes_local(L)
    out: dict[str, float] = {}
    # BatchedGEMM stages: operator read + input read + output write
    out["S2M"] = Q * ML * rsize + (ML + Q) * nleaf * (P - 1) * csize
    out["L2T"] = (
        ML * Q * rsize
        + (Q + ML) * nleaf * (P - 1) * csize
        + nleaf * ML * (P - 1) * csize  # accumulation read of T
    )
    # custom kernels: operator entries generated on the fly
    out["S2T"] = ((nleaf + 2) * ML * P + nleaf * ML * P) * csize
    for ell in t.levels_m2m():
        nbl = t.boxes_local(ell)
        out[f"M2M-{ell}"] = 2 * Q * Q * rsize + (2 * Q + Q) * nbl * (P - 1) * csize
        out[f"L2L-{ell}"] = 2 * Q * Q * rsize + (Q + 2 * Q) * nbl * (P - 1) * csize
    for ell in t.levels_m2l():
        nbl = t.boxes_local(ell)
        out[f"M2L-{ell}"] = ((nbl + 4) * Q + nbl * Q) * (P - 1) * csize
    nbB = 1 << B
    out["M2L-B"] = (nbB * Q + t.boxes_local(B) * Q) * (P - 1) * csize
    out["REDUCE"] = nbB * (P - 1) * Q * csize + (P - 1) * csize
    return out


def fmm_total_mops(geom: FmmGeometry, dtype="complex128") -> float:
    """Total per-device FMM memory bytes."""
    return sum(fmm_stage_mops(geom, dtype).values())


def fmm_mops_collected(
    N: int, P: int, ML: int, Q: int, G: int, B: int = 2, dtype="complex128"
) -> float:
    """The paper's Section 5.3 collected lower bound, in *bytes*.

    The printed count (in elements)::

        2 Q M_L + 4 Q^2 + 4 P M_L + P Q^2 (4 log(N/(M_L P)) - 4B + 2^B - 3)
        + C (5 + 14 Q / M_L) (1 - 1/P) N / G
        + O(C (2^B + 2^B/G - v(B,G)) (P-1) Q)

    The first line (operators + on-the-fly S2T/M2L entries the paper
    chooses *not* to stream — see their discussion) is scaled by the
    real width; the data terms by ``C x`` real width.
    """
    C, rsize, csize = _sizes(dtype)
    L = int(math.log2(N / (ML * P)))
    ops_elems = (
        2 * Q * ML
        + 4 * Q * Q
        + 4 * P * ML
        + P * Q * Q * (4 * L - 4 * B + (1 << B) - 3)
    )
    data_elems = (5.0 + 14.0 * Q / ML) * (1.0 - 1.0 / P) * N / G
    return ops_elems * rsize + data_elems * csize
