"""Human-readable model breakdowns.

Renders the Section 5 model for a configuration the way the paper
discusses it: per-stage flops, bytes, computational intensity, the
roofline limit that binds, and the model time — plus the pipeline
summary (FMM + 2D FFT vs the three-transpose baseline).
"""

from __future__ import annotations

import numpy as np

from repro.fmm.plan import FmmGeometry
from repro.machine.spec import ClusterSpec
from repro.model.comm import fft1d_comm_bytes, fft2d_comm_bytes, fmm_comm_bytes
from repro.model.flops import fmm_stage_flops
from repro.model.mops import fmm_stage_mops
from repro.model.roofline import (
    fft1d_model_time,
    fft2d_model_time,
    fmm_model_time,
    fmm_stage_times,
)
from repro.util.table import Table, format_bytes, format_count, format_time
from repro.util.validation import real_dtype_for


def stage_breakdown(geom: FmmGeometry, spec: ClusterSpec, dtype="complex128") -> Table:
    """Per-stage model table for the FMM (one device)."""
    flops = fmm_stage_flops(geom, dtype)
    mops = fmm_stage_mops(geom, dtype)
    times = fmm_stage_times(geom, spec, dtype)
    gamma = spec.device.gamma(dtype)
    crossover = gamma / spec.device.beta
    t = Table(
        ["stage", "flops", "bytes", "intensity", "bound", "model time"],
        title=f"FMM stage model: M={geom.M}, P={geom.P}, ML={geom.ML}, "
        f"B={geom.B}, Q={geom.Q}, G={geom.tree.G} on {spec.device.name} "
        f"({np.dtype(dtype).name})",
    )
    for name in sorted(times, key=lambda n: -times[n]):
        inten = flops[name] / mops[name] if mops[name] else float("inf")
        bound = "compute" if inten >= crossover else "memory"
        t.add_row([
            name, format_count(flops[name]), format_bytes(mops[name]),
            f"{inten:.2f}", bound, format_time(times[name]),
        ])
    return t


def pipeline_summary(
    geom: FmmGeometry, spec: ClusterSpec, dtype="complex128"
) -> Table:
    """FMM-FFT vs baseline model summary (times and communication)."""
    N, G = geom.N, spec.num_devices
    t_fmm = fmm_model_time(geom, spec, dtype)
    t_2d = fft2d_model_time(geom.M, geom.P, spec, dtype)
    t_1d = fft1d_model_time(N, spec, dtype)
    comm_fmm = sum(fmm_comm_bytes(geom, dtype).values()) + fft2d_comm_bytes(N, G, dtype)
    comm_1d = fft1d_comm_bytes(N, G, dtype)
    t = Table(["pipeline", "model time", "comm bytes/device"],
              title=f"Pipeline model summary, N={N}, G={G}")
    t.add_row(["FMM stage", format_time(t_fmm), format_bytes(
        sum(fmm_comm_bytes(geom, dtype).values()))])
    t.add_row(["2D FFT stage", format_time(t_2d), format_bytes(
        fft2d_comm_bytes(N, G, dtype))])
    t.add_row(["FMM-FFT total", format_time(t_fmm + t_2d), format_bytes(comm_fmm)])
    t.add_row(["1D FFT baseline", format_time(t_1d), format_bytes(comm_1d)])
    speedup = t_1d / (t_fmm + t_2d)
    t.add_row(["model speedup", f"{speedup:.2f}x",
               f"{comm_1d / max(comm_fmm, 1e-30):.2f}x less comm"])
    return t


def render_model_report(
    geom: FmmGeometry, spec: ClusterSpec, dtype="complex128"
) -> str:
    """Both tables as one string (the CLI's ``model`` command)."""
    return (
        stage_breakdown(geom, spec, dtype).render()
        + "\n\n"
        + pipeline_summary(geom, spec, dtype).render()
    )
