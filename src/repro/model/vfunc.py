"""The paper's tree-top summation helper (Section 5, displayed equation).

For sums over the hierarchical levels of per-device box counts::

    sum_{ell=B}^{L-1} ceil(2^ell / G) = 2^L / G - v(B, G)

with::

    v(B, G) = 2^B / G            if B >  log2 G
    v(B, G) = B + 1 - log2 G     if B <= log2 G

(the second branch accounts for levels with fewer boxes than devices,
where every device still holds at least its one replicated box).  The
paper also abbreviates the whole sum as ``v(L, B, G)``.
"""

from __future__ import annotations

from repro.util.bitmath import ceil_div, ilog2
from repro.util.validation import check_pow2, check_range


def v_top(B: int, G: int) -> float:
    """``v(B, G)`` as defined above."""
    check_range("B", B, 0, None)
    check_pow2("G", G)
    lg = ilog2(G)
    if B > lg:
        return (1 << B) / G
    return B + 1 - lg


def v_levels(L: int, B: int, G: int) -> float:
    """``v(L, B, G) = sum_{ell=B}^{L-1} ceil(2^ell/G) = 2^L/G - v(B, G)``.

    Requires ``L > log2 G`` (the paper's standing assumption).
    """
    check_range("L", L, B, None)
    check_pow2("G", G)
    if L <= ilog2(G) and L > 0:
        raise ValueError(f"v_levels assumes L > log2 G, got L={L}, G={G}")
    return (1 << L) / G - v_top(B, G)


def v_levels_exact(L: int, B: int, G: int) -> int:
    """The sum evaluated term by term (oracle for the closed form)."""
    return sum(ceil_div(1 << ell, G) for ell in range(B, L))
