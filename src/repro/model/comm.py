"""Communication volumes (Section 5.2).

Per-device bytes *sent*, in both the exact engine convention (what the
ledger logs) and the paper's element-count convention:

- S halo:   ``2 C (P-1) M_L``   (one leaf box to each neighbour)
- M-ell:    ``4 C (L-B) (P-1) Q``  (two boxes per side per level)
- M-B:      ``2^B C (P-1) Q``   (the base gather)

"This is extremely small compared to the number of flops performed" —
the engine hides it behind compute exactly as the paper describes.
"""

from __future__ import annotations

from repro.fmm.plan import FmmGeometry
from repro.util.validation import c_factor, real_dtype_for


def fmm_comm_bytes(geom: FmmGeometry, dtype="complex128") -> dict[str, float]:
    """Per-device bytes sent per communication stage (engine convention).

    The allgather entry is the engine's receive-dominated accounting:
    ``(G-1) x`` each device's base contribution.
    """
    C = c_factor(dtype)
    csize = C * real_dtype_for(dtype).itemsize
    t = geom.tree
    P, Q, ML, G = geom.P, geom.Q, geom.ML, t.G
    out: dict[str, float] = {}
    if G == 1:
        return {"COMM-S": 0.0, "COMM-M": 0.0, "COMM-MB": 0.0}
    out["COMM-S"] = 2.0 * (P - 1) * ML * csize
    out["COMM-M"] = 4.0 * (t.L - t.B) * (P - 1) * Q * csize
    out["COMM-MB"] = (G - 1) * (P - 1) * t.boxes_local(t.B) * Q * csize
    return out


def fmm_comm_elements_paper(geom: FmmGeometry, dtype="complex128") -> dict[str, float]:
    """The paper's Section 5.2 element counts (C-scaled reals)."""
    C = c_factor(dtype)
    t = geom.tree
    P, Q, ML = geom.P, geom.Q, geom.ML
    return {
        "S": 2.0 * C * (P - 1) * ML,
        "M-ell": 4.0 * C * (t.L - t.B) * (P - 1) * Q,
        "M-B": (1 << t.B) * C * (P - 1) * Q,
    }


def fft1d_comm_bytes(N: int, G: int, dtype="complex128") -> float:
    """Per-device bytes sent by the six-step baseline: three all-to-alls,
    each moving ``(G-1)/G`` of the local block."""
    itemsize = 2 * real_dtype_for(dtype).itemsize  # complex elements
    if G == 1:
        return 0.0
    local = (N / G) * itemsize
    return 3.0 * local * (G - 1) / G


def fft2d_comm_bytes(N: int, G: int, dtype="complex128") -> float:
    """Per-device bytes sent by the 2D FFT: one all-to-all."""
    itemsize = 2 * real_dtype_for(dtype).itemsize
    if G == 1:
        return 0.0
    local = (N / G) * itemsize
    return local * (G - 1) / G


def communication_savings(N: int, G: int, geom: FmmGeometry, dtype="complex128") -> float:
    """Ratio of baseline to FMM-FFT total per-device communication —
    the paper's headline "up to 3x" reduction."""
    fmm = sum(fmm_comm_bytes(geom, dtype).values()) + fft2d_comm_bytes(N, G, dtype)
    base = fft1d_comm_bytes(N, G, dtype)
    if fmm == 0.0:
        return float("inf") if base > 0 else 1.0
    return base / fmm
