"""Parameter-space search: "the fastest FMM-FFT found" (Figure 3).

For each N the paper reports the best configuration over admissible
``(P, M_L, B, Q)``.  We reproduce that by sweeping a pruned grid on a
*timing-only* cluster (shape-determined, so N = 2^29 sweeps are cheap)
and returning the fastest simulated wall time alongside the baseline's.

The grid mirrors the paper's practice: Q statically tuned (16 double,
8 single — Section 6.3.4), M_L in 16..128 (they report M_L = 64 for
large N), B in 2..5, and every power-of-two P with at least 2G columns
and a usable tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import ClusterSpec
from repro.util.bitmath import ilog2
from repro.util.validation import ParameterError, check_pow2, real_dtype_for


def search_grid(N: int, G: int, dtype="complex128") -> list[dict]:
    """Admissible (P, ML, B, Q) candidates for one N and device count.

    Honors cuFFTXT's constraint that the 2D FFT has both dimensions
    >= 32 (Section 6.3.2), and orders candidates square-most first so
    that timing ties resolve toward the aspect ratios vendor 2D FFTs are
    optimized for.
    """
    check_pow2("N", N)
    Q = 16 if np.dtype(real_dtype_for(dtype)) == np.float64 else 8
    grid: list[dict] = []
    P = max(32, 2 * G)
    while N // P >= 32:
        M = N // P
        for ML in (16, 32, 64, 128):
            if ML * 4 > M:
                continue
            L = ilog2(M // ML)
            for B in range(2, min(L, 5) + 1):
                if (1 << B) % G != 0:
                    continue
                grid.append(dict(P=P, ML=ML, B=B, Q=Q))
        P *= 2
    grid.sort(key=lambda c: abs(ilog2(c["P"]) - ilog2(N // c["P"])))
    return grid


def simulate_fmmfft(
    N: int,
    params: dict,
    spec: ClusterSpec,
    dtype="complex128",
    chunks: int = 4,
) -> float:
    """Simulated wall time of one FMM-FFT configuration (timing-only)."""
    plan = FmmFftPlan.create(
        N=N, G=spec.num_devices, dtype=dtype, build_operators=False, **params
    )
    cl = VirtualCluster(spec, execute=False)
    FmmFftDistributed(plan, cl, chunks=chunks).run()
    return cl.wall_time()


def simulate_fft1d(
    N: int, spec: ClusterSpec, dtype="complex128", chunks: int = 4
) -> float:
    """Simulated wall time of the six-step baseline (timing-only)."""
    cl = VirtualCluster(spec, execute=False)
    Distributed1DFFT(N, cl, dtype=dtype, chunks=chunks).run()
    return cl.wall_time()


def simulate_fft2d(
    N: int, P: int, spec: ClusterSpec, dtype="complex128", chunks: int = 4
) -> float:
    """Simulated wall time of the M x P 2D FFT alone (timing-only)."""
    from repro.dfft.fft2d import Distributed2DFFT

    cl = VirtualCluster(spec, execute=False)
    Distributed2DFFT(N // P, P, cl, dtype=dtype, chunks=chunks).run()
    return cl.wall_time()


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a per-N parameter search."""

    N: int
    params: dict
    fmmfft_time: float
    baseline_time: float

    @property
    def speedup(self) -> float:
        return self.baseline_time / self.fmmfft_time


def find_fastest(
    N: int,
    spec: ClusterSpec,
    dtype="complex128",
    grid: list[dict] | None = None,
) -> SearchResult:
    """Sweep the grid; return the fastest configuration and the baseline.

    Raises if no candidate is admissible for (N, G).
    """
    candidates = grid if grid is not None else search_grid(N, spec.num_devices, dtype)
    best_t, best_p = float("inf"), None
    for params in candidates:
        try:
            t = simulate_fmmfft(N, params, spec, dtype)
        except ParameterError:
            continue
        # require a >1% win to displace an earlier (squarer) candidate
        if t < best_t * 0.99:
            best_t, best_p = t, params
    if best_p is None:
        raise ParameterError(f"no admissible FMM-FFT parameters for N={N}, G={spec.num_devices}")
    return SearchResult(
        N=N,
        params=best_p,
        fmmfft_time=best_t,
        baseline_time=simulate_fft1d(N, spec, dtype),
    )
