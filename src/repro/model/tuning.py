"""Parameter-tuning cache ("wisdom"), FFTW style.

The Figure 3 search costs a few hundred simulated runs per (N, system,
precision); a production library amortizes that by persisting the
winners.  :class:`TuningCache` stores search results keyed by
``(N, system-name, dtype)``, survives round trips through JSON, and
:func:`tuned_params` is a drop-in front end for
:func:`repro.model.search.find_fastest` that only searches on a miss.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.machine.spec import ClusterSpec
from repro.model.search import SearchResult, find_fastest
from repro.util.validation import ParameterError


def _key(N: int, system: str, dtype) -> str:
    return f"{N}|{system}|{np.dtype(dtype).name}"


@dataclass
class TuningCache:
    """In-memory tuning database with JSON persistence."""

    entries: dict[str, dict] = field(default_factory=dict)

    # -- core ------------------------------------------------------------

    def get(self, N: int, system: str, dtype="complex128") -> dict | None:
        """Cached best parameters, or None."""
        hit = self.entries.get(_key(N, system, dtype))
        return dict(hit["params"]) if hit else None

    def put(self, N: int, system: str, dtype, result: SearchResult) -> None:
        """Record a search result."""
        self.entries[_key(N, system, dtype)] = dict(
            params=dict(result.params),
            fmmfft_time=result.fmmfft_time,
            baseline_time=result.baseline_time,
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: tuple) -> bool:
        N, system, dtype = key
        return _key(N, system, dtype) in self.entries

    # -- persistence -------------------------------------------------------

    def dumps(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps({"version": 1, "entries": self.entries}, indent=1)

    @classmethod
    def loads(cls, text: str) -> "TuningCache":
        """Deserialize; rejects unknown versions and malformed payloads."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            raise ParameterError(f"invalid tuning cache JSON: {e}") from None
        if not isinstance(doc, dict) or doc.get("version") != 1:
            raise ParameterError("unsupported tuning cache format")
        entries = doc.get("entries", {})
        for k, v in entries.items():
            if "params" not in v or not {"P", "ML", "B", "Q"} <= set(v["params"]):
                raise ParameterError(f"malformed tuning entry {k!r}")
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps())

    @classmethod
    def load(cls, path: str | Path) -> "TuningCache":
        return cls.loads(Path(path).read_text())


def tuned_params(
    N: int,
    spec: ClusterSpec,
    dtype="complex128",
    cache: TuningCache | None = None,
) -> dict:
    """Best (P, ML, B, Q) for a problem, searching only on cache miss."""
    if cache is None:
        return find_fastest(N, spec, dtype=dtype).params
    hit = cache.get(N, spec.name, dtype)
    if hit is not None:
        return hit
    result = find_fastest(N, spec, dtype=dtype)
    cache.put(N, spec.name, dtype, result)
    return dict(result.params)
