"""Per-stage flop counts (Section 5.1).

All counts are *per device*, real floating-point operations, with the C
factor (1 real / 2 complex input) applied — exactly the convention of
the paper's list:

- S2M, L2T: ``2 C M_L 2^L (P-1) Q / G``  (each)
- M2M, L2L: ``4 C (2^L/G - v(B,G)) (P-1) Q^2``  (each)
- S2T:      ``6 C M_L^2 2^L (P-1) / G``
- M2L-ell:  ``6 C (2^{L+1}/G - v(B+1,G)) (P-1) Q^2``
- M2L-B:    ``2 C 2^B (2^B - 3) (P-1) Q^2 / G``
- REDUCE:   ``C 2^B (P-1) Q``  (replicated on every device)

These match the simulator's ledger sums exactly for the supported
regime ``G | 2^B`` (tests assert equality), and collapse to the paper's
collected expression — which agrees with Edelman's count at
``P = G, C = 2, B = 2`` — via :func:`fmm_flops_collected`.
"""

from __future__ import annotations

from repro.fmm.plan import FmmGeometry
from repro.model.vfunc import v_top
from repro.util.validation import c_factor


def fmm_stage_flops(geom: FmmGeometry, dtype="complex128") -> dict[str, float]:
    """Exact per-device flops per stage name (as logged by the engine)."""
    C = c_factor(dtype)
    t = geom.tree
    P, Q, ML, G = geom.P, geom.Q, geom.ML, t.G
    L, B = t.L, t.B
    nleaf = t.boxes_local(L)
    out: dict[str, float] = {}
    out["S2M"] = 2.0 * C * Q * ML * nleaf * (P - 1)
    out["L2T"] = out["S2M"]
    out["S2T"] = 6.0 * C * ML * ML * nleaf * (P - 1)
    for ell in t.levels_m2m():
        out[f"M2M-{ell}"] = 4.0 * C * Q * Q * t.boxes_local(ell) * (P - 1)
        out[f"L2L-{ell}"] = out[f"M2M-{ell}"]
    for ell in t.levels_m2l():
        out[f"M2L-{ell}"] = 6.0 * C * Q * Q * t.boxes_local(ell) * (P - 1)
    nS = (1 << B) - 3
    out["M2L-B"] = 2.0 * C * t.boxes_local(B) * nS * (P - 1) * Q * Q
    out["REDUCE"] = float(C * (1 << B) * (P - 1) * Q)
    return out


def fmm_total_flops(geom: FmmGeometry, dtype="complex128") -> float:
    """Total per-device FMM flops (sum of stages)."""
    return sum(fmm_stage_flops(geom, dtype).values())


def fmm_flops_collected(
    N: int, P: int, ML: int, Q: int, G: int, B: int = 2, dtype="complex128"
) -> float:
    """The paper's collected Section 5.1 expression::

        C [20 Q^2/M_L + 6 M_L + 4 Q] (1 - 1/P) N/G
          + O(C (2^B (2^B - 3)/G - v(B,G)) (P-1) Q^2)

    Returned with the explicit top-of-tree correction terms so that it
    tracks :func:`fmm_total_flops` closely (tests bound the gap).
    """
    C = c_factor(dtype)
    main = C * (20.0 * Q * Q / ML + 6.0 * ML + 4.0 * Q) * (1.0 - 1.0 / P) * N / G
    # Top-of-tree corrections: replace the levels that the geometric
    # sums over-count below the base with the dense base-level work.
    v = v_top(B, G)
    dense_base = 2.0 * C * (1 << B) * ((1 << B) - 3) * (P - 1) * Q * Q / G
    hierarchical_undercount = (
        8.0 * C * v * (P - 1) * Q * Q                # M2M+L2L below base
        + 6.0 * C * v_top(B + 1, G) * (P - 1) * Q * Q  # M2L below base+1
    )
    reduce_term = C * (1 << B) * (P - 1) * Q
    return main - hierarchical_undercount + dense_base + reduce_term


def fft_local_flops(N: int, G: int, dtype="complex128") -> float:
    """Per-device local-FFT flops of either distributed FFT (5 N log N / G
    for complex input)."""
    import math

    C = c_factor(dtype)
    return (C / 2.0) * 5.0 * (N / G) * math.log2(N)
