"""Shared machinery for the figure-regeneration benchmarks.

Each benchmark prints its table/chart to stdout *and* appends it to
``benchmarks/out/<fig>.txt`` so EXPERIMENTS.md can quote the artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.machine.spec import ClusterSpec
from repro.model.search import find_fastest, search_grid


def out_dir() -> Path:
    """Directory for benchmark artifacts (created on demand)."""
    base = Path(os.environ.get("REPRO_BENCH_OUT", Path(__file__).resolve().parents[3] / "benchmarks" / "out"))
    base.mkdir(parents=True, exist_ok=True)
    return base


def emit(fig_id: str, text: str) -> str:
    """Print a figure artifact and persist it under benchmarks/out/."""
    banner = f"\n=== {fig_id} ===\n"
    payload = banner + text + "\n"
    print(payload)
    path = out_dir() / f"{fig_id}.txt"
    path.write_text(payload)
    return payload


def fastest_config_sweep(
    spec: ClusterSpec,
    log2_ns: list[int],
    dtype: str = "complex128",
) -> dict[int, dict]:
    """Run the Figure 3 per-N parameter search over a range of sizes.

    Returns ``{log2N: {"speedup", "fmmfft_time", "baseline_time",
    "params"}}``.
    """
    out: dict[int, dict] = {}
    for q in log2_ns:
        r = find_fastest(1 << q, spec, dtype=dtype)
        out[q] = dict(
            speedup=r.speedup,
            fmmfft_time=r.fmmfft_time,
            baseline_time=r.baseline_time,
            params=r.params,
        )
    return out
