"""Aggregate benchmark artifacts into one report.

``pytest benchmarks/ --benchmark-only`` leaves one text artifact per
figure under ``benchmarks/out/``; :func:`build_report` stitches them
into a single markdown document (``python -m repro report``), ordered
to follow the paper's evaluation section.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.figures import out_dir

#: preferred artifact order (anything else is appended alphabetically)
ORDER = [
    "fig1_gemm",
    "fig2_profile",
    "fig3_2xK40c_complex64",
    "fig3_2xK40c_complex128",
    "fig3_2xP100_complex64",
    "fig3_2xP100_complex128",
    "fig3_8xP100_complex64",
    "fig3_8xP100_complex128",
    "fig4_kernel_fractions",
    "fig5_efficiency",
    "fig6_ml_dependence",
    "fig7_p_dependence",
    "fig8_b_dependence",
    "fig9_q_cost",
    "fig9_q_accuracy",
    "accuracy_claims",
    "model_validation",
    "multinode_projection",
    "multinode_crossover",
    "energy_projection",
    "obs_metrics",
]


def available_artifacts(directory: Path | None = None) -> list[Path]:
    """Artifact files in report order."""
    d = Path(directory) if directory is not None else out_dir()
    files = {p.stem: p for p in sorted(d.glob("*.txt"))}
    ordered = [files.pop(name) for name in ORDER if name in files]
    return ordered + list(files.values())


def build_report(directory: Path | None = None) -> str:
    """Concatenate all artifacts into one markdown document."""
    arts = available_artifacts(directory)
    if not arts:
        return (
            "# Benchmark report\n\n(no artifacts found — run "
            "`pytest benchmarks/ --benchmark-only` first)\n"
        )
    parts = ["# Benchmark report", "",
             f"{len(arts)} artifacts from `benchmarks/out/`.", ""]
    for p in arts:
        parts.append(f"## {p.stem}")
        parts.append("```")
        parts.append(p.read_text().strip())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(path: str | Path, directory: Path | None = None) -> Path:
    """Render and save the report; returns the output path."""
    out = Path(path)
    out.write_text(build_report(directory))
    return out
