"""The paper's reported results, transcribed for side-by-side output.

Figure 3 prints the measured speedup above every bar; those numbers are
recorded here so every benchmark table can show paper-vs-reproduction in
one view.  Keys are log2(N).
"""

from __future__ import annotations

#: Figure 3 speedups over 1D cuFFTXT, by system and precision.
PAPER_FIG3 = {
    ("2xK40c", "complex64"): {
        12: 1.66, 13: 1.71, 14: 1.73, 15: 1.89, 16: 1.82, 17: 1.70, 18: 1.79,
        19: 1.51, 20: 1.13, 21: 0.99, 22: 1.01, 23: 1.04, 24: 1.03, 25: 1.04,
        26: 1.05, 27: 1.04,
    },
    ("2xK40c", "complex128"): {
        12: 1.69, 13: 1.69, 14: 1.68, 15: 1.72, 16: 1.49, 17: 1.47, 18: 1.20,
        19: 1.00, 20: 0.91, 21: 1.00, 22: 1.02, 23: 1.04, 24: 1.04, 25: 1.06,
        26: 1.05, 27: 1.05,
    },
    ("2xP100", "complex64"): {
        12: 1.20, 13: 1.43, 14: 1.32, 15: 1.67, 16: 1.62, 17: 1.63, 18: 1.57,
        19: 1.42, 20: 1.50, 21: 1.52, 22: 1.23, 23: 1.20, 24: 1.22, 25: 1.25,
        26: 1.24, 27: 1.29, 28: 1.29,
    },
    ("2xP100", "complex128"): {
        12: 1.15, 13: 1.26, 14: 1.40, 15: 1.51, 16: 1.47, 17: 1.43, 18: 1.48,
        19: 1.43, 20: 1.26, 21: 1.09, 22: 1.17, 23: 1.21, 24: 1.25, 25: 1.26,
        26: 1.30, 27: 1.29,
    },
    ("8xP100", "complex64"): {
        14: 1.44, 15: 1.79, 16: 1.92, 17: 1.94, 18: 1.85, 19: 1.83, 20: 1.97,
        21: 1.87, 22: 1.82, 23: 1.83, 24: 1.80, 25: 1.63, 26: 1.68, 27: 1.86,
        28: 1.99, 29: 2.09,
    },
    ("8xP100", "complex128"): {
        14: 1.78, 15: 1.91, 16: 1.86, 17: 1.82, 18: 1.95, 19: 1.88, 20: 1.76,
        21: 1.75, 22: 1.64, 23: 1.68, 24: 1.57, 25: 1.66, 26: 1.89, 27: 2.04,
        28: 2.14,
    },
}

#: Figure 2's headline configuration and claims.
PAPER_FIG2 = dict(
    N=1 << 27,
    P=256,
    ML=64,
    B=3,
    Q=16,
    G=2,
    dtype="complex128",
    fmm_count=255,          # "255 FMMs of size 524k x 524k"
    fmm_size=524288,
    fmm_time_ms=32.0,       # "computed in 32ms"
    kernel_launches=35,     # "with 35 kernel launches"
)

#: Section 6.1 accuracy claims (relative l2).
PAPER_ACCURACY = dict(single_complex=4e-7, double_complex=2e-14)

#: Section 6 quotes used by the model-validation bench.
PAPER_MODEL = dict(
    fmm_intensity_double=7.8,       # flops/byte at the large-N config
    fmm_roofline_tflops_p100=2.7,   # peak practical double on P100
    crossover_byte_per_flop=0.031,  # theoretical crossover on P100
    comm_reduction=3.0,             # "by up to 3x"
    fmmfft_efficiency=0.9,          # "approximately 90% of its peak"
)
