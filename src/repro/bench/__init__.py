"""Benchmark-harness support: shared runners, emitters, and the paper's
reported numbers for side-by-side comparison.

The actual benchmark targets live in ``benchmarks/`` (one per paper
figure); this package holds the reusable machinery so each target reads
like the experiment it reproduces.
"""

from __future__ import annotations

from repro.bench.figures import emit, fastest_config_sweep, out_dir
from repro.bench.report import build_report, write_report
from repro.bench import data

__all__ = ["build_report", "data", "emit", "fastest_config_sweep", "out_dir", "write_report"]
