"""Chebyshev interpolation machinery (Section 4.3).

The paper replaces Edelman's enhanced basis with plain Lagrange
interpolation over Chebyshev points of the first kind::

    z_j = cos((2j + 1) pi / (2Q)),    j = 0..Q-1

which makes the M2M/L2L operators level-independent (a simpler
algorithm, less precomputation).  Evaluation uses the barycentric form,
which is numerically stable for the Q <= 24 range the paper sweeps
(Figure 9) — the naive product form loses digits past Q ~ 20.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


def cheb_points(Q: int) -> np.ndarray:
    """Chebyshev points of the first kind, ``z_j = cos((2j+1)pi/2Q)``."""
    check_positive("Q", Q)
    j = np.arange(Q)
    return np.cos((2 * j + 1) * np.pi / (2 * Q))


def barycentric_weights(Q: int) -> np.ndarray:
    """Barycentric weights for first-kind points.

    Up to a common factor (which cancels), ``w_j = (-1)^j sin((2j+1)pi/2Q)``.
    """
    check_positive("Q", Q)
    j = np.arange(Q)
    return (-1.0) ** j * np.sin((2 * j + 1) * np.pi / (2 * Q))


def lagrange_eval(Q: int, z: np.ndarray) -> np.ndarray:
    """Evaluate all Q Lagrange basis polynomials at points ``z``.

    Returns ``L`` with ``L[q, e] = ell_q(z[e])``.  Columns sum to one
    (partition of unity), which is what makes the S2M/M2M operators
    sum-preserving — the property the REDUCE stage (Section 4.8)
    exploits to compute ``r_p`` from base-level multipoles.
    """
    z = np.atleast_1d(np.asarray(z, dtype=np.float64))
    zq = cheb_points(Q)
    w = barycentric_weights(Q)
    diff = z[None, :] - zq[:, None]  # (Q, E)
    exact = np.isclose(diff, 0.0, atol=1e-15)
    # Guard exact hits, evaluate barycentric ratio elsewhere.
    safe = np.where(exact, 1.0, diff)
    ratios = w[:, None] / safe
    denom = ratios.sum(axis=0)
    L = ratios / denom
    hit_cols = exact.any(axis=0)
    if hit_cols.any():
        L[:, hit_cols] = np.where(exact[:, hit_cols], 1.0, 0.0)
    return L


def interp_matrix(Q: int, z: np.ndarray) -> np.ndarray:
    """Interpolation matrix mapping nodal values to values at ``z``.

    ``P[e, q] = ell_q(z[e])`` — the transpose of :func:`lagrange_eval`,
    provided for callers that think of interpolation rather than
    anterpolation.
    """
    return lagrange_eval(Q, z).T
