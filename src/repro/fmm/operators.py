"""FMM operator builders (Sections 4.4 - 4.8).

Every operator is a small dense real matrix (or stack of matrices,
batched over the kernel index p) built once per plan:

=========  =================  ========================================
stage      shape              entries
=========  =================  ========================================
S2M        (Q, M_L)           ``ell_q(s_m)``, ``s_m = -1 + (2m+1)/M_L``
L2T        (M_L, Q)           ``S2M^T``
M2M        (Q, 2Q)            ``[ell_q((z_k - 1)/2) | ell_q((z_k + 1)/2)]``
L2L        (2Q, Q)            ``M2M^T``
M2L-ell    (P-1, 2, 3, Q, Q)  ``cot(pi/2^ell (z_j/2 - z_i/2 + s) + pi p / N)``
M2L-B      (P-1, S, Q, Q)     same at level B for s = 2..2^B-2
S2T        (P-1, M_L, 3 M_L)  ``cot(pi (p + P k) / N)``, Toeplitz in k
rho        (P-1,)             ``exp(-i pi p / P) sin(pi p / P) / M``
=========  =================  ========================================

The S2T matrix is the flattened "interleaved and overlapped convolution"
of Section 4.6: entry (i, j') is the kernel at lag ``k = j' - M_L - i``
so that a single batched GEMM against the halo-extended sources applies
the whole near field.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.chebyshev import cheb_points, lagrange_eval
from repro.fmm.interaction import COUSINS_EVEN, COUSINS_ODD, base_offsets
from repro.util.validation import check_positive, check_range


def cot(x: np.ndarray) -> np.ndarray:
    """Cotangent; callers guarantee arguments away from the poles
    (p >= 1 shifts every FMM-FFT kernel argument off k*pi)."""
    return 1.0 / np.tan(x)


def s2m_matrix(Q: int, ML: int) -> np.ndarray:
    """S2M: anterpolation from the M_L leaf sources to Q coefficients.

    Sources map to [-1, 1] via ``s_m = -1 + (2m+1)/M_L`` (Section 4.4).
    """
    check_positive("Q", Q)
    check_positive("ML", ML)
    m = np.arange(ML)
    s = -1.0 + (2.0 * m + 1.0) / ML
    return lagrange_eval(Q, s)  # (Q, ML)


def l2t_matrix(Q: int, ML: int) -> np.ndarray:
    """L2T = S2M^T: evaluate the local expansion at the target points."""
    return s2m_matrix(Q, ML).T


def m2m_matrix(Q: int) -> np.ndarray:
    """M2M = [M2M- | M2M+], (Q, 2Q), translating two children to a parent.

    ``M2M±[q, k] = ell_q((z_k ± 1)/2)`` — the children's nodes scaled
    into the parent's [-1, 1] (Section 4.5).  Level-independent thanks
    to the Chebyshev basis.
    """
    zq = cheb_points(Q)
    minus = lagrange_eval(Q, (zq - 1.0) / 2.0)  # left child
    plus = lagrange_eval(Q, (zq + 1.0) / 2.0)   # right child
    return np.hstack([minus, plus])


def l2l_matrix(Q: int) -> np.ndarray:
    """L2L = M2M^T, (2Q, Q): interpolate a parent's local expansion at
    both children's nodes (stacked left child first)."""
    return m2m_matrix(Q).T


def m2l_level_tensor(level: int, P: int, Q: int, N: int) -> np.ndarray:
    """Cousin M2L operators at a hierarchical level.

    Returns ``K[pi, parity, si, i, j]`` of shape (P-1, 2, 3, Q, Q) with
    ``K = cot(pi/2^level (z_j/2 - z_i/2 + s) + pi (pi+1) / N)`` and
    ``s = COUSINS_EVEN[si]`` / ``COUSINS_ODD[si]`` (Section 4.7).
    """
    check_range("level", level, 3, None)  # cyclic offsets need 2^level >= 8
    zq = cheb_points(Q)
    p = np.arange(1, P, dtype=np.float64)
    s = np.array([COUSINS_EVEN, COUSINS_ODD], dtype=np.float64)  # (2, 3)
    arg = (
        np.pi / (1 << level)
        * (zq[None, None, None, None, :] / 2.0
           - zq[None, None, None, :, None] / 2.0
           + s[None, :, :, None, None])
        + np.pi * p[:, None, None, None, None] / N
    )
    return cot(arg)


def m2l_base_tensor(B: int, P: int, Q: int, N: int) -> np.ndarray:
    """Dense base-level M2L: all non-neighbour offsets s = 2..2^B-2.

    Returns ``K[pi, si, i, j]`` of shape (P-1, 2^B-3, Q, Q).
    """
    check_range("B", B, 2, None)
    zq = cheb_points(Q)
    p = np.arange(1, P, dtype=np.float64)
    s = np.asarray(base_offsets(B), dtype=np.float64)
    arg = (
        np.pi / (1 << B)
        * (zq[None, None, None, :] / 2.0
           - zq[None, None, :, None] / 2.0
           + s[None, :, None, None])
        + np.pi * p[:, None, None, None] / N
    )
    return cot(arg)


def s2t_lags(P: int, ML: int, N: int) -> np.ndarray:
    """The Toeplitz generator ``S2T[pi, k] = cot(pi (p + P k)/N)`` for
    lags ``k = -(2 M_L - 1) .. (2 M_L - 1)`` (Section 4.6)."""
    p = np.arange(1, P, dtype=np.float64)
    k = np.arange(-(2 * ML - 1), 2 * ML, dtype=np.float64)
    return cot(np.pi * (p[:, None] + P * k[None, :]) / N)


def s2t_matrix(P: int, ML: int, N: int) -> np.ndarray:
    """The near-field operator as a batched dense matrix.

    ``K[pi, i, j']`` with targets i in the centre box and sources j' in
    the halo-extended box triple ``[b-1, b, b+1]`` (length 3 M_L);
    lag ``k = j' - M_L - i`` indexes the Toeplitz generator.
    """
    lags = s2t_lags(P, ML, N)  # (P-1, 4ML-1), lag k at column k + 2ML - 1
    i = np.arange(ML)
    jp = np.arange(3 * ML)
    k_idx = (jp[None, :] - ML - i[:, None]) + (2 * ML - 1)  # (ML, 3ML)
    return lags[:, k_idx]  # (P-1, ML, 3ML)


def rho_factors(P: int, M: int) -> np.ndarray:
    """The complex prefactors ``rho_p = exp(-i pi p/P) sin(pi p/P)/M``
    for p = 1..P-1 (Section 3)."""
    p = np.arange(1, P, dtype=np.float64)
    return np.exp(-1j * np.pi * p / P) * np.sin(np.pi * p / P) / M
