"""Interaction lists for the periodic 1D FMM (Section 4.7).

At a hierarchical level every box interacts with three "cousins" —
children of the parent's neighbours that are not its own neighbours::

    b even:  s in {-2, +2, +3}
    b odd:   s in {-3, -2, +2}

(cyclic in the box index).  At the base level B the list is instead
*all* non-neighbours, ``s = 2 .. 2^B - 2`` cyclically — with B = 2 that
is a single box, as the paper notes.

The module also provides :func:`coverage_map`, which certifies the
fundamental FMM correctness property on which everything rests: every
ordered leaf-box pair is covered exactly once, either by the leaf-level
near field (S2T, |s| <= 1) or by the M2L of exactly one level.
"""

from __future__ import annotations

from collections import Counter

from repro.util.validation import ParameterError, check_range

#: cousin offsets for even/odd boxes at hierarchical levels
COUSINS_EVEN = (-2, 2, 3)
COUSINS_ODD = (-3, -2, 2)
#: near-field offsets at the leaf level
NEAR_OFFSETS = (-1, 0, 1)


def cousin_offsets(box_parity: int) -> tuple[int, ...]:
    """The three cousin offsets for a box of the given parity."""
    if box_parity not in (0, 1):
        raise ParameterError(f"box_parity must be 0 or 1, got {box_parity!r}")
    return COUSINS_EVEN if box_parity == 0 else COUSINS_ODD


def base_offsets(B: int) -> tuple[int, ...]:
    """All non-neighbour offsets at the base level: s = 2 .. 2^B - 2."""
    check_range("B", B, 2, None)
    return tuple(range(2, (1 << B) - 1))


def interaction_list(level: int, box: int) -> list[int]:
    """Cousin boxes (cyclic indices) of ``box`` at a hierarchical level."""
    nb = 1 << level
    if nb < 8:
        raise ParameterError(
            f"cousin lists require >= 8 boxes per level (level {level} has {nb}); "
            "levels at or below the base are handled densely"
        )
    return [(box + s) % nb for s in cousin_offsets(box % 2)]


def base_interaction_list(B: int, box: int) -> list[int]:
    """All non-neighbour boxes (cyclic) of ``box`` at the base level."""
    nb = 1 << B
    return [(box + s) % nb for s in base_offsets(B)]


def coverage_map(L: int, B: int) -> Counter:
    """Count how many times each ordered leaf pair (target, source) is
    covered by {S2T near field} + {M2L levels B+1..L} + {dense base M2L}.

    A correct scheme returns a counter where every pair maps to exactly
    1; tests assert this for many (L, B).
    """
    check_range("B", B, 2, L)
    nleaf = 1 << L
    cover: Counter = Counter()
    # near field at the leaves
    for b in range(nleaf):
        for s in NEAR_OFFSETS:
            cover[(b, (b + s) % nleaf)] += 1
    # hierarchical cousins: a level-ell pair covers all leaf descendants
    for ell in range(L, B, -1):
        shift = L - ell
        for tb in range(1 << ell):
            for sb in interaction_list(ell, tb):
                for t in range(tb << shift, (tb + 1) << shift):
                    for s in range(sb << shift, (sb + 1) << shift):
                        cover[(t, s)] += 1
    # dense base level
    shift = L - B
    for tb in range(1 << B):
        for sb in base_interaction_list(B, tb):
            for t in range(tb << shift, (tb + 1) << shift):
                for s in range(sb << shift, (sb + 1) << shift):
                    cover[(t, s)] += 1
    return cover
