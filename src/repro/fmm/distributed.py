"""Distributed execution of the P-1 interleaved FMMs (Algorithm 1).

Box ownership is contiguous per device at every level (see
:class:`~repro.fmm.tree.Tree1D`), so the communication pattern is
exactly the paper's:

- **COMM S** — one leaf box to each cyclic neighbour (halo width 1),
  overlapped with S2M on the compute stream;
- **COMM M-ell** — two boxes to each neighbour per hierarchical level
  (halo width 2), overlapped with the previous level's M2L;
- **COMM M-B** — one all-to-all gather of the base-level multipoles,
  after which M2L-B and the reduction run on replicated data.

M2M and L2L never communicate: children of owned parents are owned.

Every compute stage is one launch per device per level, with flop/byte
costs derived from the actual tensor shapes — the ledger sums are
cross-checked against the Section 5 closed forms in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro import comm
from repro.fmm.interaction import COUSINS_EVEN, COUSINS_ODD, base_offsets
from repro.fmm.plan import FmmGeometry, FmmOperators
from repro.machine.cluster import VirtualCluster
from repro.machine.stream import Event
from repro.util.validation import ParameterError, c_factor, real_dtype_for


class DistributedFMM:
    """All P-1 FMMs across a :class:`VirtualCluster` (Algorithm 1).

    Parameters
    ----------
    operators:
        A prebuilt :class:`FmmOperators` (required for execute-mode
        clusters) or a bare :class:`FmmGeometry` (sufficient for
        timing-only sweeps at any scale).  The tree's G must match the
        cluster's device count.
    cluster:
        The machine to run on.
    dtype:
        Input/output dtype (sets the C factor and byte widths).
    ns:
        Buffer namespace: every device buffer this executor touches is
        named ``{ns}.<suffix>`` (default ``"fmm"``, the historical
        names).  Concurrent in-flight executions (the serve scheduler's
        interleaved batches) use distinct namespaces so the hazard
        sanitizer can prove them independent.
    batch:
        Number of stacked problems per stage launch (timing-only).  The
        serve batcher coalesces compatible transforms: data flops,
        memory traffic, and comm bytes scale by ``batch`` while launch
        count and operator reads do not — the BatchedGEMM amortization
        the paper's pipeline is shaped for.
    """

    def __init__(
        self,
        operators: FmmOperators | FmmGeometry,
        cluster: VirtualCluster,
        dtype="complex128",
        fuse_m2l_l2l: bool = False,
        comm_algorithm: str = "bulk",
        ns: str = "fmm",
        batch: int = 1,
    ):
        """``fuse_m2l_l2l`` enables the Section 5.3 fusion: each level's
        M2L and the L2L feeding it run as one kernel, saving one write
        and one read of the local-expansion data per level (identical
        numerics; fewer launches and memory ops).  ``comm_algorithm``
        selects the collective algorithm for the base-level allgather
        (see :mod:`repro.comm`); the halo exchanges are already
        per-message plans."""
        if operators.tree.G != cluster.G:
            raise ParameterError(
                f"operators built for G={operators.tree.G}, cluster has G={cluster.G}"
            )
        if cluster.execute and not isinstance(operators, FmmOperators):
            raise ParameterError(
                "execute-mode clusters need full FmmOperators, got geometry only"
            )
        if batch < 1:
            raise ParameterError(f"batch must be >= 1, got {batch}")
        if batch > 1 and cluster.execute:
            raise ParameterError(
                "batch > 1 is a timing-only cost model; execute-mode numerics "
                "run through core.single.fmmfft_batched"
            )
        self.ops = operators
        self.cl = cluster
        self.dtype = np.dtype(dtype)
        self.fuse_m2l_l2l = fuse_m2l_l2l
        self.comm_algorithm = comm_algorithm
        self.ns = ns
        self.batch = batch
        self.C = c_factor(self.dtype)
        self.rsize = np.dtype(real_dtype_for(self.dtype)).itemsize
        self.csize = self.C * self.rsize  # bytes per input element

    def _buf(self, suffix: str) -> str:
        """Namespaced device buffer name."""
        return f"{self.ns}.{suffix}"

    # -- cost helpers -----------------------------------------------------

    def _gemm_cost(self, m: int, n: int, k: int, batch: float) -> tuple[float, float]:
        """(flops, bytes) for a batched GEMM on C-factor-flattened data.

        Operator A is real (m x k); data B and output C' carry the C
        factor.  Matches the Section 5 convention that complex input
        doubles flops and data bytes but not operator bytes.
        """
        flops = 2.0 * m * n * k * batch * self.C
        bytes_ = (
            m * k * self.rsize                      # operator (read)
            + k * n * batch * self.csize            # input (read)
            + m * n * batch * self.csize            # output (write)
        )
        return flops, bytes_

    # -- data staging ------------------------------------------------------

    def scatter(self, S: np.ndarray, key: str | None = None) -> None:
        """Place each device's leaf-box slice of S (shape (P, M))."""
        key = self._buf("S") if key is None else key
        o = self.ops
        Sb = np.asarray(S, dtype=self.dtype).reshape(o.P, o.tree.num_leaves, o.ML)
        for g in range(self.cl.G):
            b0, b1 = o.tree.box_range(o.L, g)
            self.cl.dev(g)[key] = Sb[:, b0:b1, :].copy()

    def gather(self, key: str | None = None) -> np.ndarray:
        """Reassemble the (P, M) output from per-device box slices."""
        key = self._buf("T") if key is None else key
        o = self.ops
        parts = [np.asarray(self.cl.dev(g)[key]) for g in range(self.cl.G)]
        return np.concatenate(parts, axis=1).reshape(o.P, o.M)

    # -- pipeline ----------------------------------------------------------

    def run(
        self,
        S: np.ndarray | None = None,
        key_in: str | None = None,
        key_out: str | None = None,
        staged: bool = False,
        after: list[Event] | None = None,
    ) -> tuple[list[Event], np.ndarray | None]:
        """Execute Algorithm 1 lines 1-14 (S2M .. L2T).

        ``after`` (optional) gates the input-consuming stages (S2M and
        the S halo) — one event for all devices or one per device; the
        serve scheduler uses it to model request release times.

        Returns ``(events, r)``: per-device completion events for the T
        tensor (so the 2D FFT can chain off them) and the replicated
        reduction vector r (execute mode; None otherwise).  POST is left
        to the caller — the FMM-FFT fuses it into the 2D FFT's load
        callback.
        """
        cl, o = self.cl, self.ops
        G, P, Q, ML = cl.G, o.P, o.Q, o.ML
        L, B = o.L, o.B
        nb_loc = o.tree.boxes_local(L)
        k = self.batch
        key_in = self._buf("S") if key_in is None else key_in
        key_out = self._buf("T") if key_out is None else key_out
        if after is None:
            rel = [None] * G
        elif len(after) == G:
            rel = list(after)
        elif len(after) == 1:
            rel = list(after) * G
        else:
            raise ParameterError(
                f"after must have 1 or G={G} events, got {len(after)}"
            )

        if cl.execute and not staged:
            if S is None:
                raise ParameterError("execute-mode cluster requires input data")
            self.scatter(S, key_in)

        # ---- line 1: S2M (one BatchedGEMM per device) --------------------
        flops, mops = self._gemm_cost(Q, nb_loc, ML, (P - 1) * k)
        with cl.region("fmm"), cl.region("S2M"):
            ev_s2m = [
                cl.launch(
                    g, "S2M", "batched_gemm", flops, mops, self.dtype,
                    after=[rel[g]] if rel[g] is not None else (),
                    fn=(lambda c: self._do_s2m(key_in)) if g == 0 else None,
                    reads=[key_in], writes=[self._buf(f"M{L}")],
                )
                for g in range(G)
            ]

        # ---- line 2: COMM S (halo width 1), overlapped with S2M ----------
        halo_bytes = (P - 1) * ML * self.csize * k
        with cl.region("fmm"), cl.region("halo-S"):
            ev_shalo = self._halo_exchange(
                "S", key_in, 1, halo_bytes, "COMM-S",
                after=rel if after is not None else None,
            )

        # ---- line 3: S2T after the S halo ---------------------------------
        flops = 6.0 * self.C * ML * ML * nb_loc * (P - 1) * k
        # operators generated on the fly (Section 5.3): traffic is the
        # halo-extended read of S plus the write of T.
        mops = ((nb_loc + 2) * ML * P * self.csize + nb_loc * ML * P * self.csize) * k
        with cl.region("fmm"), cl.region("S2T"):
            ev_s2t = [
                cl.launch(
                    g, "S2T", "custom", flops, mops, self.dtype,
                    after=[ev_shalo[g], ],
                    fn=(lambda c: self._do_s2t(key_in, key_out)) if g == 0 else None,
                    reads=[key_in, self._buf("halo.S")], writes=[key_out],
                )
                for g in range(G)
            ]

        # ---- lines 4-5: M2M up the tree -----------------------------------
        ev_m_level: dict[int, list[Event]] = {L: list(ev_s2m)}
        ev_m = list(ev_s2m)
        with cl.region("fmm"), cl.region("upward"):
            for ell in o.tree.levels_m2m():
                nbl = o.tree.boxes_local(ell)
                flops, mops = self._gemm_cost(Q, nbl, 2 * Q, (P - 1) * k)
                ev_m = [
                    cl.launch(
                        g, f"M2M-{ell}", "batched_gemm", flops, mops, self.dtype,
                        after=[ev_m[g]],
                        fn=(lambda c, e=ell: self._do_m2m(e)) if g == 0 else None,
                        reads=[self._buf(f"M{ell + 1}")], writes=[self._buf(f"M{ell}")],
                    )
                    for g in range(G)
                ]
                ev_m_level[ell] = ev_m

        # ---- lines 6-8: M halo + cousin M2L per level ----------------------
        ev_loc: dict[int, list[Event]] = {}
        ev_mh_level: dict[int, list[Event]] = {}
        with cl.region("fmm"), cl.region("m2l"):
            for ell in o.tree.levels_m2l():
                nbl = o.tree.boxes_local(ell)
                mh_bytes = 2 * (P - 1) * Q * self.csize * k  # two boxes per side
                ev_mh = self._halo_exchange(f"M{ell}", None, 2, mh_bytes, f"COMM-M{ell}",
                                            level=ell, after=ev_m_level[ell])
                ev_mh_level[ell] = ev_mh
                if self.fuse_m2l_l2l:
                    continue  # M2L runs fused with L2L in the downward pass
                flops = 6.0 * self.C * nbl * (P - 1) * Q * Q * k
                mops = ((nbl + 4) * Q + nbl * Q) * (P - 1) * self.csize * k
                ev_loc[ell] = [
                    cl.launch(
                        g, f"M2L-{ell}", "custom", flops, mops, self.dtype,
                        after=[ev_mh[g]],
                        fn=(lambda c, e=ell: self._do_m2l_level(e)) if g == 0 else None,
                        reads=[self._buf(f"M{ell}"), self._buf(f"halo.M{ell}")],
                        writes=[self._buf(f"L{ell}")],
                    )
                    for g in range(G)
                ]

        with cl.region("fmm"), cl.region("base"):
            # ---- line 9: all-to-all gather of base multipoles ---------------
            base_bytes = (P - 1) * o.tree.boxes_local(B) * Q * self.csize * k
            ev_gather = comm.allgather(
                cl, base_bytes, "COMM-MB",
                after=[ev_m[g] for g in range(G)] if G > 1 else ev_m,
                fn=lambda c: self._do_gather_base(),
                reads=[self._buf(f"M{B}")], writes=[self._buf("MB")],
                algorithm=self.comm_algorithm,
            )

            # ---- line 10: dense base-level M2L ------------------------------
            nS = (1 << B) - 3
            nbB_loc = o.tree.boxes_local(B)
            flops = 2.0 * self.C * nbB_loc * nS * (P - 1) * Q * Q * k
            mops = ((1 << B) * Q + nbB_loc * Q) * (P - 1) * self.csize * k
            ev_base = [
                cl.launch(
                    g, "M2L-B", "custom", flops, mops, self.dtype,
                    after=[ev_gather[min(g, len(ev_gather) - 1)]],
                    fn=(lambda c: self._do_m2l_base()) if g == 0 else None,
                    reads=[self._buf("MB")], writes=[self._buf(f"L{B}")],
                )
                for g in range(G)
            ]

            # ---- line 11: REDUCE (one GEMV on the gathered base data) -------
            flops = self.C * (1 << B) * (P - 1) * Q * k
            mops = ((1 << B) * (P - 1) * Q * self.csize + (P - 1) * self.csize) * k
            ev_red = [
                cl.launch(
                    g, "REDUCE", "gemv", flops, mops, self.dtype,
                    after=[ev_gather[min(g, len(ev_gather) - 1)]],
                    fn=(lambda c: self._do_reduce()) if g == 0 else None,
                    reads=[self._buf("MB")], writes=[self._buf("r")],
                )
                for g in range(G)
            ]

        # ---- lines 12-13: L2L down the tree -----------------------------------
        ev_l = ev_base
        with cl.region("fmm"), cl.region("downward"):
            for ell in o.tree.levels_l2l():
                nbl = o.tree.boxes_local(ell)
                flops, mops = self._gemm_cost(2 * Q, nbl, Q, (P - 1) * k)
                if self.fuse_m2l_l2l:
                    # one kernel: M2L-(ell+1) accumulated with L2L-(ell);
                    # saves one write + one read of the child L data.
                    nbl1 = o.tree.boxes_local(ell + 1)
                    flops += 6.0 * self.C * nbl1 * (P - 1) * Q * Q * k
                    mops += ((nbl1 + 4) * Q + nbl1 * Q) * (P - 1) * self.csize * k
                    mops -= 2.0 * nbl1 * Q * (P - 1) * self.csize * k
                    waits = [
                        max(ev_l[g], ev_mh_level[ell + 1][g], key=lambda e: e.time)
                        for g in range(G)
                    ]
                    ev_l = [
                        cl.launch(
                            g, f"M2L+L2L-{ell + 1}", "custom", flops, mops, self.dtype,
                            after=[waits[g]],
                            fn=(lambda c, e=ell: self._do_fused_m2l_l2l(e)) if g == 0 else None,
                            reads=[self._buf(f"M{ell + 1}"), self._buf(f"halo.M{ell + 1}"),
                                   self._buf(f"L{ell}")],
                            writes=[self._buf(f"L{ell + 1}")],
                        )
                        for g in range(G)
                    ]
                    continue
                waits = [ev_l[g] for g in range(G)]
                # the destination level's own M2L must also be done
                if (ell + 1) in ev_loc:
                    waits = [max(waits[g], ev_loc[ell + 1][g], key=lambda e: e.time) for g in range(G)]
                ev_l = [
                    cl.launch(
                        g, f"L2L-{ell}", "batched_gemm", flops, mops, self.dtype,
                        after=[waits[g]],
                        fn=(lambda c, e=ell: self._do_l2l(e)) if g == 0 else None,
                        reads=[self._buf(f"L{ell}"), self._buf(f"L{ell + 1}")],
                        writes=[self._buf(f"L{ell + 1}")],
                    )
                    for g in range(G)
                ]

        # ---- line 14: L2T (accumulate into T) ----------------------------------
        flops, mops = self._gemm_cost(ML, nb_loc, Q, (P - 1) * k)
        mops += nb_loc * ML * (P - 1) * self.csize * k  # read T for accumulation
        with cl.region("fmm"), cl.region("L2T"):
            ev_t = [
                cl.launch(
                    g, "L2T", "batched_gemm", flops, mops, self.dtype,
                    after=[ev_l[g], ev_s2t[g]],
                    fn=(lambda c: self._do_l2t(key_out)) if g == 0 else None,
                    reads=[self._buf(f"L{L}"), key_out], writes=[key_out],
                )
                for g in range(G)
            ]

        r = self._r if cl.execute else None
        return ev_t, r

    # -- halo machinery ------------------------------------------------------

    def _halo_exchange(
        self,
        what: str,
        key: str | None,
        width: int,
        nbytes: float,
        name: str,
        level: int | None = None,
        after: list[Event] | None = None,
    ) -> list[Event]:
        """Cyclic neighbour exchange of ``width`` boxes per side.

        Stashes the real halo data (execute mode), then issues the
        exchange through :func:`repro.comm.halo_exchange` — two fully
        parallel ring shifts whose ``#L``/``#R`` halo slots are disjoint
        sub-resources.  Returns per-device events for halo arrival;
        ``after[g]`` gates device g's sends on its producer kernel.  The
        real data is stashed in ``self._halo[what]`` as
        (left_halo, right_halo) per device.
        """
        cl = self.cl
        cl.host_action(lambda c: self._stash_halo(what, key, width, level))
        src_buf = key if key is not None else self._buf(f"M{level}")
        return comm.halo_exchange(
            cl, nbytes, name, src_buf, self._buf(f"halo.{what}"), after=after,
        )

    def _stash_halo(self, what: str, key: str | None, width: int, level: int | None) -> None:
        """Record the halo data every device will need (execute mode)."""
        cl, G = self.cl, self.cl.G
        halos = {}
        for g in range(G):
            if key is not None:
                a = np.asarray(cl.dev(g)[key])
            else:
                a = self._Mexp[g][level]
            left_src = np.asarray(
                cl.dev((g - 1) % G)[key] if key is not None else self._Mexp[(g - 1) % G][level]
            )
            right_src = np.asarray(
                cl.dev((g + 1) % G)[key] if key is not None else self._Mexp[(g + 1) % G][level]
            )
            halos[g] = (left_src[:, -width:, :], right_src[:, :width, :])
        if not hasattr(self, "_halo"):
            self._halo = {}
        self._halo[what] = halos

    # -- real-data stage implementations ---------------------------------------
    # Each _do_* runs once (attached to device 0's launch) and updates the
    # per-device state for all devices; orchestration order guarantees
    # producers ran first.

    def _do_s2m(self, key_in: str) -> None:
        cl, o = self.cl, self.ops
        self._Mexp = []
        # S2M opens a fresh pass: clear the accumulators too, so a
        # second run() on the same instance (an IR replay) cannot fold
        # the previous pass's locals into _do_m2l_base's accumulation
        self._Loc = [dict() for _ in range(cl.G)]
        self._MB = None
        for g in range(cl.G):
            Sb = np.asarray(cl.dev(g)[key_in])  # (P, nb_loc, ML)
            self._Mexp.append({o.L: Sb[1:] @ o.s2m.T})

    def _do_s2t(self, key_in: str, key_out: str) -> None:
        cl, o = self.cl, self.ops
        for g in range(cl.G):
            Sb = np.asarray(cl.dev(g)[key_in])
            lh, rh = self._halo["S"][g]
            ext = np.concatenate([lh[1:], Sb[1:], rh[1:]], axis=1)  # (P-1, nb+2, ML)
            nb = Sb.shape[1]
            Sh = np.concatenate(
                [ext[:, 0:nb, :], ext[:, 1 : nb + 1, :], ext[:, 2 : nb + 2, :]], axis=2
            )  # (P-1, nb, 3ML): [b-1 | b | b+1]
            T = np.empty(
                (o.P, nb, o.ML), dtype=np.result_type(Sb.dtype, o.real_dtype)
            )
            T[0] = Sb[0]
            T[1:] = Sh @ o.s2t.transpose(0, 2, 1)
            cl.dev(g)[key_out] = T

    def _do_m2m(self, ell: int) -> None:
        o = self.ops
        for g in range(self.cl.G):
            child = self._Mexp[g][ell + 1]
            Pm1, nb2, Q = child.shape
            self._Mexp[g][ell] = child.reshape(Pm1, nb2 // 2, 2 * Q) @ o.m2m.T

    def _do_m2l_level(self, ell: int) -> None:
        cl, o = self.cl, self.ops
        K = o.m2l_level[ell]
        if not hasattr(self, "_Loc"):
            self._Loc = [dict() for _ in range(cl.G)]
        for g in range(cl.G):
            Me = self._Mexp[g][ell]
            lh, rh = self._halo[f"M{ell}"][g]
            ext = np.concatenate([lh, Me, rh], axis=1)  # (P-1, nb_loc+4, Q)
            nb = Me.shape[1]
            loc = np.zeros_like(Me)
            lb = np.arange(nb)
            for parity, offsets in ((0, COUSINS_EVEN), (1, COUSINS_ODD)):
                targets = lb[parity::2]
                for si, s in enumerate(offsets):
                    src = targets + s + 2  # index into ext (halo offset 2)
                    loc[:, targets, :] += np.matmul(
                        ext[:, src, :], K[:, parity, si].transpose(0, 2, 1)
                    )
            self._Loc[g][ell] = loc

    def _do_gather_base(self) -> None:
        cl, o = self.cl, self.ops
        self._MB = np.concatenate([self._Mexp[g][o.B] for g in range(cl.G)], axis=1)

    def _do_m2l_base(self) -> None:
        cl, o = self.cl, self.ops
        if not hasattr(self, "_Loc"):
            self._Loc = [dict() for _ in range(cl.G)]
        nbB = 1 << o.B
        for g in range(cl.G):
            b0, b1 = o.tree.box_range(o.B, g)
            targets = np.arange(b0, b1)
            loc = np.zeros_like(self._MB[:, b0:b1, :])
            for si, s in enumerate(base_offsets(o.B)):
                src = (targets + s) % nbB
                loc += np.matmul(
                    self._MB[:, src, :], o.m2l_base[:, si].transpose(0, 2, 1)
                )
            if o.B in self._Loc[g]:
                self._Loc[g][o.B] = self._Loc[g][o.B] + loc
            else:
                self._Loc[g][o.B] = loc

    def _do_reduce(self) -> None:
        self._r = self._MB.sum(axis=(1, 2))

    def _do_l2l(self, ell: int) -> None:
        o = self.ops
        for g in range(self.cl.G):
            parent = self._Loc[g][ell]
            Pm1, nb, Q = parent.shape
            pair = (parent @ o.m2m).reshape(Pm1, 2 * nb, Q)
            self._Loc[g][ell + 1] = self._Loc[g][ell + 1] + pair

    def _do_fused_m2l_l2l(self, ell: int) -> None:
        """Fused kernel data path: M2L at level ell+1, then accumulate
        the parent translation (identical numerics to the split path)."""
        self._do_m2l_level(ell + 1)
        self._do_l2l(ell)

    def _do_l2t(self, key_out: str) -> None:
        cl, o = self.cl, self.ops
        for g in range(cl.G):
            T = np.asarray(cl.dev(g)[key_out])
            T[1:] += self._Loc[g][o.L] @ o.s2m
            cl.dev(g)[key_out] = T
