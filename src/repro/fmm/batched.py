"""Single-device batched execution of the P-1 interleaved FMMs.

One NumPy ``matmul`` per stage per level — the direct analogue of the
paper's "single call to BatchedGEMM" claims (Sections 4.4-4.5).  The
kernel-launch inventory for L - B = 10 is exactly the paper's Figure 2
count: 1 S2M + 10 M2M + 1 S2T + (10 + 1) M2L + 1 reduce + 10 L2L +
1 L2T = 35.

Tensor layout: batch-of-FMMs axes ordered ``(p, box, within-box)`` so
every contraction is a broadcasted matrix product over a contiguous
trailing pair.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.interaction import COUSINS_EVEN, COUSINS_ODD, base_offsets
from repro.fmm.plan import FmmOperators
from repro.util.validation import ParameterError


class BatchedFMM:
    """Applies all P-1 cotangent kernels ``C~_p`` via one shared tree.

    Parameters
    ----------
    operators:
        A prebuilt :class:`~repro.fmm.plan.FmmOperators` (with G == 1).

    Examples
    --------
    >>> from repro.fmm.plan import FmmOperators
    >>> ops = FmmOperators.create(M=256, P=4, ML=16, B=2, Q=16)
    >>> fmm = BatchedFMM(ops)
    >>> import numpy as np
    >>> S = np.random.default_rng(0).standard_normal((4, 256))
    >>> T, r = fmm.apply(S)
    """

    def __init__(self, operators: FmmOperators):
        if operators.tree.G != 1:
            raise ParameterError("BatchedFMM is single-device; build operators with G=1")
        self.ops = operators

    # -- stages (each one batched contraction) ---------------------------

    def s2m(self, S: np.ndarray) -> np.ndarray:
        """Leaf multipoles: ``M^L[pi, b, q] = sum_m S2M[q, m] S[pi+1, b, m]``."""
        return S[..., 1:, :, :] @ self.ops.s2m.T

    def s2t(self, S: np.ndarray) -> np.ndarray:
        """Near field: the interleaved, overlapped Toeplitz convolution.

        ``T[pi, b, i] = sum_j' K[pi, i, j'] S_halo[pi, b, j']`` with the
        halo triple [b-1, b, b+1] built cyclically.
        """
        Sp = S[..., 1:, :, :]
        Sh = np.concatenate(
            [np.roll(Sp, 1, axis=-2), Sp, np.roll(Sp, -1, axis=-2)], axis=-1
        )  # (..., P-1, nb, 3 ML)
        return Sh @ self.ops.s2t.transpose(0, 2, 1)

    def m2m(self, child: np.ndarray) -> np.ndarray:
        """One upward level: siblings flattened then one batched GEMM."""
        nb2, Q = child.shape[-2:]
        flat = child.reshape(*child.shape[:-2], nb2 // 2, 2 * Q)
        return flat @ self.ops.m2m.T

    def m2l_level(self, level: int, Mexp: np.ndarray) -> np.ndarray:
        """Cousin interactions at a hierarchical level (3 per box)."""
        K = self.ops.m2l_level[level]  # (P-1, 2, 3, Q, Q)
        nb = Mexp.shape[-2]
        loc = np.zeros_like(Mexp)
        b = np.arange(nb)
        for parity, offsets in ((0, COUSINS_EVEN), (1, COUSINS_ODD)):
            targets = b[parity::2]
            for si, s in enumerate(offsets):
                src = (targets + s) % nb
                loc[..., targets, :] += np.matmul(
                    Mexp[..., src, :], K[:, parity, si].transpose(0, 2, 1)
                )
        return loc

    def m2l_base(self, MexpB: np.ndarray) -> np.ndarray:
        """Dense base-level interactions: every non-neighbour box."""
        K = self.ops.m2l_base  # (P-1, nS, Q, Q)
        nb = MexpB.shape[-2]
        loc = np.zeros_like(MexpB)
        b = np.arange(nb)
        for si, s in enumerate(base_offsets(self.ops.B)):
            src = (b + s) % nb
            loc += np.matmul(MexpB[..., src, :], K[:, si].transpose(0, 2, 1))
        return loc

    def reduce(self, MexpB: np.ndarray) -> np.ndarray:
        """``r[pi] = sum_{q,b} M^B[pi, q, b]`` — valid because S2M/M2M
        columns sum to one (Section 4.8)."""
        return MexpB.sum(axis=(-2, -1))

    def l2l(self, parent: np.ndarray) -> np.ndarray:
        """One downward level: evaluate parents at both children's nodes."""
        nb, Q = parent.shape[-2:]
        pair = parent @ self.ops.m2m  # (..., nb, 2Q)
        return pair.reshape(*parent.shape[:-2], 2 * nb, Q)

    def l2t(self, locL: np.ndarray) -> np.ndarray:
        """Evaluate leaf local expansions at the targets."""
        return locL @ self.ops.s2m

    # -- full pipeline ----------------------------------------------------

    def apply(self, S: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply all kernels: ``T[0] = S[0]``, ``T[p] = C~_p S[p]``.

        Parameters
        ----------
        S:
            (P, M) array (any real/complex dtype), or (..., P, M) with
            leading batch axes — a stack of independent problems sharing
            one operator bundle, applied as one broadcasted contraction
            per stage (bit-identical to applying each slice alone).

        Returns
        -------
        (T, r):
            T of shape (..., P, M) and the reduction vector r of shape
            (..., P-1) with ``r[..., p-1] = sum_m S[..., p, m]``.
        """
        o = self.ops
        P, M, ML, nb = o.P, o.M, o.ML, o.tree.num_leaves
        S = np.asarray(S)
        if S.shape[-2:] != (P, M):
            raise ParameterError(f"S must have shape (..., {P}, {M}), got {S.shape}")
        lead = S.shape[:-2]
        Sb = S.reshape(*lead, P, nb, ML)

        Mexp = {o.L: self.s2m(Sb)}
        for ell in o.tree.levels_m2m():
            Mexp[ell] = self.m2m(Mexp[ell + 1])

        T = np.empty((*lead, P, nb, ML), dtype=np.result_type(S.dtype, o.real_dtype))
        T[..., 0, :, :] = Sb[..., 0, :, :]
        T[..., 1:, :, :] = self.s2t(Sb)

        loc = {ell: self.m2l_level(ell, Mexp[ell]) for ell in o.tree.levels_m2l()}
        loc[o.B] = self.m2l_base(Mexp[o.B]) + loc.get(o.B, 0.0)
        r = self.reduce(Mexp[o.B])

        for ell in o.tree.levels_l2l():
            loc[ell + 1] = loc[ell + 1] + self.l2l(loc[ell])
        T[..., 1:, :, :] += self.l2t(loc[o.L])
        return T.reshape(*lead, P, M), r
