"""Operator symmetries (the paper's Section 7 "further optimizations").

"Further optimizations include exploiting additional symmetries of the
operators M2L, S2T, M2M, and S2M to further reduce memory requirements
and floating point operations."  This module derives and implements
those symmetries:

**Transpose sharing** (structural, already used by the executors):
``L2T = S2M^T`` and ``L2L = M2M^T`` — the downward operators are free.

**Child mirror** — with first-kind Chebyshev nodes, ``z_{Q-1-k} = -z_k``
and ``ell_{Q-1-q}(-z) = ell_q(z)``, so the right-child translation is
the double flip of the left child::

    M2M+ = J  M2M-  J        (J = reversal/exchange matrix)

one child operator determines both.

**S2T kernel reversal** — from ``cot(-x) = -cot(x)``::

    S2T_{P-p}(k) = -S2T_p(-(k+1))

so only the kernels ``p <= P/2`` need generating; the rest are negated
reversals.  This halves the dominant on-the-fly operator generation.

**M2L persymmetry** — the same node mirror gives, for every kernel p,
level, and shift s::

    K[Q-1-i, Q-1-j] = K[j, i]      (J K^T J = K)

halving the unique entries of every M2L block.
"""

from __future__ import annotations

import numpy as np

from repro.fmm import operators as ops
from repro.util.validation import ParameterError, check_positive


def exchange_matrix(Q: int) -> np.ndarray:
    """The reversal (exchange) matrix J of size Q."""
    check_positive("Q", Q)
    return np.eye(Q)[::-1]


def m2m_plus_from_minus(m2m_minus: np.ndarray) -> np.ndarray:
    """Recover M2M+ from M2M- via the child mirror: ``J M2M- J``."""
    return m2m_minus[::-1, ::-1]


def m2m_matrix_symmetric(Q: int) -> np.ndarray:
    """Build [M2M- | M2M+] generating only the left-child half."""
    zq = ops.cheb_points(Q) if hasattr(ops, "cheb_points") else None
    from repro.fmm.chebyshev import cheb_points, lagrange_eval

    minus = lagrange_eval(Q, (cheb_points(Q) - 1.0) / 2.0)
    return np.hstack([minus, m2m_plus_from_minus(minus)])


def s2t_lags_half(P: int, ML: int, N: int) -> np.ndarray:
    """Generate the Toeplitz lag vectors only for p = 1..floor(P/2)."""
    p = np.arange(1, P // 2 + 1, dtype=np.float64)
    k = np.arange(-(2 * ML - 1), 2 * ML, dtype=np.float64)
    return ops.cot(np.pi * (p[:, None] + P * k[None, :]) / N)


def s2t_lags_from_half(P: int, ML: int, N: int) -> np.ndarray:
    """Rebuild all P-1 lag vectors from the half set via the reversal.

    ``S2T_{P-p}(k) = -S2T_p(-(k+1))``: with lag index ``k`` stored at
    column ``k + (2 ML - 1)``, the reversal maps column ``c`` to column
    ``len - 2 - c`` — a flip dropping the last column and prepending the
    (regenerated) extreme lag, which we obtain by cyclic identity
    ``cot(pi (p + P k)/N)`` at ``k = -(2ML-1)`` for the mirrored p.
    """
    if P < 2:
        raise ParameterError(f"P must be >= 2, got {P}")
    half = s2t_lags_half(P, ML, N)
    nlag = 4 * ML - 1
    out = np.empty((P - 1, nlag), dtype=np.float64)
    for p in range(1, P):
        if p <= P // 2:
            out[p - 1] = half[p - 1]
        else:
            src = half[(P - p) - 1]
            # S2T_p(k) = -S2T_{P-p}(-(k+1)); column of lag k is k+2ML-1,
            # so lag -(k+1) sits at column (2ML-2) - k' where k' = k + 2ML-1
            mirrored = -src[::-1]           # lag k -> -k
            out[p - 1, : nlag - 1] = mirrored[1:]   # shift by one lag
            # the single missing extreme lag k = 2ML-1 wraps to the
            # mirrored kernel's lag -(2ML) which we generate directly
            out[p - 1, nlag - 1] = ops.cot(np.pi * (p + P * (2 * ML - 1)) / N)
    return out


def m2l_is_persymmetric(K: np.ndarray, atol: float = 1e-12) -> bool:
    """Check ``J K^T J == K`` on the trailing two axes of an M2L stack."""
    Kt = np.swapaxes(K, -1, -2)[..., ::-1, ::-1]
    return bool(np.allclose(Kt, K, atol=atol))


def m2l_unique_entries(Q: int) -> int:
    """Unique entries of a persymmetric Q x Q block: ceil(Q^2 / 2) + Q/2-ish.

    Entries pair up under (i, j) <-> (Q-1-j, Q-1-i); fixed points lie on
    the anti-diagonal (Q of them), giving (Q^2 + Q) / 2 unique values.
    """
    check_positive("Q", Q)
    return (Q * Q + Q) // 2


def operator_storage_savings(P: int, ML: int, Q: int, levels: int) -> dict[str, float]:
    """Bytes saved by the symmetries for one operator set (float64).

    Returns per-symmetry savings and the total fraction.
    """
    full = dict(
        s2t=(P - 1) * ML * 3 * ML * 8.0,
        m2m_l2l=2 * (2 * Q * Q) * 8.0,
        l2t=ML * Q * 8.0,
        m2l=levels * (P - 1) * 2 * 3 * Q * Q * 8.0,
    )
    saved = dict(
        s2t=full["s2t"] * ((P - 1 - P // 2) / max(P - 1, 1)),
        m2m_l2l=full["m2m_l2l"] * 0.75,   # one QxQ block generates four
        l2t=full["l2t"],                   # transpose of S2M
        m2l=full["m2l"] * (1 - m2l_unique_entries(Q) / (Q * Q)),
    )
    total_full = sum(full.values())
    saved["total_fraction"] = sum(v for k, v in saved.items()) / total_full
    return saved
