"""Periodic 1D interpolative FMM (the paper's Section 4 machinery).

The FMM-FFT needs ``P - 1`` interleaved, periodic, uniform 1D FMMs, each
applying one cotangent kernel matrix ``C~_p`` of size M x M with sources
and targets at the integers.  This package implements them exactly as
the paper formulates them — every stage a batched dense tensor
contraction:

- :mod:`repro.fmm.chebyshev` — Chebyshev nodes (first kind) and stable
  barycentric Lagrange evaluation (Section 4.3).
- :mod:`repro.fmm.operators` — S2M/L2T, M2M/L2L, M2L (level and base),
  and the Toeplitz-flattened S2T operator builders (Sections 4.4-4.8).
- :mod:`repro.fmm.tree` — the binary tree geometry, leaf/base levels,
  and per-device box ownership.
- :mod:`repro.fmm.interaction` — cousin interaction lists (even/odd) and
  the base-level all-non-neighbours list, plus an exact-cover checker.
- :mod:`repro.fmm.batched` — single-device batched executor (all P-1
  FMMs at once, one ``matmul`` per stage = one BatchedGEMM).
- :mod:`repro.fmm.distributed` — the same stages on a
  :class:`~repro.machine.cluster.VirtualCluster` with S/M halo exchanges
  and the base-level allgather (Algorithm 1).
- :mod:`repro.fmm.reference` — dense O(M^2) oracle.
"""

from __future__ import annotations

from repro.fmm.chebyshev import cheb_points, lagrange_eval
from repro.fmm.tree import Tree1D
from repro.fmm.plan import FmmGeometry, FmmOperators
from repro.fmm.batched import BatchedFMM
from repro.fmm.distributed import DistributedFMM
from repro.fmm.reference import dense_kernel_matrix, dense_apply
from repro.fmm import symmetry

__all__ = [
    "BatchedFMM",
    "DistributedFMM",
    "FmmGeometry",
    "FmmOperators",
    "Tree1D",
    "cheb_points",
    "dense_apply",
    "dense_kernel_matrix",
    "lagrange_eval",
    "symmetry",
]
