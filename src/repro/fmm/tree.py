"""The uniform periodic binary tree of the 1D FMMs.

Each of the P-1 FMMs acts on M points (the integers 0..M-1) partitioned
into ``2^L`` leaf boxes of ``M_L = M / 2^L`` points.  Levels run from
the leaves (ell = L, finest) down to the *base* level (ell = B,
coarsest used): the paper's B >= 2 generalization replaces the top of
the tree with one dense all-non-neighbours M2L at level B plus an
all-to-all gather of base multipoles (Section 4.7).

Distribution: device g owns the contiguous box range
``[g * 2^ell / G, (g+1) * 2^ell / G)`` at every level; requiring
``G | 2^B`` guarantees each device owns at least one box at every level
it participates in, and makes ancestor/descendant box ranges align so
M2M/L2L never communicate (only M2L halos and the base gather do, as in
Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bitmath import ilog2
from repro.util.validation import ParameterError, check_multiple, check_pow2, check_range


@dataclass(frozen=True)
class Tree1D:
    """Geometry of one (equivalently, all P-1 batched) FMM tree(s).

    Parameters
    ----------
    M:
        Points per FMM (power of two).
    ML:
        Points per leaf box.
    B:
        Base (coarsest) level, >= 2.
    G:
        Device count (1 for single-device use).
    """

    M: int
    ML: int
    B: int
    G: int = 1

    def __post_init__(self):
        check_pow2("M", self.M)
        check_pow2("ML", self.ML)
        check_pow2("G", self.G)
        if self.ML > self.M:
            raise ParameterError(f"ML={self.ML} cannot exceed M={self.M}")
        L = ilog2(self.M // self.ML)
        check_range("B", self.B, 2, L)
        check_multiple("2^B", 1 << self.B, self.G, "G")

    @property
    def L(self) -> int:
        """Leaf level: ``2^L`` leaf boxes."""
        return ilog2(self.M // self.ML)

    @property
    def num_leaves(self) -> int:
        return 1 << self.L

    def boxes_at(self, level: int) -> int:
        """Number of boxes at a level."""
        check_range("level", level, self.B, self.L)
        return 1 << level

    def levels_m2m(self) -> list[int]:
        """Levels at which M2M runs (computing level ell from ell+1):
        ell = L-1, ..., B (empty when L == B)."""
        return list(range(self.L - 1, self.B - 1, -1))

    def levels_m2l(self) -> list[int]:
        """Levels with cousin-list M2L: ell = L, ..., B+1 (finest first).

        The base level is handled densely instead; with B >= 2 the
        cousin levels satisfy ``2^ell >= 8`` so the cyclic cousin
        offsets {±2, ±3} never alias.
        """
        return list(range(self.L, self.B, -1))

    def levels_l2l(self) -> list[int]:
        """Levels at which L2L runs (pushing level ell into ell+1):
        ell = B, ..., L-1."""
        return list(range(self.B, self.L))

    # -- distribution -----------------------------------------------------

    def boxes_local(self, level: int) -> int:
        """Boxes per device at a level."""
        return self.boxes_at(level) // self.G

    def box_range(self, level: int, g: int) -> tuple[int, int]:
        """Global [start, stop) box indices device g owns at a level."""
        if not 0 <= g < self.G:
            raise ParameterError(f"device {g} out of range for G={self.G}")
        nb = self.boxes_local(level)
        return (g * nb, (g + 1) * nb)

    def owner_of(self, level: int, box: int) -> int:
        """Device owning a (cyclically wrapped) box index."""
        nb = self.boxes_at(level)
        return (box % nb) // self.boxes_local(level)

    #: halo width (boxes per side) the S2T near field needs
    S_HALO = 1
    #: halo width (boxes per side) the cousin-list M2L needs
    M_HALO = 2

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Tree1D(M={self.M}, ML={self.ML}, L={self.L}, B={self.B}, G={self.G})"
        )
