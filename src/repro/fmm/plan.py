"""Precomputed operator bundle for a batch of P-1 FMMs.

:class:`FmmOperators` builds every Section 4 operator once for a given
``(M, P, M_L, B, Q)`` and precision, in the layout the executors consume
(transposed for right-multiplication where that saves a transpose per
apply).  Operators are real; the C-factor accounting for complex inputs
happens at launch-costing time, exactly as the paper's Section 5 flop
counts prescribe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fmm import operators as ops
from repro.fmm.tree import Tree1D
from repro.util.validation import ParameterError, check_positive, real_dtype_for


@dataclass(frozen=True)
class FmmGeometry:
    """Shape-only description of a batch of P-1 FMMs.

    Sufficient for cost accounting and communication sizing; carries no
    operator arrays, so it is cheap at any scale (timing-only sweeps at
    N = 2^27+ use it without allocating gigabytes of operators).
    """

    tree: Tree1D
    P: int
    Q: int
    N: int

    @classmethod
    def create(cls, M: int, P: int, ML: int, B: int, Q: int, G: int = 1) -> "FmmGeometry":
        check_positive("Q", Q)
        if P < 2:
            raise ParameterError(f"P must be >= 2 (P-1 FMMs), got {P}")
        return cls(tree=Tree1D(M=M, ML=ML, B=B, G=G), P=P, Q=Q, N=M * P)

    @property
    def M(self) -> int:
        return self.tree.M

    @property
    def ML(self) -> int:
        return self.tree.ML

    @property
    def L(self) -> int:
        return self.tree.L

    @property
    def B(self) -> int:
        return self.tree.B


@dataclass(frozen=True)
class FmmOperators:
    """All dense operators for P-1 interleaved periodic FMMs of size M.

    Build with :meth:`create`; fields are ready-to-matmul arrays.
    """

    tree: Tree1D
    P: int
    Q: int
    N: int
    real_dtype: np.dtype
    s2m: np.ndarray          # (Q, ML)
    m2m: np.ndarray          # (Q, 2Q)
    m2l_level: dict          # level -> (P-1, 2, 3, Q, Q)
    m2l_base: np.ndarray     # (P-1, 2^B-3, Q, Q)
    s2t: np.ndarray          # (P-1, ML, 3ML)
    rho: np.ndarray          # (P-1,) complex

    @classmethod
    def create(
        cls,
        M: int,
        P: int,
        ML: int,
        B: int,
        Q: int,
        dtype="complex128",
        G: int = 1,
    ) -> "FmmOperators":
        """Build operators for the FMM-FFT's kernels ``C~_p``, p=1..P-1.

        ``N = M * P`` fixes the kernel shift ``pi p / N``.  Operators are
        computed in float64 and narrowed to the working precision.
        """
        check_positive("Q", Q)
        if P < 2:
            raise ParameterError(f"P must be >= 2 (P-1 FMMs), got {P}")
        tree = Tree1D(M=M, ML=ML, B=B, G=G)
        N = M * P
        rdt = real_dtype_for(dtype)
        cdt = np.complex64 if rdt == np.float32 else np.complex128
        m2l_level = {
            ell: ops.m2l_level_tensor(ell, P, Q, N).astype(rdt)
            for ell in tree.levels_m2l()
        }
        return cls(
            tree=tree,
            P=P,
            Q=Q,
            N=N,
            real_dtype=np.dtype(rdt),
            s2m=ops.s2m_matrix(Q, ML).astype(rdt),
            m2m=ops.m2m_matrix(Q).astype(rdt),
            m2l_level=m2l_level,
            m2l_base=ops.m2l_base_tensor(B, P, Q, N).astype(rdt),
            s2t=ops.s2t_matrix(P, ML, N).astype(rdt),
            rho=ops.rho_factors(P, M).astype(cdt),
        )

    @property
    def M(self) -> int:
        return self.tree.M

    @property
    def ML(self) -> int:
        return self.tree.ML

    @property
    def L(self) -> int:
        return self.tree.L

    @property
    def B(self) -> int:
        return self.tree.B

    @property
    def geometry(self) -> FmmGeometry:
        """The shape-only view of this operator bundle."""
        return FmmGeometry(tree=self.tree, P=self.P, Q=self.Q, N=self.N)

    def operator_bytes(self) -> int:
        """Total storage of the precomputed operators (Section 5.3 notes
        the S2T/M2L operators are generated on the fly on GPU; storing
        them is the CPU-side trade-off, exposed for the ablation)."""
        total = (
            self.s2m.nbytes
            + self.m2m.nbytes
            + self.m2l_base.nbytes
            + self.s2t.nbytes
            + self.rho.nbytes
        )
        total += sum(a.nbytes for a in self.m2l_level.values())
        return total
