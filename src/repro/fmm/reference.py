"""Dense O(M^2) reference for the cotangent kernels — the FMM oracle.

Builds ``[C~_p]_{mn} = cot(pi/M (n - m) + pi p / N)`` explicitly and
applies it by plain matrix multiplication.  Used by tests to measure FMM
approximation error and by the core package to validate the full
Fourier-matrix factorization at small N.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.operators import cot, rho_factors
from repro.util.validation import ParameterError, check_positive


def dense_kernel_matrix(M: int, P: int, p: int, with_rho: bool = False) -> np.ndarray:
    """The M x M matrix ``C~_p`` (or the full ``C_p`` with ``with_rho``).

    ``C_p = rho_p (C~_p + i * ones)`` per Section 3; ``p = 0`` returns
    the identity.
    """
    check_positive("M", M)
    if not 0 <= p < P:
        raise ParameterError(f"p must be in [0, {P}), got {p}")
    if p == 0:
        return np.eye(M, dtype=np.complex128 if with_rho else np.float64)  # lint: allow-dtype-discipline
    N = M * P
    m = np.arange(M)[:, None]
    n = np.arange(M)[None, :]
    ctil = cot(np.pi / M * (n - m) + np.pi * p / N)
    if not with_rho:
        return ctil
    rho = rho_factors(P, M)[p - 1]
    return rho * (ctil + 1j)


def dense_apply(x: np.ndarray, M: int, P: int, p: int, with_rho: bool = False) -> np.ndarray:
    """Apply ``C~_p`` (or ``C_p``) to a length-M vector or (..., M) batch."""
    x = np.asarray(x)
    if x.shape[-1] != M:
        raise ParameterError(f"last axis must have length {M}, got {x.shape}")
    C = dense_kernel_matrix(M, P, p, with_rho=with_rho)
    return x @ C.T


def dense_apply_all(S: np.ndarray, M: int, P: int) -> tuple[np.ndarray, np.ndarray]:
    """Apply all P-1 kernels ``C~_p`` densely to ``S`` of shape (P, M).

    Returns ``(T, r)`` exactly as :class:`~repro.fmm.batched.BatchedFMM`
    does: ``T[0] = S[0]`` and ``T[p] = C~_p S[p]`` for p >= 1, plus the
    row sums ``r[p-1] = sum_m S[p, m]``.
    """
    S = np.asarray(S)
    if S.shape != (P, M):
        raise ParameterError(f"S must have shape ({P}, {M}), got {S.shape}")
    T = np.empty_like(S, dtype=np.result_type(S.dtype, np.float64))
    T[0] = S[0]
    for p in range(1, P):
        T[p] = dense_apply(S[p], M, P, p)
    r = S[1:].sum(axis=1)
    return T, r
