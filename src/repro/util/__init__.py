"""Shared utilities: validation, bit math, tables, plots, signal generators.

These are deliberately dependency-light helpers used by every other
subpackage.  Nothing in here knows about FFTs, FMMs, or the machine model.
"""

from __future__ import annotations

from repro.util.bitmath import (
    ceil_div,
    ilog2,
    is_pow2,
    next_pow2,
    pow2_divisors,
    split_pow2,
)
from repro.util.validation import (
    ParameterError,
    check_dtype,
    check_in,
    check_multiple,
    check_positive,
    check_pow2,
    check_range,
)
from repro.util.table import Table, format_bytes, format_count, format_time
from repro.util.asciiplot import ascii_bar_chart, ascii_series
from repro.util.prng import random_signal, structured_signal

__all__ = [
    "ParameterError",
    "Table",
    "ascii_bar_chart",
    "ascii_series",
    "ceil_div",
    "check_dtype",
    "check_in",
    "check_multiple",
    "check_positive",
    "check_pow2",
    "check_range",
    "format_bytes",
    "format_count",
    "format_time",
    "ilog2",
    "is_pow2",
    "next_pow2",
    "pow2_divisors",
    "random_signal",
    "split_pow2",
    "structured_signal",
]
