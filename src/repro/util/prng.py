"""Deterministic test-signal generators.

The paper measures accuracy on inputs "with each component generated
uniformly in [-1, 1]" (Section 6.3.4).  :func:`random_signal` reproduces
that distribution; :func:`structured_signal` produces signals with known
analytic spectra for the example applications (sparse tones, chirps,
band-limited noise) so examples can verify physics, not just agreement
with another FFT.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_dtype, is_complex_dtype


def random_signal(n: int, dtype="complex128", seed: int | None = 0) -> np.ndarray:
    """Uniform [-1, 1] signal of length ``n`` (each component for complex).

    Parameters
    ----------
    n:
        Length.
    dtype:
        One of the four supported precisions.
    seed:
        PRNG seed; ``None`` draws fresh entropy.
    """
    dt = check_dtype("dtype", dtype)
    rng = np.random.default_rng(seed)
    if is_complex_dtype(dt):
        re = rng.uniform(-1.0, 1.0, n)
        im = rng.uniform(-1.0, 1.0, n)
        return (re + 1j * im).astype(dt)
    return rng.uniform(-1.0, 1.0, n).astype(dt)


def structured_signal(
    n: int,
    kind: str = "tones",
    dtype="complex128",
    seed: int | None = 0,
) -> np.ndarray:
    """Signals with known structure, for example applications.

    Kinds
    -----
    ``tones``
        Sum of 5 complex exponentials at fixed bins — spectrum is 5 spikes.
    ``chirp``
        Linear-frequency chirp spanning the band.
    ``bandlimited``
        White noise low-pass filtered to the lowest n/8 bins.
    ``gaussian``
        Periodic Gaussian bump (smooth, rapidly decaying spectrum).
    """
    dt = check_dtype("dtype", dtype)
    t = np.arange(n) / n
    if kind == "tones":
        rng = np.random.default_rng(seed)
        bins = rng.choice(n, size=min(5, n), replace=False)
        amps = rng.uniform(0.5, 1.5, size=bins.size)
        x = np.zeros(n, dtype=np.complex128)
        for b, a in zip(bins, amps):
            x += a * np.exp(2j * np.pi * b * t)
    elif kind == "chirp":
        x = np.exp(1j * np.pi * (n / 4) * t * t * n / n).astype(np.complex128)
        x = np.exp(1j * np.pi * (n / 4) * t * t)
    elif kind == "bandlimited":
        rng = np.random.default_rng(seed)
        spec = np.zeros(n, dtype=np.complex128)
        k = max(1, n // 8)
        spec[:k] = rng.standard_normal(k) + 1j * rng.standard_normal(k)
        # lazy import: util must stay importable without fftcore
        from repro.fftcore.oracle import reference_ifft

        x = reference_ifft(spec)
    elif kind == "gaussian":
        x = np.exp(-0.5 * ((t - 0.5) / 0.05) ** 2).astype(np.complex128)
    else:
        raise ValueError(f"unknown signal kind {kind!r}")
    if is_complex_dtype(dt):
        return x.astype(dt)
    return x.real.astype(dt)
