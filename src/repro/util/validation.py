"""Parameter validation helpers with uniform, descriptive error messages.

Every public constructor in the library funnels its argument checking
through these helpers so that a mis-parameterized plan fails fast with a
message naming the offending parameter, the constraint, and the value —
rather than surfacing as a shape error three tensor contractions later.
"""

from __future__ import annotations

from typing import Any, Collection

import numpy as np

from repro.util.bitmath import is_pow2


class ParameterError(ValueError):
    """Raised when a plan or machine parameter violates its constraints."""


def check_positive(name: str, value: int | float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ParameterError(f"{name} must be positive, got {value!r}")


def check_pow2(name: str, value: int) -> None:
    """Require ``value`` to be a positive power of two."""
    if not is_pow2(value):
        raise ParameterError(f"{name} must be a power of two, got {value!r}")


def check_multiple(name: str, value: int, of: int, of_name: str | None = None) -> None:
    """Require ``of | value`` (``value`` is a multiple of ``of``)."""
    label = of_name or str(of)
    if of <= 0 or value % of != 0:
        raise ParameterError(f"{name} (={value!r}) must be a multiple of {label} (={of!r})")


def check_range(name: str, value: int | float, lo: int | float | None = None, hi: int | float | None = None) -> None:
    """Require ``lo <= value <= hi`` (either bound may be None)."""
    if lo is not None and value < lo:
        raise ParameterError(f"{name} must be >= {lo!r}, got {value!r}")
    if hi is not None and value > hi:
        raise ParameterError(f"{name} must be <= {hi!r}, got {value!r}")


def check_in(name: str, value: Any, allowed: Collection[Any]) -> None:
    """Require ``value`` to be a member of ``allowed``."""
    if value not in allowed:
        raise ParameterError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")


#: dtypes the pipelines accept, mirroring the paper's four precisions
#: (single, double, single-complex, double-complex).
SUPPORTED_DTYPES = (
    np.dtype(np.float32),
    np.dtype(np.float64),
    np.dtype(np.complex64),
    np.dtype(np.complex128),
)


def check_dtype(name: str, dtype: Any) -> np.dtype:
    """Normalize and validate a dtype; returns the canonical ``np.dtype``."""
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_DTYPES:
        raise ParameterError(
            f"{name} must be one of float32/float64/complex64/complex128, got {dt!r}"
        )
    return dt


def complex_dtype_for(dtype: Any) -> np.dtype:
    """The complex dtype with the same precision as ``dtype``."""
    dt = np.dtype(dtype)
    return np.dtype(np.complex64) if dt in (np.float32, np.complex64) else np.dtype(np.complex128)


def real_dtype_for(dtype: Any) -> np.dtype:
    """The real dtype with the same precision as ``dtype``."""
    dt = np.dtype(dtype)
    return np.dtype(np.float32) if dt in (np.float32, np.complex64) else np.dtype(np.float64)


def is_complex_dtype(dtype: Any) -> bool:
    """True for complex64/complex128."""
    return np.dtype(dtype).kind == "c"


def c_factor(dtype: Any) -> int:
    """The paper's ``C`` factor: 1 for real input, 2 for complex input."""
    return 2 if is_complex_dtype(dtype) else 1
