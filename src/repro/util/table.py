"""Plain-text table rendering for the benchmark harness.

The benchmark targets regenerate the paper's figures as text tables (one
row per x-axis point, one column per series).  This module provides a
small, dependency-free table builder plus human-friendly unit formatters
(seconds, bytes, operation counts) used throughout the bench output.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (ns/us/ms/s)."""
    if seconds != seconds:  # NaN
        return "nan"
    a = abs(seconds)
    if a == 0:
        return "0 s"
    if a < 1e-6:
        return f"{seconds * 1e9:.2f} ns"
    if a < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if a < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_bytes(nbytes: float) -> str:
    """Format a byte count with an adaptive binary unit."""
    a = abs(nbytes)
    for unit, scale in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
        if a >= scale:
            return f"{nbytes / scale:.2f} {unit}"
    return f"{nbytes:.0f} B"


def format_count(n: float) -> str:
    """Format an operation count with an adaptive SI unit (K/M/G/T)."""
    a = abs(n)
    for unit, scale in (("T", 1e12), ("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if a >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f}"


class Table:
    """Accumulate rows and render an aligned plain-text table.

    Parameters
    ----------
    columns:
        Column headers.
    title:
        Optional title printed above the table.

    Examples
    --------
    >>> t = Table(["N", "speedup"], title="Fig 3")
    >>> t.add_row([4096, 1.31])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; values are stringified (floats get ``%.4g``)."""
        row = []
        for v in values:
            if isinstance(v, float):
                row.append(f"{v:.4g}")
            else:
                row.append(str(v))
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} entries, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as an aligned string (no trailing newline)."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
