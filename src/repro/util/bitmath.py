"""Power-of-two and integer arithmetic helpers.

The FMM-FFT parameter space (Section 3/4 of the paper) lives almost
entirely on powers of two: ``N = M * P``, ``M = M_L * 2**L``, device counts
``G`` and base levels ``B`` with ``G | 2**B``.  These helpers centralize
the bit arithmetic so parameter code reads like the paper's notation.
"""

from __future__ import annotations


def is_pow2(n: int) -> bool:
    """Return True if ``n`` is a positive integral power of two."""
    return isinstance(n, (int,)) and n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact integer log2 of a power of two.

    Raises
    ------
    ValueError
        If ``n`` is not a positive power of two.
    """
    if not is_pow2(n):
        raise ValueError(f"ilog2 requires a positive power of two, got {n!r}")
    return n.bit_length() - 1


def next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (n >= 1)."""
    if n < 1:
        raise ValueError(f"next_pow2 requires n >= 1, got {n!r}")
    return 1 << (n - 1).bit_length()


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division, ``ceil(a / b)`` for non-negative ``a``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b!r}")
    return -(-a // b)


def pow2_divisors(n: int, low: int = 1, high: int | None = None) -> list[int]:
    """All power-of-two divisors ``d`` of ``n`` with ``low <= d <= high``.

    Used by the parameter search (Figure 3) to enumerate admissible
    ``P`` and ``M_L`` factors of ``N``.
    """
    if n < 1:
        raise ValueError(f"pow2_divisors requires n >= 1, got {n!r}")
    out = []
    d = 1
    while d <= n and (high is None or d <= high):
        if d >= low and n % d == 0:
            out.append(d)
        d *= 2
    return out


def split_pow2(n: int) -> tuple[int, int]:
    """Split ``n = odd * 2**k`` and return ``(odd, k)``."""
    if n < 1:
        raise ValueError(f"split_pow2 requires n >= 1, got {n!r}")
    k = 0
    while n % 2 == 0:
        n //= 2
        k += 1
    return n, k
