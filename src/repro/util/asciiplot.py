"""Tiny ASCII plotting helpers for benchmark output.

Figures are regenerated as data tables, but a quick visual sanity check of
a series' *shape* (monotone?  crossover?  plateau?) is often what a reader
wants from a figure.  These renderers draw horizontal bar charts and
multi-series line-ish charts using only characters, so figure shapes show
up directly in ``pytest benchmarks/`` output and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart.

    Parameters
    ----------
    labels, values:
        Equal-length label/value sequences.  Values must be >= 0.
    width:
        Width in characters of the longest bar.
    unit:
        Unit suffix printed after each value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(empty chart)"
    vmax = max(values)
    if vmax <= 0:
        vmax = 1.0
    lw = max(len(str(l)) for l in labels)
    lines = []
    for label, v in zip(labels, values):
        n = int(round(width * v / vmax))
        lines.append(f"{str(label).rjust(lw)} | {'#' * n} {v:.4g}{unit}")
    return "\n".join(lines)


#: sparkline shade ramp, lightest to darkest (pure ASCII, no unicode)
SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a one-line density sparkline of a value sequence.

    Values are min-max normalized onto the :data:`SPARK_CHARS` ramp.
    When there are more values than columns, each column shows the max
    of its slice (peaks survive downsampling); with fewer, the series
    is left-aligned.  A flat series renders at the lowest non-blank
    level so "present but constant" is distinguishable from "empty".
    """
    if not values:
        return ""
    vals = [float(v) for v in values]
    if len(vals) > width:
        cols = []
        for c in range(width):
            lo = c * len(vals) // width
            hi = max(lo + 1, (c + 1) * len(vals) // width)
            cols.append(max(vals[lo:hi]))
        vals = cols
    vmin, vmax = min(vals), max(vals)
    span = vmax - vmin
    out = []
    for v in vals:
        if span <= 0:
            out.append(SPARK_CHARS[1])
            continue
        t = (v - vmin) / span
        out.append(SPARK_CHARS[1 + int(round(t * (len(SPARK_CHARS) - 2)))])
    return "".join(out)


def ascii_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    logy: bool = False,
) -> str:
    """Render several y-series against shared x as a character grid.

    Each series is assigned a marker character; collisions print ``*``.
    The x axis is rendered positionally (one column per x point), which is
    the natural fit for the paper's power-of-two sweeps.
    """
    if not series:
        return "(no series)"
    markers = "ox+#@%&=~^"
    names = list(series)
    for name in names:
        if len(series[name]) != len(x):
            raise ValueError(f"series {name!r} length != x length")
    vals = [v for name in names for v in series[name] if v == v]
    if logy:
        vals = [v for v in vals if v > 0]
        if not vals:
            return "(no positive data for log plot)"
        lo, hi = math.log10(min(vals)), math.log10(max(vals))
    else:
        lo, hi = min(vals), max(vals)
    if hi <= lo:
        hi = lo + 1.0
    ncol = len(x)
    grid = [[" "] * ncol for _ in range(height)]

    def row_of(v: float) -> int | None:
        if v != v:
            return None
        if logy:
            if v <= 0:
                return None
            t = (math.log10(v) - lo) / (hi - lo)
        else:
            t = (v - lo) / (hi - lo)
        r = int(round((height - 1) * t))
        return height - 1 - min(max(r, 0), height - 1)

    for si, name in enumerate(names):
        mk = markers[si % len(markers)]
        for ci, v in enumerate(series[name]):
            r = row_of(v)
            if r is None:
                continue
            grid[r][ci] = "*" if grid[r][ci] not in (" ", mk) else mk

    top = f"{(10**hi if logy else hi):.3g}"
    bot = f"{(10**lo if logy else lo):.3g}"
    lines = []
    for ri, row in enumerate(grid):
        prefix = top if ri == 0 else (bot if ri == height - 1 else "")
        lines.append(f"{prefix:>9} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * ncol)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
