"""Cluster-facing collective operations with pluggable algorithms.

Every distributed pipeline in the library issues its communication
through these functions instead of calling the
:class:`~repro.machine.cluster.VirtualCluster` collectives directly
(the ``raw-comm`` lint rule enforces this).  Each call either

- delegates to the legacy flat model (``algorithm="bulk"``) —
  bit-for-bit identical ledger records, timings, and events to the
  pre-refactor code, kept for back-compat and ablation — or
- decomposes the collective into the per-round ``sendrecv`` message
  plan built by :mod:`repro.comm.plans` (``direct``/``ring``/``bruck``/
  ``hier``/``hier2``), issuing one ledger record per message, routed
  over the actual topology link it crosses with per-link contention, or
- picks the cheapest plan from the Section-5 cost model
  (``algorithm="auto"``, via :mod:`repro.comm.tuning`).

Dependency contract: ``after`` (or each ``after_chunks[i]``) with
exactly G entries is treated as *per-device* producer events — round-0
messages wait on both endpoints' entries, which is what makes in-place
exchanges WAW-safe; any other length is a flat dependency list applied
to every round-0 message.  The returned list holds one completion event
per device: the latest message event touching that device, so a
consumer waiting on ``events[g]`` is ordered after every send and
receive at device ``g`` (chained forwarding plans additionally order
round ``k+1`` sends after round ``k`` receives).

Every call appends a record to ``cluster.comm_log`` (algorithm, payload,
predicted time) which :func:`repro.obs.metrics.join_comm_model` joins
against the ledger for measured-vs-model validation.  When the cluster
carries a :class:`~repro.obs.telemetry.MetricsRegistry`, each message
additionally streams live series — ``comm.bytes{link_class=...}``,
``comm.measured_vs_model{link=...}``, and ``comm.retry{stage=...}`` via
the :class:`~repro.comm.retry.RetryBudget` — stamped with simulated
time; with no registry installed none of that code runs.

Fault handling: when the cluster carries a
:class:`~repro.faults.FaultInjector`, every message (and every bulk
collective round) asks the injector for an outcome at its estimated
start time.  A transient failure charges a timed-out ``<stage>!fail``
record on the same engines, waits out the
:class:`~repro.comm.retry.RetryPolicy` backoff, and re-issues; budget
exhaustion or a permanent fault (device loss) raises
:class:`~repro.comm.retry.CommFailure` for the caller (the serve layer)
to handle.  With no injector, none of this code runs and the issued
schedule is bit-identical to the fault-free path.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.comm import plans as _plans
from repro.comm import tuning as _tuning
from repro.comm.retry import CommFailure, RetryBudget
from repro.machine import topology as topo
from repro.machine.stream import Event
from repro.util.validation import ParameterError

#: Accepted values for the ``algorithm`` parameter.
ALGORITHMS = ("bulk", "direct", "ring", "bruck", "hier", "hier2", "auto")


def _resolve(cl, kind: str, payload: float, algorithm: str) -> str:
    """Validate and resolve the algorithm name ('auto' -> concrete)."""
    if algorithm not in ALGORITHMS:
        raise ParameterError(
            f"unknown comm algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    if cl.G == 1:
        return "bulk"
    if algorithm == "auto":
        return _tuning.choose_algorithm(cl.spec, kind, payload)
    return algorithm


def _log(cl, name: str, kind: str, algorithm: str, payload: float,
         chunks: int = 1) -> None:
    """Append one comm_log entry (skipped on G=1 degenerate clusters)."""
    if cl.G == 1:
        return
    cl.comm_log.append({
        "name": name,
        "kind": kind,
        "algorithm": algorithm,
        "payload": payload,
        "chunks": chunks,
        "G": cl.G,
        "predicted": _tuning.predict_time(cl.spec, kind, payload, algorithm,
                                          chunks=chunks),
    })


def _normalize_after(after, G: int):
    """Split a dependency list into (per-device list | None, flat extras)."""
    if not after:
        return None, []
    deps = list(after)
    if len(deps) == G:
        return deps, []
    return None, [e for e in deps if e is not None]


def _new_budget(cl):
    """Per-collective-call retry budget, or None on fault-free clusters."""
    if getattr(cl, "faults", None) is None:
        return None
    return RetryBudget(cl.retry.budget, telemetry=getattr(cl, "telemetry", None))


def _pair_info(cl, src, dst):
    """Memoized per-pair topology facts for the instrumentation path.

    ``(link_class, pair_latency, pair_bandwidth, link_label)`` — pure
    functions of the cluster's graph (fault degradation copies the
    graph via ``degraded_spec`` rather than mutating it, so caching is
    sound), looked up once per pair instead of once per message.  The
    memo lives on the cluster so independent runs never share state.
    """
    memo = getattr(cl, "_pair_info_memo", None)
    if memo is None:
        memo = cl._pair_info_memo = {}
    info = memo.get((src, dst))
    if info is None:
        g = cl.spec.graph
        info = (
            topo.link_class(g, src, dst),
            topo.pair_latency(g, src, dst),
            topo.pair_bandwidth(g, src, dst),
            f"{min(src, dst)}-{max(src, dst)}",
        )
        memo[(src, dst)] = info
    return info


def _msg_series(cl, tel, cls, link):
    """Memoized (bytes counter, ratio histogram) for one link.

    Resolving a series through the registry builds a labels dict and a
    sorted label key every time — pure waste on the per-message hot
    path.  The memo is guarded by registry identity, so a scheduler
    that swaps registries on a reused cluster never emits into a stale
    one.
    """
    memo = getattr(cl, "_tel_series_memo", None)
    if memo is None or memo[0] is not tel:
        memo = (tel, {})
        cl._tel_series_memo = memo
    handles = memo[1]
    pair = handles.get((cls, link))
    if pair is None:
        pair = (tel.counter("comm.bytes", {"link_class": cls}),
                tel.histogram("comm.measured_vs_model", {"link": link}))
        handles[(cls, link)] = pair
    return pair


def _instrument_message(cl, tel, src, dst, nbytes, ev, t0, bw, lat):
    """Emit per-message telemetry (``comm.bytes``, measured-vs-model).

    Measured duration is ``ev.time - t0`` — the record's full priced
    window including contention and fault stretching — against the lone
    roofline prediction for the pair, so the per-link ratio is exactly
    the calibration signal the ROADMAP's feedback loop wants.
    """
    cls, pair_lat, pair_bw, link = _pair_info(cl, src, dst)
    counter, ratio = _msg_series(cl, tel, cls, link)
    ev_t = ev.time
    counter.inc(nbytes, t=ev_t)
    predicted = ((lat if lat is not None else pair_lat)
                 + nbytes / (bw if bw is not None else pair_bw))
    if predicted > 0.0 and ev_t > t0:
        ratio.observe((ev_t - t0) / predicted, t=ev_t)


def _dep_time(deps) -> float:
    return max((e.time for e in deps if e is not None), default=0.0)


def _msg_start(cl, src: int, dst: int, deps) -> float:
    """Side-effect-free estimate of a message's start time.

    Mirrors ``cluster.sendrecv``'s ``max(ready_after(...))`` without
    touching the streams (``ready_after`` marks events as waited), so
    fault-outcome queries never perturb the schedule.
    """
    return max(cl.dev(src).stream("comm.tx").clock,
               cl.dev(dst).stream("comm.rx").clock,
               _dep_time(deps))


def _send(cl, src, dst, nbytes, name, deps, fn, reads, writes,
          bw, lat, budget):
    """One message through the fault/retry gate.

    Fault-free clusters (or self-sends, which never cross a link) fall
    straight through to ``cluster.sendrecv``.  Otherwise each attempt's
    outcome is drawn at its estimated start time: a transient failure
    appends a zero-byte ``{name}!fail`` record of the policy timeout on
    the same engines (writes renamed to ``.fail{n}`` siblings so they
    never alias the real destination), then retries after the seeded
    backoff; device loss or budget exhaustion raises
    :class:`CommFailure`.
    """
    tel = getattr(cl, "telemetry", None)
    if budget is None or src == dst or cl.G == 1:
        t0 = _msg_start(cl, src, dst, deps) if tel is not None else 0.0
        ev = cl.sendrecv(src, dst, nbytes, name, after=deps, fn=fn,
                         reads=list(reads), writes=list(writes),
                         bandwidth=bw, latency=lat)
        if tel is not None and src != dst and cl.G > 1:
            _instrument_message(cl, tel, src, dst, nbytes, ev, t0, bw, lat)
        return ev
    inj, policy = cl.faults, cl.retry
    deps = list(deps)
    while True:
        t0 = _msg_start(cl, src, dst, deps)
        outcome = inj.message_outcome(src, dst, name, t0)
        if outcome == "ok":
            ev = cl.sendrecv(src, dst, nbytes, name, after=deps, fn=fn,
                             reads=list(reads), writes=list(writes),
                             bandwidth=bw, latency=lat)
            if tel is not None:
                _instrument_message(cl, tel, src, dst, nbytes, ev, t0,
                                    bw, lat)
            return ev
        if outcome == "lost":
            raise CommFailure(
                f"{name}: link {src}->{dst} has a lost endpoint",
                time=t0, permanent=True,
            )
        n = budget.spent
        ev = cl.sendrecv(
            src, dst, 0.0, f"{name}!fail", after=deps, fn=None,
            reads=list(reads),
            writes=[f"{w}.fail{n}" for w in writes],
            bandwidth=bw, latency=policy.timeout,
        )
        budget.charge(name, ev.time)
        if budget.exhausted:
            raise CommFailure(
                f"{name}: retry budget ({budget.limit}) exhausted on "
                f"link {src}->{dst}",
                time=ev.time, permanent=False,
            )
        deps = deps + [Event(ev.time + policy.delay(name, n),
                             f"{name}.backoff")]


def _collective_gate(cl, name, dep, reads, writes, budget):
    """Fault/retry gate ahead of one bulk collective issue.

    Returns the (possibly backoff-extended) dependency list to issue
    the real collective with.  Failed attempts are charged as coherent
    ``{name}!fail`` collectives — all G records share one start and the
    policy timeout as duration — so the schedule auditor accepts them.
    """
    if budget is None or cl.G == 1:
        return dep
    inj, policy = cl.faults, cl.retry
    dep = list(dep)
    while True:
        t0 = max(
            max(d.stream("comm.tx").clock, d.stream("comm.rx").clock)
            for d in cl.devices
        )
        t0 = max(t0, _dep_time(dep))
        outcome = inj.collective_outcome(name, t0)
        if outcome == "ok":
            return dep
        if outcome == "lost":
            raise CommFailure(f"{name}: device lost during collective",
                              time=t0, permanent=True)
        n = budget.spent
        evs = cl._collective(
            f"{name}!fail", 0.0, dep, None,
            reads=list(reads),
            writes=[f"{w}.fail{n}" for w in writes],
            duration=policy.timeout,
        )
        t_end = max(e.time for e in evs)
        budget.charge(name, t_end)
        if budget.exhausted:
            raise CommFailure(
                f"{name}: retry budget ({budget.limit}) exhausted",
                time=t_end, permanent=False,
            )
        dep = dep + [Event(t_end + policy.delay(name, n), f"{name}.backoff")]


def _issue_plan(cl, plan, name: str, per_dev, extra, fn, touch, budget=None):
    """Issue one plan's rounds as sendrecv ops; returns per-device latest
    events (``touch``, updated in place across chunks)."""
    spec = cl.spec
    last_recv: list = [None] * cl.G
    for ridx, rnd in enumerate(plan.rounds):
        bws = _plans.message_bandwidths(spec, rnd)
        new_recv: dict = {}
        for m, bw in zip(rnd, bws):
            if ridx == 0:
                if per_dev is not None:
                    deps = [e for e in (per_dev[m.src], per_dev[m.dst])
                            if e is not None]
                else:
                    deps = extra
            elif plan.chained and last_recv[m.src] is not None:
                deps = [last_recv[m.src]]
            else:
                deps = []
            ev = _send(
                cl, m.src, m.dst, m.nbytes, name,
                deps, fn,
                list(m.reads), list(m.writes),
                bw, topo.pair_latency(spec.graph, m.src, m.dst),
                budget,
            )
            fn = None
            new_recv[m.dst] = ev
            for g in (m.src, m.dst):
                if touch[g] is None or ev.time > touch[g].time:
                    touch[g] = ev
        for d, ev in new_recv.items():
            last_recv[d] = ev
    return touch


def _done_events(cl, touch, name: str) -> list:
    """Per-device completion events, with clock fallbacks for untouched
    devices (cannot happen for the built-in plans, but stays total)."""
    return [
        touch[g] if touch[g] is not None
        else Event(cl.dev(g).stream("comm.rx").clock, name)
        for g in range(cl.G)
    ]


def alltoall(
    cl,
    bytes_sent_per_device: float,
    name: str,
    after: Sequence[Event] = (),
    fn: Callable | None = None,
    reads: Sequence[str] = (),
    writes: Sequence[str] = (),
    algorithm: str = "bulk",
    chunks: int = 1,
    after_chunks: Sequence[Sequence[Event]] | None = None,
) -> list[Event]:
    """Personalized all-to-all; returns one completion event per device.

    ``bytes_sent_per_device`` is the total each device sends (split
    evenly over the other G-1 peers).  With ``chunks > 1`` the payload
    is issued in ``chunks`` pipelined pieces, chunk ``i`` gated on
    ``after_chunks[i]`` (per-device producer events); reads/writes are
    chunk-qualified (``buf#r{i}`` / ``buf#t{i}``) so chunks overlap the
    producing kernels.  ``fn`` performs the real data movement, attached
    to the first op issued.
    """
    if chunks < 1:
        raise ParameterError(f"chunks must be >= 1, got {chunks}")
    if after_chunks is not None and len(after_chunks) != chunks:
        raise ParameterError(
            f"after_chunks has {len(after_chunks)} entries for {chunks} chunks"
        )
    algo = _resolve(cl, "alltoall", bytes_sent_per_device, algorithm)
    budget = _new_budget(cl)
    if algo == "bulk":
        events: list[Event] = []
        for i in range(chunks):
            dep = (tuple(after_chunks[i]) if after_chunks is not None
                   else (tuple(after) if i == 0 else ()))
            if chunks == 1:
                rds, wrs = list(reads), list(writes)
            else:
                rds = [f"{r}#r{i}" for r in reads]
                wrs = [f"{w}#t{i}" for w in writes]
            dep = _collective_gate(cl, name, dep, rds, wrs, budget)
            events = cl.alltoall(
                bytes_sent_per_device / chunks,
                name=name,
                after=dep,
                fn=fn if i == 0 else None,
                reads=rds,
                writes=wrs,
            )
        _log(cl, name, "alltoall", "bulk", bytes_sent_per_device, chunks)
        tel = getattr(cl, "telemetry", None)
        if tel is not None and cl.G > 1:
            tel.counter("comm.bytes", {"link_class": "bulk"}).inc(
                bytes_sent_per_device * cl.G,
                t=max(e.time for e in events))
        return events

    touch: list = [None] * cl.G
    for i in range(chunks):
        dep = (after_chunks[i] if after_chunks is not None
               else (after if i == 0 else ()))
        per_dev, extra = _normalize_after(dep, cl.G)
        # chunk sub-resources: reads from the producer's row-chunk i,
        # writes into transposed slot i, further split per source so
        # concurrent messages (and an in-place src==dst) never alias
        rds = tuple(f"{r}#r{i}" for r in reads)
        plan = _plans.build_plan(
            cl.spec, "alltoall", bytes_sent_per_device / chunks, algo,
            rds, tuple(writes), f"#t{i}",
        )
        touch = _issue_plan(cl, plan, name, per_dev, extra,
                            fn if i == 0 else None, touch, budget)
    _log(cl, name, "alltoall", algo, bytes_sent_per_device, chunks)
    return _done_events(cl, touch, name)


def allgather(
    cl,
    bytes_per_device: float,
    name: str,
    after: Sequence[Event] = (),
    fn: Callable | None = None,
    reads: Sequence[str] = (),
    writes: Sequence[str] = (),
    algorithm: str = "bulk",
) -> list[Event]:
    """Allgather of a ``bytes_per_device`` contribution from every device.

    Plan algorithms write per-origin blocks (``buf#b{g}``) so the
    sanitizer sees exactly which messages fill which slots; consumers
    reading the whole gathered buffer conflict with every block and are
    therefore ordered by the returned per-device events.
    """
    algo = _resolve(cl, "allgather", bytes_per_device, algorithm)
    budget = _new_budget(cl)
    if algo == "bulk":
        dep = _collective_gate(cl, name, after, list(reads), list(writes),
                               budget)
        events = cl.allgather(bytes_per_device, name, after=dep, fn=fn,
                              reads=list(reads), writes=list(writes))
        _log(cl, name, "allgather", "bulk", bytes_per_device)
        tel = getattr(cl, "telemetry", None)
        if tel is not None and cl.G > 1:
            tel.counter("comm.bytes", {"link_class": "bulk"}).inc(
                bytes_per_device * cl.G, t=max(e.time for e in events))
        return events

    per_dev, extra = _normalize_after(after, cl.G)
    plan = _plans.build_plan(cl.spec, "allgather", bytes_per_device, algo,
                             tuple(reads), tuple(writes), "")
    touch = _issue_plan(cl, plan, name, per_dev, extra, fn,
                        [None] * cl.G, budget)
    _log(cl, name, "allgather", algo, bytes_per_device)
    return _done_events(cl, touch, name)


def grouped_alltoall(
    cl,
    bytes_sent_per_device: float,
    name: str,
    groups: Sequence[Sequence[int]] = (),
    after: Sequence[Event] = (),
    fn: Callable | None = None,
    reads: Sequence[str] = (),
    writes: Sequence[str] = ("comm",),
) -> list[Event]:
    """Concurrent personalized all-to-alls over disjoint device groups.

    The pencil-decomposed FFT exchanges within row/column subgroups of
    the process grid — many small all-to-alls running *simultaneously*.
    Issuing them as separate collectives would price each in isolation;
    this merges round ``k`` of every group into one global round, so
    :func:`repro.comm.plans.message_bandwidths` sees the cross-group
    contention on shared NICs and fabric uplinks.  Each member of an
    ``n``-device group sends ``bytes_sent_per_device`` split over its
    ``n - 1`` peers (pairwise permutation rounds, no forwarding).
    Devices outside every group do not participate.  Returns one
    completion event per device.
    """
    seen: set[int] = set()
    for grp in groups:
        for g in grp:
            if not 0 <= g < cl.G:
                raise ParameterError(f"group device {g} out of range 0..{cl.G - 1}")
            if g in seen:
                raise ParameterError(f"device {g} appears in two groups")
            seen.add(g)
    if not writes:
        raise ParameterError("grouped_alltoall needs at least one write buffer")
    rounds: list[tuple] = []
    nmax = max((len(grp) for grp in groups), default=0)
    for k in range(1, nmax):
        msgs = []
        for grp in groups:
            n = len(grp)
            if k >= n:
                continue
            s = bytes_sent_per_device / (n - 1)
            for i, g in enumerate(grp):
                msgs.append(_plans.Msg(
                    g, grp[(i + k) % n], s, tuple(reads),
                    tuple(f"{w}#s{g}" for w in writes)))
        if msgs:
            rounds.append(tuple(msgs))
    plan = _plans.CommPlan(algorithm="grouped", kind="alltoall",
                           rounds=tuple(rounds), chained=False)
    touch: list = [None] * cl.G
    if plan.rounds:
        per_dev, extra = _normalize_after(after, cl.G)
        touch = _issue_plan(cl, plan, name, per_dev, extra, fn, touch,
                            _new_budget(cl))
        cl.comm_log.append({
            "name": name, "kind": "alltoall", "algorithm": "grouped",
            "payload": bytes_sent_per_device, "chunks": 1, "G": cl.G,
            "predicted": _plans.plan_time(cl.spec, plan),
        })
    return _done_events(cl, touch, name)


def halo_exchange(
    cl,
    nbytes: float,
    name: str,
    src_buf: str,
    halo_buf: str,
    after: Sequence[Event] | None = None,
) -> list[Event]:
    """Cyclic nearest-neighbour exchange: two fully parallel ring shifts.

    Device ``g`` sends ``nbytes`` from ``src_buf`` to both neighbours;
    the receiver's left (``#L``) and right (``#R``) halo slots of
    ``halo_buf`` are disjoint sub-resources, so the shifts never alias.
    ``after[g]`` gates device g's sends on its producer.  Returns the
    per-device halo-arrival events.  Already a per-message plan (this is
    the paper's COMM-S / COMM-M pattern), so there is no algorithm knob.
    """
    G = cl.G
    if G == 1:
        if after:
            return [Event(after[0].time, name)]
        return [Event(cl.dev(0).stream("comm.rx").clock, name)]
    deps = list(after) if after else [None] * G
    budget = _new_budget(cl)
    ev_right = [
        _send(cl, g, (g + 1) % G, nbytes, name,
              [deps[g]] if deps[g] is not None else [], None,
              [src_buf], [f"{halo_buf}#L"], None, None, budget)
        for g in range(G)
    ]
    ev_left = [
        _send(cl, g, (g - 1) % G, nbytes, name,
              [deps[g]] if deps[g] is not None else [], None,
              [src_buf], [f"{halo_buf}#R"], None, None, budget)
        for g in range(G)
    ]
    spec = cl.spec
    shift_r = [_plans.Msg(g, (g + 1) % G, nbytes) for g in range(G)]
    shift_l = [_plans.Msg(g, (g - 1) % G, nbytes) for g in range(G)]
    cl.comm_log.append({
        "name": name, "kind": "halo", "algorithm": "ring", "payload": nbytes,
        "chunks": 1, "G": G,
        "predicted": _plans.round_time(spec, shift_r)
        + _plans.round_time(spec, shift_l),
    })
    out = []
    for g in range(G):
        # device g receives from g-1 (right shift) and g+1 (left shift)
        recv_r = ev_right[(g - 1) % G]
        recv_l = ev_left[(g + 1) % G]
        out.append(recv_r if recv_r.time >= recv_l.time else recv_l)
    return out


def sendrecv(
    cl,
    src: int,
    dst: int,
    nbytes: float,
    name: str,
    after: Sequence[Event] = (),
    fn: Callable | None = None,
    reads: Sequence[str] = (),
    writes: Sequence[str] = (),
) -> Event:
    """Point-to-point transfer through the comm layer.

    Thin wrapper over ``cluster.sendrecv`` (same cost model, same
    event/declare semantics, including the zero-cost self-send record)
    that additionally logs the transfer for measured-vs-model joins.
    """
    ev = _send(cl, src, dst, nbytes, name, list(after), fn,
               list(reads), list(writes), None, None, _new_budget(cl))
    if src == dst or cl.G == 1:
        predicted = 0.0
    else:
        predicted = (cl.spec.comm_latency()
                     + nbytes / cl.spec.pair_bandwidth(src, dst))
    cl.comm_log.append({
        "name": name, "kind": "p2p", "algorithm": "p2p", "payload": nbytes,
        "chunks": 1, "G": cl.G, "predicted": predicted,
    })
    return ev
