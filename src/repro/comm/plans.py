"""Per-round message plans for the pluggable collectives.

A *plan* decomposes one collective into explicit rounds of point-to-point
messages, each routed over the actual :mod:`repro.machine.topology` link
it would use (NVLink edge, PCIe fallback, or NIC) — so hybrid-cube-mesh,
ring, and fully-connected topologies now cost differently per round, and
the ledger/sanitizer/Perfetto see the true per-message structure.

Algorithms (``ALGORITHMS``):

``bulk``
    The legacy flat model: one synchronized op per device at the
    topology's effective all-to-all bandwidth (handled by
    :mod:`repro.comm.api`, not here — kept for back-compat/ablation).
``direct``
    Pairwise exchange: G-1 permutation rounds, round k pairs ``g`` with
    ``(g+k) % G``.  No forwarding, minimal wire bytes, one message
    latency per peer.
``ring``
    Store-and-forward around the ring ``g -> g+1``: G-1 rounds, only
    nearest-neighbour links, so every hop rides a direct edge on a ring
    topology — but each round depends on the previous round's receive.
``bruck``
    Dissemination/Bruck: ``ceil(log2 G)`` rounds at distance ``2^k``,
    fewer latencies but larger (forwarded) messages and non-neighbour
    partners — which on sparse topologies fall back to the slow path.
``hier``
    Two-level leader-based plan for multi-node machines (``node_of``
    annotation): funnel to the node leader, exchange between leaders
    over the NICs, scatter locally.
``hier2``
    Node-aware two-level plan that spreads the inter-node exchanges
    across a node's devices instead of funneling through one leader:
    intra-node gather to per-peer-node relays, exactly one inter-node
    message per ordered node pair, intra-node scatter.  The relay for
    node ``j`` within node ``i`` is ``groups[i][j % len(groups[i])]``,
    so NIC injection is load-balanced over the node's devices.

Every message carries read/write declares: reads on the source, writes
on the destination, using ``#part`` sub-resources so concurrent messages
of one collective never alias while whole-buffer consumers still
conflict (and therefore order) against all of them.  Forwarding
algorithms declare their staging buffers (``#via``/``#fwd``/``#nd``
parts) honestly; the chained dependency structure (``CommPlan.chained``)
is what makes the sanitizer prove them race-free.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.machine import routing, topology as topo
from repro.util.validation import ParameterError

#: All algorithm names accepted by :func:`repro.comm.api.alltoall` /
#: ``allgather`` ("auto" resolves to one of the others per call).
ALGORITHMS = ("bulk", "direct", "ring", "bruck", "hier", "hier2")

#: Collective kinds a plan can be built for.
KINDS = ("alltoall", "allgather")


@dataclass(frozen=True)
class Msg:
    """One point-to-point message of a plan round.

    ``reads`` are buffer names on the source device, ``writes`` buffer
    names on the destination device (the cluster qualifies them).
    """

    src: int
    dst: int
    nbytes: float
    reads: tuple = ()
    writes: tuple = ()


@dataclass(frozen=True)
class CommPlan:
    """A collective decomposed into rounds of messages.

    ``chained`` means round ``k+1``'s send from a device must wait that
    device's round-``k`` receive (store-and-forward data dependency);
    non-chained plans only order rounds through per-stream program order.
    """

    algorithm: str
    kind: str
    rounds: tuple  # tuple[tuple[Msg, ...], ...]
    chained: bool

    @property
    def num_messages(self) -> int:
        return sum(len(r) for r in self.rounds)

    def wire_bytes(self) -> float:
        """Total bytes injected into the fabric (incl. forwarding)."""
        return sum(m.nbytes for r in self.rounds for m in r)


# ---------------------------------------------------------------------------
# alltoall plans
# ---------------------------------------------------------------------------

def _alltoall_direct(G: int, payload: float, reads: tuple, writes: tuple,
                     part: str) -> tuple[tuple, bool]:
    s = payload / (G - 1)
    rounds = []
    for k in range(1, G):
        rounds.append(tuple(
            Msg(g, (g + k) % G, s, reads,
                tuple(f"{w}{part}#s{g}" for w in writes))
            for g in range(G)
        ))
    return tuple(rounds), False


def _alltoall_ring(G: int, payload: float, reads: tuple, writes: tuple,
                   part: str) -> tuple[tuple, bool]:
    s = payload / (G - 1)
    w0 = writes[0]
    rounds = []
    for k in range(G - 1):
        msgs = []
        for g in range(G):
            d = (g + 1) % G
            rd = reads if k == 0 else (f"{w0}{part}#via@{k - 1}",)
            # the block arriving home at d this round originated k+1 hops back
            wr = tuple(f"{w}{part}#s{(d - 1 - k) % G}" for w in writes)
            if k < G - 2:  # the rest stages for further forwarding
                wr = wr + (f"{w0}{part}#via@{k}",)
            msgs.append(Msg(g, d, s * (G - 1 - k), rd, wr))
        rounds.append(tuple(msgs))
    return tuple(rounds), True


def _alltoall_bruck(G: int, payload: float, reads: tuple, writes: tuple,
                    part: str) -> tuple[tuple, bool]:
    s = payload / (G - 1)
    rounds = []
    k, step = 0, 1
    while step < G:
        nblocks = sum(1 for d in range(1, G) if (d >> k) & 1)
        msgs = []
        for g in range(G):
            dst = (g + step) % G
            rd = reads + tuple(
                f"{w}{part}#via{g}@{j}" for j in range(k) for w in writes
            )
            wr = tuple(f"{w}{part}#via{dst}@{k}" for w in writes)
            msgs.append(Msg(g, dst, s * nblocks, rd, wr))
        rounds.append(tuple(msgs))
        k += 1
        step <<= 1
    return tuple(rounds), True


# ---------------------------------------------------------------------------
# allgather plans
# ---------------------------------------------------------------------------

def _allgather_direct(G: int, b: float, reads: tuple, writes: tuple,
                      part: str) -> tuple[tuple, bool]:
    rounds = []
    for k in range(1, G):
        rounds.append(tuple(
            Msg(g, (g + k) % G, b, reads,
                tuple(f"{w}{part}#b{g}" for w in writes))
            for g in range(G)
        ))
    return tuple(rounds), False


def _allgather_ring(G: int, b: float, reads: tuple, writes: tuple,
                    part: str) -> tuple[tuple, bool]:
    rounds = []
    for k in range(G - 1):
        msgs = []
        for g in range(G):
            j = (g - k) % G  # block forwarded by g this round
            blk = tuple(f"{w}{part}#b{j}" for w in writes)
            rd = reads if k == 0 else blk
            msgs.append(Msg(g, (g + 1) % G, b, rd, blk))
        rounds.append(tuple(msgs))
    return tuple(rounds), True


def _allgather_bruck(G: int, b: float, reads: tuple, writes: tuple,
                     part: str) -> tuple[tuple, bool]:
    rounds = []
    c = 1
    while c < G:
        m = min(c, G - c)
        msgs = []
        for g in range(G):
            dst = (g - c) % G  # holds {g-c..g-1}; needs {g..g+m-1}
            blocks = [(g + t) % G for t in range(m)]
            rd = reads + tuple(
                f"{w}{part}#b{j}" for j in blocks[1:] for w in writes
            )
            wr = tuple(f"{w}{part}#b{j}" for j in blocks for w in writes)
            msgs.append(Msg(g, dst, b * m, rd, wr))
        rounds.append(tuple(msgs))
        c += m
    return tuple(rounds), True


# ---------------------------------------------------------------------------
# hierarchical (two-level) plans for multi-node machines
# ---------------------------------------------------------------------------

def _node_groups(graph) -> list[list[int]] | None:
    """Device groups per node from the ``node_of`` annotation (or None)."""
    node_of = graph.graph.get("node_of")
    if not node_of:
        return None
    nodes: dict[int, list[int]] = {}
    for dev, nd in node_of.items():
        nodes.setdefault(nd, []).append(dev)
    return [sorted(devs) for _, devs in sorted(nodes.items())]


def _alltoall_hier(graph, G: int, payload: float, reads: tuple,
                   writes: tuple, part: str) -> tuple[tuple, bool]:
    groups = _node_groups(graph)
    if groups is None or len(groups) < 2:
        raise ParameterError("hier plans need a multi-node topology (node_of)")
    s = payload / (G - 1)
    w0 = writes[0]
    leaders = [grp[0] for grp in groups]
    nnodes = len(groups)
    rounds: list[tuple] = []
    # phase 0: intra-node pairwise exchange (final placement)
    for k in range(1, max(len(grp) for grp in groups)):
        msgs = []
        for grp in groups:
            if k >= len(grp):
                continue
            for i, g in enumerate(grp):
                dst = grp[(i + k) % len(grp)]
                msgs.append(Msg(g, dst, s, reads,
                                tuple(f"{w}{part}#s{g}" for w in writes)))
        if msgs:
            rounds.append(tuple(msgs))
    # phase 1: non-leaders funnel their off-node data to the leader
    msgs = []
    for grp in groups:
        off = (G - len(grp)) * s
        for g in grp[1:]:
            msgs.append(Msg(g, grp[0], off, reads, (f"{w0}{part}#fwd{g}",)))
    if msgs:
        rounds.append(tuple(msgs))
    # phase 2: leaders exchange node aggregates pairwise over the NICs
    for k in range(1, nnodes):
        msgs = []
        for i, ld in enumerate(leaders):
            j = (i + k) % nnodes
            nb = len(groups[i]) * len(groups[j]) * s
            rd = reads + tuple(f"{w0}{part}#fwd{g}" for g in groups[i][1:])
            msgs.append(Msg(ld, leaders[j], nb, rd, (f"{w0}{part}#nd{i}",)))
        rounds.append(tuple(msgs))
    # phase 3: leaders scatter the received off-node data locally
    msgs = []
    for i, grp in enumerate(groups):
        rd = tuple(f"{w0}{part}#nd{j}" for j in range(nnodes) if j != i)
        for g in grp[1:]:
            msgs.append(Msg(grp[0], g, (G - len(grp)) * s, rd,
                            (f"{w0}{part}#rem",)))
    if msgs:
        rounds.append(tuple(msgs))
    return tuple(rounds), True


def _allgather_hier(graph, G: int, b: float, reads: tuple, writes: tuple,
                    part: str) -> tuple[tuple, bool]:
    groups = _node_groups(graph)
    if groups is None or len(groups) < 2:
        raise ParameterError("hier plans need a multi-node topology (node_of)")
    leaders = [grp[0] for grp in groups]
    nnodes = len(groups)
    rounds: list[tuple] = []

    def blocks(devs) -> tuple:
        return tuple(f"{w}{part}#b{x}" for x in devs for w in writes)

    # phase 1: funnel contributions to the node leader
    msgs = [Msg(g, grp[0], b, reads, blocks([g]))
            for grp in groups for g in grp[1:]]
    if msgs:
        rounds.append(tuple(msgs))
    # phase 2: ring over leaders, forwarding whole node blocks
    for k in range(nnodes - 1):
        msgs = []
        for i, ld in enumerate(leaders):
            j = (i - k) % nnodes  # node block forwarded this round
            if j == i:  # own node: leader's block is in `reads`
                rd = reads + blocks(groups[j][1:])
            else:
                rd = blocks(groups[j])
            msgs.append(Msg(ld, leaders[(i + 1) % nnodes],
                            len(groups[j]) * b, rd, blocks(groups[j])))
        rounds.append(tuple(msgs))
    # phase 3: leaders deliver every foreign block to their locals —
    # off-node blocks from the leader ring plus the sibling blocks that
    # only exist on the leader (funneled there in phase 1) and the
    # leader's own contribution (still in the caller's `reads` buffer).
    msgs = []
    for grp in groups:
        for g in grp[1:]:
            staged = [x for x in range(G) if x != g and x != grp[0]]
            msgs.append(Msg(grp[0], g, (G - 1) * b, reads + blocks(staged),
                            blocks([x for x in range(G) if x != g])))
    if msgs:
        rounds.append(tuple(msgs))
    return tuple(rounds), True


def hier2_relay(groups: list[list[int]], i: int, j: int) -> int:
    """The device in node ``i`` that exchanges with node ``j``.

    ``groups[i][j % len(groups[i])]`` — a static assignment that spreads
    the per-peer-node relay duty across the node's devices, so a node's
    NIC traffic is injected by many devices instead of one leader.
    """
    grp = groups[i]
    return grp[j % len(grp)]


def _alltoall_hier2(graph, G: int, payload: float, reads: tuple,
                    writes: tuple, part: str) -> tuple[tuple, bool]:
    groups = _node_groups(graph)
    if groups is None or len(groups) < 2:
        raise ParameterError("hier2 plans need a multi-node topology (node_of)")
    s = payload / (G - 1)
    w0 = writes[0]
    nnodes = len(groups)
    rounds: list[tuple] = []
    # phase 0: intra-node pairwise exchange (final placement)
    for k in range(1, max(len(grp) for grp in groups)):
        msgs = []
        for grp in groups:
            if k >= len(grp):
                continue
            for i, g in enumerate(grp):
                dst = grp[(i + k) % len(grp)]
                msgs.append(Msg(g, dst, s, reads,
                                tuple(f"{w}{part}#s{g}" for w in writes)))
        if msgs:
            rounds.append(tuple(msgs))
    # phase 1: gather — each device hands every relay the blocks that
    # relay will carry, one combined message per (device, relay) pair
    msgs = []
    for i, grp in enumerate(groups):
        for g in grp:
            per_relay: dict[int, list[int]] = {}
            for j in range(nnodes):
                if j == i:
                    continue
                h = hier2_relay(groups, i, j)
                if h == g:  # g relays its own blocks for node j
                    continue
                per_relay.setdefault(h, []).append(j)
            for h, js in sorted(per_relay.items()):
                nb = s * sum(len(groups[j]) for j in js)
                wr = tuple(f"{w0}{part}#g{g}@{j}" for j in js)
                msgs.append(Msg(g, h, nb, reads, wr))
    if msgs:
        rounds.append(tuple(msgs))
    # phase 2: exactly one inter-node message per ordered node pair,
    # scheduled as nnodes-1 contention-free permutation rounds
    for k in range(1, nnodes):
        msgs = []
        for i in range(nnodes):
            j = (i + k) % nnodes
            src = hier2_relay(groups, i, j)
            dst = hier2_relay(groups, j, i)
            nb = s * len(groups[i]) * len(groups[j])
            rd = reads + tuple(
                f"{w0}{part}#g{g}@{j}" for g in groups[i] if g != src
            )
            msgs.append(Msg(src, dst, nb, rd, (f"{w0}{part}#x{i}",)))
        rounds.append(tuple(msgs))
    # phase 3: scatter — each relay delivers the foreign blocks it
    # received to their final local destinations
    msgs = []
    for j, grp in enumerate(groups):
        for g in grp:
            per_relay = {}
            for i in range(nnodes):
                if i == j:
                    continue
                r = hier2_relay(groups, j, i)
                if r == g:  # arrived at g directly in phase 2
                    continue
                per_relay.setdefault(r, []).append(i)
            for r, srcs in sorted(per_relay.items()):
                nb = s * sum(len(groups[i]) for i in srcs)
                rd = tuple(f"{w0}{part}#x{i}" for i in srcs)
                msgs.append(Msg(r, g, nb, rd,
                                tuple(f"{w}{part}#rem{r}" for w in writes)))
    if msgs:
        rounds.append(tuple(msgs))
    return tuple(rounds), True


def _allgather_hier2(graph, G: int, b: float, reads: tuple, writes: tuple,
                     part: str) -> tuple[tuple, bool]:
    groups = _node_groups(graph)
    if groups is None or len(groups) < 2:
        raise ParameterError("hier2 plans need a multi-node topology (node_of)")
    nnodes = len(groups)
    rounds: list[tuple] = []

    def blocks(devs) -> tuple:
        return tuple(f"{w}{part}#b{x}" for x in devs for w in writes)

    # phase 0: intra-node pairwise allgather (every device gets its
    # siblings' contributions — so any device can relay the node block)
    for k in range(1, max(len(grp) for grp in groups)):
        msgs = []
        for grp in groups:
            if k >= len(grp):
                continue
            for i, g in enumerate(grp):
                msgs.append(Msg(g, grp[(i + k) % len(grp)], b, reads,
                                blocks([g])))
        if msgs:
            rounds.append(tuple(msgs))
    # phase 1: one inter-node message per ordered node pair carries the
    # whole node block, relays spread across the node's devices
    for k in range(1, nnodes):
        msgs = []
        for i in range(nnodes):
            j = (i + k) % nnodes
            src = hier2_relay(groups, i, j)
            dst = hier2_relay(groups, j, i)
            rd = reads + blocks([g for g in groups[i] if g != src])
            msgs.append(Msg(src, dst, len(groups[i]) * b, rd,
                            blocks(groups[i])))
        rounds.append(tuple(msgs))
    # phase 2: relays broadcast the foreign node blocks they received
    # to their local siblings
    msgs = []
    for j, grp in enumerate(groups):
        for g in grp:
            per_relay: dict[int, list[int]] = {}
            for i in range(nnodes):
                if i == j:
                    continue
                r = hier2_relay(groups, j, i)
                if r == g:
                    continue
                per_relay.setdefault(r, []).append(i)
            for r, srcs in sorted(per_relay.items()):
                origins = [x for i in srcs for x in groups[i]]
                msgs.append(Msg(r, g, len(origins) * b, blocks(origins),
                                blocks(origins)))
    if msgs:
        rounds.append(tuple(msgs))
    return tuple(rounds), True


# ---------------------------------------------------------------------------
# dispatch + costing
# ---------------------------------------------------------------------------

def build_plan(
    spec,
    kind: str,
    payload: float,
    algorithm: str,
    reads: tuple = (),
    writes: tuple = ("comm",),
    part: str = "",
    certify: bool = True,
) -> CommPlan:
    """Build the message plan for one collective on one machine.

    ``payload`` is the per-device payload: total bytes each device sends
    for an alltoall, the per-device contribution for an allgather.
    ``reads``/``writes`` are the caller's base buffer names (already
    chunk-qualified on the read side); ``part`` is the chunk tag appended
    to write names before the per-message ``#s``/``#b`` sub-parts.

    Unless ``certify=False``, the plan is admitted through the static
    verifier (:func:`repro.analysis.plancheck.certify_plan`) before it
    is returned: deadlock-freedom, payload conservation, and buffer
    liveness are proved once per ``(spec_fingerprint, kind, algorithm)``
    and cached, so the warm path pays one dict lookup.
    """
    G = spec.num_devices
    if kind not in KINDS:
        raise ParameterError(f"unknown collective kind {kind!r}")
    if G < 2:
        raise ParameterError("message plans need at least 2 devices")
    if not writes:
        raise ParameterError("message plans need at least one write buffer")
    reads, writes = tuple(reads), tuple(writes)
    if algorithm == "direct":
        rounds, chained = (_alltoall_direct if kind == "alltoall"
                           else _allgather_direct)(G, payload, reads, writes, part)
    elif algorithm == "ring":
        rounds, chained = (_alltoall_ring if kind == "alltoall"
                           else _allgather_ring)(G, payload, reads, writes, part)
    elif algorithm == "bruck":
        rounds, chained = (_alltoall_bruck if kind == "alltoall"
                           else _allgather_bruck)(G, payload, reads, writes, part)
    elif algorithm == "hier":
        rounds, chained = (_alltoall_hier if kind == "alltoall"
                           else _allgather_hier)(spec.graph, G, payload,
                                                 reads, writes, part)
    elif algorithm == "hier2":
        rounds, chained = (_alltoall_hier2 if kind == "alltoall"
                           else _allgather_hier2)(spec.graph, G, payload,
                                                  reads, writes, part)
    else:
        raise ParameterError(
            f"unknown plan algorithm {algorithm!r}; choose from "
            f"{[a for a in ALGORITHMS if a != 'bulk']}"
        )
    plan = CommPlan(algorithm=algorithm, kind=kind, rounds=rounds,
                    chained=chained)
    if certify:
        from repro.analysis.plancheck import certify_plan  # lazy: no cycle

        certify_plan(spec, plan, payload)
    return plan


def _message_hops(spec, m) -> tuple[tuple[tuple, float], ...]:
    """(contention key, capacity) per wire segment the message crosses.

    Direct edges are a single dedicated segment.  Inter-node messages
    follow their routed path (:mod:`repro.machine.routing`): the source
    node's NIC, any leaf/spine uplinks, the destination node's NIC —
    keys are per *shared interface* (per node, per leaf), so all of a
    node's devices contend for its one NIC.  Same-node pairs without an
    edge keep the per-device fallback ports (PCIe injection/ejection).
    """
    graph = spec.graph
    if graph.has_edge(m.src, m.dst):
        bw = graph.edges[m.src, m.dst]["link"].bandwidth
        return ((("edge", m.src, m.dst), bw),)
    node_of = graph.graph.get("node_of")
    if node_of is not None:
        na, nb = node_of.get(m.src), node_of.get(m.dst)
        if na is not None and nb is not None and na != nb:
            return tuple(
                (h.key, h.bandwidth)
                for h in routing.route_hops(graph, m.src, m.dst)
            )
    fb = topo.fallback_link(graph).bandwidth
    return ((("fb-tx", m.src), fb), (("fb-rx", m.dst), fb))


def message_bandwidths(spec, msgs) -> list[float]:
    """Contention-adjusted effective bandwidth for each message of a round.

    Each message crosses a sequence of segments (a dedicated edge, or
    the hops of its routed path); within a round every segment is shared
    equally by the same-direction messages mapped to it.  A message's
    bandwidth is the minimum over its segments of ``capacity / load`` —
    links stay full duplex, so opposite directions never contend.
    """
    load: Counter = Counter()
    hops_per_msg = [_message_hops(spec, m) for m in msgs]
    for hops in hops_per_msg:
        for key, _ in hops:
            load[key] += 1
    return [
        min(bw / load[key] for key, bw in hops)
        for hops in hops_per_msg
    ]


def round_time(spec, msgs) -> float:
    """Completion time of one round: slowest message, contention included."""
    bws = message_bandwidths(spec, msgs)
    return max(
        topo.pair_latency(spec.graph, m.src, m.dst) + m.nbytes / bw
        for m, bw in zip(msgs, bws)
    )


def plan_time(spec, plan: CommPlan) -> float:
    """Predicted completion time of a plan: rounds run back to back."""
    return sum(round_time(spec, r) for r in plan.rounds)
