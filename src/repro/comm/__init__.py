"""Collective communication subsystem: algorithm-pluggable message plans.

The paper's contribution is communication *structure* — so the simulator
models it structurally too.  This package decomposes every collective a
pipeline issues into explicit per-round point-to-point message plans
routed over the machine's actual interconnect topology:

- :mod:`repro.comm.plans` — the plan builders (``direct``, ``ring``,
  ``bruck``, ``hier``, ``hier2``) plus the per-link/per-hop contention
  and round-cost model (inter-node messages are priced along their
  routed fabric path);
- :mod:`repro.comm.api` — what pipelines call:
  :func:`~repro.comm.api.alltoall`, :func:`~repro.comm.api.allgather`,
  :func:`~repro.comm.api.grouped_alltoall` (concurrent subgroup
  exchanges for pencil decompositions),
  :func:`~repro.comm.api.halo_exchange`,
  :func:`~repro.comm.api.sendrecv` — with ``algorithm="bulk"`` mapping
  bit-for-bit onto the legacy flat collective model for back-compat and
  ablation;
- :mod:`repro.comm.tuning` — the model-driven selector
  (``algorithm="auto"``) and the prediction table behind
  ``repro comm``;
- :mod:`repro.comm.retry` — the fault-handling contract: a
  :class:`~repro.comm.retry.RetryPolicy` (timeout, exponential backoff
  with seeded jitter, per-collective budget) applied by the api layer
  when the cluster carries a :class:`~repro.faults.FaultInjector`, and
  :class:`~repro.comm.retry.CommFailure` raised when retries cannot
  succeed.

See ``docs/COMM.md`` for the cost model and selector policy, and
``docs/FAULTS.md`` for retry semantics.
"""

from __future__ import annotations

from repro.comm.api import (
    ALGORITHMS,
    allgather,
    alltoall,
    grouped_alltoall,
    halo_exchange,
    sendrecv,
)
from repro.comm.retry import DEFAULT_RETRY, CommFailure, RetryPolicy
from repro.comm.plans import CommPlan, Msg, build_plan, plan_time
from repro.comm.tuning import (
    algorithm_table,
    candidate_algorithms,
    choose_algorithm,
    predict_time,
)

__all__ = [
    "ALGORITHMS",
    "CommFailure",
    "CommPlan",
    "DEFAULT_RETRY",
    "Msg",
    "RetryPolicy",
    "algorithm_table",
    "allgather",
    "alltoall",
    "build_plan",
    "candidate_algorithms",
    "choose_algorithm",
    "grouped_alltoall",
    "halo_exchange",
    "plan_time",
    "predict_time",
    "sendrecv",
]
