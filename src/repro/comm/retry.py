"""Retry policy for collective communication under injected faults.

When a :class:`~repro.faults.FaultInjector` is installed on the cluster,
every message (and every bulk collective) attempt can fail transiently.
The comm layer then charges a *timed-out attempt* to the ledger — a
zero-byte ``<stage>!fail`` record of duration :attr:`RetryPolicy.timeout`
on the same engines the real transfer would occupy — waits out an
exponential backoff with seeded jitter, and re-issues.  A per-collective
budget bounds the total failed attempts; exhausting it (or hitting a
permanent fault such as device loss) raises :class:`CommFailure`, which
the serve layer catches to re-enqueue the batch.

Jitter is *stateless*: a hash of (seed, stage name, attempt index)
rather than a consumed generator, so a shared policy object replays
bit-identically no matter how many runs it has seen.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.util.validation import ParameterError


class CommFailure(RuntimeError):
    """A collective could not complete.

    Attributes
    ----------
    time:
        Simulated time at which the failure was established (budget
        exhausted or permanent fault detected).
    permanent:
        True for non-retryable causes (device loss) — retrying the same
        schedule cannot succeed; False when the retry budget ran out.
    """

    def __init__(self, message: str, time: float = 0.0, permanent: bool = False):
        super().__init__(message)
        self.time = time
        self.permanent = permanent


def _unit(*keys) -> float:
    """Deterministic uniform [0, 1) from a hash of the keys."""
    h = hashlib.sha256(repr(keys).encode()).digest()
    return int.from_bytes(h[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / backoff / budget knobs for comm retries.

    Attributes
    ----------
    timeout:
        Simulated seconds a failed attempt occupies the comm engines
        before the failure is detected (the ``!fail`` record duration).
    backoff:
        Base delay before the first retry.
    backoff_factor:
        Multiplier per subsequent retry (exponential backoff).
    max_backoff:
        Cap on the exponential delay (before jitter).
    jitter:
        Jitter fraction in [0, 1]: each delay is stretched by up to
        ``jitter * delay``, deterministically per (seed, stage, attempt).
    budget:
        Failed attempts tolerated per collective call before the call
        raises :class:`CommFailure`.
    seed:
        Jitter seed.
    """

    timeout: float = 250e-6
    backoff: float = 50e-6
    backoff_factor: float = 2.0
    max_backoff: float = 2e-3
    jitter: float = 0.25
    budget: int = 8
    seed: int = 0

    def __post_init__(self):
        for attr in ("timeout", "backoff", "max_backoff"):
            if getattr(self, attr) <= 0.0:
                raise ParameterError(f"{attr} must be > 0, got {getattr(self, attr)!r}")
        if self.backoff_factor < 1.0:
            raise ParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ParameterError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.budget < 1:
            raise ParameterError(f"budget must be >= 1, got {self.budget!r}")

    def delay(self, name: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based) of a stage."""
        base = min(self.backoff * self.backoff_factor**attempt, self.max_backoff)
        return base * (1.0 + self.jitter * _unit(self.seed, name, attempt))


class RetryBudget:
    """Mutable failed-attempt budget for one collective call.

    The comm layer charges one unit per timed-out attempt; exhausting
    the budget is the :class:`CommFailure` trigger.  Each charge is
    also the ``comm.retry{stage=...}`` telemetry emission point — the
    stage label is the last dot-component of the op name, so batch
    namespaces (``serve.b3.transpose`` → ``transpose``) stay bounded.
    """

    __slots__ = ("limit", "spent", "telemetry")

    def __init__(self, limit: int, telemetry=None):
        self.limit = limit
        self.spent = 0
        self.telemetry = telemetry

    def charge(self, name: str, t: float) -> None:
        """Record one failed attempt of ``name`` detected at time ``t``."""
        self.spent += 1
        if self.telemetry is not None:
            self.telemetry.counter(
                "comm.retry", {"stage": name.rsplit(".", 1)[-1]}
            ).inc(1.0, t=t)

    @property
    def exhausted(self) -> bool:
        """True once more than ``limit`` attempts have failed."""
        return self.spent > self.limit


#: policy used when a cluster has faults installed but no explicit policy
DEFAULT_RETRY = RetryPolicy()
