"""Model-driven collective algorithm selection (Section 5 cost model).

The selector prices every candidate plan with the same closed-form cost
model the simulator charges — per-message ``pair_latency + nbytes /
contended_bandwidth``, rounds back to back (:func:`repro.comm.plans
.plan_time`) — and picks the cheapest for a given (topology, G, payload).
``bulk`` is priced with the legacy flat formula (``comm_latency +
collective_overhead + payload / alltoall_bandwidth``) so the table shows
exactly what the refactor buys; ``auto`` resolves among the real message
plans only (``direct``/``ring``/``bruck``, plus ``hier`` on multi-node
machines), never back to ``bulk``, because the flat model's synthetic
synchronization is what we are replacing.

``repro comm --testbed ...`` prints :func:`algorithm_table`;
:func:`repro.obs.metrics.join_comm_model` validates these predictions
against the simulated ledger after a run.
"""

from __future__ import annotations

from repro.comm.plans import build_plan, plan_time
from repro.util.validation import ParameterError

#: Message sizes (bytes per device) swept by the CLI/bench tables.
DEFAULT_SIZES = tuple(float(1 << p) for p in range(12, 28, 3))  # 4 KiB..128 MiB


def candidate_algorithms(spec) -> list[str]:
    """Plan algorithms eligible on this machine (excludes ``bulk``)."""
    cands = ["direct", "ring", "bruck"]
    node_of = spec.graph.graph.get("node_of")
    if node_of and len(set(node_of.values())) > 1:
        cands += ["hier", "hier2"]
    return cands


def predict_time(spec, kind: str, payload: float, algorithm: str,
                 chunks: int = 1) -> float:
    """Predicted completion time of one collective under ``algorithm``.

    ``payload`` follows the plan convention: bytes each device sends for
    an alltoall, per-device contribution for an allgather.  With
    ``chunks > 1`` the chunks run back to back (the pipelining win comes
    from overlap with compute, which this closed form deliberately
    excludes — it prices the collective alone).
    """
    if chunks < 1:
        raise ParameterError("chunks must be >= 1")
    if algorithm == "bulk":
        per_dev = payload if kind == "alltoall" else \
            (spec.num_devices - 1) * payload
        return chunks * (
            spec.comm_latency() + spec.collective_overhead
            + (per_dev / chunks) / spec.alltoall_bandwidth()
        )
    plan = build_plan(spec, kind, payload / chunks, algorithm)
    return chunks * plan_time(spec, plan)


def choose_algorithm(spec, kind: str, payload: float) -> str:
    """Cheapest plan algorithm for this machine, kind, and payload."""
    if spec.num_devices < 2:
        return "bulk"
    return min(candidate_algorithms(spec),
               key=lambda a: predict_time(spec, kind, payload, a))


def algorithm_table(spec, kinds=("alltoall", "allgather"),
                    sizes=DEFAULT_SIZES) -> list[dict]:
    """Selector table: one row per (kind, payload) with every algorithm's
    predicted time, the legacy ``bulk`` prediction, and the winner."""
    rows = []
    for kind in kinds:
        for size in sizes:
            preds = {a: predict_time(spec, kind, float(size), a)
                     for a in candidate_algorithms(spec)}
            best = min(preds, key=preds.get)
            rows.append({
                "kind": kind,
                "payload_bytes": float(size),
                "bulk": predict_time(spec, kind, float(size), "bulk"),
                "predictions": preds,
                "best": best,
                "speedup_vs_bulk":
                    predict_time(spec, kind, float(size), "bulk") / preds[best],
            })
    return rows
