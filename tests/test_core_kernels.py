import numpy as np
import pytest

from repro.core.kernels import dense_c_matrix, dense_h_matrix, post_process
from repro.fmm.operators import rho_factors
from repro.fmm.reference import dense_apply_all
from repro.util.validation import ParameterError


class TestCMatrix:
    def test_p0_identity(self):
        np.testing.assert_array_equal(dense_c_matrix(8, 4, 0), np.eye(8))

    def test_rank_one_plus_cot_structure(self):
        M, P, p = 16, 4, 2
        C = dense_c_matrix(M, P, p)
        rho = rho_factors(P, M)[p - 1]
        cot_part = C / rho - 1j
        assert np.abs(cot_part.imag).max() < 1e-12


class TestHMatrix:
    def test_block_diagonal(self):
        M, P = 4, 3
        H = dense_h_matrix(M, P)
        for p in range(P):
            blk = H[p * M : (p + 1) * M, p * M : (p + 1) * M]
            np.testing.assert_array_equal(blk, dense_c_matrix(M, P, p))
        # off-diagonal blocks zero
        assert np.abs(H[:M, M : 2 * M]).max() == 0.0


class TestPostProcess:
    def test_matches_full_kernel(self, rng):
        """FMM output + POST == dense C_p application."""
        M, P = 32, 4
        S = rng.standard_normal((P, M)) + 1j * rng.standard_normal((P, M))
        T, r = dense_apply_all(S, M, P)
        out = post_process(T, r, M, P)
        for p in range(1, P):
            np.testing.assert_allclose(out[p], dense_c_matrix(M, P, p) @ S[p], atol=1e-12)

    def test_p0_untouched(self, rng):
        M, P = 16, 4
        T = rng.standard_normal((P, M)) + 0j
        r = np.zeros(P - 1)
        out = post_process(T, r, M, P)
        np.testing.assert_array_equal(out[0], T[0])

    def test_shape_checks(self):
        with pytest.raises(ParameterError):
            post_process(np.zeros((4, 8)), np.zeros(2), 8, 4)

    def test_real_input_promoted(self):
        out = post_process(np.ones((4, 8)), np.ones(3), 8, 4)
        assert np.iscomplexobj(out)
