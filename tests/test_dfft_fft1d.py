import numpy as np
import pytest

from repro.dfft.fft1d import Distributed1DFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node
from repro.util.validation import ParameterError


def _rand(n, rng, dtype=np.complex128):
    return (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(dtype)


class TestCorrectness:
    @pytest.mark.parametrize("G", [1, 2, 4, 8])
    def test_matches_numpy(self, G, rng):
        N = 1 << 12
        cl = VirtualCluster(p100_nvlink_node(G))
        x = _rand(N, rng)
        y = Distributed1DFFT(N, cl).run(x)
        rel = np.linalg.norm(y - np.fft.fft(x)) / np.linalg.norm(np.fft.fft(x))
        assert rel < 1e-12

    @pytest.mark.parametrize("M,P", [(256, 16), (16, 256), (64, 64)])
    def test_explicit_splits(self, M, P, rng):
        cl = VirtualCluster(p100_nvlink_node(2))
        x = _rand(M * P, rng)
        y = Distributed1DFFT(M * P, cl, M=M, P=P).run(x)
        assert np.linalg.norm(y - np.fft.fft(x)) / np.linalg.norm(y) < 1e-12

    def test_numpy_backend(self, rng):
        cl = VirtualCluster(p100_nvlink_node(2))
        x = _rand(1 << 10, rng)
        y = Distributed1DFFT(1 << 10, cl, backend="numpy").run(x)
        np.testing.assert_allclose(y, np.fft.fft(x), atol=1e-9)

    def test_single_precision(self, rng):
        cl = VirtualCluster(p100_nvlink_node(2))
        x = _rand(1 << 10, rng, np.complex64)
        y = Distributed1DFFT(1 << 10, cl, dtype="complex64").run(x)
        ref = np.fft.fft(x.astype(np.complex128))
        assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 1e-4

    def test_chunks_do_not_change_result(self, rng):
        x = _rand(1 << 10, rng)
        outs = []
        for chunks in (1, 2, 8):
            cl = VirtualCluster(p100_nvlink_node(2))
            outs.append(Distributed1DFFT(1 << 10, cl, chunks=chunks).run(x))
        np.testing.assert_allclose(outs[0], outs[1])
        np.testing.assert_allclose(outs[0], outs[2])


class TestValidation:
    def test_rejects_non_pow2(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(Exception):
            Distributed1DFFT(1000, cl)

    def test_rejects_bad_split(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(ParameterError):
            Distributed1DFFT(1024, cl, M=100, P=12)

    def test_rejects_real_dtype(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(ParameterError):
            Distributed1DFFT(1024, cl, dtype="float64")

    def test_requires_data_in_execute_mode(self):
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            Distributed1DFFT(1024, cl).run()

    def test_wrong_input_shape(self, rng):
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            Distributed1DFFT(1024, cl).run(np.zeros(512, dtype=complex))


class TestTiming:
    def test_three_alltoalls(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(1 << 20, cl).run()
        names = set(cl.ledger.comm_bytes_by_name())
        assert {"transpose1", "transpose2", "transpose3"} <= names

    def test_comm_bound_at_large_n(self):
        """Figure 2 (top): wall time ~ the three transposes."""
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(1 << 26, cl).run()
        tr = cl.trace()
        assert tr.comm_time(0) > tr.compute_time(0)

    def test_overlap_beats_serial(self):
        """Pipelined comm/compute must be faster than their sum."""
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(1 << 26, cl).run()
        tr = cl.trace()
        assert cl.wall_time() < tr.comm_time(0) + tr.compute_time(0)

    def test_timing_only_returns_none(self):
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        assert Distributed1DFFT(1 << 12, cl).run() is None

    def test_comm_volume_matches_model(self):
        from repro.model.comm import fft1d_comm_bytes

        N, G = 1 << 20, 2
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(N, cl).run()
        sent = sum(
            v for k, v in cl.ledger.comm_bytes_by_name().items() if "transpose" in k
        ) / G
        assert sent == pytest.approx(fft1d_comm_bytes(N, G))
