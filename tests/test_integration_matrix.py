"""Cross-configuration integration matrix: dtype x G x fusion x backend.

Every combination must produce the numpy-exact spectrum (to its
precision) and a physically valid schedule.
"""

import numpy as np
import pytest

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.machine.cluster import VirtualCluster
from repro.machine.multinode import multinode_p100
from repro.machine.spec import p100_nvlink_node
from repro.machine.validate import assert_valid_schedule
from repro.util.prng import random_signal


TOL = {"complex64": 4e-7, "complex128": 5e-14}


@pytest.mark.parametrize("dtype", ["complex64", "complex128"])
@pytest.mark.parametrize("G", [1, 2, 4])
def test_dtype_by_devices(dtype, G):
    N = 1 << 13
    Q = 8 if dtype == "complex64" else 16
    plan = FmmFftPlan.create(N=N, P=32, ML=16, B=3, Q=Q, G=G, dtype=dtype)
    cl = VirtualCluster(p100_nvlink_node(G))
    x = random_signal(N, dtype, seed=G)
    out = FmmFftDistributed(plan, cl, backend="numpy").run(x)
    ref = np.fft.fft(x.astype(np.complex128))
    assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < TOL[dtype]
    assert_valid_schedule(cl.ledger)


@pytest.mark.parametrize("fuse_post", [True, False])
@pytest.mark.parametrize("chunks", [1, 2, 8])
def test_fusion_by_chunking(fuse_post, chunks):
    N = 1 << 12
    plan = FmmFftPlan.create(N=N, P=32, ML=16, B=2, Q=16, G=2)
    cl = VirtualCluster(p100_nvlink_node(2))
    x = random_signal(N, seed=7)
    out = FmmFftDistributed(
        plan, cl, backend="numpy", chunks=chunks, fuse_post=fuse_post
    ).run(x)
    ref = np.fft.fft(x)
    assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 5e-14
    assert_valid_schedule(cl.ledger)


@pytest.mark.parametrize("backend", ["auto", "numpy"])
def test_backends_agree(backend):
    N = 1 << 12
    plan = FmmFftPlan.create(N=N, P=16, ML=16, B=3, Q=16, G=2)
    cl = VirtualCluster(p100_nvlink_node(2))
    x = random_signal(N, seed=8)
    out = FmmFftDistributed(plan, cl, backend=backend).run(x)
    assert np.linalg.norm(out - np.fft.fft(x)) / np.linalg.norm(out) < 2e-13


def test_multinode_execute_with_fmm_fusion():
    """Everything at once: 2 nodes x 4 GPUs, real numerics, fused FMM."""
    from repro.fmm.distributed import DistributedFMM
    from repro.fmm.plan import FmmOperators

    N, P, M = 1 << 13, 32, (1 << 13) // 32
    spec = multinode_p100(2, 4)
    ops = FmmOperators.create(M=M, P=P, ML=16, B=3, Q=16, G=8)
    cl = VirtualCluster(spec)
    x = random_signal(N, seed=9)
    S = np.ascontiguousarray(x.reshape(M, P).T)
    d = DistributedFMM(ops, cl, fuse_m2l_l2l=True)
    d.run(S)
    from repro.fmm.batched import BatchedFMM

    ref_ops = FmmOperators.create(M=M, P=P, ML=16, B=3, Q=16)
    Tref, _ = BatchedFMM(ref_ops).apply(S)
    T = d.gather()
    assert np.linalg.norm(T - Tref) / np.linalg.norm(Tref) < 1e-12
    assert_valid_schedule(cl.ledger)


@pytest.mark.parametrize("seed", range(5))
def test_many_seeds_double_claim(seed):
    """The Section 6.1 double-complex claim holds across inputs."""
    N = 1 << 12
    plan = FmmFftPlan.create(N=N, P=16, ML=16, B=3, Q=16)
    from repro.core.single import fmmfft_relative_error

    x = random_signal(N, seed=seed * 101)
    assert fmmfft_relative_error(x, plan) < 5e-14
