"""Golden calibration guard.

The simulator's undocumented constants (latencies, all-to-all
efficiency, FFT pass radix, derates — see EXPERIMENTS.md header) were
calibrated once against Figure 3 and then frozen.  These tests pin the
resulting speedup *bands* so an accidental re-tune (or an engine
regression that silently shifts schedules) fails loudly rather than
silently degrading the reproduction.

Bands are deliberately wide (±~15%): they guard the calibration, not
bit-exact timing.
"""

import pytest

from repro.machine.spec import preset
from repro.model.search import find_fastest

#: (system, log2N) -> (lo, hi) speedup band from the frozen calibration
GOLDEN_BANDS = {
    ("2xK40c", 14): (1.15, 1.55),
    ("2xK40c", 17): (1.40, 1.90),
    ("2xK40c", 22): (1.05, 1.35),
    ("2xK40c", 26): (0.95, 1.20),
    ("2xP100", 14): (1.05, 1.40),
    ("2xP100", 17): (1.35, 1.85),
    ("2xP100", 22): (1.15, 1.50),
    ("2xP100", 26): (1.10, 1.40),
    ("8xP100", 16): (1.15, 1.55),
    ("8xP100", 20): (1.35, 1.85),
    ("8xP100", 24): (1.55, 2.00),
    ("8xP100", 27): (1.65, 2.10),
}


@pytest.mark.parametrize("system,q", sorted(GOLDEN_BANDS))
def test_calibrated_speedup_band(system, q):
    lo, hi = GOLDEN_BANDS[(system, q)]
    r = find_fastest(1 << q, preset(system))
    assert lo <= r.speedup <= hi, (
        f"{system} N=2^{q}: speedup {r.speedup:.3f} left the calibrated "
        f"band [{lo}, {hi}] — did a simulator constant change?"
    )


def test_ordering_invariants():
    """The qualitative Figure 3 facts that must never regress."""
    s2 = find_fastest(1 << 26, preset("2xP100")).speedup
    s8 = find_fastest(1 << 26, preset("8xP100")).speedup
    sk = find_fastest(1 << 26, preset("2xK40c")).speedup
    assert s8 > s2 > sk          # gains grow with interconnect weakness
    assert s8 > 1.6              # the headline ~2x at 8 GPUs
    assert sk > 0.95             # K40 never loses badly at large N
