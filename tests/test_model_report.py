import pytest

from repro.fmm.plan import FmmGeometry
from repro.machine.spec import dual_p100_nvlink
from repro.model.report import pipeline_summary, render_model_report, stage_breakdown


@pytest.fixture
def geom():
    return FmmGeometry.create(M=1 << 14, P=256, ML=64, B=3, Q=16, G=2)


@pytest.fixture
def spec():
    return dual_p100_nvlink()


class TestStageBreakdown:
    def test_contains_all_stage_classes(self, geom, spec):
        text = stage_breakdown(geom, spec).render()
        for stage in ("S2M", "S2T", "M2L-B", "L2T", "REDUCE"):
            assert stage in text

    def test_bound_column_sensible(self, geom, spec):
        text = stage_breakdown(geom, spec).render()
        assert "compute" in text and "memory" in text

    def test_s2t_is_compute_bound(self, geom, spec):
        """S2T's on-the-fly operators give it high intensity (Sec 5.3)."""
        lines = [l for l in stage_breakdown(geom, spec).render().splitlines()
                 if l.startswith("S2T")]
        assert lines and "compute" in lines[0]


class TestPipelineSummary:
    def test_rows_present(self, geom, spec):
        text = pipeline_summary(geom, spec).render()
        for row in ("FMM stage", "2D FFT stage", "FMM-FFT total",
                    "1D FFT baseline", "model speedup"):
            assert row in text

    def test_comm_reduction_shown(self, geom, spec):
        text = pipeline_summary(geom, spec).render()
        assert "less comm" in text

    def test_single_device_no_comm(self, spec):
        from repro.machine.spec import p100_nvlink_node

        geom = FmmGeometry.create(M=1 << 14, P=256, ML=64, B=3, Q=16, G=1)
        text = pipeline_summary(geom, p100_nvlink_node(1)).render()
        assert "0 B" in text


class TestFullReport:
    def test_concatenates_both(self, geom, spec):
        text = render_model_report(geom, spec)
        assert "FMM stage model" in text
        assert "Pipeline model summary" in text

    def test_single_precision(self, geom, spec):
        text = render_model_report(geom, spec, "complex64")
        assert "complex64" in text
