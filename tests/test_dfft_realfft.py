import numpy as np
import pytest

from repro.dfft.fft1d import Distributed1DFFT
from repro.dfft.realfft import DistributedRealFFT
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node
from repro.machine.validate import assert_valid_schedule
from repro.util.validation import ParameterError


class TestCorrectness:
    @pytest.mark.parametrize("G", [1, 2, 4, 8])
    def test_matches_numpy_rfft(self, G, rng):
        N = 1 << 12
        cl = VirtualCluster(p100_nvlink_node(G))
        x = rng.standard_normal(N)
        out = DistributedRealFFT(N, cl).run(x)
        ref = np.fft.rfft(x)
        assert out.shape == (N // 2 + 1,)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-12

    def test_single_precision(self, rng):
        N = 1 << 10
        cl = VirtualCluster(p100_nvlink_node(2))
        x = rng.standard_normal(N).astype(np.float32)
        out = DistributedRealFFT(N, cl, dtype="float32").run(x)
        assert out.dtype == np.complex64
        ref = np.fft.rfft(x.astype(np.float64))
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 1e-4

    def test_dc_and_nyquist_real(self, rng):
        cl = VirtualCluster(p100_nvlink_node(2))
        out = DistributedRealFFT(256, cl).run(rng.standard_normal(256))
        assert abs(out[0].imag) < 1e-12
        assert abs(out[-1].imag) < 1e-12

    def test_schedule_valid(self, rng):
        cl = VirtualCluster(p100_nvlink_node(4))
        DistributedRealFFT(1 << 12, cl).run(rng.standard_normal(1 << 12))
        assert_valid_schedule(cl.ledger)


class TestCost:
    def test_cheaper_than_complex(self):
        """The C = 1 saving: real transform well under a complex one.

        The margin is 0.75, not 0.5: the pack and the mirror exchange
        are genuine serial epilogue/prologue stages (the hazard
        sanitizer certifies the schedule, so they may no longer ride
        for free on top of racing neighbours as the original 0.7-margin
        schedule implicitly let them).
        """
        N = 1 << 24
        cl_r = VirtualCluster(dual_p100_nvlink(), execute=False)
        DistributedRealFFT(N, cl_r).run()
        cl_c = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(N, cl_c).run()
        assert cl_r.wall_time() < 0.75 * cl_c.wall_time()

    def test_half_the_transpose_bytes(self):
        N = 1 << 20
        cl_r = VirtualCluster(dual_p100_nvlink(), execute=False)
        DistributedRealFFT(N, cl_r).run()
        cl_c = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(N, cl_c).run()
        tr_bytes = lambda cl: sum(
            v for k, v in cl.ledger.comm_bytes_by_name().items() if "transpose" in k
        )
        assert tr_bytes(cl_r) == pytest.approx(tr_bytes(cl_c) / 2)

    def test_mirror_exchange_is_pairwise(self):
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        DistributedRealFFT(1 << 16, cl).run()
        recs = cl.ledger.records(name="rfft.mirror")
        assert len(recs) == 4
        assert all(r.peer == 3 - r.device for r in recs)


class TestValidation:
    def test_rejects_complex_dtype(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(ParameterError):
            DistributedRealFFT(256, cl, dtype="complex128")

    def test_rejects_tiny_n(self):
        cl = VirtualCluster(p100_nvlink_node(2), execute=False)
        with pytest.raises(ParameterError):
            DistributedRealFFT(2, cl)

    def test_execute_needs_data(self):
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            DistributedRealFFT(256, cl).run()

    def test_wrong_shape(self, rng):
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            DistributedRealFFT(256, cl).run(rng.standard_normal(128))
