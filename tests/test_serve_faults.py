"""Serving under faults: retry/shed policy, replanning, determinism."""

from __future__ import annotations

import pytest

from repro.comm import RetryPolicy
from repro.comm.tuning import choose_algorithm
from repro.faults import DeviceLoss, FaultInjector, LinkFlap, seeded_chaos
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import preset
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    summarize,
    synthetic_workload,
)

SPEC = preset("8xP100")


def serve_run(requests, faults=None, retry=None, retry_budget=2,
              max_inflight=2):
    cl = VirtualCluster(SPEC, execute=False, faults=faults, retry=retry)
    sched = ServeScheduler(
        cl, Batcher(PlanCache(SPEC), max_batch=8),
        queue=AdmissionQueue(capacity=256),
        max_inflight=max_inflight, retry_budget=retry_budget,
    )
    sched.run(requests)
    return cl, sched


def accounted(sched):
    """completed + admission shed + retry shed, in requests."""
    return (len(sched.completed) + sum(sched.queue.shed.values())
            + sum(sched.retry_shed.values()))


class TestRetryCompletes:
    def test_failed_batches_reenqueue_and_complete(self):
        # a flap window early in the run: batches issued inside it exhaust
        # the comm retry budget and fail; the service re-enqueues their
        # requests, which complete once the window closes
        reqs = synthetic_workload(8, rate=20000.0, seed=3)
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 5e-3, 7.5e-3),))
        pol = RetryPolicy(timeout=3e-4, backoff=1e-5, jitter=0.0, budget=1)
        cl, sched = serve_run(reqs, faults=inj, retry=pol, retry_budget=8)
        assert sched.failed_batches > 0
        assert sum(sched.retried.values()) > 0
        assert len(sched.completed) == len(reqs)     # everyone recovered
        assert accounted(sched) == len(reqs)
        cl.sanitize()     # the retried interleaving stays hazard-free

    def test_failed_batch_marked_on_serve_track(self):
        reqs = synthetic_workload(8, rate=20000.0, seed=3)
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 5e-3, 7.5e-3),))
        pol = RetryPolicy(timeout=3e-4, backoff=1e-5, jitter=0.0, budget=1)
        _, sched = serve_run(reqs, faults=inj, retry=pol, retry_budget=8)
        assert any(b["failed"] for b in sched.batches)
        assert any(not b["failed"] for b in sched.batches)


class TestShedPolicy:
    def test_permanent_fault_sheds_everything(self):
        reqs = synthetic_workload(6, rate=20000.0, seed=3)
        inj = FaultInjector(SPEC, scheduled=(DeviceLoss(0, 0.0),))
        _, sched = serve_run(reqs, faults=inj)
        assert len(sched.completed) == 0
        assert sum(sched.retried.values()) == 0      # no point retrying
        assert sum(sched.retry_shed.values()) == len(reqs)
        assert accounted(sched) == len(reqs)

    def test_retry_budget_exhaustion_sheds(self):
        # a flap that never ends within the horizon: every retry fails
        # until the per-request budget runs out
        reqs = synthetic_workload(4, rate=20000.0, seed=3)
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 0.0, 10.0),))
        pol = RetryPolicy(timeout=2e-4, backoff=1e-5, jitter=0.0, budget=1)
        _, sched = serve_run(reqs, faults=inj, retry=pol, retry_budget=1)
        assert len(sched.completed) == 0
        assert sum(sched.retry_shed.values()) == len(reqs)
        assert accounted(sched) == len(reqs)

    def test_zero_retry_budget_sheds_on_first_failure(self):
        reqs = synthetic_workload(4, rate=20000.0, seed=3)
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 0.0, 10.0),))
        pol = RetryPolicy(timeout=2e-4, backoff=1e-5, jitter=0.0, budget=1)
        _, sched = serve_run(reqs, faults=inj, retry=pol, retry_budget=0)
        assert sum(sched.retried.values()) == 0
        assert sum(sched.retry_shed.values()) == len(reqs)


class TestReplanning:
    def test_comm_algorithm_replans_against_degraded_topology(self):
        reqs = synthetic_workload(2, rate=20000.0, seed=3)
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 0.0, 1.0),))
        cl = VirtualCluster(SPEC, execute=False, faults=inj)
        sched = ServeScheduler(cl, Batcher(PlanCache(SPEC), max_batch=8))
        q = AdmissionQueue()
        q.offer(reqs[0], 0.0)
        batch = sched.batcher.next_batch(q, 0.0)
        import numpy as np

        payload = (batch.plan.N * np.dtype(batch.plan.dtype).itemsize
                   / SPEC.num_devices)
        expect = choose_algorithm(inj.degraded_spec(0.5), "alltoall", payload)
        assert sched._comm_algorithm(batch, 0.5) == expect
        # outside the window the cached (healthy) choice is kept
        assert sched._comm_algorithm(batch, 2.0) == batch.comm_algorithm


class TestDeterminism:
    def test_zero_fault_twin_ledger_equality(self):
        reqs = synthetic_workload(8, rate=20000.0, seed=3)
        cl_plain, _ = serve_run(reqs)
        cl_zero, _ = serve_run(reqs, faults=FaultInjector(SPEC))
        assert cl_plain.ledger.fingerprint() == cl_zero.ledger.fingerprint()

    def test_seeded_chaos_replay_is_bit_identical(self):
        reqs = synthetic_workload(8, rate=5000.0, seed=3)

        def chaos_run():
            inj = seeded_chaos(SPEC, seed=4, transient_rate=0.02,
                               stragglers=1, flaps=1)
            return serve_run(reqs, faults=inj)

        cl_a, sched_a = chaos_run()
        cl_b, _ = chaos_run()
        assert cl_a.ledger.fingerprint() == cl_b.ledger.fingerprint()
        assert accounted(sched_a) == len(reqs)
        cl_a.sanitize()


class TestReportAccounting:
    def test_fault_fields_populated(self):
        reqs = synthetic_workload(8, rate=20000.0, seed=3)
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 5e-3, 7.5e-3),))
        pol = RetryPolicy(timeout=3e-4, backoff=1e-5, jitter=0.0, budget=1)
        _, sched = serve_run(reqs, faults=inj, retry=pol, retry_budget=8)
        rep = summarize(sched)
        assert rep.fault_events == len(inj.events)
        assert rep.failed_batches == sched.failed_batches
        assert rep.retry_time > 0.0
        assert dict(rep.retried) == sched.retried
        out = rep.render()
        assert "faults" in out and "retries" in out

    def test_fault_free_report_is_quiet(self):
        reqs = synthetic_workload(4, rate=20000.0, seed=3)
        _, sched = serve_run(reqs)
        rep = summarize(sched)
        assert rep.fault_events == 0 and rep.retry_time == 0.0
        assert "faults" not in rep.render()
