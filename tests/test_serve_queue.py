"""The admission queue: backpressure, priority, and compatible drains."""

from __future__ import annotations

import pytest

from repro.serve import AdmissionQueue, TransformRequest
from repro.util.validation import ParameterError


def req(rid, N=256, deadline="batch", arrival=0.0):
    return TransformRequest(rid=rid, N=N, deadline=deadline, arrival=arrival)


class TestAdmission:
    def test_admits_until_full_then_sheds(self):
        q = AdmissionQueue(capacity=2)
        assert q.offer(req(0), 0.0) and q.offer(req(1), 0.1)
        assert not q.offer(req(2), 0.2)
        assert len(q) == 2
        assert q.shed["batch"] == 1 and q.admitted["batch"] == 2

    def test_shed_counted_per_class(self):
        q = AdmissionQueue(capacity=1)
        q.offer(req(0), 0.0)
        q.offer(req(1, deadline="interactive"), 0.1)
        assert q.shed == {"interactive": 1, "batch": 0}

    def test_depth_samples_track_changes(self):
        q = AdmissionQueue(capacity=4)
        q.offer(req(0), 0.5)
        q.offer(req(1), 0.7)
        q.take(1.0, lambda r: True, 2)
        assert q.depth_samples == [(0.0, 0), (0.5, 1), (0.7, 2), (1.0, 0)]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ParameterError):
            AdmissionQueue(capacity=0)


class TestPriority:
    def test_interactive_ahead_of_batch(self):
        q = AdmissionQueue()
        q.offer(req(0, deadline="batch"), 0.0)
        q.offer(req(1, deadline="interactive"), 0.1)
        assert q.head().rid == 1

    def test_fifo_within_class(self):
        q = AdmissionQueue()
        for i in range(3):
            q.offer(req(i), 0.0)
        assert q.head().rid == 0


class TestTake:
    def test_includes_head_and_respects_limit(self):
        q = AdmissionQueue()
        for i in range(5):
            q.offer(req(i), 0.0)
        got = q.take(1.0, lambda r: True, 3)
        assert [r.rid for r in got] == [0, 1, 2]
        assert len(q) == 2

    def test_filters_compatible(self):
        q = AdmissionQueue()
        q.offer(req(0, N=256), 0.0)
        q.offer(req(1, N=512), 0.0)
        q.offer(req(2, N=256), 0.0)
        got = q.take(1.0, lambda r: r.N == 256, 8)
        assert [r.rid for r in got] == [0, 2]
        assert q.head().rid == 1

    def test_empty_queue(self):
        q = AdmissionQueue()
        assert q.head() is None
        assert q.take(0.0, lambda r: True, 4) == []

    def test_rejects_bad_limit(self):
        q = AdmissionQueue()
        q.offer(req(0), 0.0)
        with pytest.raises(ParameterError):
            q.take(0.0, lambda r: True, 0)


class TestReadmission:
    """Regression: a request re-offered (batch-failure retry) must get a
    fresh admission token instead of corrupting a sibling admission."""

    def test_same_request_admitted_twice_drains_twice(self):
        q = AdmissionQueue()
        r = req(7)
        assert q.offer(r, 0.0) and q.offer(r, 1.0)
        assert len(q) == 2
        got = q.take(2.0, lambda x: True, 8)
        assert [x.rid for x in got] == [7, 7]
        assert len(q) == 0

    def test_duplicate_rid_take_removes_only_taken_admission(self):
        q = AdmissionQueue()
        r = req(7)
        q.offer(r, 0.0)
        q.offer(r, 1.0)
        got = q.take(2.0, lambda x: True, 1)
        assert [x.rid for x in got] == [7]
        # the second admission is still queued, not collaterally dropped
        assert len(q) == 1
        assert q.head().rid == 7

    def test_reoffered_request_queues_behind_its_class(self):
        q = AdmissionQueue()
        r = req(3)
        q.offer(r, 0.0)
        q.offer(req(4), 0.1)
        q.take(0.2, lambda x: True, 1)       # serves rid 3
        q.offer(r, 0.3)                      # retry re-admission
        assert [x.rid for x in q.take(0.4, lambda x: True, 8)] == [4, 3]


class TestShedDepthSamples:
    def test_shed_arrival_records_depth_sample(self):
        """Backpressure instants are visible: a shed arrival samples the
        depth counter pinned at capacity."""
        q = AdmissionQueue(capacity=2)
        q.offer(req(0), 0.1)
        q.offer(req(1), 0.2)
        assert not q.offer(req(2), 0.3)
        assert q.depth_samples == [(0.0, 0), (0.1, 1), (0.2, 2), (0.3, 2)]
