"""`repro top`: the dashboard renderer and the replay acceptance tests.

Two of this PR's acceptance criteria live here:

- two identically seeded chaos runs export bit-identical serve-run
  documents, so ``repro top --replay`` renders bit-identically;
- the serve-run document's histogram quantiles agree with the
  report's exact nearest-rank percentiles within one bucket's width.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import seeded_chaos
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.obs.telemetry import BUCKET_GROWTH
from repro.obs.top import _split_doc, render_dashboard
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    serve_run_doc,
    synthetic_workload,
)
from repro.util.validation import ParameterError

N = 1 << 12
SPEC = p100_nvlink_node(2)


def run_serve(max_inflight=2, requests=12, faults=None, fault_seed=None):
    """One served trace; optionally under seeded fault injection."""
    inj = faults
    if inj is None and fault_seed is not None:
        inj = seeded_chaos(SPEC, seed=fault_seed, transient_rate=0.02,
                           flaps=1, stragglers=1, degrades=1, horizon=5e-3)
    cl = VirtualCluster(SPEC, execute=False, faults=inj)
    sched = ServeScheduler(cl, Batcher(PlanCache(SPEC, autotune=False),
                                       max_batch=4),
                           queue=AdmissionQueue(capacity=64),
                           max_inflight=max_inflight)
    sched.run(synthetic_workload(requests, rate=1e5, sizes={N: 1.0}, seed=3))
    return sched


@pytest.fixture(scope="module")
def doc():
    return serve_run_doc(run_serve())


class TestRender:
    def test_dashboard_sections_from_live_run(self, doc):
        text = render_dashboard(doc)
        for token in ("repro top", "queue depth", "latency", "plan cache",
                      "comm", "slo burn rate", "completed 12"):
            assert token in text
        # per-class latency table populated from the histograms
        assert "interactive" in text or "batch" in text
        assert "p50" in text and "p99" in text

    def test_render_is_pure_and_survives_json_roundtrip(self, doc):
        text = render_dashboard(doc)
        assert render_dashboard(json.loads(json.dumps(doc))) == text

    def test_bare_snapshot_renders(self, doc):
        text = render_dashboard(doc["telemetry"])
        assert "repro top" in text and "queue depth" in text
        assert "completed" not in text  # no report in a bare snapshot

    def test_split_doc_rejects_garbage(self):
        with pytest.raises(ParameterError):
            _split_doc([])
        with pytest.raises(ParameterError):
            _split_doc({"kind": "something-else"})
        with pytest.raises(ParameterError):
            _split_doc({"kind": "serve-run", "telemetry": None})


class TestReplayBitIdentity:
    def test_seeded_chaos_replays_export_identical_docs(self):
        """Acceptance: chaos determinism extends through telemetry —
        two identically seeded runs yield byte-identical serve-run
        JSON, hence bit-identical `repro top --replay` dashboards."""
        docs, texts = [], []
        for _ in range(2):
            d = serve_run_doc(run_serve(fault_seed=1234))
            docs.append(json.dumps(d, sort_keys=True))
            texts.append(render_dashboard(d))
        assert docs[0] == docs[1]
        assert texts[0] == texts[1]

    def test_different_seeds_diverge(self):
        a = serve_run_doc(run_serve(fault_seed=1))
        b = serve_run_doc(run_serve(fault_seed=2))
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)


class TestQuantileAgreement:
    def test_report_percentiles_within_bucket_of_histograms(self, doc):
        """Acceptance: the doc's exact nearest-rank report percentiles
        and its histogram quantiles agree within bucket resolution:
        exact <= hist <= exact * BUCKET_GROWTH."""
        hist = {
            r["labels"]["class"]: r["quantiles"]
            for r in doc["telemetry"]["series"]
            if r["name"] == "serve.request_latency"
        }
        assert hist  # the run completed requests
        for cls, pct in doc["report"]["latency_by_class"].items():
            if cls not in hist:
                continue
            for k in ("p50", "p95", "p99"):
                exact, got = pct[k], hist[cls][k]
                assert exact <= got * (1 + 1e-12), (cls, k)
                assert got <= exact * BUCKET_GROWTH * (1 + 1e-12), (cls, k)


class TestInterleavings:
    def test_snapshot_distinguishes_scheduler_interleavings(self):
        """The telemetry captures scheduling structure, not just
        totals: max_inflight=1 vs 2 produce different queue/latency
        series even over the identical workload."""
        d1 = serve_run_doc(run_serve(max_inflight=1))
        d2 = serve_run_doc(run_serve(max_inflight=2))
        assert d1["report"]["completed"] == d2["report"]["completed"]
        assert (json.dumps(d1["telemetry"], sort_keys=True)
                != json.dumps(d2["telemetry"], sort_keys=True))
        # both still render
        assert "repro top" in render_dashboard(d1)
        assert "repro top" in render_dashboard(d2)
