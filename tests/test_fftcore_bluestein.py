import numpy as np
import pytest

from repro.fftcore.bluestein import fft_bluestein


def _rand(n, rng):
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 12, 17, 31, 100, 127, 1000])
    def test_matches_numpy(self, n, rng):
        x = _rand(n, rng)
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-8)

    @pytest.mark.parametrize("n", [4, 64, 256])
    def test_pow2_agrees_too(self, n, rng):
        x = _rand(n, rng)
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-8)

    @pytest.mark.parametrize("n", [3, 30, 97])
    def test_inverse_roundtrip(self, n, rng):
        x = _rand(n, rng)
        y = fft_bluestein(fft_bluestein(x, sign=-1), sign=+1) / n
        np.testing.assert_allclose(y, x, atol=1e-8)

    def test_batched(self, rng):
        x = (rng.standard_normal((4, 30)) + 1j * rng.standard_normal((4, 30)))
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x, axis=-1), atol=1e-8)

    def test_rejects_bad_sign(self, rng):
        with pytest.raises(ValueError):
            fft_bluestein(_rand(5, rng), sign=2)

    def test_single_precision_dtype(self, rng):
        x = _rand(31, rng).astype(np.complex64)
        y = fft_bluestein(x)
        assert y.dtype == np.complex64

    def test_large_n_chirp_accuracy(self, rng):
        # The j^2 mod 2n reduction keeps the chirp exact at sizes where
        # naive j^2 would lose integer precision in double.
        n = 99991
        x = np.zeros(n, dtype=np.complex128)
        x[1] = 1.0
        got = fft_bluestein(x)
        k = np.arange(n)
        expected = np.exp(-2j * np.pi * k / n)
        assert np.abs(got - expected).max() < 1e-7

    def test_linearity(self, rng):
        x, y = _rand(21, rng), _rand(21, rng)
        np.testing.assert_allclose(
            fft_bluestein(x + 2j * y),
            fft_bluestein(x) + 2j * fft_bluestein(y),
            atol=1e-8,
        )
