import numpy as np
import pytest

from repro.nufft.barycentric import trig_barycentric_dense, trig_barycentric_fmm
from repro.nufft.nonuniform_fmm import NonuniformPeriodicFMM, cot_pi
from repro.nufft.transforms import (
    nudft1_direct,
    nudft2_direct,
    nufft1_adjoint,
    nufft2,
)
from repro.util.validation import ParameterError


class TestCotPi:
    def test_values(self):
        assert cot_pi(np.array([0.25]))[0] == pytest.approx(1.0)
        assert cot_pi(np.array([0.75]))[0] == pytest.approx(-1.0)

    def test_zero_maps_to_zero(self):
        assert cot_pi(np.array([0.0]))[0] == 0.0

    def test_antisymmetric(self, rng):
        x = rng.uniform(0.01, 0.49, 20)
        np.testing.assert_allclose(cot_pi(-x), -cot_pi(x), atol=1e-12)

    def test_periodic(self, rng):
        x = rng.uniform(0.01, 0.49, 20)
        np.testing.assert_allclose(cot_pi(x + 1.0), cot_pi(x), rtol=1e-9)


class TestNonuniformFMM:
    @pytest.mark.parametrize("L,B,Q", [(4, 2, 16), (5, 3, 16), (6, 4, 16), (4, 4, 16)])
    def test_matches_dense(self, L, B, Q, rng):
        src, tgt = rng.uniform(0, 1, 400), rng.uniform(0, 1, 300)
        fmm = NonuniformPeriodicFMM(src, tgt, L=L, B=B, Q=Q)
        w = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        got, ref = fmm.apply(w), fmm.apply_dense(w)
        assert np.linalg.norm(got - ref) / np.linalg.norm(ref) < 1e-12

    def test_accuracy_scales_with_q(self, rng):
        src, tgt = rng.uniform(0, 1, 300), rng.uniform(0, 1, 300)
        w = rng.standard_normal(300)
        errs = []
        for Q in (6, 10, 16):
            fmm = NonuniformPeriodicFMM(src, tgt, L=5, B=2, Q=Q)
            errs.append(
                np.linalg.norm(fmm.apply(w) - fmm.apply_dense(w))
                / np.linalg.norm(fmm.apply_dense(w))
            )
        assert errs[2] < 1e-3 * errs[0]

    def test_clustered_points(self, rng):
        """Severely nonuniform distributions (empty boxes) still work."""
        src = np.concatenate([rng.uniform(0.1, 0.12, 200), rng.uniform(0.8, 0.82, 200)])
        tgt = rng.uniform(0, 1, 100)
        fmm = NonuniformPeriodicFMM(src, tgt, L=6, B=3, Q=16)
        w = rng.standard_normal(400)
        got, ref = fmm.apply(w), fmm.apply_dense(w)
        assert np.linalg.norm(got - ref) / np.linalg.norm(ref) < 1e-11

    def test_coincident_point_skipped(self):
        src = np.array([0.3, 0.7])
        tgt = np.array([0.3, 0.5])
        fmm = NonuniformPeriodicFMM(src, tgt, L=2, B=2, Q=8)
        out = fmm.apply(np.array([1.0, 0.0]))
        # target 0.3 == source 0.3: self-pair contributes 0
        assert np.isfinite(out).all()

    def test_multiple_rhs(self, rng):
        src, tgt = rng.uniform(0, 1, 200), rng.uniform(0, 1, 150)
        fmm = NonuniformPeriodicFMM(src, tgt, L=4, B=2, Q=14)
        W = rng.standard_normal((200, 3))
        np.testing.assert_allclose(fmm.apply(W), fmm.apply_dense(W), atol=1e-9)

    def test_linearity(self, rng):
        src, tgt = rng.uniform(0, 1, 100), rng.uniform(0, 1, 100)
        fmm = NonuniformPeriodicFMM(src, tgt, L=4, B=2, Q=16)
        a, b = rng.standard_normal(100), rng.standard_normal(100)
        np.testing.assert_allclose(
            fmm.apply(a + 2 * b), fmm.apply(a) + 2 * fmm.apply(b), atol=1e-8
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            NonuniformPeriodicFMM(np.array([1.5]), np.array([0.5]))

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            NonuniformPeriodicFMM(np.array([]), np.array([0.5]))

    def test_rejects_wrong_weight_count(self, rng):
        fmm = NonuniformPeriodicFMM(rng.uniform(0, 1, 10), rng.uniform(0, 1, 10),
                                    L=2, B=2, Q=4)
        with pytest.raises(ParameterError):
            fmm.apply(np.zeros(5))

    def test_dense_oracle_refuses_large(self, rng):
        fmm = NonuniformPeriodicFMM(rng.uniform(0, 1, 5000), rng.uniform(0, 1, 5000),
                                    L=4, B=2, Q=4)
        with pytest.raises(ParameterError):
            fmm.apply_dense(np.zeros(5000))


class TestBarycentric:
    def test_interpolates_nodes(self, rng):
        n = 32
        f = rng.standard_normal(n)
        t = np.arange(n) / n
        np.testing.assert_allclose(trig_barycentric_dense(f, t), f, atol=1e-12)

    def test_exact_for_low_degree_trig(self, rng):
        """Exact for sum_{|k|<n/2} c_k e^{2 pi i k x}."""
        n = 64
        k = np.arange(-n // 4, n // 4)
        c = rng.standard_normal(k.size) + 1j * rng.standard_normal(k.size)
        t = np.arange(n) / n
        f = np.exp(2j * np.pi * np.outer(t, k)) @ c
        x = rng.uniform(0, 1, 50)
        exact = np.exp(2j * np.pi * np.outer(x, k)) @ c
        np.testing.assert_allclose(trig_barycentric_dense(f, x), exact, atol=1e-10)

    def test_fmm_matches_dense(self, rng):
        n = 256
        f = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = rng.uniform(0, 1, 300)
        np.testing.assert_allclose(
            trig_barycentric_fmm(f, x), trig_barycentric_dense(f, x), atol=1e-10
        )

    def test_rejects_odd_n(self):
        with pytest.raises(ParameterError):
            trig_barycentric_dense(np.zeros(7), np.array([0.1]))


class TestNufft2:
    @pytest.mark.parametrize("n,m", [(32, 50), (64, 100), (256, 400), (1024, 1500)])
    def test_matches_direct(self, n, m, rng):
        c = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = rng.uniform(0, 1, m)
        got, ref = nufft2(c, x), nudft2_direct(c, x)
        assert np.linalg.norm(got - ref) / np.linalg.norm(ref) < 1e-12

    def test_node_hits_exact(self, rng):
        n = 64
        c = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = np.arange(16) / 16.0
        np.testing.assert_allclose(nufft2(c, x), nudft2_direct(c, x), atol=1e-10)

    def test_uniform_points_reduce_to_fft(self, rng):
        """At x_j = j/n the type-2 NUDFT is an (shifted) inverse DFT."""
        n = 64
        c = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = np.arange(n) / n
        got = nufft2(c, x)
        ref = nudft2_direct(c, x)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_single_tone(self):
        n = 32
        c = np.zeros(n, dtype=complex)
        c[n // 2 + 3] = 1.0  # k = 3
        x = np.array([0.1, 0.37, 0.9])
        np.testing.assert_allclose(nufft2(c, x), np.exp(2j * np.pi * 3 * x), atol=1e-12)

    def test_rejects_odd_n(self):
        with pytest.raises(ParameterError):
            nufft2(np.zeros(7, dtype=complex), np.array([0.1]))

    def test_rejects_small_sigma(self):
        with pytest.raises(ParameterError):
            nufft2(np.zeros(8, dtype=complex), np.array([0.1]), sigma=1.1)


class TestNufft1Adjoint:
    @pytest.mark.parametrize("n,m", [(32, 60), (64, 100), (256, 300)])
    def test_matches_direct(self, n, m, rng):
        w = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        x = rng.uniform(0, 1, m)
        got, ref = nufft1_adjoint(w, x, n), nudft1_direct(w, x, n)
        assert np.linalg.norm(got - ref) / np.linalg.norm(ref) < 1e-12

    def test_adjoint_identity(self, rng):
        """<nufft2(c), w> == <c, nufft1_adjoint(conj pairing)>."""
        n, m = 64, 80
        c = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        w = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        x = rng.uniform(0, 1, m)
        lhs = np.vdot(w, nufft2(c, x))
        rhs = np.vdot(nufft1_adjoint(w, x, n), c)
        assert abs(lhs - rhs) / abs(lhs) < 1e-11

    def test_with_node_hits(self, rng):
        n, m = 32, 40
        x = np.concatenate([rng.uniform(0, 1, m - 4), np.array([0.0, 0.25, 0.5, 0.75])])
        w = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        got, ref = nufft1_adjoint(w, x, n), nudft1_direct(w, x, n)
        assert np.linalg.norm(got - ref) / np.linalg.norm(ref) < 1e-11

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            nufft1_adjoint(np.zeros(3), np.zeros(4), 8)
