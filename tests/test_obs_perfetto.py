"""Tests for the Perfetto/Chrome trace exporter, incl. the golden file."""

import json
from pathlib import Path

import pytest

from repro.machine.cluster import VirtualCluster
from repro.machine.ledger import Ledger, OpRecord
from repro.machine.spec import preset
from repro.obs.perfetto import build_trace, save_trace, validate_trace

GOLDEN = Path(__file__).parent / "golden" / "tiny_trace.json"


def tiny_ledger() -> Ledger:
    """A hand-built four-op run exercising every exporter feature:
    compute op, p2p comm (mirror + flow), wait edge, and a collective."""
    led = Ledger()
    led.append(OpRecord(device=0, stream="compute", kind="gemm", name="S2M",
                        start=0.0, duration=1e-3, flops=2e6, mops=1e5,
                        region="fmm/S2M", writes=("M",)))
    u1 = led.append(OpRecord(device=0, stream="comm", kind="comm",
                             name="COMM-S", start=0.5e-3, duration=1e-3,
                             comm_bytes=4096.0, peer=1, region="fmm/halo-S",
                             reads=("S",), writes=("halo",)))
    led.append(OpRecord(device=1, stream="compute", kind="custom", name="S2T",
                        start=1.5e-3, duration=0.5e-3, flops=1e6, mops=2e5,
                        waits=(u1,), region="fmm/S2T",
                        reads=("S", "halo"), writes=("T",)))
    for g in (0, 1):
        led.append(OpRecord(device=g, stream="comm", kind="comm",
                            name="COMM-MB", start=2.0e-3, duration=0.5e-3,
                            comm_bytes=1024.0, peer=-1, region="fmm/base",
                            reads=("MB",), writes=("MBg",)))
    return led


class TestGolden:
    def test_matches_checked_in_golden(self):
        """The exporter's full output for the tiny ledger is pinned.

        Regenerate deliberately after an intentional format change::

            PYTHONPATH=src python -c "
            import json, tests.test_obs_perfetto as t
            t.GOLDEN.write_text(json.dumps(
                t.build_trace(t.tiny_ledger()), indent=1))"
        """
        assert GOLDEN.exists(), "golden file missing"
        expected = json.loads(GOLDEN.read_text())
        assert build_trace(tiny_ledger()) == expected

    def test_golden_is_valid(self):
        assert validate_trace(json.loads(GOLDEN.read_text())) == []


class TestBuildTrace:
    def test_document_shape(self):
        doc = build_trace(tiny_ledger())
        assert doc["displayTimeUnit"] == "ms"
        assert validate_trace(doc) == []

    def test_sendrecv_mirrored_on_receiver(self):
        doc = build_trace(tiny_ledger())
        xs = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and e["name"] == "COMM-S"]
        assert len(xs) == 2
        pids = {e["pid"] for e in xs}
        assert pids == {0, 1}
        rx = next(e for e in xs if e["pid"] == 1)
        assert rx["args"]["rx_of"] == 0

    def test_wait_and_sendrecv_flows(self):
        doc = build_trace(tiny_ledger())
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        names = {e["name"] for e in flows}
        assert {"wait", "sendrecv", "collective"} <= names
        # each flow id appears exactly twice (one s, one f)
        by_id = {}
        for e in flows:
            by_id.setdefault(e["id"], []).append(e["ph"])
        assert all(sorted(v) == ["f", "s"] for v in by_id.values())

    def test_track_metadata_names_engines(self):
        doc = build_trace(tiny_ledger(), preset("2xP100"))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        proc = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert any("P100" in p for p in proc)
        threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert {"compute", "comm.tx", "comm.rx"} <= threads

    def test_counter_tracks_step_back_to_zero(self):
        doc = build_trace(tiny_ledger())
        for name in ("GFLOP/s", "mem GB/s", "in-flight comm bytes"):
            samples = [e for e in doc["traceEvents"]
                       if e["ph"] == "C" and e["name"] == name]
            assert samples, name
            assert samples[-1]["args"]["value"] == 0.0
            assert any(e["args"]["value"] > 0 for e in samples)

    def test_region_in_args(self):
        doc = build_trace(tiny_ledger())
        s2m = next(e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["name"] == "S2M")
        assert s2m["args"]["region"] == "fmm/S2M"

    def test_real_run_exports_valid(self, tmp_path):
        from repro.dfft.fft1d import Distributed1DFFT

        spec = preset("2xP100")
        cl = VirtualCluster(spec, execute=False)
        Distributed1DFFT(1 << 18, cl).run()
        out = save_trace(tmp_path / "t.json", cl.ledger, spec)
        doc = json.loads(out.read_text())
        assert validate_trace(doc) == []
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # one X per op plus one mirror per p2p transfer
        p2p = sum(1 for r in cl.ledger if r.kind == "comm" and r.peer >= 0)
        assert len(xs) == len(cl.ledger) + p2p


class TestValidateTrace:
    def test_rejects_non_document(self):
        assert validate_trace([1, 2]) != []
        assert validate_trace({"events": []}) != []

    def test_flags_negative_duration(self):
        doc = build_trace(tiny_ledger())
        doc["traceEvents"].append({
            "name": "bad", "cat": "x", "ph": "X", "pid": 0, "tid": 0,
            "ts": 0.0, "dur": -1.0, "args": {},
        })
        assert any("negative" in p for p in validate_trace(doc))

    def test_flags_unpaired_flow(self):
        doc = build_trace(tiny_ledger())
        doc["traceEvents"].append({
            "name": "dangling", "cat": "dep", "ph": "s", "id": 999999,
            "pid": 0, "tid": 0, "ts": 0.0,
        })
        assert any("flow 999999" in p for p in validate_trace(doc))

    def test_flags_unknown_phase(self):
        assert any(
            "phase" in p
            for p in validate_trace({"traceEvents": [{"name": "x", "ph": "Z",
                                                      "pid": 0}]})
        )

    def test_flags_non_numeric_counter(self):
        doc = {"traceEvents": [{"name": "c", "ph": "C", "pid": 0,
                                "ts": 0.0, "args": {"value": "fast"}}]}
        assert any("numeric" in p for p in validate_trace(doc))
