import pytest

from repro.util.bitmath import (
    ceil_div,
    ilog2,
    is_pow2,
    next_pow2,
    pow2_divisors,
    split_pow2,
)


class TestIsPow2:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1 << 20, 1 << 40])
    def test_powers(self, n):
        assert is_pow2(n)

    @pytest.mark.parametrize("n", [0, -1, -4, 3, 5, 6, 7, 12, 1000, (1 << 20) + 1])
    def test_non_powers(self, n):
        assert not is_pow2(n)

    def test_non_int(self):
        assert not is_pow2(2.0)


class TestIlog2:
    @pytest.mark.parametrize("k", range(0, 40, 3))
    def test_roundtrip(self, k):
        assert ilog2(1 << k) == k

    @pytest.mark.parametrize("n", [0, 3, 6, -8])
    def test_rejects(self, n):
        with pytest.raises(ValueError):
            ilog2(n)


class TestNextPow2:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (1023, 1024), (1025, 2048)]
    )
    def test_values(self, n, expected):
        assert next_pow2(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_pow2(0)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 3)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestPow2Divisors:
    def test_of_power(self):
        assert pow2_divisors(16) == [1, 2, 4, 8, 16]

    def test_bounds(self):
        assert pow2_divisors(64, low=4, high=16) == [4, 8, 16]

    def test_of_mixed(self):
        assert pow2_divisors(24) == [1, 2, 4, 8]

    def test_rejects(self):
        with pytest.raises(ValueError):
            pow2_divisors(0)


class TestSplitPow2:
    @pytest.mark.parametrize(
        "n,expected", [(1, (1, 0)), (8, (1, 3)), (24, (3, 3)), (7, (7, 0))]
    )
    def test_values(self, n, expected):
        assert split_pow2(n) == expected

    def test_reconstruct(self):
        for n in range(1, 200):
            odd, k = split_pow2(n)
            assert odd % 2 == 1
            assert odd * (1 << k) == n
