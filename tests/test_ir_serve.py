"""Serve-layer graph replay: warm batches replay, cold semantics survive.

The scheduler's replay path must be observationally equivalent to the
interpreted path — same completions, same record timings, same hazards
(none) — with only the designed difference: warm batches' buffers live
in the reusable slot namespace (``serve.r<slot>``) instead of their
batch namespace (``serve.b<bid>``).
"""

from __future__ import annotations

import re

from repro.faults import FaultInjector, LinkFlap
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.serve import (
    AdmissionQueue,
    Batcher,
    PlanCache,
    ServeScheduler,
    synthetic_workload,
)

SPEC = p100_nvlink_node(2)
_SLOT = re.compile(r"serve\.[br]\d+")


def _run(requests, replay=True, capacity=64, faults=None,
         build_operators=False, compute_outputs=False):
    cache = PlanCache(SPEC, autotune=False, capacity=capacity,
                      build_operators=build_operators)
    cl = VirtualCluster(SPEC, execute=False, faults=faults)
    sched = ServeScheduler(
        cl, Batcher(cache, max_batch=4),
        queue=AdmissionQueue(capacity=256),
        max_inflight=2, replay=replay,
        compute_outputs=compute_outputs,
    )
    sched.run(requests)
    return cl, sched


def _normalized(cl):
    """Ledger records with batch/slot buffer namespaces collapsed."""

    def nb(bufs):
        return tuple((g, _SLOT.sub("serve.X", b)) for g, b in bufs)

    return [
        (r.device, r.stream, r.kind, r.name, r.start, r.duration, r.flops,
         r.mops, r.comm_bytes, r.peer, r.uid, nb(r.reads), nb(r.writes),
         r.waits, r.region)
        for r in cl.ledger
    ]


class TestWarmBatchesReplay:
    def test_warm_batches_replay_and_counters_agree(self):
        reqs = synthetic_workload(10, rate=1e5, seed=5, sizes={1 << 12: 1.0})
        cl, sched = _run(reqs)
        cache = sched.batcher.cache
        assert sched.replayed_batches > 0
        assert sched.replayed_batches == cache.replays
        assert cache.graph_hits == sched.replayed_batches
        # one miss (and one stored graph) per batch configuration
        assert cache.graph_misses == len(sched.batches) - sched.replayed_batches
        assert sum(1 for b in sched.batches if b["replayed"]) == (
            sched.replayed_batches)

    def test_replay_run_equals_interpreted_run(self):
        reqs = synthetic_workload(10, rate=1e5, seed=5, sizes={1 << 12: 1.0})
        cl_r, sched_r = _run(reqs, replay=True)
        cl_i, sched_i = _run(reqs, replay=False)
        assert sched_i.replayed_batches == 0
        assert sched_r.replayed_batches > 0
        # identical completions: same requests finish at the same times
        done_r = [(c.request.rid, c.finish) for c in sched_r.completed]
        done_i = [(c.request.rid, c.finish) for c in sched_i.completed]
        assert done_r == done_i
        # identical records modulo the slot renaming
        assert _normalized(cl_r) == _normalized(cl_i)
        assert cl_r.ledger.fingerprint() != cl_i.ledger.fingerprint()

    def test_interleaved_replay_ledger_is_hazard_free(self):
        reqs = synthetic_workload(12, rate=1e5, seed=7,
                                  sizes={1 << 12: 1.0, 1 << 13: 1.0})
        cl, sched = _run(reqs)
        assert sched.replayed_batches > 0
        cl.sanitize()

    def test_outputs_unchanged_by_replay(self):
        reqs = synthetic_workload(8, rate=1e5, seed=9,
                                  sizes={1 << 12: 1.0}, with_payloads=True)
        _, on = _run(reqs, replay=True, build_operators=True,
                     compute_outputs=True)
        _, off = _run(reqs, replay=False, build_operators=True,
                      compute_outputs=True)
        assert on.replayed_batches > 0
        assert set(on.outputs) == set(off.outputs)
        for rid, y in on.outputs.items():
            assert y.tobytes() == off.outputs[rid].tobytes()


class TestReplayDisables:
    def test_zero_capacity_cache_disables_replay(self):
        reqs = synthetic_workload(8, rate=1e5, seed=5, sizes={1 << 12: 1.0})
        cl, sched = _run(reqs, capacity=0)
        assert sched.replayed_batches == 0
        assert sched.batcher.cache.graph_misses == 0  # tier never queried

    def test_fault_injection_disables_replay(self):
        inj = FaultInjector(SPEC, scheduled=(LinkFlap(0, 1, 1e3, 1e3 + 1),))
        reqs = synthetic_workload(8, rate=1e5, seed=5, sizes={1 << 12: 1.0})
        cl, sched = _run(reqs, faults=inj)
        assert sched.replayed_batches == 0

    def test_replay_false_disables_graph_tier(self):
        reqs = synthetic_workload(8, rate=1e5, seed=5, sizes={1 << 12: 1.0})
        _, sched = _run(reqs, replay=False)
        assert sched.replayed_batches == 0
        assert sched.batcher.cache.graph_hits == 0


class TestGraphTierLru:
    def test_graph_store_and_hit(self):
        cache = PlanCache(SPEC, autotune=False, capacity=2)
        cache.put_graph(("a",), "GA")
        cache.put_graph(("b",), "GB")
        assert cache.graph_for(("a",)) == "GA"
        assert cache.graph_hits == 1 and cache.graph_misses == 0
        assert cache.graph_for(("c",)) is None
        assert cache.graph_misses == 1

    def test_lru_eviction_bounded_by_capacity(self):
        cache = PlanCache(SPEC, autotune=False, capacity=2)
        cache.put_graph(("a",), "GA")
        cache.put_graph(("b",), "GB")
        cache.put_graph(("c",), "GC")  # evicts a
        assert cache.graph_for(("a",)) is None
        assert cache.graph_for(("b",)) == "GB"

    def test_zero_capacity_stores_nothing(self):
        cache = PlanCache(SPEC, autotune=False, capacity=0)
        cache.put_graph(("a",), "GA")
        assert cache.graph_for(("a",)) is None
