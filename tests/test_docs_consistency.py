"""Documentation/product consistency checks.

Keeps README/DESIGN/EXPERIMENTS honest: every referenced artifact
exists, every example is listed and runnable-looking, every public
module carries a docstring, and every benchmark both emits an artifact
and asserts something.
"""

import ast
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def _py_files(sub: str) -> list[Path]:
    return sorted((ROOT / sub).rglob("*.py"))


class TestDocsReferenceRealFiles:
    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", readme):
            where = "benchmarks" if name.startswith("bench_") else "examples"
            assert (ROOT / where / name).exists(), name

    def test_design_bench_targets_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for name in re.findall(r"`benchmarks/(bench_\w+\.py)`", design):
            assert (ROOT / "benchmarks" / name).exists(), name
        for name in re.findall(r"\| `(bench_\w+\.py)`", design):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_experiments_bench_targets_exist(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for name in re.findall(r"`(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_algorithm_doc_module_refs_exist(self):
        text = (ROOT / "docs" / "ALGORITHM.md").read_text()
        for ref in re.findall(r"`(\w+(?:/\w+)+\.py)`", text):
            assert (ROOT / "src" / "repro" / ref).exists() or (
                ROOT / "tests" / ref.split("/")[-1]
            ).exists(), ref

    def test_algorithm_doc_test_refs_exist(self):
        text = (ROOT / "docs" / "ALGORITHM.md").read_text()
        for name in re.findall(r"`(test_\w+\.py)", text):
            assert (ROOT / "tests" / name).exists(), name

    def test_required_top_level_docs(self):
        for f in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"):
            assert (ROOT / f).exists(), f


class TestSourceHygiene:
    def test_every_module_has_docstring(self):
        missing = []
        for path in _py_files("src"):
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None:
                missing.append(str(path.relative_to(ROOT)))
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_documented(self):
        missing = []
        for path in _py_files("src"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                    if ast.get_docstring(node) is None:
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, f"classes without docstrings: {missing}"

    def test_every_public_function_documented(self):
        missing = []
        for path in _py_files("src"):
            tree = ast.parse(path.read_text())
            for node in tree.body:  # top-level functions only
                if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
                    if ast.get_docstring(node) is None:
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, f"functions without docstrings: {missing}"

    def test_no_print_in_library_code(self):
        """The library communicates through return values; only the CLI,
        bench harness, and __main__ print."""
        allowed = {"cli.py", "__main__.py", "figures.py"}
        offenders = []
        for path in _py_files("src"):
            if path.name in allowed:
                continue
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "print"):
                    offenders.append(f"{path.name}:{node.lineno}")
        assert not offenders, f"print() in library code: {offenders}"


class TestBenchmarkShape:
    def test_every_bench_has_docstring_and_assert(self):
        for path in _py_files("benchmarks"):
            text = path.read_text()
            tree = ast.parse(text)
            assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
            assert "assert" in text, f"{path.name} asserts nothing"

    def test_every_bench_uses_benchmark_fixture(self):
        for path in _py_files("benchmarks"):
            assert "benchmark" in path.read_text(), path.name

    def test_examples_have_main_guard(self):
        for path in _py_files("examples"):
            text = path.read_text()
            assert '__name__ == "__main__"' in text, path.name
            assert ast.get_docstring(ast.parse(text)), f"{path.name} lacks a docstring"
