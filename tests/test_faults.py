"""Fault injection: validation, determinism, scales, degraded topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    DeviceLoss,
    FaultEvent,
    FaultInjector,
    LinkDegrade,
    LinkFlap,
    Straggler,
    seeded_chaos,
)
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node, preset
from repro.util.validation import ParameterError


def spec4():
    return p100_nvlink_node(4)


class TestValidation:
    def test_bad_windows(self):
        with pytest.raises(ParameterError):
            LinkFlap(0, 1, 2.0, 1.0)
        with pytest.raises(ParameterError):
            Straggler(0, -1.0, 1.0)

    def test_bad_scales(self):
        with pytest.raises(ParameterError):
            LinkDegrade(0, 1, 0.0, 1.0, bandwidth_scale=0.0)
        with pytest.raises(ParameterError):
            LinkDegrade(0, 1, 0.0, 1.0, bandwidth_scale=1.5)
        with pytest.raises(ParameterError):
            Straggler(0, 0.0, 1.0, slowdown=0.5)

    def test_bad_device_reference(self):
        with pytest.raises(ParameterError):
            FaultInjector(spec4(), scheduled=(Straggler(9, 0.0, 1.0),))
        with pytest.raises(ParameterError):
            FaultInjector(spec4(), scheduled=(LinkFlap(0, 0, 0.0, 1.0),))

    def test_bad_transient_rate(self):
        with pytest.raises(ParameterError):
            FaultInjector(spec4(), transient_rate=1.0)
        with pytest.raises(ParameterError):
            FaultInjector(spec4(), transient_rate=-0.1)

    def test_unknown_scheduled_fault(self):
        with pytest.raises(ParameterError):
            FaultInjector(spec4(), scheduled=("oops",))

    def test_fault_event_validates_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="gremlin")


class TestScheduledScales:
    def test_straggler_scales_compute_inside_window(self):
        inj = FaultInjector(spec4(), scheduled=(
            Straggler(1, 1.0, 2.0, slowdown=3.0),))
        assert inj.compute_scale(1, 1.5) == pytest.approx(3.0)
        assert inj.compute_scale(1, 2.0) == 1.0     # window is [start, end)
        assert inj.compute_scale(0, 1.5) == 1.0

    def test_straggler_scales_comm_at_either_endpoint(self):
        inj = FaultInjector(spec4(), scheduled=(
            Straggler(1, 0.0, 1.0, slowdown=2.0),))
        assert inj.comm_scale(1, 2, 0.5) == pytest.approx(2.0)
        assert inj.comm_scale(3, 1, 0.5) == pytest.approx(2.0)
        assert inj.comm_scale(2, 3, 0.5) == 1.0

    def test_degrade_scales_only_its_link(self):
        inj = FaultInjector(spec4(), scheduled=(
            LinkDegrade(0, 1, 0.0, 1.0, bandwidth_scale=0.25),))
        assert inj.comm_scale(0, 1, 0.5) == pytest.approx(4.0)
        assert inj.comm_scale(1, 0, 0.5) == pytest.approx(4.0)
        assert inj.comm_scale(0, 2, 0.5) == 1.0

    def test_collective_scale_takes_worst(self):
        inj = FaultInjector(spec4(), scheduled=(
            Straggler(0, 0.0, 1.0, slowdown=2.0),
            LinkDegrade(1, 2, 0.0, 1.0, bandwidth_scale=0.2),
        ))
        assert inj.collective_scale(0.5) == pytest.approx(5.0)
        assert inj.collective_scale(2.0) == 1.0

    def test_scheduled_faults_stamped_up_front(self):
        inj = FaultInjector(spec4(), scheduled=(
            Straggler(1, 1.0, 2.0), LinkFlap(0, 1, 0.5, 0.6)))
        assert [e.kind for e in inj.events] == ["link_flap", "straggler"]
        assert all(isinstance(e, FaultEvent) for e in inj.events)


class TestOutcomes:
    def test_flap_fails_messages_on_its_link(self):
        inj = FaultInjector(spec4(), scheduled=(LinkFlap(0, 1, 1.0, 2.0),))
        assert inj.message_outcome(0, 1, "m", 1.5) == "transient"
        assert inj.message_outcome(1, 0, "m", 1.5) == "transient"
        assert inj.message_outcome(0, 2, "m", 1.5) == "ok"
        assert inj.message_outcome(0, 1, "m", 2.5) == "ok"

    def test_flap_fails_collectives(self):
        inj = FaultInjector(spec4(), scheduled=(LinkFlap(0, 1, 1.0, 2.0),))
        assert inj.collective_outcome("a2a", 1.5) == "transient"
        assert inj.collective_outcome("a2a", 0.5) == "ok"

    def test_device_loss_is_permanent(self):
        inj = FaultInjector(spec4(), scheduled=(DeviceLoss(2, 1.0),))
        assert inj.message_outcome(2, 3, "m", 0.5) == "ok"
        assert inj.message_outcome(2, 3, "m", 1.5) == "lost"
        assert inj.message_outcome(3, 2, "m", 99.0) == "lost"
        assert inj.message_outcome(0, 1, "m", 99.0) == "ok"
        assert inj.collective_outcome("a2a", 1.5) == "lost"

    def test_transients_stamp_fault_events(self):
        inj = FaultInjector(spec4(), seed=0, transient_rate=0.5)
        for i in range(64):
            inj.message_outcome(0, 1, "m", float(i))
        assert inj.transient_count > 0
        transients = [e for e in inj.events if e.kind == "transient"]
        assert len(transients) == inj.transient_count

    def test_zero_rate_never_draws(self):
        inj = FaultInjector(spec4())
        for i in range(32):
            assert inj.message_outcome(0, 1, "m", float(i)) == "ok"
        assert inj.transient_count == 0 and inj.events == []


class TestDeterminism:
    def _outcomes(self, inj, n=128):
        return [inj.message_outcome(0, 1, "m", float(i)) for i in range(n)]

    def test_same_seed_same_draws(self):
        a = FaultInjector(spec4(), seed=3, transient_rate=0.3)
        b = FaultInjector(spec4(), seed=3, transient_rate=0.3)
        assert self._outcomes(a) == self._outcomes(b)

    def test_different_seed_different_draws(self):
        a = FaultInjector(spec4(), seed=3, transient_rate=0.3)
        b = FaultInjector(spec4(), seed=4, transient_rate=0.3)
        assert self._outcomes(a) != self._outcomes(b)

    def test_reset_rewinds_rng_and_events(self):
        inj = FaultInjector(spec4(), seed=3, transient_rate=0.3,
                            scheduled=(Straggler(0, 0.0, 1.0),))
        first = self._outcomes(inj)
        inj.reset()
        assert [e.kind for e in inj.events] == ["straggler"]
        assert inj.transient_count == 0
        assert self._outcomes(inj) == first


class TestDegradedSpec:
    def test_flap_removes_edge(self):
        inj = FaultInjector(spec4(), scheduled=(LinkFlap(0, 1, 1.0, 2.0),))
        assert not inj.degraded_spec(1.5).graph.has_edge(0, 1)
        assert inj.degraded_spec(2.5).graph.has_edge(0, 1)
        # the healthy spec is never mutated
        assert inj.spec.graph.has_edge(0, 1)

    def test_degrade_rescales_link(self):
        s = spec4()
        inj = FaultInjector(s, scheduled=(
            LinkDegrade(0, 1, 1.0, 2.0, bandwidth_scale=0.25),))
        healthy = s.graph.edges[0, 1]["link"].bandwidth
        degraded = inj.degraded_spec(1.5).graph.edges[0, 1]["link"].bandwidth
        assert degraded == pytest.approx(0.25 * healthy)

    def test_loss_isolates_device(self):
        inj = FaultInjector(spec4(), scheduled=(DeviceLoss(2, 1.0),))
        g = inj.degraded_spec(1.5).graph
        assert list(g.neighbors(2)) == []

    def test_active_tracks_windows(self):
        inj = FaultInjector(spec4(), scheduled=(Straggler(0, 1.0, 2.0),))
        assert not inj.active(0.5)
        assert inj.active(1.5)
        assert not inj.active(2.5)


class TestSeededChaos:
    def test_pure_function_of_arguments(self):
        s = preset("8xP100")
        a = seeded_chaos(s, seed=5, flaps=2, stragglers=2, degrades=1)
        b = seeded_chaos(s, seed=5, flaps=2, stragglers=2, degrades=1)
        assert a.events == b.events
        assert seeded_chaos(s, seed=6, flaps=2, stragglers=2).events != a.events

    def test_counts_respected(self):
        inj = seeded_chaos(preset("8xP100"), flaps=2, stragglers=3, degrades=1)
        assert len(inj.flaps) == 2
        assert len(inj.stragglers) == 3
        assert len(inj.degrades) == 1

    def test_bad_horizon(self):
        with pytest.raises(ParameterError):
            seeded_chaos(spec4(), horizon=0.0)


class TestMachineHooks:
    def test_straggler_stretches_kernel(self):
        spec = spec4()
        base = VirtualCluster(spec, execute=False)
        e0 = base.launch(0, "k", "gemm", 1e9, 1e6, np.float64)
        inj = FaultInjector(spec, scheduled=(
            Straggler(0, 0.0, 1.0, slowdown=3.0),))
        cl = VirtualCluster(spec, execute=False, faults=inj)
        e1 = cl.launch(0, "k", "gemm", 1e9, 1e6, np.float64)
        assert e1.time == pytest.approx(3.0 * e0.time)

    def test_zero_fault_injector_is_bit_invisible(self):
        spec = spec4()

        def run(cl):
            evs = [cl.launch(g, "k", "gemm", 1e8, 1e6, np.float64,
                             reads=["x"], writes=["y"]) for g in range(4)]
            cl.alltoall(4096, "a2a", after=evs, reads=["y"], writes=["z"])
            cl.sendrecv(0, 1, 1024, "p2p", reads=["z"], writes=["w"])

        plain = VirtualCluster(spec, execute=False)
        run(plain)
        faulty = VirtualCluster(spec, execute=False,
                                faults=FaultInjector(spec))
        run(faulty)
        assert plain.ledger.fingerprint() == faulty.ledger.fingerprint()

    def test_reset_time_rewinds_injector(self):
        spec = spec4()
        inj = FaultInjector(spec, seed=1, transient_rate=0.4)
        cl = VirtualCluster(spec, execute=False, faults=inj)
        for i in range(16):
            inj.message_outcome(0, 1, "m", float(i))
        assert inj.transient_count > 0
        cl.reset_time()
        assert inj.transient_count == 0

    def test_cluster_rejects_mismatched_injector(self):
        with pytest.raises(ParameterError):
            VirtualCluster(spec4(), execute=False,
                           faults=FaultInjector(p100_nvlink_node(2)))

    def test_cluster_rejects_retry_without_faults(self):
        from repro.comm import RetryPolicy

        with pytest.raises(ParameterError):
            VirtualCluster(spec4(), execute=False, faults=None,
                           retry=RetryPolicy())

    def test_default_retry_attached_with_faults(self):
        from repro.comm import DEFAULT_RETRY

        cl = VirtualCluster(spec4(), execute=False,
                            faults=FaultInjector(spec4()))
        assert cl.retry is DEFAULT_RETRY
