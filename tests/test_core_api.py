import numpy as np
import pytest

from repro.core.api import default_params, fmmfft, fourier_transform
from repro.core.plan import FmmFftPlan
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import p100_nvlink_node
from repro.util.prng import random_signal
from repro.util.validation import ParameterError


class TestDefaultParams:
    @pytest.mark.parametrize("q", range(10, 24, 2))
    def test_always_admissible(self, q):
        N = 1 << q
        for G in (1, 2, 4):
            d = default_params(N, G)
            plan = FmmFftPlan.create(N=N, G=G, build_operators=False, **d)
            assert plan.N == N

    def test_large_n_uses_ml64_q16(self):
        d = default_params(1 << 24)
        assert d["ML"] == 64
        assert d["Q"] == 16

    def test_rejects_non_pow2(self):
        with pytest.raises(ParameterError):
            default_params(1000)


class TestFmmfft:
    def test_defaults(self):
        x = random_signal(4096, seed=0)
        out = fmmfft(x)
        np.testing.assert_allclose(out, np.fft.fft(x), atol=1e-9)

    def test_explicit_params(self):
        x = random_signal(2048, seed=1)
        out = fmmfft(x, P=8, ML=16, B=3, Q=16)
        np.testing.assert_allclose(out, np.fft.fft(x), atol=1e-9)

    def test_distributed_path(self):
        x = random_signal(8192, seed=2)
        cl = VirtualCluster(p100_nvlink_node(2))
        out = fmmfft(x, cluster=cl, backend="numpy")
        np.testing.assert_allclose(out, np.fft.fft(x), atol=1e-8)
        assert cl.wall_time() > 0

    def test_real_input(self):
        x = random_signal(1024, "float64", seed=3)
        out = fmmfft(x)
        np.testing.assert_allclose(out, np.fft.fft(x), atol=1e-9)

    def test_single_precision_input(self):
        x = random_signal(4096, "complex64", seed=4)
        out = fmmfft(x, Q=8)
        assert out.dtype == np.complex64
        ref = np.fft.fft(x.astype(np.complex128))
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 4e-7

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            fmmfft(np.zeros((4, 4), dtype=complex))


class TestFourierTransform:
    def test_forward(self):
        x = random_signal(100, seed=5)
        np.testing.assert_allclose(fourier_transform(x), np.fft.fft(x), atol=1e-8)

    def test_inverse(self):
        x = random_signal(64, seed=6)
        np.testing.assert_allclose(
            fourier_transform(fourier_transform(x), inverse=True), x, atol=1e-9
        )


class TestDefaultParamsPropertySweep:
    """Edge-case sweep: every feasible (N, G) yields an admissible plan.

    Large G / small N used to emit B > L or P not divisible by G; the
    contract now is: either raise ParameterError up front, or return
    parameters FmmFftPlan.create accepts.
    """

    @pytest.mark.parametrize("G", [1, 2, 4, 8, 16])
    def test_admissible_or_explicit_rejection(self, G):
        feasible = 0
        for q in range(2, 21):
            N = 1 << q
            try:
                d = default_params(N, G)
            except ParameterError:
                continue
            plan = FmmFftPlan.create(N=N, G=G, build_operators=False, **d)
            feasible += 1
            assert plan.P % G == 0
            assert (1 << plan.B) % G == 0
            assert 2 <= plan.B <= plan.L
            assert plan.ML << plan.L == plan.M
        assert feasible > 0, f"no feasible size for G={G}"

    def test_infeasible_small_n_large_g_raises(self):
        with pytest.raises(ParameterError):
            default_params(1 << 3, 16)

    def test_rejects_non_pow2_g(self):
        with pytest.raises(ParameterError):
            default_params(1 << 12, 3)

    def test_classic_sizes_unchanged(self):
        # the regression pin: the historical defaults must not drift
        assert default_params(1 << 20, 8) == dict(P=256, ML=64, B=3, Q=16)
