import pytest

from repro.fmm.tree import Tree1D
from repro.util.validation import ParameterError


class TestConstruction:
    def test_levels(self):
        t = Tree1D(M=256, ML=16, B=2)
        assert t.L == 4
        assert t.num_leaves == 16

    def test_l_equals_b_allowed(self):
        t = Tree1D(M=64, ML=16, B=2)
        assert t.L == t.B == 2

    def test_rejects_b_below_2(self):
        with pytest.raises(ParameterError):
            Tree1D(M=256, ML=16, B=1)

    def test_rejects_b_above_l(self):
        with pytest.raises(ParameterError):
            Tree1D(M=256, ML=16, B=5)

    def test_rejects_ml_gt_m(self):
        with pytest.raises(ParameterError):
            Tree1D(M=16, ML=32, B=2)

    def test_rejects_non_pow2(self):
        with pytest.raises(ParameterError):
            Tree1D(M=100, ML=10, B=2)

    def test_rejects_g_not_dividing_base(self):
        with pytest.raises(ParameterError):
            Tree1D(M=256, ML=16, B=2, G=8)  # 2^2 < 8

    def test_g8_needs_b3(self):
        Tree1D(M=256, ML=16, B=3, G=8)


class TestLevels:
    def test_boxes_at(self):
        t = Tree1D(M=256, ML=16, B=2)
        assert t.boxes_at(4) == 16
        assert t.boxes_at(2) == 4

    def test_boxes_at_bounds(self):
        t = Tree1D(M=256, ML=16, B=2)
        with pytest.raises(ParameterError):
            t.boxes_at(5)
        with pytest.raises(ParameterError):
            t.boxes_at(1)

    def test_m2m_levels(self):
        t = Tree1D(M=256, ML=16, B=2)
        assert t.levels_m2m() == [3, 2]

    def test_m2l_levels_exclude_base(self):
        t = Tree1D(M=256, ML=16, B=2)
        assert t.levels_m2l() == [4, 3]

    def test_l2l_levels(self):
        t = Tree1D(M=256, ML=16, B=2)
        assert t.levels_l2l() == [2, 3]

    def test_l_equals_b_no_hierarchy(self):
        t = Tree1D(M=64, ML=16, B=2)
        assert t.levels_m2m() == []
        assert t.levels_m2l() == []
        assert t.levels_l2l() == []

    def test_kernel_launch_inventory_fig2(self):
        """L - B = 10 gives the paper's 35-launch inventory."""
        t = Tree1D(M=1 << 19, ML=64, B=3)  # the Figure 2 configuration
        assert t.L == 13 and t.L - t.B == 10
        launches = (
            1                          # S2M
            + len(t.levels_m2m())      # M2M
            + 1                        # S2T
            + len(t.levels_m2l()) + 1  # M2L-ell + M2L-B
            + 1                        # reduce
            + len(t.levels_l2l())      # L2L
            + 1                        # L2T
        )
        assert launches == 35


class TestOwnership:
    def test_box_range_partition(self):
        t = Tree1D(M=256, ML=16, B=2, G=4)
        ranges = [t.box_range(4, g) for g in range(4)]
        assert ranges == [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_boxes_local(self):
        t = Tree1D(M=256, ML=16, B=2, G=4)
        assert t.boxes_local(4) == 4
        assert t.boxes_local(2) == 1

    def test_owner_of_cyclic(self):
        t = Tree1D(M=256, ML=16, B=2, G=4)
        assert t.owner_of(4, 0) == 0
        assert t.owner_of(4, 15) == 3
        assert t.owner_of(4, 16) == 0  # wraps
        assert t.owner_of(4, -1) == 3

    def test_bad_device(self):
        t = Tree1D(M=256, ML=16, B=2, G=4)
        with pytest.raises(ParameterError):
            t.box_range(4, 4)

    def test_children_of_owned_parents_are_owned(self):
        """The no-comm property of M2M/L2L."""
        t = Tree1D(M=1 << 10, ML=16, B=3, G=4)
        for ell in t.levels_m2m():
            for g in range(4):
                b0, b1 = t.box_range(ell, g)
                c0, c1 = t.box_range(ell + 1, g)
                assert (c0, c1) == (2 * b0, 2 * b1)
