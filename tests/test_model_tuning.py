import json

import pytest

from repro.machine.spec import dual_p100_nvlink
from repro.model.search import find_fastest
from repro.model.tuning import TuningCache, tuned_params
from repro.util.validation import ParameterError


@pytest.fixture
def spec():
    return dual_p100_nvlink()


class TestCache:
    def test_miss_then_hit(self, spec):
        cache = TuningCache()
        assert cache.get(1 << 14, spec.name) is None
        p1 = tuned_params(1 << 14, spec, cache=cache)
        assert (1 << 14, spec.name, "complex128") in cache
        p2 = tuned_params(1 << 14, spec, cache=cache)
        assert p1 == p2
        assert len(cache) == 1

    def test_hit_avoids_search(self, spec, monkeypatch):
        cache = TuningCache()
        tuned_params(1 << 14, spec, cache=cache)

        def boom(*a, **kw):  # pragma: no cover - should not run
            raise AssertionError("search ran on a cache hit")

        monkeypatch.setattr("repro.model.tuning.find_fastest", boom)
        assert tuned_params(1 << 14, spec, cache=cache) is not None

    def test_no_cache_passthrough(self, spec):
        p = tuned_params(1 << 14, spec)
        assert {"P", "ML", "B", "Q"} <= set(p)

    def test_keys_distinguish_dtype(self, spec):
        cache = TuningCache()
        tuned_params(1 << 14, spec, dtype="complex128", cache=cache)
        tuned_params(1 << 14, spec, dtype="complex64", cache=cache)
        assert len(cache) == 2

    def test_returned_params_are_copies(self, spec):
        cache = TuningCache()
        p = tuned_params(1 << 14, spec, cache=cache)
        p["P"] = -1
        assert cache.get(1 << 14, spec.name)["P"] != -1


class TestPersistence:
    def test_roundtrip(self, spec, tmp_path):
        cache = TuningCache()
        tuned_params(1 << 14, spec, cache=cache)
        path = tmp_path / "wisdom.json"
        cache.save(path)
        loaded = TuningCache.load(path)
        assert loaded.get(1 << 14, spec.name) == cache.get(1 << 14, spec.name)

    def test_rejects_bad_json(self):
        with pytest.raises(ParameterError):
            TuningCache.loads("not json{")

    def test_rejects_unknown_version(self):
        with pytest.raises(ParameterError):
            TuningCache.loads(json.dumps({"version": 99, "entries": {}}))

    def test_rejects_malformed_entry(self):
        doc = {"version": 1, "entries": {"x": {"params": {"P": 4}}}}
        with pytest.raises(ParameterError):
            TuningCache.loads(json.dumps(doc))

    def test_result_values_persisted(self, spec):
        cache = TuningCache()
        r = find_fastest(1 << 14, spec)
        cache.put(1 << 14, spec.name, "complex128", r)
        loaded = TuningCache.loads(cache.dumps())
        key = f"{1 << 14}|{spec.name}|complex128"
        assert loaded.entries[key]["fmmfft_time"] == pytest.approx(r.fmmfft_time)
