import pytest

from repro.cli import _parse_size, build_parser, main


class TestParseSize:
    @pytest.mark.parametrize("s,expected", [
        ("4096", 4096), ("2^12", 4096), ("2**12", 4096), (" 2^4 ", 16),
    ])
    def test_forms(self, s, expected):
        assert _parse_size(s) == expected


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--system", "9xH100"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "2xP100" in out and "8xP100" in out

    def test_transform_meets_tolerance(self, capsys):
        rc = main(["transform", "--n", "2^12", "--tolerance", "1e-9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "relative l2 error" in out

    def test_transform_explicit_q(self, capsys):
        rc = main(["transform", "--n", "2^12", "--q", "16", "--tolerance", "1e-12"])
        assert rc == 0

    def test_transform_fails_impossible_tolerance_q(self, capsys):
        rc = main(["transform", "--n", "2^12", "--q", "4", "--tolerance", "1e-14"])
        assert rc == 1

    def test_search(self, capsys):
        assert main(["search", "--n", "2^16", "--system", "2xP100"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "fastest" in out

    def test_speedup_sweep(self, capsys):
        assert main(["speedup", "--system", "2xK40c", "--min", "14", "--max", "16"]) == 0
        out = capsys.readouterr().out
        assert "14" in out and "16" in out

    def test_profile_fmmfft(self, capsys):
        assert main(["profile", "--n", "2^18", "--system", "2xP100", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "dev0:" in out and "legend" in out

    def test_profile_baseline(self, capsys):
        assert main(["profile", "--n", "2^18", "--baseline", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "transpose" in out

    def test_model(self, capsys):
        assert main(["model", "--n", "2^18"]) == 0
        out = capsys.readouterr().out
        assert "FMM stage model" in out and "model speedup" in out

    def test_energy(self, capsys):
        assert main(["energy", "--n", "2^20", "--system", "8xP100"]) == 0
        out = capsys.readouterr().out
        assert "energy ratio" in out

    def test_multinode(self, capsys):
        assert main(["multinode", "--n", "2^18"]) == 0
        out = capsys.readouterr().out
        assert "Multi-node projection" in out

    def test_tune_roundtrip(self, capsys, tmp_path):
        wisdom = str(tmp_path / "w.json")
        assert main(["tune", "--min", "14", "--max", "15", "--wisdom", wisdom]) == 0
        # second run hits the cache and keeps the same entries
        assert main(["tune", "--min", "14", "--max", "15", "--wisdom", wisdom]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out

    def test_trace_export(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "t.json"
        assert main(["trace", "--n", "2^16", "--out", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]

    def test_trace_rich_export(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        out_file = tmp_path / "t.json"
        assert main(["trace", "--n", "2^16", "--rich",
                     "--out", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert validate_trace(doc) == []

    def test_metrics_fmmfft(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        j = tmp_path / "m.json"
        t = tmp_path / "t.json"
        assert main(["metrics", "--pipeline", "fmmfft", "--n", "2^18",
                     "--json", str(j), "--trace-out", str(t)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "hidden frac" in out
        assert "Sec. 5" in out  # the model join table
        payload = json.loads(j.read_text())
        assert payload["critical_path_length"] == pytest.approx(
            payload["wall_time"], abs=1e-9
        )
        assert 0.0 < payload["overlap_fraction"] <= 1.0
        assert validate_trace(json.loads(t.read_text())) == []

    def test_metrics_baseline_pipeline(self, capsys):
        assert main(["metrics", "--pipeline", "fft1d", "--n", "2^16"]) == 0
        out = capsys.readouterr().out
        assert "fft1d/" in out  # regioned rollup

    def test_profile_devices_filter(self, capsys):
        assert main(["profile", "--n", "2^18", "--devices", "0",
                     "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "dev0:" in out and "dev1:" not in out

    def test_profile_trace_out(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        t = tmp_path / "t.json"
        assert main(["profile", "--n", "2^18", "--width", "60",
                     "--trace-out", str(t)]) == 0
        assert validate_trace(json.loads(t.read_text())) == []

    def test_transform_trace_out(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        t = tmp_path / "t.json"
        rc = main(["transform", "--n", "2^12", "--tolerance", "1e-9",
                   "--trace-out", str(t)])
        assert rc == 0
        assert validate_trace(json.loads(t.read_text())) == []


class TestServeCommand:
    ARGS = ["serve", "--system", "2xP100", "--requests", "8",
            "--rate", "5000", "--sizes", "2^14"]

    def test_serve_reports_percentiles(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        for token in ("p50", "p95", "p99", "throughput", "plan cache"):
            assert token in out

    def test_serve_wisdom_warm_start_skips_search(self, capsys, tmp_path):
        import json

        wisdom = str(tmp_path / "w.json")
        j = str(tmp_path / "rep.json")
        assert main(self.ARGS + ["--wisdom", wisdom]) == 0
        cold = capsys.readouterr().out
        assert "1 searches" in cold
        assert main(self.ARGS + ["--wisdom", wisdom, "--json", j]) == 0
        warm = capsys.readouterr().out
        assert "0 searches" in warm
        doc = json.loads((tmp_path / "rep.json").read_text())
        assert doc["kind"] == "serve-run" and doc["version"] == 1
        rep = doc["report"]
        assert rep["searches"] == 0 and rep["wisdom_misses"] == 0
        # the snapshot rides along with the cache counters mirrored
        names = {row["name"] for row in doc["telemetry"]["series"]}
        assert "cache.plan_hit" in names and "serve.request_latency" in names
        assert "cache.search" not in names  # warm start never searched

    def test_serve_sanitize_and_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace

        t = tmp_path / "t.json"
        assert main(self.ARGS + ["--sanitize", "--trace-out", str(t)]) == 0
        out = capsys.readouterr().out
        assert "hazard-free" in out
        doc = json.loads(t.read_text())
        assert validate_trace(doc) == []
        assert any(e.get("args", {}).get("name") == "serve"
                   for e in doc["traceEvents"])

    def test_serve_no_batching(self, capsys):
        assert main(self.ARGS + ["--no-batching"]) == 0
        out = capsys.readouterr().out
        assert "mean size 1.00" in out

    def test_metrics_serve_pipeline(self, capsys):
        assert main(["metrics", "--pipeline", "serve", "--system", "2xP100"]) == 0
        out = capsys.readouterr().out
        assert "serve latency / throughput" in out
        assert "p99" in out and "serve/" in out  # regioned rollup too


class TestTopCommand:
    ARGS = ["top", "--system", "2xP100", "--requests", "8",
            "--rate", "5000", "--sizes", "2^14"]

    def test_top_live_dashboard(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        for token in ("repro top", "queue depth", "plan cache",
                      "slo burn rate"):
            assert token in out

    def test_top_replay_matches_serve_json(self, capsys, tmp_path):
        """`repro top --replay` of a serve --json doc renders the same
        dashboard the equivalent live run prints."""
        j = str(tmp_path / "run.json")
        serve_args = ["serve"] + self.ARGS[1:] + ["--json", j]
        assert main(serve_args) == 0
        capsys.readouterr()
        out_file = tmp_path / "top.txt"
        assert main(["top", "--replay", j, "--out", str(out_file)]) == 0
        live = capsys.readouterr().out
        assert "repro top" in live
        # --out captures exactly what was printed (plus trailing newline)
        assert out_file.read_text().rstrip("\n") in live

    def test_top_replay_rejects_non_telemetry_json(self, tmp_path):
        import json

        p = tmp_path / "bogus.json"
        p.write_text(json.dumps({"kind": "something-else"}))
        from repro.util.validation import ParameterError

        with pytest.raises(ParameterError):
            main(["top", "--replay", str(p)])


class TestChaosJson:
    def test_chaos_json_is_a_serve_run_doc(self, capsys, tmp_path):
        import json

        j = tmp_path / "chaos.json"
        assert main(["chaos", "--system", "2xP100", "--requests", "8",
                     "--rate", "5000", "--sizes", "2^14",
                     "--json", str(j)]) == 0
        doc = json.loads(j.read_text())
        assert doc["kind"] == "serve-run" and doc["version"] == 1
        assert doc["report"]["completed"] > 0
        assert {row["name"] for row in doc["telemetry"]["series"]}
        assert "objectives" in doc["slo"]


class TestVerifyCommand:
    def test_verify_small_matrix_certifies(self, capsys):
        rc = main(["verify", "--g-list", "2,4", "--no-degraded"])
        assert rc == 0
        out = capsys.readouterr().out
        for token in ("algorithm", "verdict", "certified", "plans certified"):
            assert token in out
        assert "FAIL" not in out

    def test_verify_json_findings_doc(self, capsys, tmp_path):
        from repro.analysis.findings import load_findings

        j = tmp_path / "verify.json"
        rc = main(["verify", "--g-list", "2", "--no-degraded",
                   "--json", str(j)])
        assert rc == 0
        doc = load_findings(j)
        assert doc["kind"] == "analysis-findings"
        assert doc["count"] == 0

    def test_analyze_json_findings_doc(self, capsys, tmp_path):
        from repro.analysis.findings import load_findings

        j = tmp_path / "analyze.json"
        rc = main(["analyze", "--pipeline", "fft1d", "--n", "2^12",
                   "--system", "2xP100", "--json", str(j)])
        assert rc == 0
        doc = load_findings(j)
        assert doc["kind"] == "analysis-findings"
        assert doc["count"] == 0
