"""The repro.comm subsystem: plans, tuning, issue paths, and the joins.

Covers the contract the refactor rests on: ``bulk`` is bit-for-bit the
legacy collective model, message plans are hazard-free and byte-
conserving, the model-driven selector exhibits the textbook algorithm
crossovers, and the comm_log/metrics join closes the measured-vs-model
loop.
"""

import json

import pytest

from repro import comm
from repro.analysis.hazards import find_hazards
from repro.analysis.lint import lint_source
from repro.cli import main
from repro.comm import build_plan, choose_algorithm, plan_time, predict_time
from repro.core.api import default_params
from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.dfft.fft1d import Distributed1DFFT
from repro.machine import topology as topo
from repro.machine.cluster import VirtualCluster
from repro.machine.multinode import multinode_p100, routed_multinode_p100
from repro.machine.spec import (
    NVLINK_P100_LINK,
    P100,
    ClusterSpec,
    preset,
)
from repro.obs import build_trace, compute_metrics, validate_trace
from repro.util.validation import ParameterError

PAYLOAD = 1 << 20  # 1 MiB per device


def ring8_spec() -> ClusterSpec:
    """8 P100s on a bare NVLink ring (non-neighbours fall back to PCIe)."""
    return ClusterSpec(
        device=P100, num_devices=8,
        graph=topo.ring(8, NVLINK_P100_LINK),
        name="ring8", collective_overhead=240e-6,
    )


# ---------------------------------------------------------------------------
# plans: structure and conservation
# ---------------------------------------------------------------------------

class TestPlans:
    @pytest.mark.parametrize("algo", ["direct", "ring", "bruck"])
    def test_alltoall_wire_bytes_conserved(self, algo):
        spec = preset("8xP100")
        plan = build_plan(spec, "alltoall", float(PAYLOAD), algo)
        # every algorithm moves at least the G x payload wire minimum;
        # direct moves exactly it (no relaying)
        assert plan.wire_bytes() >= 8 * PAYLOAD - 1e-6
        if algo == "direct":
            assert plan.wire_bytes() == pytest.approx(8 * PAYLOAD)

    @pytest.mark.parametrize("algo", ["direct", "ring", "bruck"])
    def test_allgather_every_device_gets_every_block(self, algo):
        spec = preset("8xP100")
        plan = build_plan(spec, "allgather", float(PAYLOAD), algo,
                          writes=("buf",))
        got = {g: set() for g in range(8)}
        for rnd in plan.rounds:
            for m in rnd:
                for w in m.writes:
                    if "#b" in w:
                        got[m.dst].add(w.split("#b")[-1].split("#")[0])
        for g in range(8):
            assert len(got[g]) == 7, (algo, g, got[g])

    def test_bruck_is_log_rounds(self):
        spec = preset("8xP100")
        assert len(build_plan(spec, "alltoall", 1e6, "bruck").rounds) == 3
        assert len(build_plan(spec, "alltoall", 1e6, "ring").rounds) == 7
        assert len(build_plan(spec, "alltoall", 1e6, "direct").rounds) == 7

    def test_hier_requires_multinode(self):
        with pytest.raises(ParameterError):
            build_plan(preset("8xP100"), "alltoall", 1e6, "hier")
        with pytest.raises(ParameterError):
            build_plan(preset("8xP100"), "alltoall", 1e6, "hier2")

    def test_hier2_one_exchange_per_node_pair(self):
        spec = multinode_p100(4, gpus_per_node=4)
        plan = build_plan(spec, "alltoall", float(PAYLOAD), "hier2")
        node_of = spec.graph.graph["node_of"]
        inter = [(node_of[m.src], node_of[m.dst])
                 for rnd in plan.rounds for m in rnd
                 if node_of[m.src] != node_of[m.dst]]
        # exactly one inter-node message per ordered node pair
        assert sorted(inter) == sorted(
            (i, j) for i in range(4) for j in range(4) if i != j)
        # the NIC injection duty is spread across each node's devices,
        # not funneled through one leader
        senders_per_node = {}
        for rnd in plan.rounds:
            for m in rnd:
                if node_of[m.src] != node_of[m.dst]:
                    senders_per_node.setdefault(node_of[m.src],
                                                set()).add(m.src)
        assert all(len(s) >= 3 for s in senders_per_node.values())

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ParameterError):
            build_plan(preset("8xP100"), "alltoall", 1e6, "nccl")
        cl = VirtualCluster(preset("2xP100"), execute=False)
        with pytest.raises(ParameterError):
            comm.alltoall(cl, 1e6, "t", writes=["b"], algorithm="nccl")


# ---------------------------------------------------------------------------
# tuning: cost-model crossovers
# ---------------------------------------------------------------------------

class TestTuning:
    def test_ring_beats_bruck_for_large_on_ring_topology(self):
        spec = ring8_spec()
        big = 64e6
        assert predict_time(spec, "allgather", big, "ring") < predict_time(
            spec, "allgather", big, "bruck"
        )

    def test_bruck_beats_ring_for_small_messages(self):
        spec = ring8_spec()
        small = 4096.0
        assert predict_time(spec, "allgather", small, "bruck") < predict_time(
            spec, "allgather", small, "ring"
        )

    def test_crossover_holds_in_simulated_wall_time(self):
        # the model's ordering is realized by the issued schedules too
        spec = ring8_spec()
        times = {}
        for payload in (4096.0, 64e6):
            for algo in ("ring", "bruck"):
                cl = VirtualCluster(spec, execute=False)
                comm.allgather(cl, payload, "ag", writes=["buf"],
                               algorithm=algo)
                times[payload, algo] = cl.wall_time()
        assert times[4096.0, "bruck"] < times[4096.0, "ring"]
        assert times[64e6, "ring"] < times[64e6, "bruck"]

    def test_choose_algorithm_is_argmin(self):
        spec = preset("8xP100")
        for kind in ("alltoall", "allgather"):
            best = choose_algorithm(spec, kind, float(PAYLOAD))
            preds = {a: predict_time(spec, kind, float(PAYLOAD), a)
                     for a in ("direct", "ring", "bruck")}
            assert best == min(preds, key=preds.get)

    def test_predict_matches_plan_time(self):
        spec = preset("8xP100")
        for algo in ("direct", "ring", "bruck"):
            plan = build_plan(spec, "alltoall", float(PAYLOAD), algo)
            assert predict_time(spec, "alltoall", float(PAYLOAD), algo) == (
                pytest.approx(plan_time(spec, plan))
            )


# ---------------------------------------------------------------------------
# bulk back-compat: the legacy model, bit for bit
# ---------------------------------------------------------------------------

def _record_key(r):
    return (r.device, r.stream, r.kind, r.name, r.start, r.duration,
            r.comm_bytes, r.peer, r.reads, r.writes)


class TestBulkBackCompat:
    def test_bulk_alltoall_identical_to_raw_collective(self):
        spec = preset("8xP100")
        cl_raw = VirtualCluster(spec, execute=False)
        cl_raw.alltoall(float(PAYLOAD), name="t",
                        reads=["src"], writes=["dst"])
        cl_new = VirtualCluster(spec, execute=False)
        comm.alltoall(cl_new, float(PAYLOAD), "t",
                      reads=["src"], writes=["dst"], algorithm="bulk")
        assert [_record_key(r) for r in cl_new.ledger] == (
            [_record_key(r) for r in cl_raw.ledger]
        )

    def test_bulk_allgather_identical_to_raw_collective(self):
        spec = preset("2xP100")
        cl_raw = VirtualCluster(spec, execute=False)
        cl_raw.allgather(float(PAYLOAD), "g", reads=["src"], writes=["dst"])
        cl_new = VirtualCluster(spec, execute=False)
        comm.allgather(cl_new, float(PAYLOAD), "g",
                       reads=["src"], writes=["dst"], algorithm="bulk")
        assert [_record_key(r) for r in cl_new.ledger] == (
            [_record_key(r) for r in cl_raw.ledger]
        )

    def test_default_pipeline_is_bulk(self):
        # the comm_algorithm knob defaults to the legacy model
        spec = preset("2xP100")
        cl_a = VirtualCluster(spec, execute=False)
        Distributed1DFFT(1 << 16, cl_a, dtype="complex128").run()
        cl_b = VirtualCluster(spec, execute=False)
        Distributed1DFFT(1 << 16, cl_b, dtype="complex128",
                         comm_algorithm="bulk").run()
        assert [_record_key(r) for r in cl_a.ledger] == (
            [_record_key(r) for r in cl_b.ledger]
        )


# ---------------------------------------------------------------------------
# byte accounting and self-sends (the satellite fixes)
# ---------------------------------------------------------------------------

class TestAccounting:
    def test_total_comm_bytes_algorithm_independent(self):
        # per-device payload convention: summing comm_bytes never
        # double-counts, so bulk and direct agree on the ledger total
        spec = preset("8xP100")
        totals = {}
        for algo in ("bulk", "direct"):
            cl = VirtualCluster(spec, execute=False)
            comm.alltoall(cl, float(PAYLOAD), "t",
                          reads=["s"], writes=["d"], algorithm=algo)
            totals[algo] = sum(r.comm_bytes for r in cl.ledger)
        assert totals["direct"] == pytest.approx(totals["bulk"])

    def test_self_send_records_zero_cost_op_with_declares(self):
        cl = VirtualCluster(preset("2xP100"), execute=False)
        ev = comm.sendrecv(cl, 1, 1, 4096.0, "copy",
                           reads=["a"], writes=["b"])
        assert ev.time == 0.0
        (r,) = list(cl.ledger)
        assert r.duration == 0.0
        assert r.comm_bytes == 0.0
        assert r.peer == 1
        assert r.reads == ((1, "a"),)
        assert r.writes == ((1, "b"),)

    def test_self_send_orders_after_dependencies(self):
        cl = VirtualCluster(preset("2xP100"), execute=False)
        ev0 = cl.launch(1, "k", "copy", flops=0.0, mops=1e6,
                        dtype="complex128", reads=["a"], writes=["a"])
        ev = comm.sendrecv(cl, 1, 1, 4096.0, "copy", after=[ev0],
                           reads=["a"], writes=["b"])
        assert ev.time == pytest.approx(ev0.time)
        assert find_hazards(cl.ledger).ok


# ---------------------------------------------------------------------------
# end to end: auto beats bulk on the DGX-1, hazard-free, valid trace
# ---------------------------------------------------------------------------

class TestEndToEnd:
    @pytest.fixture(scope="class")
    def dgx1_runs(self):
        spec = preset("8xP100")
        N = 1 << 20
        out = {}
        for algo in ("bulk", "auto"):
            cl = VirtualCluster(spec, execute=False)
            plan = FmmFftPlan.create(N=N, G=8, dtype="complex128",
                                     build_operators=False,
                                     **default_params(N))
            FmmFftDistributed(plan, cl, comm_algorithm=algo).run()
            out[algo] = cl
        return spec, out

    def test_auto_beats_bulk_fmmfft(self, dgx1_runs):
        _, runs = dgx1_runs
        assert runs["auto"].wall_time() < runs["bulk"].wall_time()

    def test_auto_schedule_is_hazard_free(self, dgx1_runs):
        _, runs = dgx1_runs
        report = find_hazards(runs["auto"].ledger)
        assert report.ok, report.render()

    def test_auto_trace_is_valid_perfetto(self, dgx1_runs):
        spec, runs = dgx1_runs
        doc = build_trace(runs["auto"].ledger, spec)
        assert validate_trace(doc) == []

    def test_comm_join_bulk_ratio_is_one(self, dgx1_runs):
        spec, runs = dgx1_runs
        cl = runs["bulk"]
        rep = compute_metrics(cl.ledger, spec, comm_log=cl.comm_log)
        assert rep.comm
        bulk = [c for c in rep.comm if c.algorithm == "bulk"]
        assert bulk
        for c in bulk:
            assert c.ratio == pytest.approx(1.0)
        for c in rep.comm:  # halos/plans: within the balance envelope
            assert 0.0 < c.ratio <= 1.0 + 1e-9
        assert rep.to_json()["comm_join"]

    def test_execute_mode_correct_under_plans(self):
        # the fn-at-issue contract survives the per-message decomposition
        import numpy as np

        spec = preset("2xP100")
        N = 1 << 12
        rng = np.random.default_rng(7)
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        for algo in ("direct", "ring", "bruck"):
            cl = VirtualCluster(spec, execute=True)
            y = Distributed1DFFT(N, cl, dtype="complex128",
                                 comm_algorithm=algo).run(x)
            ref = np.fft.fft(x)  # lint: allow-np-fft
            err = np.linalg.norm(y - ref) / np.linalg.norm(ref)
            assert err < 1e-12, (algo, err)

    def test_execute_mode_correct_under_hier2(self):
        import numpy as np

        spec = multinode_p100(2, gpus_per_node=2)
        N = 1 << 12
        rng = np.random.default_rng(11)
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        for algo in ("hier", "hier2"):
            cl = VirtualCluster(spec, execute=True)
            y = Distributed1DFFT(N, cl, dtype="complex128",
                                 comm_algorithm=algo).run(x)
            ref = np.fft.fft(x)  # lint: allow-np-fft
            err = np.linalg.norm(y - ref) / np.linalg.norm(ref)
            assert err < 1e-12, (algo, err)
            report = find_hazards(cl.ledger)
            assert report.ok, report.render()

    def test_hier2_schedule_hazard_free_on_routed_fabric(self):
        spec = routed_multinode_p100(4, gpus_per_node=2, radix=4)
        cl = VirtualCluster(spec, execute=False)
        evs = comm.alltoall(cl, float(PAYLOAD), "x", reads=["s"],
                            writes=["d"], algorithm="hier2")
        comm.allgather(cl, float(PAYLOAD), "g", after=evs, reads=["d"],
                       writes=["gath"], algorithm="hier2")
        report = find_hazards(cl.ledger)
        assert report.ok, report.render()
        assert cl.wall_time() > 0.0


class TestGroupedAlltoall:
    def test_members_exchange_and_outsiders_idle(self):
        spec = multinode_p100(2, gpus_per_node=4)
        cl = VirtualCluster(spec, execute=False)
        groups = [[0, 4], [1, 5], [2, 6]]  # device 3 and 7 sit out
        evs = comm.grouped_alltoall(cl, float(PAYLOAD), "px",
                                    groups=groups, reads=["s"], writes=["d"])
        assert len(evs) == 8
        touched = {r.device for r in cl.ledger}
        assert 3 not in touched and 7 not in touched
        report = find_hazards(cl.ledger)
        assert report.ok, report.render()
        # every pair inside a group exchanged the full per-peer share
        total = sum(r.comm_bytes for r in cl.ledger)
        assert total == pytest.approx(len(groups) * 2 * PAYLOAD)

    def test_merged_rounds_price_nic_contention(self):
        # three concurrent cross-node pair exchanges share each node's
        # NIC, so the merged issue is slower than one pair alone
        spec = multinode_p100(2, gpus_per_node=4)
        cl_lone = VirtualCluster(spec, execute=False)
        comm.grouped_alltoall(cl_lone, float(PAYLOAD), "px",
                              groups=[[0, 4]], reads=["s"], writes=["d"])
        cl_merged = VirtualCluster(spec, execute=False)
        comm.grouped_alltoall(cl_merged, float(PAYLOAD), "px",
                              groups=[[0, 4], [1, 5], [2, 6]],
                              reads=["s"], writes=["d"])
        assert cl_merged.wall_time() > 1.5 * cl_lone.wall_time()

    def test_overlapping_groups_rejected(self):
        cl = VirtualCluster(preset("8xP100"), execute=False)
        with pytest.raises(ParameterError):
            comm.grouped_alltoall(cl, 1e6, "px", groups=[[0, 1], [1, 2]],
                                  writes=["d"])


# ---------------------------------------------------------------------------
# the raw-comm lint rule
# ---------------------------------------------------------------------------

HDR = "from __future__ import annotations\n"


def rules(src, path):
    return [i.rule for i in lint_source(path, src)]


class TestRawCommLint:
    def test_raw_collective_flagged_in_pipeline(self):
        src = HDR + "def f(cl):\n    cl.alltoall(1.0, 't', reads=[], writes=[])\n"
        assert rules(src, "src/repro/dfft/x.py") == ["raw-comm"]

    def test_comm_receiver_ok_in_pipeline(self):
        src = HDR + ("def f(cl):\n"
                     "    comm.alltoall(cl, 1.0, 't', reads=[], writes=[])\n")
        assert rules(src, "src/repro/dfft/x.py") == []

    def test_raw_sendrecv_flagged_in_fmm(self):
        src = HDR + ("def f(cl):\n"
                     "    cl.sendrecv(0, 1, 8.0, 'm', reads=[], writes=[])\n")
        assert rules(src, "src/repro/fmm/x.py") == ["raw-comm"]

    def test_outside_pipelines_not_flagged(self):
        src = HDR + "def f(cl):\n    cl.alltoall(1.0, 't', reads=[], writes=[])\n"
        assert rules(src, "src/repro/util/x.py") == []

    def test_collective_internal_flagged_everywhere_else(self):
        src = HDR + "def f(cl):\n    cl._collective('t', 1.0)\n"
        assert rules(src, "src/repro/util/x.py") == ["raw-comm"]
        assert rules(src, "src/repro/machine/x.py") == []
        assert rules(src, "src/repro/comm/x.py") == []

    def test_pragma_waives(self):
        src = HDR + ("def f(cl):\n"
                     "    cl.alltoall(1.0, 't', reads=[], writes=[])"
                     "  # lint: allow-raw-comm\n")
        assert rules(src, "src/repro/dfft/x.py") == []


# ---------------------------------------------------------------------------
# the CLI surface
# ---------------------------------------------------------------------------

class TestCommCli:
    def test_comm_table(self, capsys):
        assert main(["comm", "--testbed", "8xP100"]) == 0
        out = capsys.readouterr().out
        assert "bruck" in out and "vs bulk" in out

    def test_comm_table_json(self, capsys, tmp_path):
        path = tmp_path / "comm.json"
        assert main(["comm", "--testbed", "2xP100", "--json", str(path)]) == 0
        rows = json.loads(path.read_text())
        assert rows and all("predictions" in r and "best" in r for r in rows)

    def test_metrics_comm_flag(self, capsys):
        assert main(["metrics", "--pipeline", "fft1d", "--n", "2^16",
                     "--system", "8xP100", "--comm", "auto"]) == 0
        out = capsys.readouterr().out
        assert "Comm measured vs plan model" in out

    def test_analyze_comm_flag_sanitizes(self, capsys):
        assert main(["analyze", "--pipeline", "fft1d", "--n", "2^16",
                     "--system", "8xP100", "--comm", "bruck",
                     "--sanitize"]) == 0
