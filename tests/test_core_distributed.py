import numpy as np
import pytest

from repro.core.distributed import FmmFftDistributed
from repro.core.plan import FmmFftPlan
from repro.core.single import fmmfft_single
from repro.machine.cluster import VirtualCluster
from repro.machine.spec import dual_p100_nvlink, p100_nvlink_node
from repro.util.prng import random_signal
from repro.util.validation import ParameterError


def _plan(N=8192, P=32, ML=16, B=3, Q=16, G=2, **kw):
    return FmmFftPlan.create(N=N, P=P, ML=ML, B=B, Q=Q, G=G, **kw)


class TestCorrectness:
    @pytest.mark.parametrize("G", [1, 2, 4, 8])
    def test_matches_numpy(self, G):
        plan = _plan(G=G)
        cl = VirtualCluster(p100_nvlink_node(G))
        x = random_signal(plan.N, seed=G)
        out = FmmFftDistributed(plan, cl, backend="numpy").run(x)
        ref = np.fft.fft(x)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 2e-14

    def test_matches_single_device_executor(self):
        plan1 = _plan(G=1)
        plan2 = _plan(G=2)
        x = random_signal(plan1.N, seed=42)
        single = fmmfft_single(x, plan1, backend="numpy")
        cl = VirtualCluster(p100_nvlink_node(2))
        dist = FmmFftDistributed(plan2, cl, backend="numpy").run(x)
        np.testing.assert_allclose(dist, single, atol=1e-9)

    def test_own_backend(self):
        plan = _plan(G=2)
        cl = VirtualCluster(p100_nvlink_node(2))
        x = random_signal(plan.N, seed=9)
        out = FmmFftDistributed(plan, cl, backend="auto").run(x)
        ref = np.fft.fft(x)
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 2e-13

    def test_unfused_post_same_answer(self):
        plan = _plan(G=2)
        x = random_signal(plan.N, seed=10)
        cl1 = VirtualCluster(p100_nvlink_node(2))
        out1 = FmmFftDistributed(plan, cl1, backend="numpy", fuse_post=True).run(x)
        cl2 = VirtualCluster(p100_nvlink_node(2))
        out2 = FmmFftDistributed(plan, cl2, backend="numpy", fuse_post=False).run(x)
        np.testing.assert_allclose(out1, out2, atol=1e-10)

    def test_single_precision(self):
        plan = _plan(Q=8, dtype="complex64")
        cl = VirtualCluster(p100_nvlink_node(2))
        x = random_signal(plan.N, "complex64", seed=11)
        out = FmmFftDistributed(plan, cl, backend="numpy").run(x)
        ref = np.fft.fft(x.astype(np.complex128))
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 4e-7


class TestTiming:
    def test_timing_only_no_operators(self):
        plan = FmmFftPlan.create(
            N=1 << 24, P=1 << 10, ML=64, B=3, Q=16, G=2, build_operators=False
        )
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        assert FmmFftDistributed(plan, cl).run() is None
        assert cl.wall_time() > 0

    def test_single_alltoall_plus_gather(self):
        plan = FmmFftPlan.create(
            N=1 << 22, P=1 << 8, ML=64, B=3, Q=16, G=2, build_operators=False
        )
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        FmmFftDistributed(plan, cl).run()
        comm = cl.ledger.comm_bytes_by_name()
        # exactly one big transpose; the rest are small FMM exchanges
        big = [k for k, v in comm.items() if v > 0.5 * max(comm.values())]
        assert big == ["fft2d.transpose"]

    def test_fuse_post_saves_time(self):
        plan = FmmFftPlan.create(
            N=1 << 24, P=1 << 10, ML=64, B=3, Q=16, G=2, build_operators=False
        )
        cl_f = VirtualCluster(dual_p100_nvlink(), execute=False)
        FmmFftDistributed(plan, cl_f, fuse_post=True).run()
        cl_u = VirtualCluster(dual_p100_nvlink(), execute=False)
        FmmFftDistributed(plan, cl_u, fuse_post=False).run()
        assert cl_f.wall_time() < cl_u.wall_time()

    def test_beats_baseline_at_large_n(self):
        """The headline result, as a regression guard."""
        from repro.dfft.fft1d import Distributed1DFFT

        N = 1 << 26
        plan = FmmFftPlan.create(N=N, P=1 << 9, ML=64, B=3, Q=16, G=2,
                                 build_operators=False)
        cl = VirtualCluster(dual_p100_nvlink(), execute=False)
        FmmFftDistributed(plan, cl).run()
        t_fmm = cl.wall_time()
        cl_b = VirtualCluster(dual_p100_nvlink(), execute=False)
        Distributed1DFFT(N, cl_b).run()
        assert cl_b.wall_time() / t_fmm > 1.15


class TestValidation:
    def test_g_mismatch(self):
        plan = _plan(G=2)
        cl = VirtualCluster(p100_nvlink_node(4), execute=False)
        with pytest.raises(ParameterError):
            FmmFftDistributed(plan, cl)

    def test_execute_needs_operators(self):
        plan = FmmFftPlan.create(N=4096, P=8, ML=16, B=3, Q=16, G=2,
                                 build_operators=False)
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            FmmFftDistributed(plan, cl)

    def test_execute_needs_input(self):
        plan = _plan(G=2)
        cl = VirtualCluster(p100_nvlink_node(2))
        with pytest.raises(ParameterError):
            FmmFftDistributed(plan, cl).run()
